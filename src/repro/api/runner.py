"""One dispatcher for every scenario mode, plus the grid sweep runner.

``run(spec)`` turns any :class:`~repro.api.spec.ScenarioSpec` into a
:class:`~repro.api.report.RunReport` by driving the matching subsystem —
the network simulator for collectives, the training simulator for single
jobs, the cluster simulator for multi-tenant traces, the analytic
provisioning assessment — and normalizing the result into the uniform
report shape.  ``sweep(base, axes)`` runs a cartesian grid of spec
variants, optionally on a process pool.
"""

from __future__ import annotations

import copy
import functools
import itertools
import json
import time
from collections.abc import Mapping, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import Any

from ..analysis.provisioning import assess
from ..collectives.types import CollectiveRequest, CollectiveType
from ..core.ideal import IdealEstimator
from ..core.scheduler import SchedulerFactory
from ..core.splitter import Splitter
from ..errors import EventBudgetError, SpecError
from ..sim.network import NetworkSimulator
from ..sim.stats import bw_utilization
from ..training.iteration import TrainingConfig, TrainingSimulator
from .report import RunReport, SweepPoint, SweepResult
from .spec import (
    ClusterScenario,
    CollectiveScenario,
    ProvisioningScenario,
    ScenarioSpec,
    TrainingScenario,
    _plain,
    _set_dotted,
    resolve_topology,
    resolve_workload,
    spec_from_dict,
)


#: Per-job payload rows are capped so a 10k-arrival open-loop run does not
#: serialize a 10k-row report; the streaming ``steady_state`` digest covers
#: the full population, and ``job_rows_omitted`` records the cut.
_JOB_ROW_CAP = 200


def scheduler_label(scheduler: str, policy: str) -> str:
    """Display label used across experiments (``Baseline`` / ``Themis+SCF``)."""
    if scheduler.lower() == "baseline":
        return "Baseline"
    return f"Themis+{policy.upper()}"


def _run_collective(
    spec: CollectiveScenario,
    context: dict | None = None,
    audit: bool | None = None,
) -> RunReport:
    topology = resolve_topology(spec.topology)
    ctype = CollectiveType.from_name(spec.collective)
    sim = NetworkSimulator(
        topology,
        SchedulerFactory(spec.scheduler, splitter=Splitter(spec.chunks)),
        policy=spec.policy,
        audit=audit,
    )
    sim.submit(CollectiveRequest(ctype, spec.size))
    truncated = False
    try:
        result = sim.run(max_events=spec.max_events)
    except EventBudgetError:
        truncated = True
        result = sim.result()
    utilization = (
        bw_utilization(result) if result.comm_active_seconds > 0 else None
    )
    ideal_time = IdealEstimator().collective_time(ctype, spec.size, topology)
    comm_time = result.makespan
    return RunReport(
        mode=spec.mode,
        spec=spec.to_dict(),
        makespan=comm_time,
        events=sim.engine.events_processed,
        avg_utilization=utilization.average if utilization else None,
        per_dim_utilization=tuple(utilization.per_dim) if utilization else None,
        truncated=truncated,
        payload={
            "topology": topology.name,
            "collective": ctype.value,
            "scheduler": spec.scheduler,
            "scheduler_label": scheduler_label(spec.scheduler, spec.policy),
            "policy": spec.policy,
            "size": spec.size,
            "chunks": spec.chunks,
            "comm_time": comm_time,
            "ideal_time": ideal_time,
            "completed_collectives": len(result.completed_collectives),
        },
        detail=result,
    )


def _run_training(
    spec: TrainingScenario,
    context: dict | None = None,
    audit: bool | None = None,
) -> RunReport:
    workload = resolve_workload(spec.workload, spec.workload_args)
    topology = resolve_topology(spec.topology)
    config = TrainingConfig(
        iterations=spec.iterations,
        overlap_dp=spec.overlap_dp,
        dp_bucket_bytes=spec.dp_bucket_bytes,
        chunks_per_collective=spec.chunks,
        policy=spec.policy,
    )
    sim = TrainingSimulator(
        workload,
        topology,
        scheduler=spec.scheduler,
        config=config,
        ideal_network=spec.ideal_network,
        audit=audit,
        backend=spec.backend,
        backend_options=spec.backend_options,
    )
    if spec.faults is not None:
        # Spec validation already rejected fault-incapable backends, so
        # the network here always has real links to degrade.
        schedule, _ = spec.faults.to_runtime()
        if schedule is not None:
            sim.network.apply_fault_schedule(schedule)
    report = sim.run()
    per_dim = None
    if (
        getattr(sim.network, "provides_result", False)
        and sim.loop.collectives_issued
    ):
        network_result = sim.network.result()
        if network_result.comm_active_seconds > 0:
            per_dim = tuple(bw_utilization(network_result).per_dim)
    total = report.total
    return RunReport(
        mode=spec.mode,
        spec=spec.to_dict(),
        makespan=report.total_time,
        events=sim.engine.events_processed,
        avg_utilization=report.avg_bw_utilization,
        per_dim_utilization=per_dim,
        payload={
            "workload": report.workload_name,
            "topology": report.topology_name,
            "scheduler": spec.scheduler,
            "scheduler_label": report.scheduler_name,
            "policy": spec.policy,
            "backend": sim.backend_name,
            "iterations": len(report.iterations),
            "collective_count": report.collective_count,
            "fwd_compute": total.fwd_compute,
            "bwd_compute": total.bwd_compute,
            "exposed_mp": total.exposed_mp,
            "exposed_dp": total.exposed_dp,
            "compute": total.compute,
            "exposed_comm": total.exposed_comm,
            "total_time": report.total_time,
        },
        detail=report,
    )


def _run_cluster(
    spec: ClusterScenario,
    context: dict | None = None,
    audit: bool | None = None,
) -> RunReport:
    from ..cluster import (
        ClusterConfig,
        ClusterSimulator,
        WeightedSharing,
        derive_open_loop_rate,
        mix_mean_service_time,
    )

    topology = resolve_topology(spec.topology)
    fairness: Any = spec.fairness
    if spec.fairness == "weighted" and (
        spec.fairness_weights or spec.fairness_weights_by_dim
    ):
        fairness = WeightedSharing(
            weights=spec.fairness_weights,
            weights_by_dim=spec.fairness_weights_by_dim,
        )
    link_faults, job_faults = (
        spec.faults.to_runtime() if spec.faults is not None else (None, None)
    )
    config = ClusterConfig(
        training=TrainingConfig(
            overlap_dp=spec.overlap_dp,
            dp_bucket_bytes=spec.dp_bucket_bytes,
            chunks_per_collective=spec.chunks,
            policy=spec.policy,
        ),
        isolated_baselines=spec.isolated_baselines,
        fairness=fairness,
        placement=spec.placement,
        record_ops=spec.record_ops,
        audit=audit,
        max_concurrent=spec.max_concurrent,
        warmup_time=spec.warmup_time,
        measure_time=spec.measure_time,
        outcome_cap=spec.outcome_cap,
        isolated_per_iteration=spec.isolated_per_iteration,
        convergence_epochs=spec.convergence_epochs,
        link_faults=link_faults,
        job_faults=job_faults,
        backend=spec.backend,
        backend_options=spec.backend_options,
    )
    isolated_cache = None
    if context is not None:
        # Isolated JCTs are policy-independent but do depend on the
        # platform and shared-network knobs, so the cross-run cache is
        # scoped by them: a fairness sweep shares its solo baselines, a
        # topology sweep does not.
        scope = json.dumps(
            {
                "topology": spec.topology,
                "policy": spec.policy,
                "chunks": spec.chunks,
                "overlap_dp": spec.overlap_dp,
                "dp_bucket_bytes": spec.dp_bucket_bytes,
                # Isolated JCTs are fidelity-specific: a backend sweep must
                # not reuse another backend's solo baselines.
                "backend": spec.backend,
                "backend_options": spec.backend_options,
            },
            sort_keys=True,
        )
        isolated_cache = context.setdefault(("isolated_jct", scope), {})
    calibrated_rate = None
    if spec.open_loop is not None and spec.open_loop.rate is None:
        # target_rho mode: derive the arrival rate from the mix's mean
        # isolated service demand (one cached solo run per workload rung).
        slots = (
            spec.open_loop.calibration_slots
            if spec.open_loop.calibration_slots is not None
            else spec.max_concurrent
        )
        assert slots is not None  # enforced by the spec
        mean_service = mix_mean_service_time(
            topology,
            spec.open_loop.mix,
            config,
            schedulers=spec.open_loop.schedulers,
            cache=isolated_cache,
        )
        calibrated_rate = derive_open_loop_rate(
            spec.open_loop.target_rho, mean_service, slots
        )
    jobs = spec.to_jobs(open_loop_rate=calibrated_rate)
    sim = ClusterSimulator(
        topology, jobs, config, isolated_cache=isolated_cache
    )
    report = sim.run(max_events=spec.max_events)
    job_rows = [
        {
            "name": job.name,
            "workload": job.workload_name,
            "scheduler": job.scheduler_name,
            "arrival_time": job.arrival_time,
            "finish_time": job.finish_time,
            "jct": job.jct,
            "isolated_time": job.isolated_time,
            "rho": job.rho,
            "queueing_delay": job.queueing_delay,
            "comm_active_seconds": job.comm_active_seconds,
            "placement": (
                list(job.placement) if job.placement is not None else None
            ),
            "attempts": job.attempts,
            "failed": job.failed,
            "lost_work": job.lost_work,
        }
        for job in report.jobs[:_JOB_ROW_CAP]
    ]
    utilization = report.utilization
    payload = {
        "topology": report.topology_name,
        "backend": sim.backend_name,
        "jobs": job_rows,
        "job_rows_omitted": max(0, len(report.jobs) - _JOB_ROW_CAP),
        "total_jobs": report.total_jobs,
        "unfinished_jobs": [job.name for job in report.unfinished_jobs],
        "failed_jobs": [job.name for job in report.failed_jobs],
        "total_retries": report.total_retries,
        "lost_work_seconds": report.lost_work_seconds,
        "completion_rate": report.completion_rate,
        "fault_timeline": (
            [list(entry) for entry in sim.network.fault_timeline]
            if link_faults is not None
            else None
        ),
        "mean_jct": report.mean_jct,
        "max_jct": report.max_jct,
        "mean_rho": report.mean_rho,
        "max_rho": report.max_rho,
        "jains_fairness_index": report.jains_fairness_index,
        "fairness": report.fairness_name,
        "placement": report.placement_name,
        "dim_load": list(report.dim_load),
        "load_imbalance": report.load_imbalance,
        "preemption_count": report.preemption_count,
        "comm_active_seconds": report.comm_active_seconds,
        "peak_live_jobs": report.peak_live_jobs,
        # Machine-independent engine counters: identical inputs must
        # reproduce these exactly, so the perf-regression gate diffs them.
        "engine": {
            "events": sim.engine.events_processed,
            "peak_pending_events": sim.engine.peak_pending,
            "cancelled_events": sim.engine.cancelled_events,
            "compactions": sim.engine.compactions,
        },
        "stopped_at": report.stopped_at,
        "arrival_rate": calibrated_rate
        if calibrated_rate is not None
        else (spec.open_loop.rate if spec.open_loop is not None else None),
        "steady_state": (
            report.steady_state.to_dict()
            if report.steady_state is not None
            else None
        ),
    }
    return RunReport(
        mode=spec.mode,
        spec=spec.to_dict(),
        makespan=report.makespan,
        events=sim.engine.events_processed,
        avg_utilization=utilization.average if utilization else None,
        per_dim_utilization=tuple(utilization.per_dim) if utilization else None,
        truncated=report.truncated,
        payload=payload,
        detail=report,
    )


def _run_provisioning(
    spec: ProvisioningScenario,
    context: dict | None = None,
    audit: bool | None = None,
) -> RunReport:
    topology = resolve_topology(spec.topology)
    ctype = CollectiveType.from_name(spec.collective)
    report = assess(topology, tolerance=spec.tolerance, ctype=ctype)
    return RunReport(
        mode=spec.mode,
        spec=spec.to_dict(),
        makespan=0.0,
        events=0,
        payload={
            "topology": report.topology_name,
            "collective": ctype.value,
            "assessments": [
                {
                    "dim_k": a.dim_k,
                    "dim_l": a.dim_l,
                    "ratio": a.ratio,
                    "scenario": a.scenario.value,
                }
                for a in report.assessments
            ],
            "max_utilization": report.max_utilization,
            "baseline_efficient": report.baseline_efficient,
        },
        detail=report,
    )


_RUNNERS = {
    CollectiveScenario: _run_collective,
    TrainingScenario: _run_training,
    ClusterScenario: _run_cluster,
    ProvisioningScenario: _run_provisioning,
}


def run(
    spec: "ScenarioSpec | dict",
    *,
    context: dict | None = None,
    audit: bool | None = None,
) -> RunReport:
    """Run any scenario spec (or its dict form) and report uniformly.

    ``context`` is an optional scratchpad shared across related runs:
    :func:`sweep` passes one per grid so policy-independent intermediate
    results (currently the cluster isolated-JCT baselines) are computed
    once instead of once per point.

    ``audit=True`` enables the runtime invariant auditor
    (:mod:`repro.sim.audit`) for this run; ``None`` (default) defers to the
    ``THEMIS_AUDIT`` environment variable.  Auditing is observer-only — the
    reported timeline is bit-identical with it on or off — and a violated
    invariant raises :class:`~repro.sim.audit.InvariantViolation`.
    """
    if isinstance(spec, dict):
        spec = spec_from_dict(spec)
    runner = _RUNNERS.get(type(spec))
    if runner is None:
        raise SpecError(
            f"no runner for spec type {type(spec).__name__}; "
            f"known: {', '.join(cls.__name__ for cls in _RUNNERS)}"
        )
    start = time.perf_counter()
    report = runner(spec, context, audit)
    report.wall_time = time.perf_counter() - start
    return report


def _run_spec_payload(data: dict, audit: bool | None = None) -> dict:
    """Process-pool worker: run a spec dict, return the report dict."""
    return run(spec_from_dict(data), audit=audit).to_dict()


def _normalize_axes(
    axes: Mapping[Any, Sequence[Any]],
) -> list[tuple[tuple[str, ...], list[Any]]]:
    """Axis keys are dotted field paths; ``"a+b"`` (or a tuple) couples
    fields so their values vary together instead of as a product."""
    normalized: list[tuple[tuple[str, ...], list[Any]]] = []
    for key, values in axes.items():
        fields = tuple(key) if isinstance(key, (tuple, list)) else tuple(
            part.strip() for part in str(key).split("+")
        )
        if not fields or not all(fields):
            raise SpecError(f"bad sweep axis key {key!r}")
        values = list(values)
        if not values:
            raise SpecError(f"sweep axis {key!r} has no values")
        if len(fields) > 1:
            for value in values:
                if not isinstance(value, (tuple, list)) or len(value) != len(fields):
                    raise SpecError(
                        f"coupled axis {key!r} needs {len(fields)}-element "
                        f"values, got {value!r}"
                    )
        normalized.append((fields, values))
    return normalized


def sweep(
    base_spec: "ScenarioSpec | dict",
    axes: Mapping[Any, Sequence[Any]],
    processes: int | None = None,
    audit: bool | None = None,
) -> SweepResult:
    """Run the cartesian grid of ``base_spec`` with ``axes`` overridden.

    ``axes`` maps dotted field paths to value lists (``{"topology": [...],
    "size": [...]}``); a ``"scheduler+policy"`` key varies several fields
    together (each value a tuple).  Points run in deterministic grid order
    — later axes vary fastest — and any seed in the base spec is applied
    verbatim to every point, so grids are reproducible run-to-run and
    point-by-point.

    ``processes > 1`` runs points on a process pool; reports then carry no
    in-memory ``detail`` object (they cross a process boundary), while the
    default in-process path keeps it.  A point whose run hits the spec's
    ``max_events`` budget comes back flagged ``truncated`` rather than
    failing the sweep.
    """
    if isinstance(base_spec, dict):
        base_spec = spec_from_dict(base_spec)
    base = base_spec.to_dict()
    normalized = _normalize_axes(axes)
    # (spec dict, validated spec, overrides record) per grid cell — every
    # point is validated up front so a bad axis value fails before any
    # simulation work runs, and the validated object is reused by the
    # in-process path.
    grid: list[tuple[dict, ScenarioSpec, dict]] = []
    for combo in itertools.product(*(values for _, values in normalized)):
        data = copy.deepcopy(base)
        overrides: dict[str, Any] = {}
        for (fields, _), value in zip(normalized, combo):
            values = value if len(fields) > 1 else (value,)
            for field_path, field_value in zip(fields, values):
                _set_dotted(data, field_path, _plain(field_value))
                overrides[field_path] = field_value
        grid.append((data, spec_from_dict(data), overrides))

    points: list[SweepPoint] = []
    if processes is not None and processes > 1 and len(grid) > 1:
        worker = functools.partial(_run_spec_payload, audit=audit)
        with ProcessPoolExecutor(max_workers=processes) as pool:
            results = list(pool.map(worker, (d for d, _, _ in grid)))
        for (_, _, overrides), result in zip(grid, results):
            points.append(SweepPoint(overrides, RunReport.from_dict(result)))
    else:
        shared_context: dict = {}
        for _, spec, overrides in grid:
            points.append(
                SweepPoint(overrides, run(spec, context=shared_context, audit=audit))
            )
    return SweepResult(base=base, axes=normalized, points=points)
