"""Uniform run reports: one result type for every simulation mode.

Every ``repro.api.run`` call returns a :class:`RunReport` with the same
core — simulated makespan, per-dimension BW utilization, engine event
count, host wall time, a ``truncated`` flag — plus a mode-specific
``payload`` of plain JSON-able values and (for in-process consumers) the
rich ``detail`` object of the underlying subsystem
(:class:`~repro.training.results.TrainingReport`,
:class:`~repro.cluster.ClusterReport`, ...).  ``detail`` is deliberately
excluded from serialization: ``RunReport.from_dict(report.to_dict())``
reconstructs everything a downstream tool needs to plot or compare runs.

:class:`SweepResult` is the grid-runner counterpart: an ordered list of
:class:`SweepPoint` (axis overrides + report), with lookup helpers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from collections.abc import Iterator
from typing import Any

from ..analysis.tables import format_table
from ..errors import SpecError
from ..units import fmt_time

_REPORT_KEYS = (
    "mode", "spec", "makespan", "wall_time", "events",
    "avg_utilization", "per_dim_utilization", "truncated", "payload",
)


@dataclass
class RunReport:
    """What one scenario run produced.

    Attributes
    ----------
    mode:
        The scenario mode that ran (``collective`` / ``training`` /
        ``cluster`` / ``provisioning``).
    spec:
        The spec that produced this report, in ``to_dict`` form.
    makespan:
        Simulated seconds from scenario start to last completion (0.0 for
        the analytic provisioning mode).
    wall_time:
        Host seconds the run took.
    events:
        Discrete events the engine fired (0 for analytic modes).
    avg_utilization / per_dim_utilization:
        The paper's Sec. 3 BW-utilization metric over the comm-active
        window; ``None`` where no network traffic was simulated.
    truncated:
        True when an event budget cut the run short — the metrics then
        describe a *partial* simulation.
    payload:
        Mode-specific plain values (JSON-able).
    detail:
        The underlying subsystem's rich report object; in-memory only.
    """

    mode: str
    spec: dict
    makespan: float
    wall_time: float = 0.0
    events: int = 0
    avg_utilization: "float | None" = None
    per_dim_utilization: "tuple[float, ...] | None" = None
    truncated: bool = False
    payload: dict = field(default_factory=dict)
    detail: Any = field(default=None, repr=False, compare=False)

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "spec": self.spec,
            "makespan": self.makespan,
            "wall_time": self.wall_time,
            "events": self.events,
            "avg_utilization": self.avg_utilization,
            "per_dim_utilization": (
                list(self.per_dim_utilization)
                if self.per_dim_utilization is not None
                else None
            ),
            "truncated": self.truncated,
            "payload": self.payload,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "RunReport":
        if not isinstance(data, dict):
            raise SpecError(f"report must be a dict, got {type(data)}")
        unknown = sorted(set(data) - set(_REPORT_KEYS))
        if unknown:
            raise SpecError(f"unknown report keys: {', '.join(unknown)}")
        per_dim = data.get("per_dim_utilization")
        return cls(
            mode=str(data["mode"]),
            spec=dict(data.get("spec") or {}),
            makespan=float(data["makespan"]),
            wall_time=float(data.get("wall_time", 0.0)),
            events=int(data.get("events", 0)),
            avg_utilization=data.get("avg_utilization"),
            per_dim_utilization=tuple(per_dim) if per_dim is not None else None,
            truncated=bool(data.get("truncated", False)),
            payload=dict(data.get("payload") or {}),
        )

    def describe(self) -> str:
        """Human-readable summary; the rich detail's own renderer when present."""
        lines = [
            f"[{self.mode}] makespan {fmt_time(self.makespan)}, "
            f"{self.events} events, wall {self.wall_time:.3f}s"
            + (" [TRUNCATED]" if self.truncated else "")
        ]
        if self.avg_utilization is not None:
            per_dim = ""
            if self.per_dim_utilization:
                per_dim = " [" + ", ".join(
                    f"dim{i + 1}={u:.1%}"
                    for i, u in enumerate(self.per_dim_utilization)
                ) + "]"
            lines.append(f"  avg BW utilization {self.avg_utilization:.1%}{per_dim}")
        if self.detail is not None and hasattr(self.detail, "describe"):
            lines.append(self.detail.describe())
        return "\n".join(lines)


@dataclass
class SweepPoint:
    """One grid cell: which axis values produced which report."""

    overrides: dict[str, Any]
    report: RunReport

    def matches(self, **criteria: Any) -> bool:
        return all(self.overrides.get(key) == value for key, value in criteria.items())


@dataclass
class SweepResult:
    """All grid cells of one sweep, in deterministic grid order."""

    base: dict
    axes: list[tuple[tuple[str, ...], list[Any]]]
    points: list[SweepPoint] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[SweepPoint]:
        return iter(self.points)

    @property
    def reports(self) -> list[RunReport]:
        return [point.report for point in self.points]

    def select(self, **criteria: Any) -> list[SweepPoint]:
        """Points whose overrides match every ``field=value`` criterion."""
        return [point for point in self.points if point.matches(**criteria)]

    def find(self, **criteria: Any) -> SweepPoint:
        """The unique point matching the criteria (raises otherwise)."""
        matches = self.select(**criteria)
        if len(matches) != 1:
            raise KeyError(
                f"criteria {criteria!r} matched {len(matches)} sweep points"
            )
        return matches[0]

    @property
    def truncated_points(self) -> list[SweepPoint]:
        """Grid cells whose run hit an event budget (partial results)."""
        return [point for point in self.points if point.report.truncated]

    def to_dict(self) -> dict:
        return {
            "base": self.base,
            "axes": [
                {"fields": list(fields), "values": values}
                for fields, values in self.axes
            ],
            "points": [
                {"overrides": point.overrides, "report": point.report.to_dict()}
                for point in self.points
            ],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """Axis values + headline numbers per grid cell, as a table."""
        axis_fields = [f for fields, _ in self.axes for f in fields]
        rows = []
        for point in self.points:
            row = [str(point.overrides.get(f)) for f in axis_fields]
            report = point.report
            row.append(
                fmt_time(report.makespan)
                + (" (trunc)" if report.truncated else "")
            )
            row.append(
                f"{report.avg_utilization:.1%}"
                if report.avg_utilization is not None
                else "-"
            )
            rows.append(tuple(row))
        headers = axis_fields + ["makespan", "avg util"]
        table = format_table(headers, rows, [str] * len(headers))
        summary = f"{len(self.points)} run(s)"
        truncated = len(self.truncated_points)
        if truncated:
            summary += f", {truncated} truncated by event budget"
        return f"sweep over {', '.join(axis_fields)}: {summary}\n{table}"
