"""Declarative scenario specs: one serializable description per run mode.

A :class:`ScenarioSpec` names everything a simulation run needs by
**registry key** (topology preset, workload, scheduler, intra-dimension
policy, fairness policy — see ``repro.api.registry``) plus plain scalars,
so a complete experiment configuration is a small JSON document:

* lossless round trip — ``from_dict(to_dict(spec)) == spec`` for every
  scenario type, through JSON included;
* versioned schema — every serialized spec carries ``"schema"``; newer
  documents are rejected with a clear upgrade message;
* strict validation — unknown keys raise :class:`SpecError` with a
  did-you-mean hint, registry keys are checked at construction time;
* dotted overrides — ``spec.with_overrides({"trace.seed": "3"})`` rebuilds
  a spec with nested fields replaced (the CLI's ``--set``, and the axis
  mechanism of :func:`repro.api.sweep`).

Custom components stay expressible: a topology may be an inline dict (the
``repro.topology.serialization`` schema) instead of a preset name, and a
workload an inline dict (``repro.workloads.serialization``) instead of a
registry key — both serialize with the spec.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, ClassVar

from ..collectives.types import CollectiveType
from ..errors import CollectiveError, SpecError
from ..topology import Topology, topology_from_dict, topology_to_dict
from ..units import GB, parse_size
from ..workloads import Workload, get_workload, workload_from_dict
from .registry import did_you_mean, validate_key

#: Version stamped into every serialized spec.  Bump when a field changes
#: meaning; loaders reject documents newer than what they understand.
SCHEMA_VERSION = 1


# --- shared helpers ---------------------------------------------------------
def _check_schema(data: dict, where: str) -> None:
    version = data.get("schema", SCHEMA_VERSION)
    if not isinstance(version, int) or version < 1:
        raise SpecError(f"{where}: bad schema version {version!r}")
    if version > SCHEMA_VERSION:
        raise SpecError(
            f"{where}: schema version {version} is newer than the supported "
            f"{SCHEMA_VERSION}; upgrade the library to load this spec"
        )


def _known_fields(cls: type) -> tuple[str, ...]:
    return tuple(f.name for f in dataclasses.fields(cls))


def _reject_unknown(cls: type, data: dict, where: str) -> dict:
    """Drop envelope keys, reject unknown ones with a did-you-mean hint."""
    payload = dict(data)
    payload.pop("schema", None)
    payload.pop("mode", None)
    known = _known_fields(cls)
    unknown = sorted(set(payload) - set(known))
    if unknown:
        hints = "".join(
            f"\n  {key!r}{did_you_mean(key, known)}" for key in unknown
        )
        raise SpecError(
            f"{where}: unknown key(s):{hints}\n  known: {', '.join(known)}"
        )
    return payload


def _size_bytes(value: Any, field_name: str) -> float:
    """Byte counts may be written as numbers or strings like ``"100MB"``."""
    if isinstance(value, str):
        value = parse_size(value)
    size = float(value)
    if size <= 0:
        raise SpecError(f"{field_name} must be positive, got {size}")
    return size


def _validate_collective(key: str) -> str:
    """Collective keys go through ``CollectiveType.from_name`` so the short
    aliases (``ar``/``rs``/``ag``/``a2a``) stay valid in specs and CLIs."""
    try:
        CollectiveType.from_name(key)
    except CollectiveError:
        from .registry import COLLECTIVE_KEYS

        raise SpecError(
            f"unknown collective key {key!r}"
            f"{did_you_mean(key, COLLECTIVE_KEYS)}; "
            f"known: {', '.join(COLLECTIVE_KEYS)} (or ar/rs/ag/a2a)"
        ) from None
    return key


def _validate_backend(
    backend: "str | None",
    backend_options: "dict | None",
    *,
    ideal_network: bool = False,
    where: str,
) -> Any:
    """Resolve + capability-check a scenario's network backend fields.

    Returns the backend implementation (its capability flags drive the
    caller's combination checks).  ``backend_options`` go through the
    backend's own validator, so a packet-option typo is a load-time
    :class:`SpecError` with the backend's did-you-mean hint.
    """
    from ..errors import ConfigError
    from ..sim.backends import get_backend, resolve_backend_key

    if backend is not None:
        validate_key("backend", backend)
    if ideal_network and backend not in (None, "ideal"):
        raise SpecError(
            f"{where}: ideal_network=true conflicts with "
            f"backend={backend!r}; ideal_network is an alias for "
            "backend='ideal'"
        )
    impl = get_backend(resolve_backend_key(backend, ideal_network=ideal_network))
    if backend_options:
        try:
            impl.validate_options(backend_options)
        except ConfigError as error:
            raise SpecError(f"{where}: backend_options: {error}") from None
    return impl


def _validate_topology(value: Any) -> Any:
    """A topology is a preset key or an inline serialized dict."""
    if isinstance(value, Topology):  # convenience: accept live objects
        return topology_to_dict(value)
    if isinstance(value, dict):
        topology_from_dict(value)  # validation only
        return dict(value)
    validate_key("topology", str(value))
    return str(value)


def _validate_workload(value: Any, args: dict) -> Any:
    """A workload is a registry key (+ args) or an inline serialized dict."""
    if isinstance(value, Workload):  # convenience: accept live objects
        from ..workloads import workload_to_dict

        value = workload_to_dict(value)
    if isinstance(value, dict):
        if args:
            raise SpecError("workload_args only apply to registry-key workloads")
        workload_from_dict(value)  # validation only
        return dict(value)
    validate_key("workload", str(value))
    return str(value)


def resolve_topology(value: "str | dict") -> Topology:
    """Build the :class:`Topology` a spec's topology field names."""
    if isinstance(value, dict):
        return topology_from_dict(value)
    from .registry import resolve

    return resolve("topology", value)


def resolve_workload(value: "str | dict", args: dict | None = None) -> Workload:
    """Build the :class:`Workload` a spec's workload field names."""
    if isinstance(value, dict):
        return workload_from_dict(value)
    return get_workload(value, **(args or {}))


def parse_cli_value(text: str) -> Any:
    """``--set``/axis values: JSON when it parses, bare string otherwise."""
    try:
        return json.loads(text)
    except (json.JSONDecodeError, TypeError):
        return text


def _set_dotted(data: Any, path: str, value: Any) -> None:
    """Set ``a.b.0.c``-style paths inside nested dict/list structures."""
    parts = path.split(".")
    target = data
    for depth, part in enumerate(parts[:-1]):
        if isinstance(target, list):
            try:
                target = target[int(part)]
            except (ValueError, IndexError):
                raise SpecError(
                    f"override path {path!r}: {part!r} is not a valid index "
                    f"into a list of {len(target)}"
                ) from None
        elif isinstance(target, dict):
            if part not in target:
                raise SpecError(
                    f"override path {path!r}: unknown key {part!r}"
                    f"{did_you_mean(part, tuple(target))}"
                )
            if target[part] is None:
                # Vivify optional dict-valued fields (e.g. a null
                # ``backend_options``) so ``--set backend_options.mtu_bytes``
                # works without first setting the whole container.
                target[part] = {}
            target = target[part]
        else:
            prefix = ".".join(parts[:depth])
            raise SpecError(
                f"override path {path!r}: {prefix!r} is a scalar, cannot "
                f"descend into it"
            )
    last = parts[-1]
    if isinstance(target, list):
        try:
            target[int(last)] = value
        except (ValueError, IndexError):
            raise SpecError(
                f"override path {path!r}: {last!r} is not a valid index "
                f"into a list of {len(target)}"
            ) from None
    elif isinstance(target, dict):
        target[last] = value
    else:
        raise SpecError(f"override path {path!r} does not land in a container")


# --- base class -------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """Common (de)serialization surface of every scenario type."""

    #: Dispatch key stored in serialized documents.
    mode: ClassVar[str] = "abstract"

    def to_dict(self) -> dict:
        """Plain-dict form: ``{"schema": ..., "mode": ..., <fields>}``."""
        data: dict = {"schema": SCHEMA_VERSION, "mode": self.mode}
        for f in dataclasses.fields(self):
            data[f.name] = _plain(getattr(self, f.name))
        return data

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path: "str | Path") -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        if not isinstance(data, dict):
            raise SpecError(f"{cls.__name__}: spec must be a dict, got {type(data)}")
        _check_schema(data, cls.__name__)
        declared = data.get("mode", cls.mode)
        if declared != cls.mode:
            raise SpecError(
                f"{cls.__name__} cannot load a {declared!r} spec "
                f"(expected mode {cls.mode!r})"
            )
        payload = _reject_unknown(cls, data, cls.__name__)
        return cls(**cls._convert(payload))

    @classmethod
    def _convert(cls, payload: dict) -> dict:
        """Hook: coerce JSON-plain values back into field types."""
        return payload

    def with_overrides(self, overrides: dict[str, Any]) -> "ScenarioSpec":
        """Copy with dotted-path overrides applied and re-validated.

        String values are parsed as JSON when possible (``"3"`` -> 3,
        ``"null"`` -> None) and kept as strings otherwise, which is exactly
        the CLI ``--set dotted.key=value`` behavior.
        """
        data = self.to_dict()
        for path, value in overrides.items():
            if isinstance(value, str):
                value = parse_cli_value(value)
            _set_dotted(data, path, _plain(value))
        return type(self).from_dict(data)


def _plain(value: Any) -> Any:
    """Recursively convert spec values to JSON-plain python."""
    if isinstance(value, ScenarioSpec) or dataclasses.is_dataclass(value):
        inner = {
            f.name: _plain(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return inner
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    if isinstance(value, dict):
        return {key: _plain(item) for key, item in value.items()}
    return value


# --- nested cluster pieces --------------------------------------------------
@dataclass(frozen=True)
class ScenarioJob:
    """One cluster job, serializable (mirrors :class:`repro.cluster.JobSpec`).

    ``workload`` is a registry key (optionally parameterized via
    ``workload_args``) or an inline workload dict.
    """

    name: str
    workload: "str | dict" = "resnet-152"
    workload_args: dict = field(default_factory=dict)
    arrival_time: float = 0.0
    scheduler: str = "themis"
    iterations: int = 1
    dim_indices: "tuple[int, ...] | None" = None
    priority: int = 0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("job name must be non-empty")
        object.__setattr__(self, "workload_args", dict(self.workload_args))
        object.__setattr__(
            self, "workload", _validate_workload(self.workload, self.workload_args)
        )
        validate_key("scheduler", self.scheduler)
        if self.iterations < 1:
            raise SpecError(
                f"job {self.name!r}: need >= 1 iterations, got {self.iterations}"
            )
        if self.weight <= 0:
            raise SpecError(
                f"job {self.name!r}: weight must be positive, got {self.weight}"
            )
        if self.arrival_time < 0:
            raise SpecError(
                f"job {self.name!r}: arrival time must be >= 0, "
                f"got {self.arrival_time}"
            )
        if self.dim_indices is not None:
            object.__setattr__(
                self, "dim_indices", tuple(int(i) for i in self.dim_indices)
            )

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioJob":
        payload = _reject_unknown(cls, data, "ScenarioJob")
        return cls(**payload)

    @classmethod
    def from_jobspec(cls, spec: Any) -> "ScenarioJob":
        """Serializable form of a live :class:`~repro.cluster.JobSpec`.

        Registry-keyed workloads stay keys; workload *instances* are
        inlined losslessly via ``workload_to_dict``.
        """
        workload = spec.workload
        if not isinstance(workload, str):
            from ..workloads import workload_to_dict

            workload = workload_to_dict(workload)
        return cls(
            name=spec.name,
            workload=workload,
            arrival_time=spec.arrival_time,
            scheduler=spec.scheduler,
            iterations=spec.iterations,
            dim_indices=spec.dim_indices,
            priority=spec.priority,
            weight=spec.weight,
        )

    def to_jobspec(self) -> "Any":
        """The runnable :class:`~repro.cluster.JobSpec` this entry names."""
        from ..cluster import JobSpec

        workload: "str | Workload" = (
            resolve_workload(self.workload, self.workload_args)
            if self.workload_args or isinstance(self.workload, dict)
            else self.workload
        )
        return JobSpec(
            name=self.name,
            workload=workload,
            arrival_time=self.arrival_time,
            scheduler=self.scheduler,
            iterations=self.iterations,
            dim_indices=self.dim_indices,
            priority=self.priority,
            weight=self.weight,
        )


@dataclass(frozen=True)
class PoissonTrace:
    """A generated Poisson arrival trace (see :func:`repro.cluster.poisson_trace`).

    ``interarrival`` is the mean gap in **seconds**; ``schedulers`` is
    cycled across jobs; the trace is fully determined by ``seed``.
    """

    workloads: tuple[str, ...] = ("dlrm", "resnet-152", "gnmt")
    interarrival: float = 2e-3
    seed: int = 0
    schedulers: tuple[str, ...] = ("themis",)
    iterations: int = 1
    start_time: float = 0.0
    jobs: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "workloads", tuple(str(w) for w in self.workloads)
        )
        object.__setattr__(
            self, "schedulers", tuple(str(s) for s in self.schedulers)
        )
        if not self.workloads:
            raise SpecError("a trace needs at least one workload")
        for name in self.workloads:
            validate_key("workload", name)
        if not self.schedulers:
            raise SpecError("a trace needs at least one scheduler")
        for name in self.schedulers:
            validate_key("scheduler", name)
        if self.interarrival <= 0:
            raise SpecError(
                f"mean interarrival must be positive, got {self.interarrival}"
            )
        if self.iterations < 1:
            raise SpecError(f"need >= 1 iterations, got {self.iterations}")
        if self.jobs is not None and self.jobs < 1:
            raise SpecError(f"need >= 1 jobs, got {self.jobs}")

    @classmethod
    def from_dict(cls, data: dict) -> "PoissonTrace":
        payload = _reject_unknown(cls, data, "PoissonTrace")
        return cls(**payload)

    def to_jobs(self) -> list:
        """Draw the deterministic job list this trace describes.

        ``jobs`` (when set) rotates ``workloads`` up to that count;
        otherwise one job per workload entry.
        """
        from ..cluster import poisson_trace

        names = list(self.workloads)
        if self.jobs is not None:
            names = [names[i % len(names)] for i in range(self.jobs)]
        return poisson_trace(
            names,
            self.interarrival,
            seed=self.seed,
            schedulers=self.schedulers,
            iterations=self.iterations,
            start_time=self.start_time,
        )


@dataclass(frozen=True)
class OpenLoopTrace:
    """A generated open-loop arrival trace (see :func:`repro.cluster.open_loop_trace`).

    Exactly one of ``rate`` (arrivals per second) or ``target_rho``
    (offered load; the runner calibrates the rate from the mix's mean
    isolated service time and the scenario's ``max_concurrent`` slots)
    sets the arrival intensity.  ``mix`` holds the
    :class:`~repro.cluster.JobMix` knobs (elephant/mouse shapes,
    bounded-Pareto tails) as a nested mapping; ``process`` selects the
    arrival process (``"poisson"``, ``"bursty"``, ``"diurnal"``).  The
    trace is fully determined by ``seed``.
    """

    rate: "float | None" = None
    target_rho: "float | None" = None
    #: Service slots the target-rho calibration divides load across.
    #: ``None`` uses the scenario's ``max_concurrent``.  Comm-bound mixes
    #: on one shared network have aggregate capacity of about *one*
    #: network regardless of admission slots — set ``calibration_slots=1``
    #: there so ``target_rho`` means load against the network, not
    #: against the (memory-bounding) concurrency cap.
    calibration_slots: "int | None" = None
    duration: "float | None" = 0.5
    max_jobs: "int | None" = None
    process: str = "poisson"
    seed: int = 0
    schedulers: tuple[str, ...] = ("themis",)
    start_time: float = 0.0
    mix: Any = None
    rate_amplitude: float = 0.5
    rate_period: float = 0.25
    burst_on: float = 0.05
    burst_off: float = 0.05
    burst_ratio: float = 4.0
    name_prefix: str = "oj"

    def __post_init__(self) -> None:
        from ..cluster import ARRIVAL_PROCESSES, JobMix
        from ..errors import ConfigError

        if (self.rate is None) == (self.target_rho is None):
            raise SpecError(
                "an open-loop trace needs exactly one of 'rate' or "
                "'target_rho'"
            )
        if self.rate is not None and self.rate <= 0:
            raise SpecError(f"arrival rate must be positive, got {self.rate}")
        if self.target_rho is not None and self.target_rho <= 0:
            raise SpecError(
                f"target_rho must be positive, got {self.target_rho}"
            )
        if self.calibration_slots is not None:
            if self.target_rho is None:
                raise SpecError("calibration_slots only applies to target_rho")
            if self.calibration_slots < 1:
                raise SpecError(
                    f"calibration_slots must be >= 1, "
                    f"got {self.calibration_slots}"
                )
        if self.duration is None and self.max_jobs is None:
            raise SpecError(
                "an open-loop trace needs 'duration' and/or 'max_jobs'"
            )
        if self.duration is not None and self.duration <= 0:
            raise SpecError(f"duration must be positive, got {self.duration}")
        if self.max_jobs is not None and self.max_jobs < 1:
            raise SpecError(f"max_jobs must be >= 1, got {self.max_jobs}")
        if self.process not in ARRIVAL_PROCESSES:
            raise SpecError(
                f"unknown arrival process {self.process!r}"
                f"{did_you_mean(self.process, ARRIVAL_PROCESSES)}; "
                f"known: {', '.join(ARRIVAL_PROCESSES)}"
            )
        object.__setattr__(
            self, "schedulers", tuple(str(s) for s in self.schedulers)
        )
        if not self.schedulers:
            raise SpecError("a trace needs at least one scheduler")
        for name in self.schedulers:
            validate_key("scheduler", name)
        if self.start_time < 0:
            raise SpecError(
                f"start_time must be >= 0, got {self.start_time}"
            )
        mix = self.mix
        if mix is None:
            mix = JobMix()
        elif isinstance(mix, dict):
            payload = _reject_unknown(JobMix, mix, "OpenLoopTrace.mix")
            try:
                mix = JobMix(**payload)
            except ConfigError as error:
                raise SpecError(f"OpenLoopTrace.mix: {error}") from None
        elif not isinstance(mix, JobMix):
            raise SpecError(
                f"mix must be a JobMix or a mapping of its fields, "
                f"got {type(mix).__name__}"
            )
        object.__setattr__(self, "mix", mix)
        # The generator re-validates the modulation/burst knobs; checking
        # here too turns a bad spec into a SpecError at load time.
        if not 0.0 <= self.rate_amplitude <= 1.0:
            raise SpecError(
                f"rate_amplitude must be in [0, 1], got {self.rate_amplitude}"
            )
        for label, value in (
            ("rate_period", self.rate_period),
            ("burst_on", self.burst_on),
            ("burst_off", self.burst_off),
        ):
            if value <= 0:
                raise SpecError(f"{label} must be positive, got {value}")
        if self.burst_ratio < 1.0:
            raise SpecError(
                f"burst_ratio must be >= 1, got {self.burst_ratio}"
            )

    @classmethod
    def from_dict(cls, data: dict) -> "OpenLoopTrace":
        payload = _reject_unknown(cls, data, "OpenLoopTrace")
        return cls(**payload)

    def to_jobs(self, rate: "float | None" = None) -> list:
        """Draw the deterministic job list this trace describes.

        ``rate`` supplies the calibrated arrival rate for ``target_rho``
        traces (the runner computes it from the mix's mean isolated
        service time); explicit-``rate`` traces ignore it.
        """
        from ..cluster import open_loop_trace

        resolved = self.rate if self.rate is not None else rate
        if resolved is None:
            raise SpecError(
                "a target_rho trace needs a calibrated rate; run it through "
                "repro.api.run (or pass rate= to to_jobs)"
            )
        return open_loop_trace(
            rate=resolved,
            duration=self.duration,
            max_jobs=self.max_jobs,
            mix=self.mix,
            process=self.process,
            seed=self.seed,
            schedulers=self.schedulers,
            start_time=self.start_time,
            rate_amplitude=self.rate_amplitude,
            rate_period=self.rate_period,
            burst_on=self.burst_on,
            burst_off=self.burst_off,
            burst_ratio=self.burst_ratio,
            name_prefix=self.name_prefix,
        )


@dataclass(frozen=True)
class FaultSpec:
    """Fault-injection description: link degradation plus job crashes.

    The network side composes three sources into one deterministic
    :class:`~repro.sim.FaultSchedule` — explicit timed ``links`` events,
    generated transient ``flap_dims`` flaps, and persistent
    ``straggler_dims`` stragglers (both generators draw from disjoint
    per-dimension substreams of ``seed``).  The job side (``crash_rate``
    and the retry/checkpoint knobs) becomes a
    :class:`~repro.sim.JobFaultPolicy`; ``crash_rate=None`` leaves jobs
    crash-free.  Cluster scenarios accept the full spec; training
    scenarios accept the link half only.
    """

    #: Explicit timed events: mappings of :class:`~repro.sim.LinkFault`
    #: fields (``dim_index``, ``start``, ``factor``, ``duration``, ``label``).
    links: tuple = ()
    #: Dimensions given generated transient flaps.
    flap_dims: tuple = ()
    flap_count: int = 2
    flap_factor: float = 0.5
    flap_mean_interval: float = 0.01
    flap_mean_duration: float = 0.005
    #: Dimensions given persistent stragglers.
    straggler_dims: tuple = ()
    straggler_factor: float = 0.5
    straggler_probability: float = 1.0
    #: Master seed of the flap/straggler/crash substreams.
    seed: int = 0
    #: Per-job crash hazard (crashes per simulated second); ``None``
    #: disables job failures entirely.
    crash_rate: "float | None" = None
    max_retries: int = 3
    backoff_base: float = 1e-3
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5
    checkpoint_iterations: "int | None" = None
    restart_overhead: float = 0.0

    def __post_init__(self) -> None:
        from ..errors import ConfigError
        from ..sim.faults import LinkFault

        try:
            object.__setattr__(
                self,
                "links",
                tuple(
                    event
                    if isinstance(event, LinkFault)
                    else LinkFault(**dict(event))
                    for event in self.links
                ),
            )
        except (ConfigError, TypeError) as error:
            raise SpecError(f"FaultSpec.links: {error}") from None
        for name in ("flap_dims", "straggler_dims"):
            dims = getattr(self, name)
            object.__setattr__(self, name, tuple(int(d) for d in dims))
            if any(d < 0 for d in getattr(self, name)):
                raise SpecError(f"FaultSpec.{name}: dimensions must be >= 0")
        for label, value in (
            ("flap_factor", self.flap_factor),
            ("straggler_factor", self.straggler_factor),
        ):
            if not 0.0 <= value <= 1.0:
                raise SpecError(
                    f"FaultSpec.{label} must be in [0, 1], got {value}"
                )
        if self.flap_count < 0:
            raise SpecError(
                f"FaultSpec.flap_count must be >= 0, got {self.flap_count}"
            )
        for label, value in (
            ("flap_mean_interval", self.flap_mean_interval),
            ("flap_mean_duration", self.flap_mean_duration),
        ):
            if value <= 0:
                raise SpecError(
                    f"FaultSpec.{label} must be positive, got {value}"
                )
        if not 0.0 <= self.straggler_probability <= 1.0:
            raise SpecError(
                f"FaultSpec.straggler_probability must be in [0, 1], "
                f"got {self.straggler_probability}"
            )
        if self.crash_rate is not None:
            # Construct the policy once here so a bad retry/backoff knob is
            # a SpecError at load time, not a ConfigError mid-run.
            try:
                self._to_policy()
            except ConfigError as error:
                raise SpecError(f"FaultSpec: {error}") from None

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        payload = _reject_unknown(cls, data, "FaultSpec")
        return cls(**payload)

    def _to_policy(self) -> "Any":
        from ..sim.faults import JobFaultPolicy

        assert self.crash_rate is not None
        return JobFaultPolicy(
            crash_rate=self.crash_rate,
            max_retries=self.max_retries,
            backoff_base=self.backoff_base,
            backoff_factor=self.backoff_factor,
            backoff_jitter=self.backoff_jitter,
            checkpoint_iterations=self.checkpoint_iterations,
            restart_overhead=self.restart_overhead,
            seed=self.seed,
        )

    def to_runtime(self) -> "tuple[Any, Any]":
        """The runnable ``(FaultSchedule | None, JobFaultPolicy | None)``."""
        from ..sim.faults import FaultSchedule

        schedule = FaultSchedule(self.links)
        if self.flap_dims:
            schedule = schedule + FaultSchedule.flaps(
                self.flap_dims,
                seed=self.seed,
                count=self.flap_count,
                factor=self.flap_factor,
                mean_interval=self.flap_mean_interval,
                mean_duration=self.flap_mean_duration,
            )
        if self.straggler_dims:
            schedule = schedule + FaultSchedule.stragglers(
                self.straggler_dims,
                seed=self.seed,
                factor=self.straggler_factor,
                probability=self.straggler_probability,
            )
        policy = self._to_policy() if self.crash_rate is not None else None
        return (schedule if schedule else None, policy)


# --- the four scenario types ------------------------------------------------
@dataclass(frozen=True)
class CollectiveScenario(ScenarioSpec):
    """One collective on one topology under one scheduler configuration."""

    mode: ClassVar[str] = "collective"

    topology: "str | dict" = "3D-SW_SW_SW_homo"
    collective: str = "allreduce"
    size: float = GB
    chunks: int = 64
    scheduler: str = "themis"
    policy: str = "SCF"
    max_events: "int | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "topology", _validate_topology(self.topology))
        object.__setattr__(self, "size", _size_bytes(self.size, "size"))
        _validate_collective(self.collective)
        validate_key("scheduler", self.scheduler)
        validate_key("policy", self.policy)
        if self.chunks < 1:
            raise SpecError(f"chunks must be >= 1, got {self.chunks}")
        if self.max_events is not None and self.max_events < 1:
            raise SpecError(f"max_events must be >= 1, got {self.max_events}")


@dataclass(frozen=True)
class TrainingScenario(ScenarioSpec):
    """Training iterations of one workload on one (private) platform."""

    mode: ClassVar[str] = "training"

    workload: "str | dict" = "resnet-152"
    workload_args: dict = field(default_factory=dict)
    topology: "str | dict" = "3D-SW_SW_SW_homo"
    scheduler: str = "themis"
    policy: str = "SCF"
    ideal_network: bool = False
    iterations: int = 1
    overlap_dp: bool = True
    dp_bucket_bytes: "float | None" = None
    chunks: int = 64
    #: Link-degradation schedule for the private network.  Job-crash knobs
    #: (``crash_rate``) are a cluster concept and rejected here.
    faults: "FaultSpec | None" = None
    #: Network-fidelity backend key (``None`` = the analytical default;
    #: ``ideal_network: true`` is the legacy alias for ``"ideal"``).
    backend: "str | None" = None
    #: Backend-specific knobs (e.g. the packet backend's ``mtu_bytes``).
    backend_options: "dict | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "workload_args", dict(self.workload_args))
        if isinstance(self.faults, dict):  # convenience: accept dicts
            object.__setattr__(self, "faults", FaultSpec.from_dict(self.faults))
        if self.backend_options is not None:
            object.__setattr__(
                self, "backend_options", dict(self.backend_options)
            )
        impl = _validate_backend(
            self.backend,
            self.backend_options,
            ideal_network=self.ideal_network,
            where="TrainingScenario",
        )
        if self.faults is not None:
            if self.faults.crash_rate is not None:
                raise SpecError(
                    "a training scenario runs one job to completion; "
                    "faults.crash_rate only applies to cluster scenarios"
                )
            if not impl.supports_faults:
                raise SpecError(
                    f"the {impl.key!r} backend has no links to degrade; "
                    "remove 'faults' or use a fault-capable backend"
                )
        object.__setattr__(
            self, "workload", _validate_workload(self.workload, self.workload_args)
        )
        object.__setattr__(self, "topology", _validate_topology(self.topology))
        validate_key("scheduler", self.scheduler)
        validate_key("policy", self.policy)
        if self.dp_bucket_bytes is not None:
            object.__setattr__(
                self,
                "dp_bucket_bytes",
                _size_bytes(self.dp_bucket_bytes, "dp_bucket_bytes"),
            )
        if self.iterations < 1:
            raise SpecError(f"need >= 1 iterations, got {self.iterations}")
        if self.chunks < 1:
            raise SpecError(f"chunks must be >= 1, got {self.chunks}")


@dataclass(frozen=True)
class ClusterScenario(ScenarioSpec):
    """N training jobs contending on one shared network.

    Exactly one of ``jobs`` (explicit), ``trace`` (generated Poisson
    arrivals), or ``open_loop`` (seeded open-loop arrival workload with
    heavy-tailed job mixes) describes the job population.  The
    ``max_concurrent`` / ``warmup_time`` / ``measure_time`` /
    ``outcome_cap`` knobs add admission control and a steady-state
    measurement window (see :class:`~repro.cluster.ClusterConfig`) — open
    loop in the arrivals, bounded in memory, measured past the warm-up
    transient.  ``fairness_weights`` /
    ``fairness_weights_by_dim`` parameterize the ``"weighted"`` policy:
    the former overrides a job's scalar weight, the latter gives a job a
    *different* share per dimension (``{job: {dim index: weight}}``).
    ``placement`` names the placement policy assigning each arriving job
    its dimension subset (``"manual"``, ``"all-dims"``,
    ``"load-balanced"``, ``"interleaved"``, or anything registered);
    ``None`` keeps the default hand placement from each job's
    ``dim_indices``.
    """

    mode: ClassVar[str] = "cluster"

    topology: "str | dict" = "3D-SW_SW_SW_homo"
    jobs: tuple[ScenarioJob, ...] = ()
    trace: "PoissonTrace | None" = None
    open_loop: "OpenLoopTrace | None" = None
    fairness: "str | None" = None
    placement: "str | None" = None
    fairness_weights: "dict[str, float] | None" = None
    fairness_weights_by_dim: "dict[str, dict[int, float]] | None" = None
    policy: str = "SCF"
    chunks: int = 64
    overlap_dp: bool = True
    dp_bucket_bytes: "float | None" = None
    isolated_baselines: bool = True
    record_ops: bool = False
    max_events: "int | None" = None
    max_concurrent: "int | None" = None
    warmup_time: float = 0.0
    measure_time: "float | None" = None
    outcome_cap: "int | None" = None
    isolated_per_iteration: bool = False
    convergence_epochs: int = 8
    #: Fault injection: link degradation schedule and/or job crash policy
    #: (``None`` = healthy network, crash-free jobs).
    faults: "FaultSpec | None" = None
    #: Network-fidelity backend key (``None`` = the analytical default).
    backend: "str | None" = None
    #: Backend-specific knobs (e.g. the packet backend's ``mtu_bytes``).
    backend_options: "dict | None" = None

    def __post_init__(self) -> None:
        from collections import Counter

        object.__setattr__(self, "topology", _validate_topology(self.topology))
        object.__setattr__(self, "jobs", tuple(self.jobs))
        if isinstance(self.open_loop, dict):  # convenience: accept dicts
            object.__setattr__(
                self, "open_loop", OpenLoopTrace.from_dict(self.open_loop)
            )
        if isinstance(self.trace, dict):
            object.__setattr__(
                self, "trace", PoissonTrace.from_dict(self.trace)
            )
        if isinstance(self.faults, dict):
            object.__setattr__(self, "faults", FaultSpec.from_dict(self.faults))
        populations = (
            bool(self.jobs)
            + (self.trace is not None)
            + (self.open_loop is not None)
        )
        if populations != 1:
            raise SpecError(
                "a cluster scenario needs exactly one of 'jobs', 'trace', "
                "or 'open_loop'"
            )
        duplicates = sorted(
            name
            for name, count in Counter(job.name for job in self.jobs).items()
            if count > 1
        )
        if duplicates:
            raise SpecError(f"duplicate job names: {', '.join(duplicates)}")
        if (
            self.open_loop is not None
            and self.open_loop.target_rho is not None
            and self.max_concurrent is None
            and self.open_loop.calibration_slots is None
        ):
            raise SpecError(
                "open_loop.target_rho needs max_concurrent (or "
                "open_loop.calibration_slots): offered load is defined "
                "against a fixed number of service slots"
            )
        if self.max_concurrent is not None and self.max_concurrent < 1:
            raise SpecError(
                f"max_concurrent must be >= 1, got {self.max_concurrent}"
            )
        if self.warmup_time < 0:
            raise SpecError(
                f"warmup_time must be >= 0, got {self.warmup_time}"
            )
        if self.measure_time is not None and self.measure_time <= 0:
            raise SpecError(
                f"measure_time must be positive, got {self.measure_time}"
            )
        if self.warmup_time > 0 and self.measure_time is None:
            raise SpecError("warmup_time requires measure_time")
        if self.outcome_cap is not None and self.outcome_cap < 0:
            raise SpecError(
                f"outcome_cap must be >= 0, got {self.outcome_cap}"
            )
        if self.convergence_epochs < 1:
            raise SpecError(
                f"convergence_epochs must be >= 1, got {self.convergence_epochs}"
            )
        if self.backend_options is not None:
            object.__setattr__(
                self, "backend_options", dict(self.backend_options)
            )
        impl = _validate_backend(
            self.backend, self.backend_options, where="ClusterScenario"
        )
        if not impl.supports_cluster:
            raise SpecError(
                f"the {impl.key!r} backend cannot run a shared multi-job "
                "cluster; use 'analytical', 'fluid', or 'packet'"
            )
        if self.fairness is not None:
            validate_key("fairness", self.fairness)
            if not impl.supports_sharing:
                from ..cluster.fairness import get_fairness

                policy = get_fairness(self.fairness)
                if policy is not None and policy.requires_sharing:
                    raise SpecError(
                        f"fairness={self.fairness!r} needs the network's "
                        "weighted-sharing/preemption hooks, which the "
                        f"{impl.key!r} backend does not provide (FIFO "
                        "wire); use backend='analytical'"
                    )
        if self.placement is not None:
            validate_key("placement", self.placement)
        weighted = self.fairness == "weighted"
        if self.fairness_weights is not None:
            if not weighted:
                raise SpecError(
                    "fairness_weights requires fairness='weighted', "
                    f"got {self.fairness!r}"
                )
            object.__setattr__(
                self,
                "fairness_weights",
                {str(k): float(v) for k, v in self.fairness_weights.items()},
            )
        if self.fairness_weights_by_dim is not None:
            if not weighted:
                raise SpecError(
                    "fairness_weights_by_dim requires fairness='weighted', "
                    f"got {self.fairness!r}"
                )
            object.__setattr__(
                self,
                "fairness_weights_by_dim",
                {
                    str(owner): {int(d): float(w) for d, w in dims.items()}
                    for owner, dims in self.fairness_weights_by_dim.items()
                },
            )
        validate_key("policy", self.policy)
        if self.dp_bucket_bytes is not None:
            object.__setattr__(
                self,
                "dp_bucket_bytes",
                _size_bytes(self.dp_bucket_bytes, "dp_bucket_bytes"),
            )
        if self.chunks < 1:
            raise SpecError(f"chunks must be >= 1, got {self.chunks}")
        if self.max_events is not None and self.max_events < 1:
            raise SpecError(f"max_events must be >= 1, got {self.max_events}")

    @classmethod
    def _convert(cls, payload: dict) -> dict:
        jobs = payload.get("jobs") or ()
        payload["jobs"] = tuple(
            job if isinstance(job, ScenarioJob) else ScenarioJob.from_dict(job)
            for job in jobs
        )
        trace = payload.get("trace")
        if trace is not None and not isinstance(trace, PoissonTrace):
            payload["trace"] = PoissonTrace.from_dict(trace)
        open_loop = payload.get("open_loop")
        if open_loop is not None and not isinstance(open_loop, OpenLoopTrace):
            payload["open_loop"] = OpenLoopTrace.from_dict(open_loop)
        faults = payload.get("faults")
        if faults is not None and not isinstance(faults, FaultSpec):
            payload["faults"] = FaultSpec.from_dict(faults)
        return payload

    def to_jobs(self, open_loop_rate: "float | None" = None) -> list:
        """The runnable :class:`~repro.cluster.JobSpec` list.

        ``open_loop_rate`` supplies the calibrated arrival rate for
        ``open_loop.target_rho`` scenarios (see
        :meth:`OpenLoopTrace.to_jobs`).
        """
        if self.trace is not None:
            return self.trace.to_jobs()
        if self.open_loop is not None:
            return self.open_loop.to_jobs(rate=open_loop_rate)
        return [job.to_jobspec() for job in self.jobs]


@dataclass(frozen=True)
class ProvisioningScenario(ScenarioSpec):
    """Sec. 6.3 BW-distribution assessment of one topology (analytic)."""

    mode: ClassVar[str] = "provisioning"

    topology: "str | dict" = "3D-SW_SW_SW_homo"
    tolerance: float = 0.01
    collective: str = "allreduce"

    def __post_init__(self) -> None:
        object.__setattr__(self, "topology", _validate_topology(self.topology))
        _validate_collective(self.collective)
        if not 0 <= self.tolerance < 1:
            raise SpecError(
                f"tolerance must be in [0, 1), got {self.tolerance}"
            )


#: Serialized ``mode`` -> scenario class.
SCENARIO_TYPES: dict[str, type[ScenarioSpec]] = {
    cls.mode: cls
    for cls in (
        CollectiveScenario,
        TrainingScenario,
        ClusterScenario,
        ProvisioningScenario,
    )
}


def spec_from_dict(data: dict) -> ScenarioSpec:
    """Load any scenario spec, dispatching on its ``"mode"`` key."""
    if not isinstance(data, dict):
        raise SpecError(f"spec must be a dict, got {type(data)}")
    _check_schema(data, "spec")
    mode = data.get("mode")
    if mode is None:
        raise SpecError(
            f"spec needs a 'mode' key; one of: {', '.join(SCENARIO_TYPES)}"
        )
    cls = SCENARIO_TYPES.get(mode)
    if cls is None:
        raise SpecError(
            f"unknown scenario mode {mode!r}"
            f"{did_you_mean(str(mode), tuple(SCENARIO_TYPES))}; "
            f"known: {', '.join(SCENARIO_TYPES)}"
        )
    return cls.from_dict(data)


def load_spec(path: "str | Path") -> ScenarioSpec:
    """Load a scenario spec from a JSON file."""
    text = Path(path).read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise SpecError(f"invalid spec JSON in {path}: {error}") from error
    return spec_from_dict(data)


def save_spec(spec: ScenarioSpec, path: "str | Path") -> None:
    """Write a scenario spec to a JSON file."""
    spec.save(path)
