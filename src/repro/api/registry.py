"""One string-keyed registry for every pluggable component.

The repo grew a registry per subsystem — topology presets, workloads,
collective algorithms, intra-dimension policies, cluster fairness policies,
scheduler kinds — each with its own ``get_*`` / ``*_names`` / ``register_*``
trio.  Scenario specs name *all* of these by key, so this module unifies
them behind one surface:

* :func:`resolve` — instantiate a component: ``resolve("workload", "dlrm")``;
* :func:`registry_keys` — list the valid keys of one kind;
* :func:`validate_key` — check a key (case-rules of the underlying
  registry apply) and raise :class:`SpecError` with a did-you-mean hint;
* :func:`register` — plugin surface generalizing
  ``collectives/registry.register_algorithm``: one call registers a custom
  component in the *underlying* domain registry, so both the old per-module
  accessors and every spec/CLI key lookup see it.

Kinds: ``topology``, ``workload``, ``collective``, ``scheduler``,
``policy``, ``fairness``, ``placement``, ``algorithm``, ``backend``.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from collections.abc import Callable
from typing import Any

from ..cluster import fairness as _fairness
from ..cluster import placement as _placement
from ..collectives import registry as _algorithms
from ..collectives.types import CollectiveType
from ..core import policies as _policies
from ..core.scheduler import SchedulerFactory
from ..errors import ReproError, SpecError
from ..sim import backends as _backends
from ..topology import presets as _presets
from ..workloads import get_workload, register_workload, workload_names

#: Scheduler kinds accepted by :class:`~repro.core.SchedulerFactory`; the
#: factory has no registry of its own, so the unified registry owns the list.
SCHEDULER_KINDS: tuple[str, ...] = ("baseline", "themis")

#: Collective-type keys (canonical names; ``CollectiveType.from_name`` also
#: accepts the short aliases ar/rs/ag/a2a).
COLLECTIVE_KEYS: tuple[str, ...] = (
    "allreduce", "reducescatter", "allgather", "alltoall",
)


def _resolve_scheduler(key: str, **kwargs: Any) -> SchedulerFactory:
    return SchedulerFactory(key, **kwargs)


@dataclass(frozen=True)
class _Kind:
    """Adapter from the unified surface onto one domain registry."""

    name: str
    resolver: Callable[..., Any]
    lister: Callable[[], tuple[str, ...]]
    #: Domain-registry ``register_*`` hook; ``None`` = not extensible.
    registrar: Callable[[str, Any], None] | None = None
    #: Whether the underlying resolver is case-insensitive.
    casefold: bool = True


_KINDS: dict[str, _Kind] = {
    "topology": _Kind(
        "topology", _presets.get_topology,
        _presets.preset_names, _presets.register_preset, casefold=False,
    ),
    "workload": _Kind(
        "workload", get_workload, workload_names, register_workload,
    ),
    "collective": _Kind(
        "collective",
        lambda key: CollectiveType.from_name(key),
        lambda: COLLECTIVE_KEYS,
    ),
    "scheduler": _Kind(
        "scheduler", _resolve_scheduler, lambda: SCHEDULER_KINDS,
    ),
    "policy": _Kind(
        "policy", _policies.get_policy,
        _policies.policy_names, _policies.register_policy,
    ),
    "fairness": _Kind(
        "fairness", _fairness.get_fairness,
        _fairness.fairness_names, _fairness.register_fairness,
    ),
    "placement": _Kind(
        "placement", _placement.get_placement,
        _placement.placement_names, _placement.register_placement,
    ),
    "algorithm": _Kind(
        "algorithm", _algorithms.get_algorithm,
        _algorithms.algorithm_names, _algorithms.register_algorithm,
        casefold=False,
    ),
    "backend": _Kind(
        "backend", _backends.get_backend,
        _backends.backend_names, _backends.register_backend,
    ),
}


def registry_kinds() -> tuple[str, ...]:
    """The component kinds the unified registry knows."""
    return tuple(_KINDS)


def _kind(kind: str) -> _Kind:
    entry = _KINDS.get(kind)
    if entry is None:
        hint = did_you_mean(kind, registry_kinds())
        raise SpecError(
            f"unknown registry kind {kind!r}{hint}; "
            f"kinds: {', '.join(registry_kinds())}"
        )
    return entry


def registry_keys(kind: str) -> tuple[str, ...]:
    """Valid keys of one kind (built-ins plus everything registered)."""
    return tuple(_kind(kind).lister())


def did_you_mean(key: str, known: tuple[str, ...] | list[str]) -> str:
    """``" (did you mean 'x'?)"`` or ``""`` — shared by all key errors."""
    matches = difflib.get_close_matches(key, list(known), n=1, cutoff=0.5)
    return f" (did you mean {matches[0]!r}?)" if matches else ""


def validate_key(kind: str, key: str) -> str:
    """Check ``key`` against ``kind``'s registry; returns the key unchanged.

    Raises :class:`SpecError` naming the kind, the known keys, and the
    closest match — the error surface every spec field funnels through.
    """
    entry = _kind(kind)
    known = entry.lister()
    if not isinstance(key, str):
        # Specs are plain JSON: a mistyped document can put any value here
        # (``"placement": 5``), which must surface as a spec error, not an
        # AttributeError traceback out of the case-folding below.
        raise SpecError(
            f"{kind} key must be a string, got {key!r}; "
            f"known: {', '.join(known)}"
        )
    if key in known:
        return key
    if entry.casefold and key.lower() in {k.lower() for k in known}:
        return key
    hint = did_you_mean(key, known)
    raise SpecError(
        f"unknown {kind} key {key!r}{hint}; known: {', '.join(known)}"
    )


def resolve(kind: str, key: str, **kwargs: Any) -> Any:
    """Instantiate the component registered under ``(kind, key)``.

    ``kwargs`` are forwarded to the factory (e.g. workload parameters,
    scheduler splitter).  Key misses raise :class:`SpecError` with a
    did-you-mean hint regardless of which exception the domain registry
    uses internally.
    """
    entry = _kind(kind)
    try:
        return entry.resolver(key, **kwargs)
    except ReproError as error:
        if "unknown" not in str(error):
            raise  # a real factory failure, not a key miss
        known = entry.lister()
        hint = did_you_mean(key.lower(), tuple(k.lower() for k in known))
        raise SpecError(
            f"unknown {kind} key {key!r}{hint}; known: {', '.join(known)}"
        ) from error


def register(kind: str, key: str, factory: Any) -> None:
    """Register a custom component under ``(kind, key)``.

    Delegates to the domain registry (``register_preset``,
    ``register_workload``, ``register_policy``, ``register_fairness``,
    ``register_placement``, ``register_algorithm``), so the component is
    visible both here and
    through the subsystem's own accessors.  Duplicate keys are rejected by
    the domain registry.
    """
    entry = _kind(kind)
    if entry.registrar is None:
        raise SpecError(
            f"registry kind {kind!r} is fixed and cannot be extended"
        )
    entry.registrar(key, factory)
