"""repro.api — the declarative scenario layer.

One serializable spec, one runner, one report for every simulation mode::

    from repro import api

    spec = api.TrainingScenario(workload="dlrm", topology="2D-SW_SW")
    report = api.run(spec)                      # -> RunReport
    spec.save("my_run.json")                    # lossless JSON round trip
    same = api.load_spec("my_run.json")
    assert same == spec

    grid = api.sweep(spec, {"scheduler": ["baseline", "themis"]})
    print(grid.render())

Components (topologies, workloads, schedulers, intra-dimension policies,
fairness policies, collective algorithms) are named by key in one unified
registry — see :func:`register` for the plugin surface.
"""

from ..cluster.jobs import JobMix
from ..cluster.placement import register_placement
from .registry import (
    COLLECTIVE_KEYS,
    SCHEDULER_KINDS,
    register,
    registry_keys,
    registry_kinds,
    resolve,
    validate_key,
)
from .report import RunReport, SweepPoint, SweepResult
from .runner import run, scheduler_label, sweep
from .spec import (
    SCHEMA_VERSION,
    SCENARIO_TYPES,
    ClusterScenario,
    CollectiveScenario,
    FaultSpec,
    OpenLoopTrace,
    PoissonTrace,
    ProvisioningScenario,
    ScenarioJob,
    ScenarioSpec,
    TrainingScenario,
    load_spec,
    parse_cli_value,
    resolve_topology,
    resolve_workload,
    save_spec,
    spec_from_dict,
)

__all__ = [
    # registry
    "register",
    "register_placement",
    "resolve",
    "registry_keys",
    "registry_kinds",
    "validate_key",
    "SCHEDULER_KINDS",
    "COLLECTIVE_KEYS",
    # specs
    "SCHEMA_VERSION",
    "SCENARIO_TYPES",
    "ScenarioSpec",
    "CollectiveScenario",
    "TrainingScenario",
    "ClusterScenario",
    "ProvisioningScenario",
    "ScenarioJob",
    "PoissonTrace",
    "JobMix",
    "FaultSpec",
    "OpenLoopTrace",
    "spec_from_dict",
    "load_spec",
    "save_spec",
    "parse_cli_value",
    "resolve_topology",
    "resolve_workload",
    # runner / reports
    "run",
    "sweep",
    "scheduler_label",
    "RunReport",
    "SweepPoint",
    "SweepResult",
]
