"""The :class:`NetworkBackend` interface and its domain registry.

A *backend* is a network-fidelity model: given a platform it builds the
object that training/cluster loops submit collectives to.  All backends
speak the same submission surface (``submit`` / ``run`` / shared engine);
they differ in how faithfully the wires are modeled:

* ``analytical`` — the paper's bandwidth model (:class:`DimensionChannel`
  fluid batches).  The default, and the reference for every published
  number in this repo.
* ``ideal`` — the Table 3 "Ideal" fluid server (schedule-invariant bytes
  at full aggregate bandwidth).
* ``packet`` — MTU packetization, FIFO egress queues, store-and-forward
  switch hops (:class:`~repro.sim.backends.packet.PacketNetwork`).

Backends are registered here (``register_backend`` / ``get_backend`` /
``backend_names``) and surfaced as the ``"backend"`` kind of the unified
:mod:`repro.api.registry`, so scenario specs and the CLI name them by key
with the same did-you-mean validation as every other component.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, ClassVar

from ...errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...core.policies import IntraDimPolicy
    from ...core.scheduler import SchedulerFactory
    from ...topology import Topology
    from ..engine import EventQueue
    from ..executor import FusionConfig

#: The backend used when a scenario/config leaves ``backend`` unset.
DEFAULT_BACKEND = "analytical"


class NetworkBackend(abc.ABC):
    """Factory + capability descriptor for one network-fidelity model.

    Class attributes advertise what the built network supports, so the
    spec layer can reject incompatible combinations (e.g. weighted
    fairness on a backend without per-tenant wire sharing) with a clear
    error instead of an attribute failure mid-run.
    """

    #: Registry key (``"analytical"``, ``"ideal"``, ``"packet"``).
    key: ClassVar[str] = ""
    #: One-line description for ``themis-sim registry`` and the docs.
    description: ClassVar[str] = ""
    #: Whether ``submit`` accepts a per-request ``scheduler=`` factory.
    accepts_scheduler: ClassVar[bool] = False
    #: Whether the built network exposes ``result() -> ExecutionResult``.
    provides_result: ClassVar[bool] = False
    #: Whether :class:`~repro.sim.faults.FaultSchedule` can be applied.
    supports_faults: ClassVar[bool] = False
    #: Whether weighted per-tenant sharing / priority preemption exist
    #: (``set_tenant_weights`` / ``enable_preemption``).
    supports_sharing: ClassVar[bool] = False
    #: Whether the multi-job cluster simulator can run on this backend
    #: (needs per-owner accounting and per-request schedulers).
    supports_cluster: ClassVar[bool] = False

    @abc.abstractmethod
    def build(
        self,
        topology: "Topology",
        *,
        scheduler: "SchedulerFactory | None" = None,
        policy: "str | IntraDimPolicy" = "SCF",
        fusion: "FusionConfig | None" = None,
        engine: "EventQueue | None" = None,
        record_ops: bool = True,
        indexed_queues: bool = True,
        plan_cache: bool = True,
        audit: bool | None = None,
        options: dict[str, Any] | None = None,
    ) -> Any:
        """Construct the network object for ``topology``.

        ``options`` carries backend-specific knobs (a scenario's
        ``backend_options`` document); backends without knobs reject a
        non-empty dict via :meth:`validate_options`.
        """

    def validate_options(self, options: dict[str, Any] | None) -> None:
        """Reject unknown/malformed ``options`` (default: none allowed).

        Called at spec-validation time so a bad ``backend_options``
        document fails before any simulation is built.
        """
        if options:
            raise ConfigError(
                f"backend {self.key!r} accepts no options, got: "
                f"{', '.join(sorted(options))}"
            )


_BACKENDS: dict[str, NetworkBackend] = {}


def register_backend(
    key: str, backend: NetworkBackend | type[NetworkBackend]
) -> None:
    """Register a backend under ``key`` (case-insensitive, unique).

    Accepts an instance or a zero-argument class, matching the other
    domain registries' ``register_*`` hooks (and the unified registry's
    ``register("backend", ...)``).
    """
    lowered = key.lower()
    if lowered in _BACKENDS:
        raise ConfigError(f"backend {key!r} is already registered")
    instance = backend() if isinstance(backend, type) else backend
    if not isinstance(instance, NetworkBackend):
        raise ConfigError(
            f"backend {key!r} must be a NetworkBackend, "
            f"got {type(instance).__name__}"
        )
    _BACKENDS[lowered] = instance


def get_backend(key: str) -> NetworkBackend:
    """Look up a backend by key (case-insensitive)."""
    lowered = key.lower() if isinstance(key, str) else key
    backend = _BACKENDS.get(lowered)
    if backend is None:
        known = ", ".join(backend_names())
        raise ConfigError(f"unknown backend {key!r}; known: {known}")
    return backend


def backend_names() -> tuple[str, ...]:
    """Registered backend keys, sorted."""
    return tuple(sorted(_BACKENDS))


def resolve_backend_key(
    backend: str | None, ideal_network: bool = False
) -> str:
    """The effective backend key for a scenario/config.

    ``ideal_network=True`` (the pre-backend spelling) is an alias for
    ``backend="ideal"``; an explicit conflicting ``backend`` is rejected
    at spec validation, so here the flag simply wins when ``backend`` is
    unset.
    """
    if backend is not None:
        return backend.lower()
    return "ideal" if ideal_network else DEFAULT_BACKEND
