"""The fluid fast-path backend: flow-level channels, rate-change events only.

The analytical backend's event count scales with chunks × stages × flows:
every chunk-op is at least two events, so a 64-chunk All-Reduce on a 3D
platform fires hundreds of events even when nothing contends.  The fluid
backend keeps the exact engine, channels, schedulers, fairness hooks, and
fault machinery, but changes *execution granularity*: shared
:class:`~repro.sim.executor.DimensionChannel` flows advance analytically
between rate-change points.  A flow's bandwidth share is constant until
some flow arrives, completes, or a fault/weight event fires, so its
bytes-remaining integrate in closed form and only the *next rate-change
event* is scheduled — no per-chunk events while rates are stable.

Concretely, :class:`FluidNetwork` is a :class:`NetworkSimulator` whose

* channels run in weighted GPS sharing mode from construction (the
  existing ``_FlowState`` closed-form integrator — bank progress at the
  old rate, re-split capacity, re-arm one finish event per flow — *is*
  the fluid model; the serial per-chunk wire is simply never used);
* plans are **fluidized** (:meth:`FluidNetwork._build_chunk_ops`): the
  exact scheduler still plans every collective — plan decisions stay
  exact — but the resulting chunk train collapses into one aggregate flow
  per traversed dimension (bytes and transfer seconds summed, the fixed
  latency ``A_K`` carried once as the pipeline tail, exactly as the exact
  wire pays it).  Per-dimension flows start concurrently, modeling the
  chunk pipeline's dimension overlap; the collective completes when its
  slowest dimension drains.  The modeling error is the pipeline fill/drain
  skew the collapse hides — a ``(ndims − 1)/chunks`` fraction of a
  dimension's work — which the hybrid bounds via ``tolerance``;
* simultaneous rate changes coalesce across channels
  (:class:`~repro.sim.executor.FlowCoalescer`): a same-instant burst of
  flow starts/finishes/reweights recomputes each channel's rates once
  instead of once per cause.

The **hybrid escape hatch** falls back to the exact per-chunk event path
where precision matters (``hybrid=True``, the default):

* **plan decisions** are always exact — fluidization happens after the
  scheduler has planned, never changes what it sees;
* **fault transitions** always take the exact path: capacity changes
  recompute rates immediately (never coalesced) through the same
  generation-guarded banking the analytical backend uses, so byte
  conservation holds across every rate-change point;
* **priority preemption boundaries**: arming preemption switches the
  channels to strict-priority sharing (only the highest-priority in-flight
  flows get rate; lower-priority flows park at rate zero with progress
  banked) *and* keeps collectives at exact chunk granularity, so
  preemption points land at chunk boundaries as they do on the serial
  wire;
* **coarse multi-dimensional plans**, where the fill/drain skew exceeds
  ``tolerance``, keep exact granularity rather than hide the error.

See ``docs/backends.md`` for the model, options, and tolerances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, ClassVar

from ...collectives.phases import Stage
from ...errors import ConfigError
from ..executor import FlowCoalescer, OpState
from ..network import NetworkSimulator
from .base import NetworkBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...collectives.types import CollectiveRequest
    from ...core.chunk import CollectivePlan
    from ...core.latency_model import LatencyModel
    from ...core.policies import IntraDimPolicy
    from ...core.scheduler import SchedulerFactory
    from ...topology import Topology
    from ..engine import EventQueue
    from ..executor import FusionConfig


@dataclass(frozen=True)
class FluidOptions:
    """Knobs of the fluid backend (a scenario's ``backend_options``).

    ``tolerance`` is the accepted per-collective modeling-error budget:
    collapsing a chunk train hides the pipeline fill/drain skew, a
    ``(ndims − 1)/chunks`` fraction of a dimension's work, so with
    ``hybrid`` on, multi-dimensional plans where that fraction exceeds
    ``tolerance`` keep exact chunk granularity.  ``hybrid=False`` fluidizes
    everything regardless (fastest, coarsest); fault transitions stay
    exact either way.  ``coalesce`` enables the cross-channel same-instant
    rate-change coalescer.
    """

    tolerance: float = 0.05
    hybrid: bool = True
    coalesce: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.tolerance <= 1.0:
            raise ConfigError(
                f"tolerance must be within [0, 1], got {self.tolerance}"
            )

    @classmethod
    def from_dict(cls, data: dict[str, Any] | None) -> "FluidOptions":
        """Build from a spec's ``backend_options`` document.

        Unknown keys get the same did-you-mean rejection as every other
        spec field.
        """
        if not data:
            return cls()
        known = ("tolerance", "hybrid", "coalesce")
        unknown = sorted(set(data) - set(known))
        if unknown:
            import difflib

            hints = []
            for key in unknown:
                match = difflib.get_close_matches(key, known, n=1, cutoff=0.5)
                hints.append(
                    f"{key!r} (did you mean {match[0]!r}?)" if match else repr(key)
                )
            raise ConfigError(
                f"unknown fluid backend option(s): {', '.join(hints)}; "
                f"known: {', '.join(known)}"
            )
        return cls(
            tolerance=float(data.get("tolerance", cls.tolerance)),
            hybrid=bool(data.get("hybrid", cls.hybrid)),
            coalesce=bool(data.get("coalesce", cls.coalesce)),
        )


class FluidNetwork(NetworkSimulator):
    """Flow-level network simulator: see the module docstring for the model."""

    def __init__(
        self,
        topology: "Topology",
        scheduler: "SchedulerFactory | None" = None,
        policy: "str | IntraDimPolicy" = "SCF",
        fusion: "FusionConfig | None" = None,
        engine: "EventQueue | None" = None,
        record_ops: bool = True,
        indexed_queues: bool = True,
        plan_cache: bool = True,
        audit: bool | None = None,
        options: FluidOptions | None = None,
    ) -> None:
        super().__init__(
            topology,
            scheduler=scheduler,
            policy=policy,
            fusion=fusion,
            engine=engine,
            record_ops=record_ops,
            indexed_queues=indexed_queues,
            plan_cache=plan_cache,
            audit=audit,
        )
        self.options = options or FluidOptions()
        #: Set by :meth:`enable_preemption`; with ``hybrid`` on it pins
        #: collectives to exact chunk granularity (preemption boundaries
        #: are precision points).
        self._preemption_armed = False
        # The channels run in GPS sharing mode from the first byte: the
        # closed-form flow integrator is the fluid model.  Enabling it
        # before anything is in flight also means the serial-wire guard in
        # set_share_weights can never trip.
        for channel in self.channels:
            channel.set_share_weights({}, default=1.0)
        self.coalescer: FlowCoalescer | None = None
        if self.options.coalesce:
            self.coalescer = FlowCoalescer(self.engine)
            for channel in self.channels:
                channel.flow_coalescer = self.coalescer

    # --- fairness ----------------------------------------------------------
    def enable_preemption(self) -> None:
        """Arm fluid preemption: strict-priority rates, exact boundaries.

        Only the highest-priority in-flight flows on a dimension receive
        bandwidth; lower-priority flows park at rate zero with their
        progress banked (each running→parked transition counts one
        preemption).  With ``hybrid`` on, collectives additionally keep
        exact chunk granularity so preemption points land at chunk
        boundaries, matching the serial wire's precision.
        """
        self._preemption_armed = True
        for channel in self.channels:
            channel.enable_priority_sharing()

    # --- execution granularity --------------------------------------------
    def _fluidize(self, plan: "CollectivePlan") -> bool:
        """Whether this plan may collapse to aggregate per-dim flows."""
        options = self.options
        if options.hybrid:
            if self._preemption_armed:
                return False
            ndims = len({
                stage.dim_index
                for chunk in plan.chunks
                for stage in chunk.stages
            })
            chunks = len(plan.chunks)
            if ndims > 1 and (ndims - 1) > options.tolerance * chunks:
                return False
        return True

    def _build_chunk_ops(
        self,
        request: "CollectiveRequest",
        plan: "CollectivePlan",
        subtopo: "Topology",
        model: "LatencyModel",
    ) -> list[list[OpState]]:
        if not self._fluidize(plan):
            return super()._build_chunk_ops(request, plan, subtopo, model)
        # One aggregate single-stage pseudo-chunk per traversed dimension,
        # in first-traversal order (deterministic: plan order, no sets).
        # All of them enqueue immediately — stage 0 of every chunk — so the
        # per-dimension flows run concurrently, modeling the chunk train's
        # dimension overlap; the collective completes when the last
        # dimension drains.  Bytes and transfer seconds are the exact
        # plan's sums, so byte conservation is untouched; the fixed latency
        # is carried once per dimension, exactly as the exact wire pays it
        # (a pipeline tail, not a per-chunk cost).
        order: list[int] = []
        totals: dict[int, list[float]] = {}
        first_stage: dict[int, Stage] = {}
        for chunk in plan.chunks:
            for stage in chunk.stages:
                local = stage.dim_index
                bucket = totals.get(local)
                if bucket is None:
                    order.append(local)
                    totals[local] = bucket = [0.0, 0.0, 0.0, 0.0]
                    first_stage[local] = stage
                bucket[0] += model.bytes_per_npu(
                    stage.op, stage.stage_size, local
                )
                bucket[1] += model.chunk_load(stage.op, stage.stage_size, local)
                fixed = model.fixed_latency(stage.op, local)
                if fixed > bucket[2]:
                    bucket[2] = fixed
                bucket[3] += stage.stage_size
        chunk_ops: list[list[OpState]] = []
        for pseudo_id, local in enumerate(order):
            nbytes, transfer, fixed, stage_size = totals[local]
            template = first_stage[local]
            chunk_ops.append(
                [
                    OpState(
                        collective_seq=request.request_id,
                        chunk_id=pseudo_id,
                        stage_index=0,
                        stage=Stage(
                            dim_index=local,
                            op=template.op,
                            stage_size=stage_size,
                        ),
                        parent_dim=subtopo.parent_index(local),
                        bytes_sent=nbytes,
                        transfer_time=transfer,
                        fixed_time=fixed,
                        priority=request.priority,
                        owner=request.owner,
                    )
                ]
            )
        return chunk_ops


class FluidBackend(NetworkBackend):
    """Flow-level fast path over the analytical channels (see fluid.py)."""

    key: ClassVar[str] = "fluid"
    description: ClassVar[str] = (
        "flow-level fast path: closed-form shared channels, rate-change "
        "events only (512-4096-job runs)"
    )
    accepts_scheduler: ClassVar[bool] = True
    provides_result: ClassVar[bool] = True
    supports_faults: ClassVar[bool] = True
    supports_sharing: ClassVar[bool] = True
    supports_cluster: ClassVar[bool] = True

    def build(
        self,
        topology: "Topology",
        *,
        scheduler: "SchedulerFactory | None" = None,
        policy: "str | IntraDimPolicy" = "SCF",
        fusion: "FusionConfig | None" = None,
        engine: "EventQueue | None" = None,
        record_ops: bool = True,
        indexed_queues: bool = True,
        plan_cache: bool = True,
        audit: bool | None = None,
        options: dict[str, Any] | None = None,
    ) -> FluidNetwork:
        return FluidNetwork(
            topology,
            scheduler=scheduler,
            policy=policy,
            fusion=fusion,
            engine=engine,
            record_ops=record_ops,
            indexed_queues=indexed_queues,
            plan_cache=plan_cache,
            audit=audit,
            options=FluidOptions.from_dict(options),
        )

    def validate_options(self, options: dict[str, Any] | None) -> None:
        FluidOptions.from_dict(options)
