"""Pluggable network-fidelity backends.

See :mod:`repro.sim.backends.base` for the interface and
``docs/backends.md`` for the fidelity/speed tradeoff.  The four
built-ins register at import time; plugins add their own via
``register_backend`` (or ``repro.api.register("backend", ...)``).
"""

from __future__ import annotations

from .analytical import AnalyticalBackend
from .base import (
    DEFAULT_BACKEND,
    NetworkBackend,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend_key,
)
from .fluid import FluidBackend, FluidNetwork, FluidOptions
from .ideal import IdealBackend
from .packet import (
    ROUTING_MODES,
    PacketBackend,
    PacketNetwork,
    PacketOptions,
    lane_for_packet,
    packetize,
    service_packets,
)

register_backend(AnalyticalBackend.key, AnalyticalBackend())
register_backend(FluidBackend.key, FluidBackend())
register_backend(IdealBackend.key, IdealBackend())
register_backend(PacketBackend.key, PacketBackend())

__all__ = [
    "DEFAULT_BACKEND",
    "ROUTING_MODES",
    "AnalyticalBackend",
    "FluidBackend",
    "FluidNetwork",
    "FluidOptions",
    "IdealBackend",
    "NetworkBackend",
    "PacketBackend",
    "PacketNetwork",
    "PacketOptions",
    "backend_names",
    "get_backend",
    "lane_for_packet",
    "packetize",
    "register_backend",
    "resolve_backend_key",
    "service_packets",
]
