"""Packet-granularity network backend.

Where the analytical backend charges each chunk op a closed-form
``A_K + n_K x B_K``, :class:`PacketNetwork` *transports* the op's bytes:

* the op's per-NPU bytes are packetized at the backend MTU (plus a
  per-packet header) and serialized through the dimension's FIFO egress
  port — one modeled port per dimension (the NPUs of a dimension are
  symmetric, so one representative per-NPU port carries the per-NPU byte
  volume), with ``links_per_npu`` parallel lanes at ``link_bw`` each.
  Packets book lanes contiguously in op-arrival order, so concurrent ops
  *queue* FIFO on the wire rather than processor-share it — a collective
  library keeps one transfer per dimension on the NIC at a time;
* packets pick a lane by the routing mode: ``"deterministic"`` takes the
  earliest-free lane (work-conserving multi-rail striping), ``"ecmp"``
  takes a stable SHA-256 hash of the (flow, hop, packet) tuple — the
  classic ECMP hazard that several flows can collide on one lane while
  others idle;
* switch dimensions forward store-and-forward through a second port
  (host -> switch -> host), splitting the dimension's ``step_latency``
  propagation across the hops; ring / fully-connected dimensions are one
  hop;
* the algorithm's round structure (``steps(op, P)`` — P-1 for Ring, 1
  for Direct, ...) is charged as a pipeline-refill tail: real ring
  implementations pipeline rounds at slice granularity (round ``r+1`` of
  one slice overlaps round ``r`` of the next), so the wire serializes
  the op's bytes once and the remaining ``steps - 1`` round traversals
  cost one propagation plus one packet serialization each, appended to
  the delivery time;
* :class:`~repro.sim.faults.FaultSchedule` events rescale the port rates
  (a factor of zero parks arriving flows until a restore), feeding the
  same degraded :class:`ScaledLatencyModel` planning input as the
  analytical backend so Themis stays bandwidth-aware under faults.

Per op the model yields ``queue wait + n x (1 + header/MTU) / BW +
steps x step_latency + (steps - 1) x pkt_ser + store-and-forward``: as
packets shrink relative to the op (MTU well below ``n/steps``) this
converges to the analytical ``A_K + n_K x B_K`` from above, with the
header overhead vanishing as the MTU *grows* and the pipeline-refill
term vanishing as it *shrinks* — uncontended agreement is therefore
closest at intermediate MTUs and is pinned, with stated tolerances, in
``tests/test_backends.py``.

Intra-dimension policies, fusion, weighted sharing, and preemption are
batch-level concepts of the analytical channels; at packet granularity
the wire discipline is FIFO, so those knobs do not apply here (the
``policy`` / ``fusion`` build arguments are accepted for interface
uniformity and ignored; the sharing entry points raise).
"""

from __future__ import annotations

import hashlib
import math
from collections.abc import Callable
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, ClassVar

from ...collectives.registry import algorithms_for_topology
from ...collectives.types import CollectiveRequest
from ...core.chunk import CollectivePlan
from ...core.latency_model import LatencyModel
from ...core.scheduler import SchedulerFactory
from ...errors import ConfigError, SimulationError
from ...topology import Topology
from ...topology.dimension import DimensionKind, DimensionSpec
from ..audit import InvariantAuditor, resolve_audit
from ..engine import EventQueue
from ..executor import OpState
from ..faults import (
    FaultSchedule,
    LinkFault,
    ScaledLatencyModel,
    compose_factors,
)
from ..network import (
    CollectiveResult,
    ExecutionResult,
    _check_not_past,
    _CollectiveState,
)
from ..timeline import Interval, OpRecord, merge_intervals
from .base import NetworkBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...core.policies import IntraDimPolicy
    from ..executor import FusionConfig

#: Lane-selection modes for multi-link dimensions.
ROUTING_MODES: tuple[str, ...] = ("deterministic", "ecmp")


@dataclass(frozen=True)
class PacketOptions:
    """Knobs of the packet backend (a scenario's ``backend_options``).

    ``mtu_bytes`` / ``header_bytes`` are backend-level: they model the
    transport the collective library runs over and are independent of the
    *analytical* per-dimension goodput knobs
    (``DimensionSpec.max_packet_bytes``), which stay what they are — the
    closed-form model's wire-overhead correction.

    ``max_packets_per_op`` bounds simulation cost on huge transfers: when
    one op would exceed it, the effective MTU is raised so the op
    packetizes into at most that many packets (coarser, but byte volumes
    and rates are preserved).
    """

    mtu_bytes: float = 65536.0
    header_bytes: float = 64.0
    routing: str = "deterministic"
    max_packets_per_op: int = 256

    def __post_init__(self) -> None:
        if self.mtu_bytes <= 0:
            raise ConfigError(
                f"mtu_bytes must be positive, got {self.mtu_bytes}"
            )
        if self.header_bytes < 0:
            raise ConfigError(
                f"header_bytes must be non-negative, got {self.header_bytes}"
            )
        if self.routing not in ROUTING_MODES:
            raise ConfigError(
                f"unknown routing mode {self.routing!r}; "
                f"known: {', '.join(ROUTING_MODES)}"
            )
        if self.max_packets_per_op < 1:
            raise ConfigError(
                "max_packets_per_op must be >= 1, got "
                f"{self.max_packets_per_op}"
            )

    @classmethod
    def from_dict(cls, data: dict[str, Any] | None) -> "PacketOptions":
        """Build from a spec's ``backend_options`` document.

        Unknown keys get the same did-you-mean rejection as every other
        spec field.
        """
        if not data:
            return cls()
        known = ("mtu_bytes", "header_bytes", "routing", "max_packets_per_op")
        unknown = sorted(set(data) - set(known))
        if unknown:
            import difflib

            hints = []
            for key in unknown:
                match = difflib.get_close_matches(key, known, n=1, cutoff=0.5)
                hints.append(
                    f"{key!r} (did you mean {match[0]!r}?)" if match else repr(key)
                )
            raise ConfigError(
                f"unknown packet backend option(s): {', '.join(hints)}; "
                f"known: {', '.join(known)}"
            )
        return cls(
            mtu_bytes=float(data.get("mtu_bytes", cls.mtu_bytes)),
            header_bytes=float(data.get("header_bytes", cls.header_bytes)),
            routing=str(data.get("routing", cls.routing)),
            max_packets_per_op=int(
                data.get("max_packets_per_op", cls.max_packets_per_op)
            ),
        )


def packetize(nbytes: float, mtu_bytes: float) -> list[float]:
    """Split a byte volume into MTU-bounded payloads.

    Full packets carry exactly ``mtu_bytes``; the remainder rides in the
    final packet, so the payloads sum back to ``nbytes`` (byte
    conservation — property-tested across MTU choices).
    """
    if nbytes <= 0:
        return []
    full = int(nbytes // mtu_bytes)
    remainder = nbytes - full * mtu_bytes
    payloads = [mtu_bytes] * full
    if remainder > 0:
        payloads.append(remainder)
    return payloads


def lane_for_packet(
    routing: str,
    lanes: list[float],
    flow_key: tuple[int, ...],
    packet_index: int,
) -> int:
    """Pick the egress lane for one packet of one flow at one hop.

    ``lanes`` holds each lane's next-free time.  ``"deterministic"``
    picks the earliest-free lane (lowest index on ties) — the
    work-conserving striping a multi-rail bonding layer achieves;
    ``"ecmp"`` hashes the (flow, packet) identity with SHA-256 — stable
    across runs and platforms (no process-seeded ``hash()``), but flows
    can collide on a lane exactly as ECMP flows collide on a path.
    """
    if len(lanes) <= 1:
        return 0
    if routing == "deterministic":
        return min(range(len(lanes)), key=lambda lane: (lanes[lane], lane))
    token = ":".join(str(part) for part in (*flow_key, packet_index))
    digest = hashlib.sha256(token.encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big") % len(lanes)


def service_packets(
    payloads: list[float],
    header_bytes: float,
    rate: float,
    free_at: list[list[float]],
    prop_per_hop: float,
    routing: str,
    flow_key: tuple[int, ...],
    start: float,
) -> list[list[float]]:
    """Book one round's packets through every hop of a port group.

    ``free_at[hop][lane]`` is each lane's next-free time and is advanced
    in place (that is the FIFO egress queue: later bookings wait behind
    earlier ones).  Returns the per-hop arrival times
    ``arrivals[hop][i]`` — packet ``i`` is available at the *next* hop
    (or delivered, after the last) at that instant.  Store-and-forward:
    a packet enters hop ``h+1`` only after it fully serialized out of
    hop ``h`` and propagated, so per-packet arrivals are strictly
    increasing across hops (property-tested).
    """
    hops = len(free_at)
    arrivals: list[list[float]] = []
    current = [start] * len(payloads)
    for hop in range(hops):
        lanes = free_at[hop]
        nxt: list[float] = []
        for index, payload in enumerate(payloads):
            lane = lane_for_packet(routing, lanes, (*flow_key, hop), index)
            begin = max(current[index], lanes[lane])
            done = begin + (payload + header_bytes) / rate
            lanes[lane] = done
            nxt.append(done + prop_per_hop)
        arrivals.append(nxt)
        current = nxt
    return arrivals


class _PortGroup:
    """The modeled egress path of one dimension.

    One group per *parent* dimension: ``hops`` store-and-forward stages
    (1 for ring / fully-connected, 2 for switch: host -> switch -> host),
    each with ``links_per_npu`` FIFO lanes at ``link_bw`` bytes/s.  The
    NPUs of a dimension are symmetric, so one representative port models
    the per-NPU egress; concurrent flows share its lanes in booking
    (arrival) order.
    """

    __slots__ = (
        "dim_index",
        "dim",
        "hops",
        "link_bw",
        "prop_per_hop",
        "capacity_factor",
        "free_at",
        "outstanding_bytes",
        "busy_seconds",
        "bytes_sent",
        "activity",
    )

    def __init__(self, dim_index: int, dim: DimensionSpec) -> None:
        self.dim_index = dim_index
        self.dim = dim
        self.hops = 2 if dim.kind is DimensionKind.SWITCH else 1
        self.link_bw = dim.link_bw
        # The analytical A_K charges step_latency per round traversal;
        # splitting it across the hops keeps one traversal's propagation
        # total identical to the closed-form term.
        self.prop_per_hop = dim.step_latency / self.hops
        self.capacity_factor = 1.0
        self.free_at: list[list[float]] = [
            [0.0] * dim.links_per_npu for _ in range(self.hops)
        ]
        #: Bytes submitted to this dimension and not yet delivered — the
        #: live-load signal automatic placement policies read.
        self.outstanding_bytes = 0.0
        self.busy_seconds = 0.0
        self.bytes_sent = 0.0
        self.activity: list[Interval] = []

    def service_op(
        self,
        payloads: list[float],
        header_bytes: float,
        routing: str,
        flow_key: tuple[int, ...],
        start: float,
    ) -> float:
        """Book one op's packets; returns the last packet's delivery time.

        The booking is contiguous: all packets enter the lane queues now,
        in order, so a later-arriving op's packets queue strictly behind
        (FIFO).  The returned instant includes one traversal's
        propagation; the caller appends the round-structure tail.
        """
        rate = self.link_bw * self.capacity_factor
        arrivals = service_packets(
            payloads,
            header_bytes,
            rate,
            self.free_at,
            self.prop_per_hop,
            routing,
            flow_key,
            start,
        )
        finish = max(arrivals[-1]) if arrivals and arrivals[-1] else start
        wire_seconds = sum(
            (payload + header_bytes) / rate for payload in payloads
        )
        lanes = len(self.free_at[0])
        self.busy_seconds += wire_seconds / lanes
        if finish > start:
            # The delivery instant includes the trailing propagation; the
            # wire itself is busy until the last hop finished serializing.
            self.activity.append(
                Interval(start, finish - self.prop_per_hop * self.hops)
            )
        return finish


class _FlowState:
    """One chunk op in flight: its round count and effective MTU."""

    __slots__ = ("op", "rounds", "mtu_bytes")

    def __init__(self, op: OpState, rounds: int, mtu_bytes: float) -> None:
        self.op = op
        self.rounds = rounds
        self.mtu_bytes = mtu_bytes


class PacketNetwork:
    """Event-driven packet-level network (the ``"packet"`` backend).

    Planning is shared with the analytical backend — the same scheduler
    factories produce the same :class:`CollectivePlan` (including the
    degraded-planning behavior under live faults) — only the *execution*
    of each chunk op differs: packetized rounds through FIFO ports
    instead of closed-form batches through fluid channels.  See the
    module docstring for the model.
    """

    #: ``submit`` accepts a per-request ``scheduler=`` factory.
    accepts_scheduler: ClassVar[bool] = True
    #: ``result()`` returns an :class:`ExecutionResult`.
    provides_result: ClassVar[bool] = True

    def __init__(
        self,
        topology: Topology,
        scheduler: SchedulerFactory | None = None,
        engine: EventQueue | None = None,
        record_ops: bool = True,
        plan_cache: bool = True,
        audit: bool | None = None,
        options: PacketOptions | None = None,
        algorithm_overrides: dict[int, str] | None = None,
    ) -> None:
        self.topology = topology
        self.scheduler_factory = scheduler or SchedulerFactory("themis")
        self.engine = engine or EventQueue()
        self.options = options or PacketOptions()
        self.record_ops = record_ops
        self.algorithm_overrides = dict(algorithm_overrides or {})
        self.auditor: InvariantAuditor | None = None
        if resolve_audit(audit):
            self.auditor = self.engine.auditor or InvariantAuditor()
            self.engine.auditor = self.auditor
        #: Per-dimension port groups; placement policies read
        #: ``channels[d].outstanding_bytes`` exactly as on the analytical
        #: backend, so the live-load signal survives the fidelity switch.
        self.channels = [
            _PortGroup(i, dim) for i, dim in enumerate(topology.dims)
        ]
        self._states: dict[int, _CollectiveState] = {}
        #: Per-network dense collective index used in routing flow keys.
        #: ``request_id`` comes from a process-global counter, so hashing
        #: it would make ECMP lane picks depend on process history; this
        #: map keeps identical networks bit-identical.
        self._flow_seq: dict[int, int] = {}
        self._results: list[CollectiveResult] = []
        self._records: list[OpRecord] = []
        self._records_sorted = True
        self._subtopo_cache: dict[tuple, tuple[Topology, LatencyModel]] = {}
        self._plan_cache_enabled = plan_cache
        self._plan_cache: dict[tuple, CollectivePlan] = {}
        self._dim_transfer = [0.0] * len(self.channels)
        #: Flows parked on a zero-capacity dimension, resumed (in parking
        #: order) when a restore event lifts the factor above zero.
        self._parked: list[list[_FlowState]] = [[] for _ in self.channels]
        self._inflight = 0
        self._comm_active_since: float | None = None
        self._comm_active: list[Interval] = []
        self._owner_inflight: dict[str, int] = {}
        self._owner_active_since: dict[str, float] = {}
        self._owner_active: dict[str, list[Interval]] = {}
        # --- fault injection (same discipline as NetworkSimulator) ----------
        self.fault_timeline: list[tuple[float, int, float]] = []
        self._active_faults: list[dict[int, float]] = [
            {} for _ in self.channels
        ]
        self._fault_seq = 0

    # --- fairness: not available at this fidelity ---------------------------
    def set_tenant_weights(
        self,
        weights: dict[str, "float | dict[int, float]"],
        default: float = 1.0,
    ) -> None:
        raise ConfigError(
            "the packet backend has FIFO egress queues and no weighted "
            "per-tenant sharing; use backend='analytical' for weighted/ftf "
            "fairness policies"
        )

    def enable_preemption(self) -> None:
        raise ConfigError(
            "the packet backend does not support priority preemption; "
            "use backend='analytical' for the preempt fairness policy"
        )

    @property
    def preemption_count(self) -> int:
        """Preemption does not exist at packet fidelity."""
        return 0

    # --- fault injection ----------------------------------------------------
    def apply_fault(self, fault: LinkFault) -> None:
        """Schedule one capacity fault (and its restoration) on the engine.

        Rate changes apply to ops booked *after* the event fires; ops
        already on the wire complete at their booked time (op granularity
        — chunk ops are short relative to fault durations).  A factor of
        zero parks arriving ops until a restore.
        """
        if not 0 <= fault.dim_index < len(self.channels):
            raise ConfigError(
                f"fault targets dimension {fault.dim_index} but the "
                f"topology has {len(self.channels)} dimension(s)"
            )
        if fault.start < self.engine.now:
            raise ConfigError(
                f"fault starts at {fault.start} but the simulation is "
                f"already at {self.engine.now}"
            )
        fault_id = self._fault_seq
        self._fault_seq += 1
        self.engine.schedule(
            fault.start, lambda: self._fault_begin(fault_id, fault)
        )
        end = fault.end
        if end is not None:
            self.engine.schedule(end, lambda: self._fault_end(fault_id, fault))

    def apply_fault_schedule(self, schedule: FaultSchedule) -> None:
        """Apply every event of a :class:`FaultSchedule` (validated against
        this topology's dimension count)."""
        for fault in schedule.restricted_to(len(self.channels)).events:
            self.apply_fault(fault)

    def _fault_begin(self, fault_id: int, fault: LinkFault) -> None:
        self._active_faults[fault.dim_index][fault_id] = fault.factor
        self._apply_capacity(fault.dim_index)

    def _fault_end(self, fault_id: int, fault: LinkFault) -> None:
        self._active_faults[fault.dim_index].pop(fault_id, None)
        self._apply_capacity(fault.dim_index)

    def _apply_capacity(self, dim_index: int) -> None:
        factor = compose_factors(self._active_faults[dim_index])
        self.fault_timeline.append((self.engine.now, dim_index, factor))
        group = self.channels[dim_index]
        group.capacity_factor = factor
        if factor > 0.0 and self._parked[dim_index]:
            resumed = self._parked[dim_index]
            self._parked[dim_index] = []
            for flow in resumed:
                self._book_flow(flow)

    # --- submission ---------------------------------------------------------
    def submit(
        self,
        request: CollectiveRequest,
        at_time: float | None = None,
        on_complete: Callable[[CollectiveResult], None] | None = None,
        scheduler: SchedulerFactory | None = None,
    ) -> CollectiveResult:
        """Issue a collective at ``at_time`` (default: current sim time)."""
        issue_time = self.engine.now if at_time is None else at_time
        _check_not_past(self.engine, request, issue_time)
        result = CollectiveResult(request=request, plan=None, issue_time=issue_time)
        self._results.append(result)
        self.engine.schedule(
            issue_time,
            lambda: self._start_collective(result, on_complete, scheduler),
        )
        return result

    def _resolve_subtopology(
        self, request: CollectiveRequest
    ) -> tuple[Topology, LatencyModel]:
        key = request.communicator_key
        cached = self._subtopo_cache.get(key)
        if cached is not None:
            return cached
        if request.dim_indices is None:
            subtopo = self.topology
        else:
            subtopo = self.topology.communicator(
                request.dim_indices, request.peer_counts
            )
        local_overrides = {
            local: self.algorithm_overrides[parent]
            for local, parent in enumerate(subtopo.parent_indices)
            if parent in self.algorithm_overrides
        }
        model = LatencyModel(
            subtopo, algorithms_for_topology(subtopo, local_overrides)
        )
        self._subtopo_cache[key] = (subtopo, model)
        return subtopo, model

    def _plan_key(
        self, request: CollectiveRequest, factory: SchedulerFactory
    ) -> tuple | None:
        if not self._plan_cache_enabled or type(factory) is not SchedulerFactory:
            return None
        return (
            factory.signature,
            request.ctype,
            request.size,
            request.communicator_key,
        )

    def _start_collective(
        self,
        result: CollectiveResult,
        on_complete: Callable[[CollectiveResult], None] | None,
        scheduler_factory: SchedulerFactory | None = None,
    ) -> None:
        request = result.request
        subtopo, model = self._resolve_subtopology(request)
        factory = scheduler_factory or self.scheduler_factory
        plan_key = self._plan_key(request, factory)
        # Degraded dimensions must look expensive to a bandwidth-aware
        # scheduler — identical discipline to the analytical backend.
        factors = tuple(group.capacity_factor for group in self.channels)
        degraded = any(factor != 1.0 for factor in factors)
        if degraded and plan_key is not None:
            plan_key = plan_key + (factors,)
        cached = self._plan_cache.get(plan_key) if plan_key is not None else None
        if cached is not None:
            plan = replace(
                cached, request=request, issue_time=self.engine.now, metadata={}
            )
        else:
            scheduler = factory.create()
            plan_model: LatencyModel = model
            if degraded:
                local = tuple(
                    factors[subtopo.parent_index(i)]
                    for i in range(subtopo.ndims)
                )
                if any(factor != 1.0 for factor in local):
                    plan_model = ScaledLatencyModel(model, local)
            plan = scheduler.plan(
                request, subtopo, plan_model, issue_time=self.engine.now
            )
            if plan_key is not None:
                self._plan_cache[plan_key] = plan
        result.plan = plan

        chunk_ops: list[list[OpState]] = []
        flows: list[_FlowState] = []
        for chunk in plan.chunks:
            ops = []
            for stage_index, stage in enumerate(chunk.stages):
                parent_dim = subtopo.parent_index(stage.dim_index)
                op = OpState(
                    collective_seq=request.request_id,
                    chunk_id=chunk.chunk_id,
                    stage_index=stage_index,
                    stage=stage,
                    parent_dim=parent_dim,
                    bytes_sent=model.bytes_per_npu(
                        stage.op, stage.stage_size, stage.dim_index
                    ),
                    transfer_time=model.chunk_load(
                        stage.op, stage.stage_size, stage.dim_index
                    ),
                    fixed_time=model.fixed_latency(stage.op, stage.dim_index),
                    priority=request.priority,
                    owner=request.owner,
                )
                ops.append(op)
            chunk_ops.append(ops)
            flows.append(self._flow_for(ops[0], subtopo, model))

        state = _CollectiveState(result, chunk_ops, on_complete)
        self._states[request.request_id] = state
        self._flow_seq[request.request_id] = len(self._flow_seq)
        self._mark_comm_active(request.owner)
        for flow in flows:
            self._start_flow(flow)

    # --- flow execution -----------------------------------------------------
    def _flow_for(
        self, op: OpState, subtopo: Topology, model: LatencyModel
    ) -> _FlowState:
        """Size one op's rounds from its algorithm on the communicator."""
        stage = op.stage
        peers = subtopo.dims[stage.dim_index].size
        rounds = model.algorithms[stage.dim_index].steps(stage.op, peers)
        if rounds < 1 or op.bytes_sent <= 0:
            return _FlowState(op, 0, self.options.mtu_bytes)
        # Event-cost bound: coarsen the MTU rather than drop bytes.
        mtu = self.options.mtu_bytes
        packets = math.ceil(op.bytes_sent / mtu)
        if packets > self.options.max_packets_per_op:
            mtu = op.bytes_sent / self.options.max_packets_per_op
        return _FlowState(op, rounds, mtu)

    def _start_flow(self, flow: _FlowState) -> None:
        now = self.engine.now
        flow.op.ready_time = now
        group = self.channels[flow.op.parent_dim]
        group.outstanding_bytes += flow.op.bytes_sent
        if flow.rounds == 0:
            # Degenerate op (single-peer dimension or zero bytes): the
            # analytical model charges it nothing beyond its fixed term —
            # it never occupies the port.
            flow.op.start_time = now
            self.engine.schedule_after(
                flow.op.fixed_time, lambda: self._complete_op(flow)
            )
            return
        if group.capacity_factor <= 0.0:
            # The dimension is dead: park until a restore lifts the
            # factor.  Parked flows resume in parking (FIFO) order.
            self._parked[flow.op.parent_dim].append(flow)
            return
        self._book_flow(flow)

    def _book_flow(self, flow: _FlowState) -> None:
        """Book the op's full byte volume through the port, contiguously.

        One booking per op: the wire occupies serialization time only, so
        concurrent ops pipeline exactly as the analytical channel's batch
        model has them (fixed latency overlaps transfer across ops).  The
        algorithm's round structure rides as a completion-latency tail —
        ``steps`` propagation traversals (one is already inside the booked
        arrivals) plus ``steps - 1`` packet-refill serializations, the
        slice-pipelined ring's exposed latency.
        """
        op = flow.op
        group = self.channels[op.parent_dim]
        op.start_time = self.engine.now
        payloads = packetize(op.bytes_sent, flow.mtu_bytes)
        wire_done = group.service_op(
            payloads,
            self.options.header_bytes,
            self.options.routing,
            (self._flow_seq[op.collective_seq], op.chunk_id, op.stage_index),
            self.engine.now,
        )
        rate = group.link_bw * group.capacity_factor
        # The refill slice is one packet — or the whole op, if it fits in
        # fewer bytes than an MTU.
        slice_bytes = min(flow.mtu_bytes, op.bytes_sent)
        pkt_ser = (slice_bytes + self.options.header_bytes) / rate
        tail = (flow.rounds - 1) * (group.dim.step_latency + pkt_ser)
        self.engine.schedule(wire_done + tail, lambda: self._complete_op(flow))

    def _complete_op(self, flow: _FlowState) -> None:
        op = flow.op
        op.end_time = self.engine.now
        group = self.channels[op.parent_dim]
        group.outstanding_bytes -= op.bytes_sent
        group.bytes_sent += op.bytes_sent
        self._dim_transfer[op.parent_dim] += op.transfer_time
        if self.record_ops:
            self._records.append(op.to_record())
            self._records_sorted = False
        state = self._states[op.collective_seq]
        ops = state.chunk_ops[op.chunk_id]
        next_index = op.stage_index + 1
        if next_index < len(ops):
            subtopo, model = self._resolve_subtopology(state.result.request)
            self._start_flow(self._flow_for(ops[next_index], subtopo, model))
        state.remaining_ops -= 1
        if state.remaining_ops == 0:
            self._finish_collective(state)

    def _finish_collective(self, state: _CollectiveState) -> None:
        state.result.completion_time = self.engine.now
        del self._states[state.result.request.request_id]
        self._mark_comm_idle_if_done(state.result.request.owner)
        if state.on_complete is not None:
            state.on_complete(state.result)

    # --- comm-active accounting (same discipline as NetworkSimulator) -------
    def _mark_comm_active(self, owner: str) -> None:
        self._inflight += 1
        if self._comm_active_since is None:
            self._comm_active_since = self.engine.now
        self._owner_inflight[owner] = self._owner_inflight.get(owner, 0) + 1
        if owner not in self._owner_active_since:
            self._owner_active_since[owner] = self.engine.now

    def _mark_comm_idle_if_done(self, owner: str) -> None:
        now = self.engine.now
        self._inflight -= 1
        if self._inflight == 0 and self._comm_active_since is not None:
            if now > self._comm_active_since:
                self._comm_active.append(Interval(self._comm_active_since, now))
            self._comm_active_since = None
        self._owner_inflight[owner] -= 1
        if self._owner_inflight[owner] == 0:
            since = self._owner_active_since.pop(owner)
            if now > since:
                self._owner_active.setdefault(owner, []).append(
                    Interval(since, now)
                )

    # --- running ------------------------------------------------------------
    def run(self, max_events: int | None = None) -> ExecutionResult:
        """Run the engine to quiescence and package the results."""
        self.engine.run(max_events=max_events)
        if self._states:
            dead = [
                group.dim_index
                for group in self.channels
                if group.capacity_factor <= 0.0
            ]
            hint = (
                f"; dimension(s) {dead} have zero capacity (failed links "
                "with no restore event) — in-flight work is parked forever"
                if dead
                else ""
            )
            raise SimulationError(
                f"{len(self._states)} collectives never completed "
                f"(deadlock or missing events){hint}"
            )
        return self.result()

    def result(self) -> ExecutionResult:
        """Snapshot results at the current simulation time (mid-run safe)."""
        if not self._results:
            raise SimulationError("no collectives were submitted")
        now = self.engine.now
        comm_active = list(self._comm_active)
        if self._comm_active_since is not None and now > self._comm_active_since:
            comm_active.append(Interval(self._comm_active_since, now))
        by_owner = {
            owner: list(intervals)
            for owner, intervals in self._owner_active.items()
        }
        for owner, since in self._owner_active_since.items():
            if now > since:
                by_owner.setdefault(owner, []).append(Interval(since, now))
        if not self._records_sorted:
            self._records.sort(key=lambda r: (r.start_time, r.dim_index))
            self._records_sorted = True
        return ExecutionResult(
            topology=self.topology,
            records=list(self._records),
            collectives=list(self._results),
            dim_transfer_seconds=list(self._dim_transfer),
            dim_busy_seconds=[g.busy_seconds for g in self.channels],
            dim_bytes=[g.bytes_sent for g in self.channels],
            dim_activity=[merge_intervals(g.activity) for g in self.channels],
            comm_active_intervals=merge_intervals(comm_active),
            comm_active_by_owner={
                owner: merge_intervals(intervals)
                for owner, intervals in sorted(by_owner.items())
            },
        )


class PacketBackend(NetworkBackend):
    """Registry wrapper building :class:`PacketNetwork`."""

    key: ClassVar[str] = "packet"
    description: ClassVar[str] = (
        "packet-level model: MTU packetization, FIFO egress queues, "
        "store-and-forward switch hops, deterministic/ECMP routing"
    )
    accepts_scheduler: ClassVar[bool] = True
    provides_result: ClassVar[bool] = True
    supports_faults: ClassVar[bool] = True
    supports_sharing: ClassVar[bool] = False
    supports_cluster: ClassVar[bool] = True

    def build(
        self,
        topology: Topology,
        *,
        scheduler: "SchedulerFactory | None" = None,
        policy: "str | IntraDimPolicy" = "SCF",
        fusion: "FusionConfig | None" = None,
        engine: "EventQueue | None" = None,
        record_ops: bool = True,
        indexed_queues: bool = True,
        plan_cache: bool = True,
        audit: bool | None = None,
        options: dict[str, Any] | None = None,
    ) -> PacketNetwork:
        # policy / fusion / indexed_queues are analytical-channel knobs
        # with no packet-level counterpart; accepted and ignored so all
        # backends build through one uniform call.
        return PacketNetwork(
            topology,
            scheduler=scheduler,
            engine=engine,
            record_ops=record_ops,
            plan_cache=plan_cache,
            audit=audit,
            options=PacketOptions.from_dict(options),
        )

    def validate_options(self, options: dict[str, Any] | None) -> None:
        PacketOptions.from_dict(options)
