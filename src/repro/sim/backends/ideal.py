"""The Table 3 "Ideal" network as a registered backend.

Folds :class:`~repro.sim.network.IdealNetwork` into the backend registry:
``backend: "ideal"`` is the registry spelling of the older
``ideal_network: true`` training flag (the flag remains an alias).  The
ideal model has no scheduler, no per-tenant accounting, and no fault
surface — the capability flags below let the spec layer reject those
combinations up front.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, ClassVar

from ..network import IdealNetwork
from .base import NetworkBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...core.policies import IntraDimPolicy
    from ...core.scheduler import SchedulerFactory
    from ...topology import Topology
    from ..engine import EventQueue
    from ..executor import FusionConfig


class IdealBackend(NetworkBackend):
    """Fluid 100%-utilization lower bound (schedule-invariant bytes)."""

    key: ClassVar[str] = "ideal"
    description: ClassVar[str] = (
        "fluid 100%-utilization lower bound (Table 3 Ideal); "
        "schedule-independent, no faults/fairness"
    )
    accepts_scheduler: ClassVar[bool] = False
    provides_result: ClassVar[bool] = False
    supports_faults: ClassVar[bool] = False
    supports_sharing: ClassVar[bool] = False
    supports_cluster: ClassVar[bool] = False

    def build(
        self,
        topology: "Topology",
        *,
        scheduler: "SchedulerFactory | None" = None,
        policy: "str | IntraDimPolicy" = "SCF",
        fusion: "FusionConfig | None" = None,
        engine: "EventQueue | None" = None,
        record_ops: bool = True,
        indexed_queues: bool = True,
        plan_cache: bool = True,
        audit: bool | None = None,
        options: dict[str, Any] | None = None,
    ) -> IdealNetwork:
        # scheduler/policy/fusion do not exist at this fidelity; they are
        # accepted (and ignored) so every backend builds through one call.
        self.validate_options(options)
        return IdealNetwork(topology, engine=engine)
