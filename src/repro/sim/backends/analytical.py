"""The default backend: the paper's analytical bandwidth model.

Wraps today's :class:`~repro.sim.network.NetworkSimulator` construction
unchanged — a scenario with ``backend: "analytical"`` (or unset) builds
exactly the object the pre-backend code built, so timelines are
bit-identical either way.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, ClassVar

from ..network import NetworkSimulator
from .base import NetworkBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...core.policies import IntraDimPolicy
    from ...core.scheduler import SchedulerFactory
    from ...topology import Topology
    from ..engine import EventQueue
    from ..executor import FusionConfig


class AnalyticalBackend(NetworkBackend):
    """Sec. 4.4 latency model over per-dimension fluid channels."""

    key: ClassVar[str] = "analytical"
    description: ClassVar[str] = (
        "paper bandwidth model: per-dimension fluid channels, "
        "alpha-beta op latency (default)"
    )
    accepts_scheduler: ClassVar[bool] = True
    provides_result: ClassVar[bool] = True
    supports_faults: ClassVar[bool] = True
    supports_sharing: ClassVar[bool] = True
    supports_cluster: ClassVar[bool] = True

    def build(
        self,
        topology: "Topology",
        *,
        scheduler: "SchedulerFactory | None" = None,
        policy: "str | IntraDimPolicy" = "SCF",
        fusion: "FusionConfig | None" = None,
        engine: "EventQueue | None" = None,
        record_ops: bool = True,
        indexed_queues: bool = True,
        plan_cache: bool = True,
        audit: bool | None = None,
        options: dict[str, Any] | None = None,
    ) -> NetworkSimulator:
        self.validate_options(options)
        return NetworkSimulator(
            topology,
            scheduler=scheduler,
            policy=policy,
            fusion=fusion,
            engine=engine,
            record_ops=record_ops,
            indexed_queues=indexed_queues,
            plan_cache=plan_cache,
            audit=audit,
        )
