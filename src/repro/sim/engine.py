"""Minimal deterministic discrete-event engine.

The network executor, the schedule-consistency pre-simulation, and the
training-loop simulator all share this engine.  Events are ``(time, seq,
callback)`` triples; ``seq`` is a monotonically increasing tie-breaker so
simultaneous events fire in scheduling order, which keeps every simulation
fully deterministic — the property the paper's intra-dimension consistency
mechanism relies on ("the simulation is deterministic, so all NPUs produce
the same intra-dimension ordering", Sec. 4.6.2).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from ..errors import SimulationError


class EventQueue:
    """A deterministic priority queue of timed callbacks."""

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = start_time
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._events_processed = 0

    @property
    def events_processed(self) -> int:
        """Number of callbacks fired so far (diagnostics)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still scheduled."""
        return len(self._heap)

    def schedule(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire at absolute ``time``.

        Scheduling in the past is an error: it would silently reorder
        history and mask bugs in the callers.
        """
        if time < self.now - 1e-15:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self.now}"
            )
        heapq.heappush(self._heap, (time, next(self._seq), callback))

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` after a non-negative ``delay``."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        self.schedule(self.now + delay, callback)

    def step(self) -> bool:
        """Fire the next event; returns ``False`` when the queue is empty."""
        if not self._heap:
            return False
        time, _seq, callback = heapq.heappop(self._heap)
        self.now = time
        self._events_processed += 1
        callback()
        return True

    def run(self, max_events: int | None = None) -> None:
        """Run until no events remain (or ``max_events`` fired).

        ``max_events`` guards against accidental infinite self-rescheduling
        loops in experiments; production callers leave it ``None``.  The
        budget is only *exhausted* when events are still pending after
        ``max_events`` callbacks fired — a simulation that legitimately
        finishes in exactly ``max_events`` events completes normally.
        """
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired >= max_events:
                if self._heap:
                    raise SimulationError(
                        f"event budget exhausted: {len(self._heap)} event(s) "
                        f"still pending after {max_events} fired"
                    )
                return

    def run_until(self, time: float) -> None:
        """Fire all events up to and including ``time``, then advance ``now``.

        Events scheduled exactly at ``time`` do fire (the comparison is
        ``<=``): callers use this to advance a compute clock while letting
        network completions at the boundary instant land first.
        """
        while self._heap and self._heap[0][0] <= time:
            self.step()
        if time > self.now:
            self.now = time
