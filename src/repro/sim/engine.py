"""Minimal deterministic discrete-event engine.

The network executor, the schedule-consistency pre-simulation, and the
training-loop simulator all share this engine.  Events are ``(time, seq,
handle)`` triples; ``seq`` is a monotonically increasing tie-breaker so
simultaneous events fire in scheduling order, which keeps every simulation
fully deterministic — the property the paper's intra-dimension consistency
mechanism relies on ("the simulation is deterministic, so all NPUs produce
the same intra-dimension ordering", Sec. 4.6.2).

Hot-path provisions (see ``docs/performance.md``):

* :meth:`EventQueue.schedule` returns an :class:`EventHandle` that the
  caller may :meth:`~EventHandle.cancel` before it fires.  The executor
  uses this to retract finish events that a preemption or a weighted-share
  reweight made obsolete, instead of letting them fire later as stale
  no-ops.
* Cancelled events are removed lazily; when more than half of the heap is
  dead (and at least ``compaction_min_dead`` entries are), the heap is
  compacted in one O(n) sweep, so reweight storms in many-tenant cluster
  runs cannot grow the heap monotonically.
* The past-time guard uses a tolerance *relative* to the current time: an
  absolute epsilon below one ulp would spuriously reject events computed
  with ordinary float round-off once ``now`` is large (long steady-state
  cluster runs).  Times inside the tolerance are clamped to ``now`` so the
  clock never runs backwards.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from typing import TYPE_CHECKING

from ..errors import EventBudgetError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .audit import InvariantAuditor

#: Relative past-time tolerance: ~5000 ulps at any magnitude, which absorbs
#: accumulated float round-off in long event chains without masking real
#: scheduling-in-the-past bugs (those are off by whole transfer times).
_PAST_RTOL = 1e-12


def times_close(a: float, b: float, rtol: float = _PAST_RTOL) -> bool:
    """Whether two simulated timestamps coincide up to float round-off.

    The sanctioned way to compare timestamps for equality: simulated times
    are sums of float transfer/latency terms, so two events "at the same
    instant" may differ by accumulated round-off.  Uses the same relative
    tolerance as the engine's past-time guard (replint rule RPL005 points
    here).
    """
    return abs(a - b) <= rtol * max(1.0, abs(a), abs(b))


class EventHandle:
    """A scheduled event; may be cancelled until the moment it fires."""

    __slots__ = ("time", "callback", "cancelled", "fired", "_queue")

    def __init__(
        self, time: float, callback: Callable[[], None], queue: "EventQueue"
    ) -> None:
        self.time = time
        self.callback = callback
        self.cancelled = False
        self.fired = False
        self._queue = queue

    @property
    def active(self) -> bool:
        """Still pending: neither fired nor cancelled."""
        return not (self.cancelled or self.fired)

    def cancel(self) -> bool:
        """Retract the event; returns True if it was still pending."""
        return self._queue.cancel(self)


class EventQueue:
    """A deterministic priority queue of timed callbacks.

    Parameters
    ----------
    start_time:
        Initial simulation time.
    cancellation:
        When False, :meth:`cancel` is a no-op and retracted events stay in
        the heap to fire as caller-guarded stale no-ops — the pre-indexing
        behavior, kept selectable so the perf harness and the determinism
        property tests can compare against it.
    compaction_min_dead:
        Minimum number of cancelled entries before a compaction sweep is
        considered (avoids churn on tiny heaps).
    """

    def __init__(
        self,
        start_time: float = 0.0,
        cancellation: bool = True,
        compaction_min_dead: int = 64,
    ) -> None:
        self.now = start_time
        self._heap: list[tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._cancellation = cancellation
        self._compaction_min_dead = compaction_min_dead
        self._dead = 0
        #: Diagnostics for the perf harness.
        self.peak_pending = 0
        self.cancelled_events = 0
        self.compactions = 0
        #: Optional runtime invariant auditor (see :mod:`repro.sim.audit`).
        #: A pure observer, consulted behind ``is not None`` guards, so the
        #: timeline is bit-identical whether or not one is attached.
        self.auditor: "InvariantAuditor | None" = None

    @property
    def events_processed(self) -> int:
        """Number of callbacks fired so far (diagnostics)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still scheduled."""
        return len(self._heap) - self._dead

    @property
    def heap_size(self) -> int:
        """Physical heap length, including not-yet-swept cancelled entries."""
        return len(self._heap)

    def past_tolerance(self) -> float:
        """How far before ``now`` a scheduled time may fall (float slack)."""
        return _PAST_RTOL * max(1.0, abs(self.now))

    def schedule(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to fire at absolute ``time``.

        Scheduling in the past is an error: it would silently reorder
        history and mask bugs in the callers.  Times within float round-off
        of ``now`` (see :meth:`past_tolerance`) are clamped to ``now``.
        """
        if self.auditor is not None:
            self.auditor.on_event_scheduled(self, time)
        if time < self.now - self.past_tolerance():
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self.now}"
            )
        if time < self.now:
            time = self.now
        handle = EventHandle(time, callback, self)
        heapq.heappush(self._heap, (time, next(self._seq), handle))
        live = len(self._heap) - self._dead
        if live > self.peak_pending:
            self.peak_pending = live
        return handle

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` after a non-negative ``delay``."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule(self.now + delay, callback)

    def cancel(self, handle: EventHandle | None) -> bool:
        """Retract a pending event; returns True if it was still pending.

        With ``cancellation=False`` this is a no-op (the caller's own
        staleness guard must then absorb the eventual firing).
        """
        if not self._cancellation:
            return False
        if handle is None or handle.cancelled or handle.fired:
            return False
        handle.cancelled = True
        self._dead += 1
        self.cancelled_events += 1
        if (
            self._dead >= self._compaction_min_dead
            and self._dead * 2 >= len(self._heap)
        ):
            self._compact()
        return True

    def _compact(self) -> None:
        """Sweep cancelled entries out of the heap in one O(n) pass."""
        self._heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._dead = 0
        self.compactions += 1

    def _prune(self) -> None:
        """Drop cancelled entries from the heap top."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._dead -= 1

    def step(self) -> bool:
        """Fire the next live event; returns ``False`` when none remain."""
        self._prune()
        if not self._heap:
            return False
        time, _seq, handle = heapq.heappop(self._heap)
        if self.auditor is not None:
            self.auditor.on_event_fire(self, time, handle)
        self.now = time
        self._events_processed += 1
        handle.fired = True
        handle.callback()
        return True

    def run(self, max_events: int | None = None) -> None:
        """Run until no events remain (or ``max_events`` fired).

        ``max_events`` guards against accidental infinite self-rescheduling
        loops in experiments; production callers leave it ``None``.  The
        budget is only *exhausted* when live events are still pending after
        ``max_events`` callbacks fired — a simulation that legitimately
        finishes in exactly ``max_events`` events completes normally.
        """
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired >= max_events:
                if self.pending:
                    raise EventBudgetError(
                        f"event budget exhausted: {self.pending} event(s) "
                        f"still pending after {max_events} fired"
                    )
                return

    def run_until(self, time: float, max_events: int | None = None) -> None:
        """Fire all events up to and including ``time``, then advance ``now``.

        Events scheduled exactly at ``time`` do fire (the comparison is
        ``<=``): callers use this to advance a compute clock while letting
        network completions at the boundary instant land first.

        ``max_events`` bounds the callbacks fired, with the same exhausted-
        only-if-work-remains contract as :meth:`run` — the budget errors
        only when another live event at or before ``time`` is still
        pending.
        """
        fired = 0
        while True:
            self._prune()
            if not self._heap or self._heap[0][0] > time:
                break
            if max_events is not None and fired >= max_events:
                raise EventBudgetError(
                    f"event budget exhausted: event(s) still pending at or "
                    f"before t={time:g} after {max_events} fired"
                )
            self.step()
            fired += 1
        if time > self.now:
            self.now = time
