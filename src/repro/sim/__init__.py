"""Discrete-event network simulation substrate."""

from .audit import InvariantAuditor, InvariantViolation, audit_from_env, resolve_audit
from .backends import (
    DEFAULT_BACKEND,
    NetworkBackend,
    PacketNetwork,
    PacketOptions,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend_key,
)
from .engine import EventHandle, EventQueue, times_close
from .executor import ChannelStats, DimensionChannel, FusionConfig, OpState
from .faults import (
    MIN_CAPACITY_FACTOR,
    FaultSchedule,
    JobFaultPolicy,
    LinkFault,
    ScaledLatencyModel,
    compose_factors,
    fault_substream,
)
from .network import (
    CollectiveResult,
    ExecutionResult,
    IdealNetwork,
    NetworkSimulator,
)
from .stats import (
    UtilizationReport,
    activity_rate_series,
    bw_utilization,
    dimension_activity_rates,
    mean_activity_rate,
)
from .timeline import Interval, OpRecord, merge_intervals, render_gantt, total_length

__all__ = [
    "EventQueue",
    "EventHandle",
    "times_close",
    "InvariantAuditor",
    "InvariantViolation",
    "audit_from_env",
    "resolve_audit",
    "FusionConfig",
    "OpState",
    "DimensionChannel",
    "ChannelStats",
    "LinkFault",
    "FaultSchedule",
    "JobFaultPolicy",
    "ScaledLatencyModel",
    "MIN_CAPACITY_FACTOR",
    "compose_factors",
    "fault_substream",
    "NetworkSimulator",
    "IdealNetwork",
    "CollectiveResult",
    "ExecutionResult",
    "NetworkBackend",
    "PacketNetwork",
    "PacketOptions",
    "DEFAULT_BACKEND",
    "backend_names",
    "get_backend",
    "register_backend",
    "resolve_backend_key",
    "UtilizationReport",
    "bw_utilization",
    "activity_rate_series",
    "dimension_activity_rates",
    "mean_activity_rate",
    "Interval",
    "OpRecord",
    "merge_intervals",
    "total_length",
    "render_gantt",
]
