"""Opt-in runtime invariant auditor (sanitizer layer).

The static layer (``repro.devtools.replint``, mypy) forbids *sources* of
nondeterminism at review time; this module checks the *conservation laws*
the simulator's correctness rests on while a simulation actually runs:

* **Event time sanity** — the engine clock is monotonic, event times are
  finite and non-negative, and a cancelled :class:`~repro.sim.engine.
  EventHandle` never fires.
* **Byte conservation** — per dimension channel, at every enqueue and
  completion: bytes admitted = bytes completed + bytes outstanding.
* **Rate capacity** — under weighted sharing, the per-tenant rates are
  positive and sum to at most the wire's capacity (1.0) after every
  reschedule.
* **Stats debit/credit balance** — preemption debits exactly what segment
  starts credited: whenever a channel goes idle, its cumulative
  :class:`~repro.sim.executor.ChannelStats` must equal the sum over
  *completed* batches of their transfer seconds / bytes / fixed latency.

The auditor is a pure observer: it is consulted behind ``if auditor is
not None`` guards, schedules no events, and mutates no simulator state, so
an audited run's timeline is bit-identical to an unaudited one (enforced
by ``tests/test_perf_equivalence.py``).

Enable it with ``run(spec, audit=True)``, the CLI ``--audit`` flag, or the
``THEMIS_AUDIT=1`` environment variable; a violated invariant raises
:class:`InvariantViolation` with the offending channel/op context attached.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import EventHandle, EventQueue
    from .executor import DimensionChannel, OpState, _FlowState, _RunningBatch

#: Relative tolerance for conserved-quantity comparisons.  Byte and time
#: ledgers accumulate float round-off proportional to the running totals;
#: real conservation bugs are off by whole ops, many orders above this.
_CONSERVATION_RTOL = 1e-6
#: Absolute slack for the shared-wire rate-capacity check (rates are
#: ``w_i / sum(w)`` so their sum is 1.0 up to division round-off).
_RATE_ATOL = 1e-9

_FALSY = frozenset({"", "0", "false", "no", "off"})


def audit_from_env() -> bool:
    """Whether ``THEMIS_AUDIT`` requests auditing (unset/falsy ⇒ off)."""
    return os.environ.get("THEMIS_AUDIT", "").strip().lower() not in _FALSY


def resolve_audit(audit: bool | None) -> bool:
    """Resolve an ``audit`` parameter: ``None`` defers to the environment."""
    return audit_from_env() if audit is None else bool(audit)


class InvariantViolation(SimulationError):
    """A runtime invariant was violated; carries structured context.

    Attributes
    ----------
    invariant:
        Stable identifier of the violated invariant (e.g.
        ``"byte-conservation"``), for tests and triage.
    time:
        Simulation time at which the violation was detected.
    dim_index:
        Offending dimension channel, when the invariant is per-channel.
    context:
        Free-form numeric context (ledger values, offending handle state).
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        *,
        time: float | None = None,
        dim_index: int | None = None,
        context: dict[str, object] | None = None,
    ) -> None:
        self.invariant = invariant
        self.time = time
        self.dim_index = dim_index
        self.context = dict(context or {})
        where = []
        if dim_index is not None:
            where.append(f"dim{dim_index}")
        if time is not None:
            where.append(f"t={time!r}")
        suffix = f" [{' '.join(where)}]" if where else ""
        detail = ""
        if self.context:
            pairs = ", ".join(f"{k}={v!r}" for k, v in self.context.items())
            detail = f" ({pairs})"
        super().__init__(f"invariant {invariant!r} violated: {message}{suffix}{detail}")


@dataclass
class _ChannelLedger:
    """Shadow accounting for one dimension channel."""

    admitted_bytes: float = 0.0
    completed_bytes: float = 0.0
    completed_transfer_seconds: float = 0.0
    completed_fixed_seconds: float = 0.0
    started_batches: int = 0
    completed_batches: int = 0


@dataclass
class InvariantAuditor:
    """Observer-only invariant checker shared by one engine and its channels.

    One auditor instance is attached to an :class:`~repro.sim.engine.
    EventQueue` and every :class:`~repro.sim.executor.DimensionChannel`
    built on it (see ``NetworkSimulator(audit=True)``).  All hooks are
    read-only with respect to simulator state.
    """

    checks_run: int = 0
    #: Keyed by channel object (not dim index): co-tenant simulators sharing
    #: one engine each have their own dim0..dimN channels.  The map is never
    #: iterated, so object-identity keys cannot leak into event ordering.
    _ledgers: "dict[DimensionChannel, _ChannelLedger]" = field(default_factory=dict)
    #: Jobs currently holding a concurrency slot (admitted, not departed).
    _admitted_jobs: set[str] = field(default_factory=set)
    #: Jobs whose slot was already recycled (departed exactly once).
    _departed_jobs: set[str] = field(default_factory=set)

    # --- engine hooks -------------------------------------------------------
    def on_event_scheduled(self, queue: "EventQueue", time: float) -> None:
        """Scheduled times must be finite (NaN would corrupt heap order)."""
        self.checks_run += 1
        if math.isnan(time) or math.isinf(time):
            raise InvariantViolation(
                "finite-event-time",
                f"event scheduled at non-finite time {time!r}",
                time=queue.now,
            )

    def on_event_fire(
        self, queue: "EventQueue", time: float, handle: "EventHandle"
    ) -> None:
        """Clock monotonicity, non-negative time, cancelled-never-fires."""
        self.checks_run += 1
        if handle.cancelled:
            raise InvariantViolation(
                "cancelled-event-fired",
                "a cancelled event handle reached the firing path",
                time=time,
                context={"scheduled_time": handle.time},
            )
        if time < queue.now:
            raise InvariantViolation(
                "monotonic-time",
                f"event at {time!r} fires before current time {queue.now!r}",
                time=queue.now,
            )
        if time < 0.0:
            raise InvariantViolation(
                "non-negative-time",
                f"event fires at negative time {time!r}",
                time=time,
            )

    # --- cluster job-slot hooks ---------------------------------------------
    def on_job_admitted(
        self, name: str, *, time: float, live: int, cap: int | None
    ) -> None:
        """Admission: each job takes exactly one slot, within the cap."""
        self.checks_run += 1
        if name in self._admitted_jobs or name in self._departed_jobs:
            raise InvariantViolation(
                "job-slot",
                f"job {name!r} admitted twice",
                time=time,
            )
        self._admitted_jobs.add(name)
        if live < 1:
            raise InvariantViolation(
                "job-slot",
                f"live-job count {live} < 1 right after an admission",
                time=time,
            )
        if cap is not None and live > cap:
            raise InvariantViolation(
                "job-slot",
                f"admission pushed live-job count to {live}, above the "
                f"max_concurrent cap {cap}",
                time=time,
                context={"job": name},
            )

    def on_job_departed(self, name: str, *, time: float, live: int) -> None:
        """Departure: every slot is freed exactly once, never below zero."""
        self.checks_run += 1
        if name not in self._admitted_jobs:
            message = (
                f"job {name!r} freed its slot twice"
                if name in self._departed_jobs
                else f"job {name!r} departed without being admitted"
            )
            raise InvariantViolation("job-slot", message, time=time)
        self._admitted_jobs.discard(name)
        self._departed_jobs.add(name)
        if live < 0:
            raise InvariantViolation(
                "job-slot",
                f"live-job count went negative ({live}) at a departure",
                time=time,
                context={"job": name},
            )

    # --- channel hooks ------------------------------------------------------
    def register_channel(self, channel: "DimensionChannel") -> None:
        self._ledgers[channel] = _ChannelLedger()

    def _ledger(self, channel: "DimensionChannel") -> _ChannelLedger:
        ledger = self._ledgers.get(channel)
        if ledger is None:
            ledger = _ChannelLedger()
            self._ledgers[channel] = ledger
        return ledger

    def _byte_tolerance(self, ledger: _ChannelLedger) -> float:
        return _CONSERVATION_RTOL * max(1.0, ledger.admitted_bytes)

    def _check_conservation(
        self, channel: "DimensionChannel", ledger: _ChannelLedger, when: str
    ) -> None:
        self.checks_run += 1
        outstanding = channel._outstanding_bytes
        imbalance = ledger.admitted_bytes - ledger.completed_bytes - outstanding
        if abs(imbalance) > self._byte_tolerance(ledger):
            raise InvariantViolation(
                "byte-conservation",
                f"admitted != completed + outstanding at {when}",
                time=channel.engine.now,
                dim_index=channel.dim_index,
                context={
                    "admitted": ledger.admitted_bytes,
                    "completed": ledger.completed_bytes,
                    "outstanding": outstanding,
                    "imbalance": imbalance,
                },
            )
        if outstanding < -self._byte_tolerance(ledger):
            raise InvariantViolation(
                "byte-conservation",
                "outstanding bytes went negative",
                time=channel.engine.now,
                dim_index=channel.dim_index,
                context={"outstanding": outstanding},
            )

    def on_enqueue(self, channel: "DimensionChannel", op: "OpState") -> None:
        ledger = self._ledger(channel)
        ledger.admitted_bytes += op.bytes_sent
        self._check_conservation(channel, ledger, "enqueue")

    def on_batch_start(
        self, channel: "DimensionChannel", batch: "list[OpState]"
    ) -> None:
        self._ledger(channel).started_batches += 1

    def on_batch_complete(
        self, channel: "DimensionChannel", batch: "list[OpState]"
    ) -> None:
        """Completion: conservation, then debit/credit balance at idle."""
        ledger = self._ledger(channel)
        ledger.completed_bytes += sum(op.bytes_sent for op in batch)
        ledger.completed_transfer_seconds += sum(op.transfer_time for op in batch)
        ledger.completed_fixed_seconds += max(op.fixed_time for op in batch)
        ledger.completed_batches += 1
        self._check_conservation(channel, ledger, "completion")
        # The balance only closes when every started batch has completed:
        # a successor batch may occupy the wire (or sit in the pipelined
        # fixed-latency shadow, where ``has_work`` is already False) with
        # its stats credited but its completion still pending.
        if (
            not channel.has_work
            and ledger.started_batches == ledger.completed_batches
        ):
            self._check_stats_balance(channel, ledger)

    def _check_stats_balance(
        self, channel: "DimensionChannel", ledger: _ChannelLedger
    ) -> None:
        """At idle, cumulative stats == sum over completed batches.

        Segment starts credit :class:`ChannelStats` and preemption debits
        it; when no work is left on the channel every credited segment
        belongs to a completed batch, so any residual means a debit/credit
        mismatch (lost or double-counted work).
        """
        self.checks_run += 1
        stats = channel.stats
        pairs = (
            (
                "transfer_seconds",
                stats.transfer_seconds,
                ledger.completed_transfer_seconds,
            ),
            ("bytes_sent", stats.bytes_sent, ledger.completed_bytes),
            ("fixed_seconds", stats.fixed_seconds, ledger.completed_fixed_seconds),
        )
        for name, credited, expected in pairs:
            tolerance = _CONSERVATION_RTOL * max(1.0, abs(expected))
            if abs(credited - expected) > tolerance:
                raise InvariantViolation(
                    "stats-balance",
                    f"ChannelStats.{name} diverged from completed batches "
                    "(preemption debit/credit mismatch)",
                    time=channel.engine.now,
                    dim_index=channel.dim_index,
                    context={
                        "credited": credited,
                        "expected": expected,
                        "batches": ledger.completed_batches,
                    },
                )

    def on_preempt(
        self, channel: "DimensionChannel", running: "_RunningBatch"
    ) -> None:
        """After a preemption debit: leftover work and stats stay sane."""
        self.checks_run += 1
        if running.remaining <= 0.0:
            raise InvariantViolation(
                "preemption-balance",
                "preempted batch retained no remaining transfer work",
                time=channel.engine.now,
                dim_index=channel.dim_index,
                context={"remaining": running.remaining},
            )
        stats = channel.stats
        slack = _CONSERVATION_RTOL * max(1.0, abs(stats.busy_seconds))
        for name, value in (
            ("busy_seconds", stats.busy_seconds),
            ("transfer_seconds", stats.transfer_seconds),
            ("fixed_seconds", stats.fixed_seconds),
            ("bytes_sent", stats.bytes_sent),
        ):
            if value < -slack:
                raise InvariantViolation(
                    "preemption-balance",
                    f"preemption debit drove ChannelStats.{name} negative",
                    time=channel.engine.now,
                    dim_index=channel.dim_index,
                    context={name: value},
                )

    def on_flows_rescheduled(
        self, channel: "DimensionChannel", flows: "dict[str, _FlowState]"
    ) -> None:
        """After a reweight: rates positive, live capacity respected.

        On a degraded wire the rates must sum to the live
        ``capacity_factor`` rather than 1.0, and on a *failed* wire
        (factor zero) every flow must be parked at rate exactly zero —
        a positive rate there would drain bytes through a dead link.
        """
        self.checks_run += 1
        if not flows:
            return
        capacity = channel.capacity_factor
        top_priority = max(flow.priority for flow in flows.values())
        total_rate = 0.0
        for owner, flow in flows.items():
            if capacity <= 0.0:
                if flow.rate != 0.0:
                    raise InvariantViolation(
                        "rate-capacity",
                        f"tenant {owner!r} drains through a failed link",
                        time=channel.engine.now,
                        dim_index=channel.dim_index,
                        context={"rate": flow.rate},
                    )
            elif flow.rate <= 0.0:
                # Under strict-priority sharing (the fluid backend's
                # preemption model) a lower-priority flow legitimately
                # parks at rate zero; a *top*-priority flow must drain.
                if not (
                    channel.priority_sharing
                    and flow.priority < top_priority
                ):
                    raise InvariantViolation(
                        "rate-capacity",
                        f"tenant {owner!r} assigned non-positive rate",
                        time=channel.engine.now,
                        dim_index=channel.dim_index,
                        context={"rate": flow.rate},
                    )
            if flow.remaining < -_RATE_ATOL:
                raise InvariantViolation(
                    "rate-capacity",
                    f"tenant {owner!r} has negative remaining work",
                    time=channel.engine.now,
                    dim_index=channel.dim_index,
                    context={"remaining": flow.remaining},
                )
            total_rate += flow.rate
        if total_rate > capacity + _RATE_ATOL:
            raise InvariantViolation(
                "rate-capacity",
                "share-weight rates exceed channel capacity",
                time=channel.engine.now,
                dim_index=channel.dim_index,
                context={
                    "total_rate": total_rate,
                    "capacity_factor": capacity,
                    "tenants": sorted(flows),
                },
            )

    def on_capacity_change(
        self, channel: "DimensionChannel", old: float, new: float
    ) -> None:
        """After a fault inject/restore: the factor stays in [0, 1] and the
        change moved no bytes (conservation holds across the transition).

        "Parked work resumes exactly once" needs no dedicated counter: a
        double resume would double-credit :class:`ChannelStats` and trip
        :meth:`_check_stats_balance` at idle, and a lost batch would leave
        ``admitted > completed + outstanding`` in the conservation check.
        """
        self.checks_run += 1
        if not 0.0 <= new <= 1.0 or new != new:
            raise InvariantViolation(
                "capacity-bounds",
                f"capacity factor left [0, 1]: {old} -> {new}",
                time=channel.engine.now,
                dim_index=channel.dim_index,
                context={"old": old, "new": new},
            )
        self._check_conservation(channel, self._ledger(channel), "capacity change")
