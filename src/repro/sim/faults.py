"""Fault layer: link degradation schedules and job failure policies.

Networks misbehave.  Links degrade when a cable renegotiates to a lower
rate, flap when an optic is marginal, and fail outright; training jobs
crash and need retries.  Themis's headline claim — bandwidth-*aware*
chunk scheduling adapts to observed per-dimension bandwidth — is only
interesting if the observed bandwidth can change under it, so this
module defines the deterministic fault model the simulators inject:

* :class:`LinkFault` — one timed capacity event on one topology
  dimension (``capacity *= factor`` at ``start``, restored at
  ``start + duration``; ``factor=0`` is a full failure, ``duration=None``
  is persistent).
* :class:`FaultSchedule` — an immutable collection of link faults plus
  seeded generators for transient *flaps* and persistent *straggler*
  dimensions.  Generation draws from disjoint SHA-256 substreams (the
  same idiom as the cluster trace generators), so every dimension's
  fault pattern is a pure function of ``(seed, dim)`` — independent of
  which other dimensions are faulted and of iteration order.
* :class:`JobFaultPolicy` — job-level crash hazard with bounded retries,
  exponential backoff + jitter, and optional checkpoint-interval restart
  semantics (progress rolls back to the last checkpoint).
* :class:`ScaledLatencyModel` — the planner's view of a degraded
  network: per-dimension chunk loads divided by the live capacity
  factor, so a bandwidth-aware scheduler *sees* the slow dimension and
  routes around it while the baseline stays oblivious.

Capacities are multiplicative: overlapping faults on one dimension
compose as the product of their factors, and restoring one fault
recomputes the product of the survivors (never divides out, so a
restore after a full failure cannot resurrect precision noise).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from ..collectives.types import PhaseOp
from ..core.latency_model import LatencyModel
from ..errors import ConfigError

__all__ = [
    "MIN_CAPACITY_FACTOR",
    "LinkFault",
    "FaultSchedule",
    "JobFaultPolicy",
    "ScaledLatencyModel",
    "compose_factors",
    "fault_substream",
]

#: Capacity factors below this clamp to a full failure: an event horizon
#: short of float underflow, so a "degraded" link can never schedule a
#: completion at an astronomically-far (or infinite) time.
MIN_CAPACITY_FACTOR = 1e-9


def fault_substream(seed: int, label: str) -> random.Random:
    """A seeded RNG on a disjoint substream derived from ``(seed, label)``.

    Same construction as the cluster trace generators: SHA-256 over
    ``"{seed}:{label}"`` keys the stream, so substreams for different
    labels are independent and adding a new label never perturbs the
    draws of an existing one.
    """
    digest = hashlib.sha256(f"{seed}:{label}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


@dataclass(frozen=True)
class LinkFault:
    """One capacity event: dimension ``dim_index`` runs at ``factor`` from
    ``start`` until ``start + duration`` (forever when ``duration`` is
    ``None``).  ``factor=0.0`` is a full link failure."""

    dim_index: int
    start: float
    factor: float
    duration: float | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.dim_index < 0:
            raise ConfigError(
                f"fault dim_index must be >= 0, got {self.dim_index}"
            )
        if not self.start >= 0.0:
            raise ConfigError(f"fault start must be >= 0, got {self.start}")
        if not 0.0 <= self.factor <= 1.0:
            raise ConfigError(
                "fault factor must be in [0, 1] (a degraded link cannot "
                f"exceed nominal capacity), got {self.factor}"
            )
        if self.duration is not None and not self.duration > 0.0:
            raise ConfigError(
                f"fault duration must be positive (or None), got "
                f"{self.duration}"
            )
        if self.factor < MIN_CAPACITY_FACTOR and self.factor != 0.0:
            # Near-zero capacity behaves as a failure; make that explicit
            # at construction instead of surprising the channel layer.
            object.__setattr__(self, "factor", 0.0)

    @property
    def end(self) -> float | None:
        """Restore time, or ``None`` for a persistent fault."""
        if self.duration is None:
            return None
        return self.start + self.duration


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, deterministic set of :class:`LinkFault` events.

    Build explicitly from events, generate with :meth:`flaps` /
    :meth:`stragglers`, and compose with ``+``.  The schedule is pure
    data: applying it is the network simulator's job
    (:meth:`repro.sim.network.NetworkSimulator.apply_fault_schedule`).
    """

    events: tuple[LinkFault, ...] = ()

    def __post_init__(self) -> None:
        events = tuple(
            e if isinstance(e, LinkFault) else LinkFault(**e)
            for e in self.events
        )
        object.__setattr__(self, "events", events)

    def __add__(self, other: "FaultSchedule") -> "FaultSchedule":
        return FaultSchedule(self.events + other.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def restricted_to(self, ndims: int) -> "FaultSchedule":
        """Validate every event's dimension against an ``ndims`` platform."""
        for event in self.events:
            if event.dim_index >= ndims:
                raise ConfigError(
                    f"fault targets dimension {event.dim_index} but the "
                    f"topology has {ndims} dimension(s)"
                )
        return self

    def active_factor(self, dim_index: int, time: float) -> float:
        """Product of the factors of all faults live on ``dim_index`` at
        ``time`` (1.0 when none) — the capacity the channel would carry."""
        factor = 1.0
        for event in self.events:
            if event.dim_index != dim_index:
                continue
            end = event.end
            if event.start <= time and (end is None or time < end):
                factor *= event.factor
        return factor

    @classmethod
    def flaps(
        cls,
        dims: tuple[int, ...] | list[int],
        *,
        seed: int,
        count: int = 2,
        factor: float = 0.5,
        mean_interval: float = 0.01,
        mean_duration: float = 0.005,
        start: float = 0.0,
    ) -> "FaultSchedule":
        """Transient flaps: each dimension in ``dims`` drops to ``factor``
        ``count`` times, with exponentially distributed gaps
        (``mean_interval``) and hold times (``mean_duration``).

        Each dimension draws from its own substream (label
        ``flap:dim{d}``), so the flap pattern on one dimension is
        unaffected by which other dimensions flap.
        """
        if count < 0:
            raise ConfigError(f"flap count must be >= 0, got {count}")
        if mean_interval <= 0 or mean_duration <= 0:
            raise ConfigError(
                "flap mean_interval and mean_duration must be positive, got "
                f"{mean_interval} / {mean_duration}"
            )
        events: list[LinkFault] = []
        for dim in dims:
            rng = fault_substream(seed, f"flap:dim{dim}")
            at = start
            for flap in range(count):
                at += rng.expovariate(1.0 / mean_interval)
                duration = rng.expovariate(1.0 / mean_duration)
                events.append(
                    LinkFault(
                        dim_index=dim,
                        start=at,
                        factor=factor,
                        duration=duration,
                        label=f"flap{flap}:dim{dim}",
                    )
                )
                at += duration
        return cls(tuple(events))

    @classmethod
    def stragglers(
        cls,
        dims: tuple[int, ...] | list[int],
        *,
        seed: int,
        factor: float = 0.5,
        probability: float = 1.0,
        start: float = 0.0,
    ) -> "FaultSchedule":
        """Persistent stragglers: each dimension in ``dims`` independently
        becomes (with ``probability``, substream ``straggler:dim{d}``) a
        permanently degraded link at ``factor`` from ``start`` on."""
        if not 0.0 <= probability <= 1.0:
            raise ConfigError(
                f"straggler probability must be in [0, 1], got {probability}"
            )
        events: list[LinkFault] = []
        for dim in dims:
            rng = fault_substream(seed, f"straggler:dim{dim}")
            if rng.random() < probability:
                events.append(
                    LinkFault(
                        dim_index=dim,
                        start=start,
                        factor=factor,
                        duration=None,
                        label=f"straggler:dim{dim}",
                    )
                )
        return cls(tuple(events))


@dataclass(frozen=True)
class JobFaultPolicy:
    """Job-level crash/retry semantics for the cluster simulator.

    While a job runs, crashes arrive as a Poisson process with hazard
    ``crash_rate`` (per simulated second, per-job substream
    ``crash:{name}`` off ``seed``).  A crash aborts the attempt: progress
    rolls back to the last checkpoint (every ``checkpoint_iterations``
    iterations; to zero without checkpoints), the wasted time since that
    checkpoint is charged as lost work, and the job retries after
    ``backoff_base * backoff_factor**(k-1)`` seconds (k-th retry) plus a
    uniform jitter fraction and ``restart_overhead``.  After
    ``max_retries`` retries the next crash is terminal: the job is marked
    failed and releases its slot.
    """

    crash_rate: float
    max_retries: int = 3
    backoff_base: float = 1e-3
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5
    checkpoint_iterations: int | None = None
    restart_overhead: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.crash_rate > 0.0:
            raise ConfigError(
                f"crash_rate must be positive, got {self.crash_rate}"
            )
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if not self.backoff_base > 0.0:
            raise ConfigError(
                f"backoff_base must be positive, got {self.backoff_base}"
            )
        if not self.backoff_factor >= 1.0:
            raise ConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.backoff_jitter:
            raise ConfigError(
                f"backoff_jitter must be >= 0, got {self.backoff_jitter}"
            )
        if (
            self.checkpoint_iterations is not None
            and self.checkpoint_iterations < 1
        ):
            raise ConfigError(
                "checkpoint_iterations must be >= 1 (or None), got "
                f"{self.checkpoint_iterations}"
            )
        if self.restart_overhead < 0.0:
            raise ConfigError(
                f"restart_overhead must be >= 0, got {self.restart_overhead}"
            )

    def retry_delay(self, retry_number: int, rng: random.Random) -> float:
        """Backoff before the ``retry_number``-th retry (1-based)."""
        delay = self.backoff_base * self.backoff_factor ** (retry_number - 1)
        delay *= 1.0 + self.backoff_jitter * rng.random()
        return delay + self.restart_overhead


class ScaledLatencyModel(LatencyModel):
    """A latency model whose per-dimension bandwidth terms reflect live
    capacity factors: ``chunk_load`` is divided by the factor, so a
    half-capacity dimension looks twice as expensive to the planner.

    Fixed (hop/step) latencies are unchanged — degradation models a slow
    wire, not a longer path.  Zero factors clamp to
    :data:`MIN_CAPACITY_FACTOR` so the planner sees "avoid at almost any
    cost" rather than an infinity that would poison schedule arithmetic.
    """

    def __init__(self, base: LatencyModel, factors: tuple[float, ...]) -> None:
        super().__init__(base.topology, base.algorithms)
        if len(factors) != base.topology.ndims:
            raise ConfigError(
                f"need {base.topology.ndims} capacity factors, got "
                f"{len(factors)}"
            )
        for factor in factors:
            if factor < 0.0:
                raise ConfigError(
                    f"capacity factor must be >= 0, got {factor}"
                )
        self.factors = factors

    def chunk_load(
        self, op: PhaseOp, stage_size: float, dim_index: int
    ) -> float:
        nominal = super().chunk_load(op, stage_size, dim_index)
        return nominal / max(self.factors[dim_index], MIN_CAPACITY_FACTOR)


def compose_factors(factors: "dict[int, float]") -> float:
    """Product of active fault factors (1.0 when none), clamped so that
    near-zero products become exact failures."""
    product = 1.0
    for value in factors.values():
        product *= value
    if product < MIN_CAPACITY_FACTOR:
        return 0.0
    return product
