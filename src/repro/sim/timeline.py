"""Execution timeline records and ASCII rendering (paper Fig. 5 style).

Every chunk operation the executor runs leaves an :class:`OpRecord`.  The
records double as the data source for the activity-rate analysis (Fig. 9)
and for a terminal Gantt chart that reproduces the look of the paper's
Fig. 5 pipeline diagrams.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..collectives.types import PhaseOp
from ..units import fmt_size, fmt_time


@dataclass(frozen=True)
class OpRecord:
    """One completed chunk operation on one dimension."""

    collective_seq: int
    chunk_id: int
    stage_index: int
    dim_index: int
    op: PhaseOp
    stage_size: float
    bytes_sent: float
    transfer_time: float
    fixed_time: float
    ready_time: float
    start_time: float
    end_time: float

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def queueing_delay(self) -> float:
        """Time the op waited ready in its dimension's queue."""
        return self.start_time - self.ready_time

    def label(self) -> str:
        """Fig. 5 style label, e.g. ``RS C2.1``."""
        return f"{self.op.value} C{self.chunk_id + 1}.{self.stage_index + 1}"


@dataclass(frozen=True)
class Interval:
    """A half-open time interval ``[start, end)``."""

    start: float
    end: float

    @property
    def length(self) -> float:
        return self.end - self.start


def merge_intervals(intervals: list[Interval]) -> list[Interval]:
    """Union of possibly-overlapping intervals, sorted and coalesced."""
    if not intervals:
        return []
    ordered = sorted(intervals, key=lambda iv: (iv.start, iv.end))
    merged = [ordered[0]]
    for interval in ordered[1:]:
        last = merged[-1]
        if interval.start <= last.end:
            if interval.end > last.end:
                merged[-1] = Interval(last.start, interval.end)
        else:
            merged.append(interval)
    return merged


def total_length(intervals: list[Interval]) -> float:
    """Total covered time of a set of (possibly overlapping) intervals."""
    return sum(iv.length for iv in merge_intervals(intervals))


def render_gantt(
    records: list[OpRecord],
    ndims: int,
    width: int = 100,
    show_sizes: bool = False,
) -> str:
    """Render per-dimension op timelines as ASCII (Fig. 5 reproduction).

    Each dimension gets one row; ops are drawn as ``[label]`` boxes scaled to
    their duration; idle gaps show as dots.  Purely cosmetic but invaluable
    for eyeballing pipeline balance in examples and bench output.
    """
    if not records:
        return "(empty timeline)"
    t0 = min(r.start_time for r in records)
    t1 = max(r.end_time for r in records)
    span = max(t1 - t0, 1e-30)
    scale = width / span

    lines: list[str] = [
        f"timeline: {fmt_time(span)} total, 1 col = {fmt_time(span / width)}"
    ]
    for dim in range(ndims):
        row = ["."] * width
        dim_records = sorted(
            (r for r in records if r.dim_index == dim), key=lambda r: r.start_time
        )
        for record in dim_records:
            begin = int((record.start_time - t0) * scale)
            end = max(begin + 1, int((record.end_time - t0) * scale))
            end = min(end, width)
            text = record.label()
            if show_sizes:
                text += f" {fmt_size(record.stage_size)}"
            cell = list(f"[{text}]"[: end - begin].ljust(end - begin, "="))
            if cell:
                cell[-1] = "]" if end - begin > 1 else cell[-1]
            row[begin:end] = cell
        lines.append(f"dim{dim + 1}: {''.join(row)}")
    return "\n".join(lines)
