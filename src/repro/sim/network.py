"""The network simulator facade: submit collectives, run, collect results.

:class:`NetworkSimulator` glues together the scheduler (baseline or Themis),
the per-dimension channels, and the event engine.  It supports:

* multiple concurrent collectives sharing the dimension channels (real
  workloads overlap data-parallel All-Reduces with model-parallel traffic),
* collectives restricted to a subset of dimensions (``request.dim_indices``),
* optional enforcement of pre-simulated intra-dimension orders (Sec. 4.6.2),
* completion callbacks, used by the training-loop simulator.

The *Ideal* network model of Table 3 is :class:`IdealNetwork`: a fluid
server that moves each collective's schedule-invariant byte volume at the
full aggregate bandwidth of the dimensions it spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..collectives.registry import algorithms_for_topology
from ..collectives.types import CollectiveRequest
from ..core.chunk import CollectivePlan
from ..core.ideal import IdealEstimator
from ..core.latency_model import LatencyModel
from ..core.policies import IntraDimPolicy, get_policy
from ..core.scheduler import SchedulerFactory
from ..errors import SimulationError
from ..topology import Topology
from .engine import EventQueue
from .executor import DimensionChannel, FusionConfig, OpState
from .timeline import Interval, OpRecord, merge_intervals, total_length


@dataclass
class CollectiveResult:
    """Completion summary for one collective."""

    request: CollectiveRequest
    plan: CollectivePlan | None
    issue_time: float
    completion_time: float = float("nan")

    @property
    def duration(self) -> float:
        return self.completion_time - self.issue_time

    @property
    def done(self) -> bool:
        return self.completion_time == self.completion_time  # not NaN


@dataclass
class ExecutionResult:
    """Everything a finished simulation exposes to analysis code."""

    topology: Topology
    records: list[OpRecord]
    collectives: list[CollectiveResult]
    dim_transfer_seconds: list[float]
    dim_busy_seconds: list[float]
    dim_bytes: list[float]
    dim_activity: list[list[Interval]]
    comm_active_intervals: list[Interval]

    @property
    def start_time(self) -> float:
        return min(c.issue_time for c in self.collectives)

    @property
    def completion_time(self) -> float:
        return max(c.completion_time for c in self.collectives)

    @property
    def makespan(self) -> float:
        """Wall time from first issue to last completion."""
        return self.completion_time - self.start_time

    @property
    def comm_active_seconds(self) -> float:
        """Total time with at least one pending collective (paper Sec. 3)."""
        return total_length(self.comm_active_intervals)


class _CollectiveState:
    """Book-keeping for one in-flight collective."""

    __slots__ = ("result", "remaining_ops", "chunk_ops", "on_complete")

    def __init__(
        self,
        result: CollectiveResult,
        chunk_ops: list[list[OpState]],
        on_complete: Callable[[CollectiveResult], None] | None,
    ) -> None:
        self.result = result
        self.chunk_ops = chunk_ops
        self.remaining_ops = sum(len(ops) for ops in chunk_ops)
        self.on_complete = on_complete


class NetworkSimulator:
    """Event-driven network that executes scheduled collectives.

    Parameters
    ----------
    topology:
        The platform (all dimensions).
    scheduler:
        A :class:`SchedulerFactory`; fresh scheduler per collective.
    policy:
        Intra-dimension policy name or instance (``"FIFO"``, ``"SCF"``...).
    fusion:
        Chunk-op fusion configuration (Sec. 4.3); enabled by default.
    engine:
        Optional shared :class:`EventQueue` (the training simulator passes
        its own so compute and communication share one clock).
    enforce_consistency:
        When True, each collective's intra-dimension op order is fixed by a
        deterministic pre-simulation and enforced at runtime (Sec. 4.6.2).
    algorithm_overrides:
        Optional ``{parent dim index: algorithm name}`` map replacing the
        Table 1 defaults — e.g. ``{2: "SwitchOffload"}`` to model in-network
        collective offload on dim3 (Sec. 4.5), or ``{0: "Tree"}`` for
        ablations.
    """

    def __init__(
        self,
        topology: Topology,
        scheduler: SchedulerFactory | None = None,
        policy: str | IntraDimPolicy = "SCF",
        fusion: FusionConfig | None = None,
        engine: EventQueue | None = None,
        enforce_consistency: bool = False,
        algorithm_overrides: dict[int, str] | None = None,
    ) -> None:
        self.topology = topology
        self.scheduler_factory = scheduler or SchedulerFactory("themis")
        self.policy = policy if isinstance(policy, IntraDimPolicy) else get_policy(policy)
        self.fusion = fusion or FusionConfig()
        self.engine = engine or EventQueue()
        self.enforce_consistency = enforce_consistency
        self.algorithm_overrides = dict(algorithm_overrides or {})
        self.channels = [
            DimensionChannel(
                i, dim, self.policy, self.fusion, self.engine, self._on_batch_done
            )
            for i, dim in enumerate(topology.dims)
        ]
        self._states: dict[int, _CollectiveState] = {}
        self._results: list[CollectiveResult] = []
        self._records: list[OpRecord] = []
        self._subtopo_cache: dict[tuple, tuple[Topology, LatencyModel]] = {}
        self._inflight = 0
        self._comm_active_since: float | None = None
        self._comm_active: list[Interval] = []

    # --- submission ---------------------------------------------------------
    def submit(
        self,
        request: CollectiveRequest,
        at_time: float | None = None,
        on_complete: Callable[[CollectiveResult], None] | None = None,
    ) -> CollectiveResult:
        """Issue a collective at ``at_time`` (default: current sim time).

        Returns the (initially incomplete) :class:`CollectiveResult`; its
        ``completion_time`` is filled in when the collective finishes.
        """
        issue_time = self.engine.now if at_time is None else at_time
        result = CollectiveResult(request=request, plan=None, issue_time=issue_time)
        self._results.append(result)
        self.engine.schedule(issue_time, lambda: self._start_collective(result, on_complete))
        return result

    def _resolve_subtopology(
        self, request: CollectiveRequest
    ) -> tuple[Topology, LatencyModel]:
        key = request.communicator_key
        cached = self._subtopo_cache.get(key)
        if cached is not None:
            return cached
        if request.dim_indices is None:
            subtopo = self.topology
        else:
            subtopo = self.topology.communicator(
                request.dim_indices, request.peer_counts
            )
        local_overrides = {
            local: self.algorithm_overrides[parent]
            for local, parent in enumerate(subtopo.parent_indices)
            if parent in self.algorithm_overrides
        }
        model = LatencyModel(
            subtopo, algorithms_for_topology(subtopo, local_overrides)
        )
        self._subtopo_cache[key] = (subtopo, model)
        return subtopo, model

    def _start_collective(
        self,
        result: CollectiveResult,
        on_complete: Callable[[CollectiveResult], None] | None,
    ) -> None:
        request = result.request
        subtopo, model = self._resolve_subtopology(request)
        scheduler = self.scheduler_factory.create()
        plan = scheduler.plan(request, subtopo, model, issue_time=self.engine.now)
        result.plan = plan

        chunk_ops: list[list[OpState]] = []
        for chunk in plan.chunks:
            ops = []
            for stage_index, stage in enumerate(chunk.stages):
                parent_dim = subtopo.parent_index(stage.dim_index)
                ops.append(
                    OpState(
                        collective_seq=request.request_id,
                        chunk_id=chunk.chunk_id,
                        stage_index=stage_index,
                        stage=stage,
                        parent_dim=parent_dim,
                        bytes_sent=model.bytes_per_npu(
                            stage.op, stage.stage_size, stage.dim_index
                        ),
                        transfer_time=model.chunk_load(
                            stage.op, stage.stage_size, stage.dim_index
                        ),
                        fixed_time=model.fixed_latency(stage.op, stage.dim_index),
                        priority=request.priority,
                    )
                )
            chunk_ops.append(ops)

        state = _CollectiveState(result, chunk_ops, on_complete)
        self._states[request.request_id] = state
        self._mark_comm_active()

        if self.enforce_consistency:
            self._install_enforced_orders(state)

        for ops in chunk_ops:
            self.channels[ops[0].parent_dim].enqueue(ops[0])

    def _install_enforced_orders(self, state: _CollectiveState) -> None:
        """Pre-simulate this collective alone and lock per-dim op orders."""
        from ..core.consistency import presimulate_intra_dim_orders

        orders = presimulate_intra_dim_orders(
            state.result.plan,
            self.topology,
            policy=self.policy,
            fusion=self.fusion,
        )
        for dim_index, keys in orders.items():
            self.channels[dim_index].set_enforced_order(
                state.result.request.request_id, keys
            )

    # --- progression ----------------------------------------------------------
    def _on_batch_done(self, channel: DimensionChannel, batch: list[OpState]) -> None:
        for op in batch:
            self._records.append(op.to_record())
            state = self._states[op.collective_seq]
            ops = state.chunk_ops[op.chunk_id]
            next_index = op.stage_index + 1
            if next_index < len(ops):
                next_op = ops[next_index]
                self.channels[next_op.parent_dim].enqueue(next_op)
            state.remaining_ops -= 1
            if state.remaining_ops == 0:
                self._finish_collective(state)

    def _finish_collective(self, state: _CollectiveState) -> None:
        state.result.completion_time = self.engine.now
        del self._states[state.result.request.request_id]
        self._mark_comm_idle_if_done()
        if state.on_complete is not None:
            state.on_complete(state.result)

    def _mark_comm_active(self) -> None:
        self._inflight += 1
        if self._comm_active_since is None:
            self._comm_active_since = self.engine.now

    def _mark_comm_idle_if_done(self) -> None:
        self._inflight -= 1
        if self._inflight == 0 and self._comm_active_since is not None:
            now = self.engine.now
            if now > self._comm_active_since:
                self._comm_active.append(Interval(self._comm_active_since, now))
            self._comm_active_since = None

    # --- running ----------------------------------------------------------------
    def run(self, max_events: int | None = None) -> ExecutionResult:
        """Run the engine to quiescence and package the results."""
        self.engine.run(max_events=max_events)
        if self._states:
            raise SimulationError(
                f"{len(self._states)} collectives never completed "
                "(deadlock or missing events)"
            )
        return self.result()

    def result(self) -> ExecutionResult:
        """Snapshot results (the engine must be idle for totals to be final)."""
        if not self._results:
            raise SimulationError("no collectives were submitted")
        for channel in self.channels:
            channel.finalize_activity()
        return ExecutionResult(
            topology=self.topology,
            records=sorted(self._records, key=lambda r: (r.start_time, r.dim_index)),
            collectives=list(self._results),
            dim_transfer_seconds=[c.stats.transfer_seconds for c in self.channels],
            dim_busy_seconds=[c.stats.busy_seconds for c in self.channels],
            dim_bytes=[c.stats.bytes_sent for c in self.channels],
            dim_activity=[
                merge_intervals(c.stats.activity_intervals) for c in self.channels
            ],
            comm_active_intervals=merge_intervals(self._comm_active),
        )


class IdealNetwork:
    """Fluid 100%-utilization network (Table 3 "Ideal").

    Each collective completes after ``invariant_bytes / total_BW`` of
    *service* time; concurrent collectives queue FIFO on the fluid server
    (they share the same wires, so a lower bound must still serialize their
    byte volumes).  Used for the Ideal bars of Fig. 12.
    """

    def __init__(self, topology: Topology, engine: EventQueue | None = None) -> None:
        self.topology = topology
        self.engine = engine or EventQueue()
        self._estimator = IdealEstimator()
        self._server_free_at = 0.0
        self._results: list[CollectiveResult] = []
        self._subtopo_cache: dict[tuple, Topology] = {}

    def _subtopology(self, request: CollectiveRequest) -> Topology:
        key = request.communicator_key
        if key not in self._subtopo_cache:
            if request.dim_indices is None:
                subtopo = self.topology
            else:
                subtopo = self.topology.communicator(
                    request.dim_indices, request.peer_counts
                )
            self._subtopo_cache[key] = subtopo
        return self._subtopo_cache[key]

    def submit(
        self,
        request: CollectiveRequest,
        at_time: float | None = None,
        on_complete: Callable[[CollectiveResult], None] | None = None,
    ) -> CollectiveResult:
        issue_time = self.engine.now if at_time is None else at_time
        result = CollectiveResult(request=request, plan=None, issue_time=issue_time)
        self._results.append(result)

        def start() -> None:
            subtopo = self._subtopology(request)
            service = self._estimator.collective_time(
                request.ctype, request.size, subtopo
            )
            begin = max(self.engine.now, self._server_free_at)
            finish = begin + service
            self._server_free_at = finish

            def complete() -> None:
                result.completion_time = self.engine.now
                if on_complete is not None:
                    on_complete(result)

            self.engine.schedule(finish, complete)

        self.engine.schedule(issue_time, start)
        return result

    def run(self) -> list[CollectiveResult]:
        self.engine.run()
        return list(self._results)
