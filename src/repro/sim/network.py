"""The network simulator facade: submit collectives, run, collect results.

:class:`NetworkSimulator` glues together the scheduler (baseline or Themis),
the per-dimension channels, and the event engine.  It supports:

* multiple concurrent collectives sharing the dimension channels (real
  workloads overlap data-parallel All-Reduces with model-parallel traffic),
* collectives restricted to a subset of dimensions (``request.dim_indices``),
* optional enforcement of pre-simulated intra-dimension orders (Sec. 4.6.2),
* completion callbacks, used by the training-loop simulator.

The *Ideal* network model of Table 3 is :class:`IdealNetwork`: a fluid
server that moves each collective's schedule-invariant byte volume at the
full aggregate bandwidth of the dimensions it spans.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass, field, replace

from ..collectives.registry import algorithms_for_topology
from ..collectives.types import CollectiveRequest
from ..core.chunk import CollectivePlan
from ..core.ideal import IdealEstimator
from ..core.latency_model import LatencyModel
from ..core.policies import IntraDimPolicy, get_policy
from ..core.scheduler import SchedulerFactory
from ..errors import ConfigError, SimulationError
from ..topology import Topology
from .audit import InvariantAuditor, resolve_audit
from .engine import EventQueue
from .executor import DimensionChannel, FusionConfig, OpState
from .faults import (
    FaultSchedule,
    LinkFault,
    ScaledLatencyModel,
    compose_factors,
)
from .timeline import Interval, OpRecord, merge_intervals, total_length


@dataclass
class CollectiveResult:
    """Completion summary for one collective."""

    request: CollectiveRequest
    plan: CollectivePlan | None
    issue_time: float
    completion_time: float = float("nan")

    @property
    def duration(self) -> float:
        return self.completion_time - self.issue_time

    @property
    def done(self) -> bool:
        return not math.isnan(self.completion_time)


@dataclass
class ExecutionResult:
    """Everything a simulation (finished or snapshotted) exposes to analysis.

    Produced by :meth:`NetworkSimulator.result`, which may be called mid-run:
    unfinished collectives then appear in ``collectives`` with a NaN
    ``completion_time`` and are excluded from the aggregate timings below.
    """

    topology: Topology
    records: list[OpRecord]
    collectives: list[CollectiveResult]
    dim_transfer_seconds: list[float]
    dim_busy_seconds: list[float]
    dim_bytes: list[float]
    dim_activity: list[list[Interval]]
    comm_active_intervals: list[Interval]
    #: Communication-active intervals per tenant (``request.owner``); the
    #: multi-job cluster simulator uses this to attribute network time to
    #: individual jobs.  Single-tenant runs have one ``""`` entry.
    comm_active_by_owner: dict[str, list[Interval]] = field(default_factory=dict)

    @property
    def completed_collectives(self) -> list[CollectiveResult]:
        """The collectives that finished by the time of this snapshot."""
        return [c for c in self.collectives if c.done]

    @property
    def pending_collectives(self) -> int:
        """How many submitted collectives had not completed at snapshot time."""
        return sum(1 for c in self.collectives if not c.done)

    @property
    def start_time(self) -> float:
        return min(c.issue_time for c in self.collectives)

    @property
    def completion_time(self) -> float:
        """Latest completion among *finished* collectives.

        Unfinished collectives carry ``completion_time = NaN``, and Python's
        ``max()`` over NaN is order-dependent — it would silently yield
        garbage for a mid-run snapshot.  They are skipped instead, and a
        snapshot in which nothing has completed raises a clear error.
        """
        done = [c.completion_time for c in self.collectives if c.done]
        if not done:
            raise SimulationError(
                "no collective has completed in this snapshot; "
                "completion_time/makespan are undefined until at least one "
                "collective finishes"
            )
        return max(done)

    @property
    def makespan(self) -> float:
        """Wall time from first issue to last (finished) completion."""
        return self.completion_time - self.start_time

    @property
    def comm_active_seconds(self) -> float:
        """Total time with at least one pending collective (paper Sec. 3)."""
        return total_length(self.comm_active_intervals)

    def comm_active_seconds_for(self, owner: str) -> float:
        """Total time ``owner`` had at least one collective in flight."""
        return total_length(self.comm_active_by_owner.get(owner, []))


def _check_not_past(
    engine: EventQueue, request: CollectiveRequest, issue_time: float
) -> None:
    """Reject submissions dated before the current simulation time.

    Without this, a stale ``at_time`` only surfaces later as a confusing
    scheduling error deep inside :class:`EventQueue`.  The tolerance is
    relative to the current time (see :meth:`EventQueue.past_tolerance`) so
    float round-off at large simulation times is not rejected.
    """
    if issue_time < engine.now - engine.past_tolerance():
        raise SimulationError(
            f"cannot submit {request.ctype.value} request "
            f"{request.request_id} (tag={request.tag!r}, "
            f"owner={request.owner!r}) at past time {issue_time}: "
            f"simulation time is already {engine.now}"
        )


class _CollectiveState:
    """Book-keeping for one in-flight collective."""

    __slots__ = ("result", "remaining_ops", "chunk_ops", "on_complete")

    def __init__(
        self,
        result: CollectiveResult,
        chunk_ops: list[list[OpState]],
        on_complete: Callable[[CollectiveResult], None] | None,
    ) -> None:
        self.result = result
        self.chunk_ops = chunk_ops
        self.remaining_ops = sum(len(ops) for ops in chunk_ops)
        self.on_complete = on_complete


class NetworkSimulator:
    """Event-driven network that executes scheduled collectives.

    Parameters
    ----------
    topology:
        The platform (all dimensions).
    scheduler:
        A :class:`SchedulerFactory`; fresh scheduler per collective.
    policy:
        Intra-dimension policy name or instance (``"FIFO"``, ``"SCF"``...).
    fusion:
        Chunk-op fusion configuration (Sec. 4.3); enabled by default.
    engine:
        Optional shared :class:`EventQueue` (the training simulator passes
        its own so compute and communication share one clock).
    enforce_consistency:
        When True, each collective's intra-dimension op order is fixed by a
        deterministic pre-simulation and enforced at runtime (Sec. 4.6.2).
    algorithm_overrides:
        Optional ``{parent dim index: algorithm name}`` map replacing the
        Table 1 defaults — e.g. ``{2: "SwitchOffload"}`` to model in-network
        collective offload on dim3 (Sec. 4.5), or ``{0: "Tree"}`` for
        ablations.
    record_ops:
        When True (default), every completed chunk op leaves an
        :class:`OpRecord` in ``result().records`` — right for single-job
        analysis (timelines, Fig. 5/9 reproductions).  Cluster sweeps with
        hundreds of jobs turn it off: the per-op list grows without bound
        and none of the cluster metrics read it.
    indexed_queues:
        When True (default), dimension channels use the policy-indexed
        ready queues (O(log n) per scheduling decision).  False selects the
        seed-semantics flat-list scan — the reference path used by the
        determinism property tests and the perf harness; when the simulator
        also owns its engine, event cancellation is disabled with it so the
        pre-indexing heap-growth behavior is reproduced faithfully.
    plan_cache:
        When True (default), load-independent :class:`CollectivePlan`s are
        cached by request signature (schedulers are pure per collective —
        the Themis tracker resets every request — so training loops that
        resubmit identical collectives each iteration replan only once).
        Enforced intra-dimension orders are cached under the same key,
        which also skips the per-iteration consistency pre-simulation.
        Caching applies only to plain :class:`SchedulerFactory` instances;
        subclasses (e.g. replay factories) always plan afresh.
    """

    #: Capability flags read by backend-agnostic callers (the training
    #: loop checks ``accepts_scheduler`` before passing a per-request
    #: factory; reporting checks ``provides_result`` before snapshotting).
    accepts_scheduler = True
    provides_result = True

    def __init__(
        self,
        topology: Topology,
        scheduler: SchedulerFactory | None = None,
        policy: str | IntraDimPolicy = "SCF",
        fusion: FusionConfig | None = None,
        engine: EventQueue | None = None,
        enforce_consistency: bool = False,
        algorithm_overrides: dict[int, str] | None = None,
        record_ops: bool = True,
        indexed_queues: bool = True,
        plan_cache: bool = True,
        audit: bool | None = None,
    ) -> None:
        self.topology = topology
        self.scheduler_factory = scheduler or SchedulerFactory("themis")
        self.policy = (
            policy if isinstance(policy, IntraDimPolicy) else get_policy(policy)
        )
        self.fusion = fusion or FusionConfig()
        self.engine = engine or EventQueue(cancellation=indexed_queues)
        self.enforce_consistency = enforce_consistency
        self.algorithm_overrides = dict(algorithm_overrides or {})
        self.record_ops = record_ops
        self.indexed_queues = indexed_queues
        #: Runtime invariant auditor — ``None`` unless requested via the
        #: ``audit`` parameter or ``THEMIS_AUDIT=1`` (see repro.sim.audit).
        self.auditor: InvariantAuditor | None = None
        if resolve_audit(audit):
            # Simulators sharing one engine share its auditor so engine-level
            # checks stay consistent across co-tenants.
            self.auditor = self.engine.auditor or InvariantAuditor()
            self.engine.auditor = self.auditor
        self.channels = [
            DimensionChannel(
                i,
                dim,
                self.policy,
                self.fusion,
                self.engine,
                self._on_batch_done,
                indexed=indexed_queues,
            )
            for i, dim in enumerate(topology.dims)
        ]
        if self.auditor is not None:
            for channel in self.channels:
                channel.auditor = self.auditor
                self.auditor.register_channel(channel)
        self._states: dict[int, _CollectiveState] = {}
        self._results: list[CollectiveResult] = []
        self._records: list[OpRecord] = []
        self._records_sorted = True
        self._subtopo_cache: dict[tuple, tuple[Topology, LatencyModel]] = {}
        self._plan_cache_enabled = plan_cache
        self._plan_cache: dict[tuple, CollectivePlan] = {}
        #: ``plan key -> {parent dim: [(chunk_id, stage_index), ...]}`` —
        #: enforced orders with the request id stripped, re-stamped per
        #: submission (op keys embed the submitting request's id).
        self._order_cache: dict[tuple, dict[int, list[tuple[int, int]]]] = {}
        self._inflight = 0
        self._comm_active_since: float | None = None
        self._comm_active: list[Interval] = []
        self._owner_inflight: dict[str, int] = {}
        self._owner_active_since: dict[str, float] = {}
        self._owner_active: dict[str, list[Interval]] = {}
        # --- fault injection -------------------------------------------------
        #: Applied capacity changes, in order: ``(time, dim, new factor)``.
        self.fault_timeline: list[tuple[float, int, float]] = []
        #: Per-dimension live faults (fault id -> factor); overlapping
        #: faults compose as the product, recomputed from the survivors at
        #: every start/end (never divided out).
        self._active_faults: list[dict[int, float]] = [
            {} for _ in self.channels
        ]
        self._fault_seq = 0

    # --- fairness (multi-tenant wire disciplines) ---------------------------
    def set_tenant_weights(
        self,
        weights: dict[str, "float | dict[int, float]"],
        default: float = 1.0,
    ) -> None:
        """Enable/update weighted per-tenant bandwidth sharing on every dim.

        ``weights`` maps ``request.owner`` to a positive share — either one
        scalar applied on every dimension, or a ``{dim index: weight}`` map
        giving that tenant a *different* share per dimension (a job can be
        favored on the scarce NIC dimension while yielding intra-node).
        Owners absent from the map, and dimensions absent from a tenant's
        per-dim map, get ``default``.  Concurrent batches from different
        tenants then split each dimension's bandwidth in proportion to their
        weights (GPS-style fluid sharing) instead of serializing first-come.
        Safe to call repeatedly mid-run — the cluster finish-time-fairness
        policy re-tunes weights periodically.
        """
        for owner, value in weights.items():
            if isinstance(value, dict):
                for dim_index in value:
                    if not 0 <= dim_index < len(self.channels):
                        raise ConfigError(
                            f"tenant {owner!r}: dimension index {dim_index} "
                            f"out of range for {len(self.channels)}D topology"
                        )
        for channel in self.channels:
            flat = {
                owner: (
                    value.get(channel.dim_index, default)
                    if isinstance(value, dict)
                    else value
                )
                for owner, value in weights.items()
            }
            channel.set_share_weights(flat, default)

    def enable_preemption(self) -> None:
        """Arm priority preemption on every dimension channel.

        A ready op whose priority strictly exceeds the running batch's
        pauses that batch; its leftover transfer re-runs once the wire frees
        (work-conserving — nothing is lost or re-sent).
        """
        for channel in self.channels:
            channel.enable_preemption()

    @property
    def preemption_count(self) -> int:
        """Total batch preemptions across all dimensions."""
        return sum(channel.preemption_count for channel in self.channels)

    # --- fault injection ----------------------------------------------------
    def apply_fault(self, fault: LinkFault) -> None:
        """Schedule one capacity fault (and its restoration) on the engine.

        At ``fault.start`` the dimension's capacity factor becomes the
        product of every fault live on it; at ``fault.end`` (if any) the
        product of the survivors is recomputed and re-applied.  In-flight
        work re-segments at each change via
        :meth:`DimensionChannel.set_capacity_factor`; a factor of zero
        parks it until a restore.  Themis's per-request load tracker plans
        against the degraded :class:`ScaledLatencyModel` while the fault is
        live — bandwidth awareness is exactly what is under test here.
        """
        if not 0 <= fault.dim_index < len(self.channels):
            raise ConfigError(
                f"fault targets dimension {fault.dim_index} but the "
                f"topology has {len(self.channels)} dimension(s)"
            )
        if fault.start < self.engine.now:
            raise ConfigError(
                f"fault starts at {fault.start} but the simulation is "
                f"already at {self.engine.now}"
            )
        fault_id = self._fault_seq
        self._fault_seq += 1
        self.engine.schedule(
            fault.start, lambda: self._fault_begin(fault_id, fault)
        )
        end = fault.end
        if end is not None:
            self.engine.schedule(end, lambda: self._fault_end(fault_id, fault))

    def apply_fault_schedule(self, schedule: FaultSchedule) -> None:
        """Apply every event of a :class:`FaultSchedule` (validated against
        this topology's dimension count)."""
        for fault in schedule.restricted_to(len(self.channels)).events:
            self.apply_fault(fault)

    def _fault_begin(self, fault_id: int, fault: LinkFault) -> None:
        self._active_faults[fault.dim_index][fault_id] = fault.factor
        self._apply_capacity(fault.dim_index)

    def _fault_end(self, fault_id: int, fault: LinkFault) -> None:
        self._active_faults[fault.dim_index].pop(fault_id, None)
        self._apply_capacity(fault.dim_index)

    def _apply_capacity(self, dim_index: int) -> None:
        factor = compose_factors(self._active_faults[dim_index])
        self.fault_timeline.append((self.engine.now, dim_index, factor))
        self.channels[dim_index].set_capacity_factor(factor)

    # --- submission ---------------------------------------------------------
    def submit(
        self,
        request: CollectiveRequest,
        at_time: float | None = None,
        on_complete: Callable[[CollectiveResult], None] | None = None,
        scheduler: SchedulerFactory | None = None,
    ) -> CollectiveResult:
        """Issue a collective at ``at_time`` (default: current sim time).

        ``scheduler`` optionally overrides the simulator-wide factory for
        this one request — multi-tenant callers (the cluster simulator) use
        it to give each job its own scheduling policy on the shared network.

        Returns the (initially incomplete) :class:`CollectiveResult`; its
        ``completion_time`` is filled in when the collective finishes.
        """
        issue_time = self.engine.now if at_time is None else at_time
        _check_not_past(self.engine, request, issue_time)
        result = CollectiveResult(request=request, plan=None, issue_time=issue_time)
        self._results.append(result)
        self.engine.schedule(
            issue_time,
            lambda: self._start_collective(result, on_complete, scheduler),
        )
        return result

    def _resolve_subtopology(
        self, request: CollectiveRequest
    ) -> tuple[Topology, LatencyModel]:
        key = request.communicator_key
        cached = self._subtopo_cache.get(key)
        if cached is not None:
            return cached
        if request.dim_indices is None:
            subtopo = self.topology
        else:
            subtopo = self.topology.communicator(
                request.dim_indices, request.peer_counts
            )
        local_overrides = {
            local: self.algorithm_overrides[parent]
            for local, parent in enumerate(subtopo.parent_indices)
            if parent in self.algorithm_overrides
        }
        model = LatencyModel(
            subtopo, algorithms_for_topology(subtopo, local_overrides)
        )
        self._subtopo_cache[key] = (subtopo, model)
        return subtopo, model

    def _plan_key(
        self, request: CollectiveRequest, factory: SchedulerFactory
    ) -> tuple | None:
        """Cache key for load-independent plans, or ``None`` (don't cache).

        A plan is a pure function of the request signature and the factory
        configuration: both built-in schedulers are stateless across
        collectives (the Themis load tracker resets per request) and a
        chunk's dimension order never depends on issue time, priority, or
        owner.  Subclassed factories may carry state, so only exact
        :class:`SchedulerFactory` instances are cached.
        """
        if not self._plan_cache_enabled or type(factory) is not SchedulerFactory:
            return None
        return (
            factory.signature,
            request.ctype,
            request.size,
            request.communicator_key,
        )

    def _start_collective(
        self,
        result: CollectiveResult,
        on_complete: Callable[[CollectiveResult], None] | None,
        scheduler_factory: SchedulerFactory | None = None,
    ) -> None:
        request = result.request
        subtopo, model = self._resolve_subtopology(request)
        factory = scheduler_factory or self.scheduler_factory
        plan_key = self._plan_key(request, factory)
        # Live capacity factors are part of the planning input: a degraded
        # dimension must look expensive to a bandwidth-aware scheduler, so
        # plans made under different fault states never share a cache slot.
        factors = tuple(channel.capacity_factor for channel in self.channels)
        degraded = any(factor != 1.0 for factor in factors)
        if degraded and plan_key is not None:
            plan_key = plan_key + (factors,)
        cached = self._plan_cache.get(plan_key) if plan_key is not None else None
        if cached is not None:
            # The chunk schedules are shared; only the identity fields are
            # re-stamped for this submission.
            plan = replace(
                cached, request=request, issue_time=self.engine.now, metadata={}
            )
        else:
            scheduler = factory.create()
            plan_model = model
            if degraded:
                local = tuple(
                    factors[subtopo.parent_index(i)]
                    for i in range(subtopo.ndims)
                )
                if any(factor != 1.0 for factor in local):
                    plan_model = ScaledLatencyModel(model, local)
            plan = scheduler.plan(
                request, subtopo, plan_model, issue_time=self.engine.now
            )
            if plan_key is not None:
                self._plan_cache[plan_key] = plan
        result.plan = plan

        chunk_ops = self._build_chunk_ops(request, plan, subtopo, model)

        state = _CollectiveState(result, chunk_ops, on_complete)
        self._states[request.request_id] = state
        self._mark_comm_active(request.owner)

        if self.enforce_consistency:
            self._install_enforced_orders(state, plan_key)

        for ops in chunk_ops:
            self.channels[ops[0].parent_dim].enqueue(ops[0])

    def _build_chunk_ops(
        self,
        request: CollectiveRequest,
        plan: CollectivePlan,
        subtopo: Topology,
        model: LatencyModel,
    ) -> list[list[OpState]]:
        """Materialize the plan's chunk stages as executable channel ops.

        The execution-granularity hook: the exact simulator emits one op
        per (chunk, stage) so every pipelining and contention boundary is
        an event; the fluid backend overrides this to collapse the chunk
        train into aggregate per-dimension flows.  Op lists are indexed by
        ``chunk_id`` (``_on_batch_done`` advances ``chunk_ops[op.chunk_id]``
        to the next stage), so overrides must keep ``chunk_id`` equal to
        the op list's position.
        """
        chunk_ops: list[list[OpState]] = []
        for chunk in plan.chunks:
            ops = []
            for stage_index, stage in enumerate(chunk.stages):
                parent_dim = subtopo.parent_index(stage.dim_index)
                ops.append(
                    OpState(
                        collective_seq=request.request_id,
                        chunk_id=chunk.chunk_id,
                        stage_index=stage_index,
                        stage=stage,
                        parent_dim=parent_dim,
                        bytes_sent=model.bytes_per_npu(
                            stage.op, stage.stage_size, stage.dim_index
                        ),
                        transfer_time=model.chunk_load(
                            stage.op, stage.stage_size, stage.dim_index
                        ),
                        fixed_time=model.fixed_latency(stage.op, stage.dim_index),
                        priority=request.priority,
                        owner=request.owner,
                    )
                )
            chunk_ops.append(ops)
        return chunk_ops

    def _install_enforced_orders(
        self, state: _CollectiveState, plan_key: tuple | None
    ) -> None:
        """Pre-simulate this collective alone and lock per-dim op orders.

        The pre-simulation depends only on the plan (and the simulator-wide
        policy/fusion), so its result is cached under the same signature as
        the plan itself — repeated submissions of an identical collective
        re-stamp the cached order with their request id instead of
        re-running the whole consistency simulation.
        """
        generic = self._order_cache.get(plan_key) if plan_key is not None else None
        if generic is None:
            from ..core.consistency import presimulate_intra_dim_orders

            orders = presimulate_intra_dim_orders(
                state.result.plan,
                self.topology,
                policy=self.policy,
                fusion=self.fusion,
            )
            generic = {
                dim_index: [
                    (chunk_id, stage_index)
                    for _, chunk_id, stage_index in keys
                ]
                for dim_index, keys in orders.items()
            }
            if plan_key is not None:
                self._order_cache[plan_key] = generic
        request_id = state.result.request.request_id
        for dim_index, pairs in generic.items():
            self.channels[dim_index].set_enforced_order(
                request_id,
                [
                    (request_id, chunk_id, stage_index)
                    for chunk_id, stage_index in pairs
                ],
            )

    # --- progression ----------------------------------------------------------
    def _on_batch_done(self, channel: DimensionChannel, batch: list[OpState]) -> None:
        record = self.record_ops
        for op in batch:
            if record:
                self._records.append(op.to_record())
                self._records_sorted = False
            state = self._states[op.collective_seq]
            ops = state.chunk_ops[op.chunk_id]
            next_index = op.stage_index + 1
            if next_index < len(ops):
                next_op = ops[next_index]
                self.channels[next_op.parent_dim].enqueue(next_op)
            state.remaining_ops -= 1
            if state.remaining_ops == 0:
                self._finish_collective(state)

    def _finish_collective(self, state: _CollectiveState) -> None:
        state.result.completion_time = self.engine.now
        del self._states[state.result.request.request_id]
        self._mark_comm_idle_if_done(state.result.request.owner)
        if state.on_complete is not None:
            state.on_complete(state.result)

    def _mark_comm_active(self, owner: str) -> None:
        self._inflight += 1
        if self._comm_active_since is None:
            self._comm_active_since = self.engine.now
        self._owner_inflight[owner] = self._owner_inflight.get(owner, 0) + 1
        if owner not in self._owner_active_since:
            self._owner_active_since[owner] = self.engine.now

    def _mark_comm_idle_if_done(self, owner: str) -> None:
        now = self.engine.now
        self._inflight -= 1
        if self._inflight == 0 and self._comm_active_since is not None:
            if now > self._comm_active_since:
                self._comm_active.append(Interval(self._comm_active_since, now))
            self._comm_active_since = None
        self._owner_inflight[owner] -= 1
        if self._owner_inflight[owner] == 0:
            since = self._owner_active_since.pop(owner)
            if now > since:
                self._owner_active.setdefault(owner, []).append(
                    Interval(since, now)
                )

    # --- running ----------------------------------------------------------------
    def run(self, max_events: int | None = None) -> ExecutionResult:
        """Run the engine to quiescence and package the results."""
        self.engine.run(max_events=max_events)
        if self._states:
            dead = [
                channel.dim_index
                for channel in self.channels
                if channel.capacity_factor <= 0.0
            ]
            hint = (
                f"; dimension(s) {dead} have zero capacity (failed links "
                "with no restore event) — in-flight work is parked forever"
                if dead
                else ""
            )
            raise SimulationError(
                f"{len(self._states)} collectives never completed "
                f"(deadlock or missing events){hint}"
            )
        return self.result()

    def result(self) -> ExecutionResult:
        """Snapshot results at the current simulation time.

        Safe to call mid-run: open activity/comm-active intervals are
        closed *in the snapshot only* (internal accounting is untouched, so
        the simulation can keep running afterwards), and collectives still
        in flight keep their NaN ``completion_time`` — the aggregate
        :class:`ExecutionResult` timings skip them.

        Caveat for mid-run use: ``dim_busy_seconds`` / ``dim_bytes`` are
        batch-granular (credited in full when a batch *starts*), so a
        snapshot taken while a batch is mid-transfer counts that batch's
        whole transfer against an active window that has only partially
        elapsed.  The skew is bounded by one batch per dimension and is
        zero once the engine is quiescent.
        """
        if not self._results:
            raise SimulationError("no collectives were submitted")
        now = self.engine.now
        comm_active = list(self._comm_active)
        if self._comm_active_since is not None and now > self._comm_active_since:
            comm_active.append(Interval(self._comm_active_since, now))
        by_owner = {
            owner: list(intervals)
            for owner, intervals in self._owner_active.items()
        }
        for owner, since in self._owner_active_since.items():
            if now > since:
                by_owner.setdefault(owner, []).append(Interval(since, now))
        # Records are sorted lazily, once per batch of appends: repeated
        # mid-run snapshots re-sort only what arrived since the last one
        # (timsort on the nearly sorted list), and record-free cluster
        # sweeps skip the O(n log n) entirely.
        if not self._records_sorted:
            self._records.sort(key=lambda r: (r.start_time, r.dim_index))
            self._records_sorted = True
        return ExecutionResult(
            topology=self.topology,
            records=list(self._records),
            collectives=list(self._results),
            dim_transfer_seconds=[c.stats.transfer_seconds for c in self.channels],
            dim_busy_seconds=[c.stats.busy_seconds for c in self.channels],
            dim_bytes=[c.stats.bytes_sent for c in self.channels],
            dim_activity=[
                merge_intervals(c.snapshot_activity()) for c in self.channels
            ],
            comm_active_intervals=merge_intervals(comm_active),
            comm_active_by_owner={
                owner: merge_intervals(intervals)
                for owner, intervals in sorted(by_owner.items())
            },
        )


class IdealNetwork:
    """Fluid 100%-utilization network (Table 3 "Ideal").

    Each collective completes after ``invariant_bytes / total_BW`` of
    *service* time; concurrent collectives queue FIFO on the fluid server
    (they share the same wires, so a lower bound must still serialize their
    byte volumes).  Used for the Ideal bars of Fig. 12.
    """

    #: The ideal server is schedule-free and exposes no execution trace.
    accepts_scheduler = False
    provides_result = False

    def __init__(self, topology: Topology, engine: EventQueue | None = None) -> None:
        self.topology = topology
        self.engine = engine or EventQueue()
        self._estimator = IdealEstimator()
        self._server_free_at = 0.0
        self._results: list[CollectiveResult] = []
        self._subtopo_cache: dict[tuple, Topology] = {}

    def _subtopology(self, request: CollectiveRequest) -> Topology:
        key = request.communicator_key
        if key not in self._subtopo_cache:
            if request.dim_indices is None:
                subtopo = self.topology
            else:
                subtopo = self.topology.communicator(
                    request.dim_indices, request.peer_counts
                )
            self._subtopo_cache[key] = subtopo
        return self._subtopo_cache[key]

    def submit(
        self,
        request: CollectiveRequest,
        at_time: float | None = None,
        on_complete: Callable[[CollectiveResult], None] | None = None,
    ) -> CollectiveResult:
        issue_time = self.engine.now if at_time is None else at_time
        _check_not_past(self.engine, request, issue_time)
        result = CollectiveResult(request=request, plan=None, issue_time=issue_time)
        self._results.append(result)

        def start() -> None:
            subtopo = self._subtopology(request)
            service = self._estimator.collective_time(
                request.ctype, request.size, subtopo
            )
            begin = max(self.engine.now, self._server_free_at)
            finish = begin + service
            self._server_free_at = finish

            def complete() -> None:
                result.completion_time = self.engine.now
                if on_complete is not None:
                    on_complete(result)

            self.engine.schedule(finish, complete)

        self.engine.schedule(issue_time, start)
        return result

    def run(self) -> list[CollectiveResult]:
        self.engine.run()
        return list(self._results)
