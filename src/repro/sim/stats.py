"""Utilization and activity statistics (paper Sec. 3 definition, Fig. 9).

*Average BW utilization* is the weighted average of per-dimension BW
utilization with the weights being each dimension's share of the total BW
budget, measured only over the time window during which communication is
pending ("excluding the times when there is no pending communication
operation").

A dimension's BW utilization over a window ``T`` is the fraction of ``T``
it spends actually moving bytes at full rate: ``transfer_seconds / T``
(the fixed per-step latencies and idle gaps are the non-utilized part).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..topology import Topology
from .network import ExecutionResult
from .timeline import Interval


@dataclass(frozen=True)
class UtilizationReport:
    """Per-dimension and weighted-average BW utilization over a window."""

    window_seconds: float
    per_dim: tuple[float, ...]
    average: float

    def describe(self, topology: Topology) -> str:
        parts = [
            f"dim{i + 1}({topology.dims[i].bandwidth_gbps:.0f}Gb/s)={u * 100:.1f}%"
            for i, u in enumerate(self.per_dim)
        ]
        return f"avg={self.average * 100:.2f}% [{', '.join(parts)}]"


def bw_utilization(
    result: ExecutionResult, window: float | None = None
) -> UtilizationReport:
    """Compute the paper's average BW utilization for a finished simulation.

    ``window`` defaults to the communication-active time (union of intervals
    with at least one pending collective), which equals the makespan for a
    single collective issued at t=0.
    """
    topology = result.topology
    active = window if window is not None else result.comm_active_seconds
    if active <= 0:
        raise ValueError("utilization undefined over an empty window")
    per_dim = tuple(
        min(1.0, result.dim_transfer_seconds[i] / active)
        for i in range(topology.ndims)
    )
    weights = [topology.bw_share(i) for i in range(topology.ndims)]
    average = sum(w * u for w, u in zip(weights, per_dim))
    return UtilizationReport(window_seconds=active, per_dim=per_dim, average=average)


def activity_rate_series(
    intervals: list[Interval],
    start: float,
    end: float,
    window: float,
) -> list[tuple[float, float]]:
    """Fraction of each ``window``-long bucket covered by activity intervals.

    Reproduces Fig. 9's *frontend activity rate*: "the percentage of times
    each dimension has activity during a period of 100 us".  Returns
    ``[(bucket_start_time, rate), ...]``.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if end <= start:
        return []
    series: list[tuple[float, float]] = []
    bucket_start = start
    while bucket_start < end:
        bucket_end = min(bucket_start + window, end)
        covered = 0.0
        for interval in intervals:
            lo = max(interval.start, bucket_start)
            hi = min(interval.end, bucket_end)
            if hi > lo:
                covered += hi - lo
        series.append((bucket_start, covered / (bucket_end - bucket_start)))
        bucket_start += window
    return series


def dimension_activity_rates(
    result: ExecutionResult, window: float
) -> list[list[tuple[float, float]]]:
    """Per-dimension activity-rate series over the whole run (Fig. 9)."""
    start = result.start_time
    end = result.completion_time
    return [
        activity_rate_series(result.dim_activity[i], start, end, window)
        for i in range(result.topology.ndims)
    ]


def mean_activity_rate(result: ExecutionResult, dim_index: int) -> float:
    """Overall fraction of the makespan a dimension had work available."""
    span = result.makespan
    if span <= 0:
        return 0.0
    covered = sum(iv.length for iv in result.dim_activity[dim_index])
    return covered / span
