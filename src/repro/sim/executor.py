"""Per-dimension execution machinery: op states, fusion, dimension channels.

The simulator models each network dimension as a *channel* whose wire
serializes chunk transfers at the dimension's aggregate bandwidth, while
the fixed per-op delay ``A_K = steps x step_latency`` is a **pipeline
shadow**: consecutive chunk ops follow each other at transfer-rate spacing
and each op's output becomes available ``A_K`` after its transfer ends.
This realizes exactly the paper's per-dimension cost (Sec. 4.4)::

    Latency(dimK) = A_K + N_K x B_K + idle_K

where ``A_K`` is paid once (by the last op's exposed tail), not once per
chunk — hierarchical collectives stream chunks through their step pipeline.

Two provisions from Sec. 4.3 are implemented here:

* the **intra-dimension policy** picks which ready op runs next (FIFO/SCF),
* **fusion** executes several small ops as one batch when a single op's
  transfer time cannot amortize the fixed latency (the paper's "multiple
  chunks per dimension ... similar to the collective fusion concept in
  NCCL"): a fused batch shares one fixed-delay shadow and coalesces
  scheduling events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..collectives.phases import Stage
from ..core.policies import IntraDimPolicy
from ..errors import ConfigError, SimulationError
from ..topology import DimensionSpec
from .engine import EventQueue
from .timeline import Interval, OpRecord

if TYPE_CHECKING:  # pragma: no cover
    pass


@dataclass(frozen=True)
class FusionConfig:
    """Chunk-op fusion parameters (Sec. 4.3, second provision).

    An op is *small* when ``transfer_time < saturation_factor x fixed_time``
    — it finishes its bytes before the pipeline latency is amortized, so
    running it alone underutilizes the dimension.  Up to ``max_ops`` small
    ops are fused into one batch.
    """

    enabled: bool = True
    saturation_factor: float = 1.0
    max_ops: int = 8

    def __post_init__(self) -> None:
        if self.saturation_factor < 0:
            raise ConfigError(
                f"saturation factor must be >= 0, got {self.saturation_factor}"
            )
        if self.max_ops < 1:
            raise ConfigError(f"max fused ops must be >= 1, got {self.max_ops}")

    def is_small(self, op: "OpState") -> bool:
        return op.transfer_time < self.saturation_factor * op.fixed_time


class OpState:
    """Mutable runtime state of one chunk operation on one dimension."""

    __slots__ = (
        "collective_seq",
        "priority",
        "chunk_id",
        "stage_index",
        "stage",
        "parent_dim",
        "bytes_sent",
        "transfer_time",
        "fixed_time",
        "ready_time",
        "start_time",
        "end_time",
    )

    def __init__(
        self,
        collective_seq: int,
        chunk_id: int,
        stage_index: int,
        stage: Stage,
        parent_dim: int,
        bytes_sent: float,
        transfer_time: float,
        fixed_time: float,
        priority: int = 0,
    ) -> None:
        self.collective_seq = collective_seq
        self.priority = priority
        self.chunk_id = chunk_id
        self.stage_index = stage_index
        self.stage = stage
        self.parent_dim = parent_dim
        self.bytes_sent = bytes_sent
        self.transfer_time = transfer_time
        self.fixed_time = fixed_time
        self.ready_time = float("inf")
        self.start_time = float("nan")
        self.end_time = float("nan")

    @property
    def key(self) -> tuple[int, int, int]:
        """Identity used by enforced intra-dimension orders."""
        return (self.collective_seq, self.chunk_id, self.stage_index)

    def to_record(self) -> OpRecord:
        return OpRecord(
            collective_seq=self.collective_seq,
            chunk_id=self.chunk_id,
            stage_index=self.stage_index,
            dim_index=self.parent_dim,
            op=self.stage.op,
            stage_size=self.stage.stage_size,
            bytes_sent=self.bytes_sent,
            transfer_time=self.transfer_time,
            fixed_time=self.fixed_time,
            ready_time=self.ready_time,
            start_time=self.start_time,
            end_time=self.end_time,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OpState(c{self.collective_seq} chunk{self.chunk_id} "
            f"stage{self.stage_index} dim{self.parent_dim} {self.stage.op.value})"
        )


@dataclass
class ChannelStats:
    """Aggregated per-dimension statistics (feeds utilization and Fig. 9)."""

    busy_seconds: float = 0.0
    transfer_seconds: float = 0.0
    fixed_seconds: float = 0.0
    bytes_sent: float = 0.0
    op_count: int = 0
    batch_count: int = 0
    activity_intervals: list[Interval] = field(default_factory=list)


class DimensionChannel:
    """Serial executor for one network dimension.

    Owns a ready queue, applies the intra-dimension policy (optionally
    overridden by enforced per-collective orders, Sec. 4.6.2), performs
    fusion, and tracks activity intervals — a dimension "has activity if
    there is at least one chunk in that dimension for processing" (Fig. 9).
    """

    def __init__(
        self,
        dim_index: int,
        dim: DimensionSpec,
        policy: IntraDimPolicy,
        fusion: FusionConfig,
        engine: EventQueue,
        on_batch_done: Callable[["DimensionChannel", list[OpState]], None],
    ) -> None:
        self.dim_index = dim_index
        self.dim = dim
        self.policy = policy
        self.fusion = fusion
        self.engine = engine
        self.on_batch_done = on_batch_done
        self.queue: list[OpState] = []
        self.busy = False
        self.stats = ChannelStats()
        # collective_seq -> remaining enforced op-key order for this channel.
        self.enforced_orders: dict[int, list[tuple[int, int, int]]] = {}
        self._active_since: float | None = None

    # --- activity tracking ------------------------------------------------
    @property
    def has_work(self) -> bool:
        return self.busy or bool(self.queue)

    def _update_activity(self) -> None:
        now = self.engine.now
        if self.has_work and self._active_since is None:
            self._active_since = now
        elif not self.has_work and self._active_since is not None:
            if now > self._active_since:
                self.stats.activity_intervals.append(
                    Interval(self._active_since, now)
                )
            self._active_since = None

    def snapshot_activity(self) -> list[Interval]:
        """Closed activity intervals plus any still-open one up to ``now``.

        Non-destructive: the open interval (a dimension mid-transfer) is
        closed *in the returned copy only*, so ``NetworkSimulator.result()``
        can snapshot a live simulation without corrupting the accounting of
        the remainder of the run.
        """
        intervals = list(self.stats.activity_intervals)
        if self._active_since is not None and self.engine.now > self._active_since:
            intervals.append(Interval(self._active_since, self.engine.now))
        return intervals

    # --- enforced orders (schedule consistency, Sec. 4.6.2) ---------------
    def set_enforced_order(
        self, collective_seq: int, op_keys: list[tuple[int, int, int]]
    ) -> None:
        """Lock this channel's op order for one collective."""
        self.enforced_orders[collective_seq] = list(op_keys)

    def _eligible_ops(self) -> list[OpState]:
        """Ready ops allowed to start now under enforced per-collective orders."""
        eligible = []
        for op in self.queue:
            order = self.enforced_orders.get(op.collective_seq)
            if order is None or (order and order[0] == op.key):
                eligible.append(op)
        return eligible

    # --- execution ----------------------------------------------------------
    def enqueue(self, op: OpState) -> None:
        """An op's previous stage finished: it is now ready on this channel."""
        op.ready_time = self.engine.now
        self.queue.append(op)
        self._update_activity()
        self.try_start()

    def try_start(self) -> None:
        """Start the next batch if the channel is idle and an op is eligible."""
        if self.busy:
            return
        eligible = self._eligible_ops()
        if not eligible:
            return
        batch = self._pick_batch(eligible)
        for op in batch:
            self.queue.remove(op)
            order = self.enforced_orders.get(op.collective_seq)
            if order and order[0] == op.key:
                order.pop(0)
        self._execute(batch)

    def _pick_batch(self, eligible: list[OpState]) -> list[OpState]:
        first = self.policy.select(eligible)
        batch = [first]
        if not self.fusion.enabled or not self.fusion.is_small(first):
            return batch
        # Fusing preserves relative start order, so for enforced collectives
        # eligibility slides forward as earlier ops join the batch.
        taken: dict[int, int] = {}
        if first.collective_seq in self.enforced_orders:
            taken[first.collective_seq] = 1
        while len(batch) < self.fusion.max_ops:
            remaining = []
            for op in self.queue:
                if op in batch:
                    continue
                order = self.enforced_orders.get(op.collective_seq)
                if order is None:
                    remaining.append(op)
                else:
                    offset = taken.get(op.collective_seq, 0)
                    if len(order) > offset and order[offset] == op.key:
                        remaining.append(op)
            if not remaining:
                break
            candidate = self.policy.select(remaining)
            if not self.fusion.is_small(candidate):
                break
            batch.append(candidate)
            if candidate.collective_seq in self.enforced_orders:
                taken[candidate.collective_seq] = (
                    taken.get(candidate.collective_seq, 0) + 1
                )
        return batch

    def _execute(self, batch: list[OpState]) -> None:
        """Run a batch with pipelined fixed latency (paper Sec. 4.4).

        The dimension's wire is occupied for the batch's *transfer* time
        only; the fixed delay ``A_K = steps x step_latency`` is a pipeline
        shadow — the results become available ``fixed`` later, but the next
        batch may start injecting as soon as the wire frees.  This realizes
        the paper's per-dimension total ``A_K + N_K x B_K + idle_K``, where
        A_K is paid once (by the exposed tail), not per chunk.
        """
        now = self.engine.now
        fixed = max(op.fixed_time for op in batch)
        transfer = sum(op.transfer_time for op in batch)
        for op in batch:
            op.start_time = now
            op.end_time = now + fixed + transfer
        self.busy = True
        self.stats.busy_seconds += transfer
        self.stats.transfer_seconds += transfer
        self.stats.fixed_seconds += fixed
        self.stats.bytes_sent += sum(op.bytes_sent for op in batch)
        self.stats.op_count += len(batch)
        self.stats.batch_count += 1
        self._update_activity()
        # Completion is scheduled before the wire release so that when the
        # fixed delay is zero (same-instant tie) the finished batch's
        # successor ops are enqueued before the channel picks its next batch.
        self.engine.schedule(now + fixed + transfer, lambda: self._complete(batch))
        self.engine.schedule(now + transfer, self._release_wire)

    def _release_wire(self) -> None:
        if not self.busy:  # pragma: no cover - defensive
            raise SimulationError(
                f"dim{self.dim_index} released its wire while not busy"
            )
        self.busy = False
        self._update_activity()
        self.try_start()

    def _complete(self, batch: list[OpState]) -> None:
        self.on_batch_done(self, batch)
        self._update_activity()
        self.try_start()
