"""Per-dimension execution machinery: op states, fusion, dimension channels.

The simulator models each network dimension as a *channel* whose wire
serializes chunk transfers at the dimension's aggregate bandwidth, while
the fixed per-op delay ``A_K = steps x step_latency`` is a **pipeline
shadow**: consecutive chunk ops follow each other at transfer-rate spacing
and each op's output becomes available ``A_K`` after its transfer ends.
This realizes exactly the paper's per-dimension cost (Sec. 4.4)::

    Latency(dimK) = A_K + N_K x B_K + idle_K

where ``A_K`` is paid once (by the last op's exposed tail), not once per
chunk — hierarchical collectives stream chunks through their step pipeline.

Two provisions from Sec. 4.3 are implemented here:

* the **intra-dimension policy** picks which ready op runs next (FIFO/SCF),
* **fusion** executes several small ops as one batch when a single op's
  transfer time cannot amortize the fixed latency (the paper's "multiple
  chunks per dimension ... similar to the collective fusion concept in
  NCCL"): a fused batch shares one fixed-delay shadow and coalesces
  scheduling events.

For multi-tenant cluster simulations the wire additionally supports two
fairness disciplines beyond the default serial (first-come) service
(``repro.cluster.fairness`` selects them):

* **weighted sharing** (:meth:`DimensionChannel.set_share_weights`): each
  tenant may have one batch in flight concurrently and the wire's bandwidth
  is split between the in-flight batches in proportion to per-tenant
  weights (GPS-style fluid sharing, recomputed whenever the active set or
  the weights change);
* **preemption** (:meth:`DimensionChannel.enable_preemption`): a ready op
  whose priority strictly exceeds the running batch's pauses that batch;
  the remainder of its transfer is re-run later, with statistics adjusted
  so no byte or wire-second is lost or double-counted.

Fault injection reuses the same machinery: the wire carries a live
``capacity_factor`` (fraction of nominal bandwidth, see
:mod:`repro.sim.faults`), :meth:`DimensionChannel.set_capacity_factor`
re-segments in-flight work at the new rate through the generation-guarded
rescheduling path, and a factor of zero parks everything in flight — a
failed link loses no bytes, it just stops draining until restored.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..collectives.phases import Stage
from ..core.policies import IntraDimPolicy
from ..core.ready_queue import ReadyQueue
from ..errors import ConfigError, SimulationError
from ..topology import DimensionSpec
from .engine import EventHandle, EventQueue
from .faults import MIN_CAPACITY_FACTOR
from .timeline import Interval, OpRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .audit import InvariantAuditor


@dataclass(frozen=True)
class FusionConfig:
    """Chunk-op fusion parameters (Sec. 4.3, second provision).

    An op is *small* when ``transfer_time < saturation_factor x fixed_time``
    — it finishes its bytes before the pipeline latency is amortized, so
    running it alone underutilizes the dimension.  Up to ``max_ops`` small
    ops are fused into one batch.
    """

    enabled: bool = True
    saturation_factor: float = 1.0
    max_ops: int = 8

    def __post_init__(self) -> None:
        if self.saturation_factor < 0:
            raise ConfigError(
                f"saturation factor must be >= 0, got {self.saturation_factor}"
            )
        if self.max_ops < 1:
            raise ConfigError(f"max fused ops must be >= 1, got {self.max_ops}")

    def is_small(self, op: "OpState") -> bool:
        return op.transfer_time < self.saturation_factor * op.fixed_time


class OpState:
    """Mutable runtime state of one chunk operation on one dimension."""

    __slots__ = (
        "collective_seq",
        "priority",
        "owner",
        "chunk_id",
        "stage_index",
        "stage",
        "parent_dim",
        "bytes_sent",
        "transfer_time",
        "fixed_time",
        "ready_time",
        "start_time",
        "end_time",
        "queued",
    )

    def __init__(
        self,
        collective_seq: int,
        chunk_id: int,
        stage_index: int,
        stage: Stage,
        parent_dim: int,
        bytes_sent: float,
        transfer_time: float,
        fixed_time: float,
        priority: int = 0,
        owner: str = "",
    ) -> None:
        self.collective_seq = collective_seq
        self.priority = priority
        self.owner = owner
        self.chunk_id = chunk_id
        self.stage_index = stage_index
        self.stage = stage
        self.parent_dim = parent_dim
        self.bytes_sent = bytes_sent
        self.transfer_time = transfer_time
        self.fixed_time = fixed_time
        self.ready_time = float("inf")
        self.start_time = float("nan")
        self.end_time = float("nan")
        #: Ready-queue liveness flag (lazy deletion in the indexed queues).
        self.queued = False

    @property
    def key(self) -> tuple[int, int, int]:
        """Identity used by enforced intra-dimension orders."""
        return (self.collective_seq, self.chunk_id, self.stage_index)

    def to_record(self) -> OpRecord:
        return OpRecord(
            collective_seq=self.collective_seq,
            chunk_id=self.chunk_id,
            stage_index=self.stage_index,
            dim_index=self.parent_dim,
            op=self.stage.op,
            stage_size=self.stage.stage_size,
            bytes_sent=self.bytes_sent,
            transfer_time=self.transfer_time,
            fixed_time=self.fixed_time,
            ready_time=self.ready_time,
            start_time=self.start_time,
            end_time=self.end_time,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OpState(c{self.collective_seq} chunk{self.chunk_id} "
            f"stage{self.stage_index} dim{self.parent_dim} {self.stage.op.value})"
        )


@dataclass
class ChannelStats:
    """Aggregated per-dimension statistics (feeds utilization and Fig. 9)."""

    busy_seconds: float = 0.0
    transfer_seconds: float = 0.0
    fixed_seconds: float = 0.0
    bytes_sent: float = 0.0
    op_count: int = 0
    batch_count: int = 0
    activity_intervals: list[Interval] = field(default_factory=list)


class _RunningBatch:
    """Serial-wire bookkeeping for the batch currently (or lately) on the wire.

    ``remaining`` is the transfer time still owed; preemption decrements it
    by the elapsed segment and *cancels* the segment's pending release and
    completion events outright (the ``generation`` counter stays as a
    defensive guard, and carries the legacy no-cancellation engine mode used
    by the perf harness's before/after comparison).
    """

    __slots__ = (
        "batch",
        "fixed",
        "transfer_total",
        "bytes_total",
        "priority",
        "remaining",
        "segment_start",
        "generation",
        "release_handle",
        "complete_handle",
    )

    def __init__(self, batch: list[OpState], fixed: float, transfer: float) -> None:
        self.batch = batch
        self.fixed = fixed
        self.transfer_total = transfer
        self.bytes_total = sum(op.bytes_sent for op in batch)
        self.priority = max(op.priority for op in batch)
        self.remaining = transfer
        self.segment_start = 0.0
        self.generation = 0
        self.release_handle: EventHandle | None = None
        self.complete_handle: EventHandle | None = None


class _FlowState:
    """One tenant's in-flight batch under weighted bandwidth sharing.

    ``remaining`` is transfer work measured in seconds at *full* wire rate;
    the flow drains at ``rate`` (its weight share), so its finish event is
    recomputed — and the old one cancelled — every time the active set or
    the weights change.  ``generation`` remains as a defensive guard and
    carries the legacy no-cancellation engine mode.
    """

    __slots__ = (
        "batch",
        "owner",
        "fixed",
        "priority",
        "remaining",
        "rate",
        "last_update",
        "generation",
        "finish_handle",
    )

    def __init__(
        self, batch: list[OpState], owner: str, fixed: float, transfer: float
    ) -> None:
        self.batch = batch
        self.owner = owner
        self.fixed = fixed
        self.priority = max(op.priority for op in batch)
        self.remaining = transfer
        self.rate = 0.0
        self.last_update = 0.0
        self.generation = 0
        self.finish_handle: EventHandle | None = None


#: Weights below this are clamped up so a zero-weight tenant still drains
#: (otherwise its flow would never finish and the simulation would deadlock).
_MIN_WEIGHT = 1e-9


class DimensionChannel:
    """Executor for one network dimension.

    Owns a ready queue, applies the intra-dimension policy (optionally
    overridden by enforced per-collective orders, Sec. 4.6.2), performs
    fusion, and tracks activity intervals — a dimension "has activity if
    there is at least one chunk in that dimension for processing" (Fig. 9).

    By default the wire is *serial*: one batch at a time at full bandwidth.
    The cluster fairness layer may switch it to weighted per-tenant sharing
    (:meth:`set_share_weights`) or arm priority preemption
    (:meth:`enable_preemption`); see the module docstring.

    ``indexed`` selects the ready-queue structure: the policy-keyed indexed
    queues (default, O(log n) per decision) or the seed-semantics flat list
    (the reference path the determinism property tests compare against).
    """

    def __init__(
        self,
        dim_index: int,
        dim: DimensionSpec,
        policy: IntraDimPolicy,
        fusion: FusionConfig,
        engine: EventQueue,
        on_batch_done: Callable[["DimensionChannel", list[OpState]], None],
        indexed: bool = True,
    ) -> None:
        self.dim_index = dim_index
        self.dim = dim
        self.policy = policy
        self.fusion = fusion
        self.engine = engine
        self.on_batch_done = on_batch_done
        self.queue: ReadyQueue = policy.make_queue(indexed=indexed)
        self.queue.bind(self._op_is_eligible)
        self.busy = False
        self.stats = ChannelStats()
        # Live outstanding load (enqueued but not yet completed work) — read
        # at job-arrival time by the cluster placement policies.  Bytes are
        # credited on enqueue and debited when the op's batch completes, so
        # preempted/paused work correctly stays outstanding.
        self._outstanding_bytes = 0.0
        self._outstanding_owner_ops: dict[str, int] = {}
        # collective_seq -> remaining enforced op-key order for this channel.
        self.enforced_orders: dict[int, list[tuple[int, int, int]]] = {}
        self._active_since: float | None = None
        # --- fairness machinery (off by default) --------------------------
        #: ``None`` = serial wire; a dict = weighted per-tenant sharing.
        self.share_weights: dict[str, float] | None = None
        self.default_weight = 1.0
        self.preemption_enabled = False
        self.preemption_count = 0
        #: Strict-priority variant of the shared wire (fluid backend's
        #: preemption model): only the highest-priority in-flight flows get
        #: rate; lower-priority flows park at rate zero with progress banked.
        self.priority_sharing = False
        #: Optional cross-channel coalescer (:class:`FlowCoalescer`): when
        #: set, same-instant ``_reschedule_flows`` calls collapse into one
        #: recomputation per channel per instant.
        self.flow_coalescer: "FlowCoalescer | None" = None
        self._coalesce_marked = False
        self._flows: dict[str, _FlowState] = {}
        self._running: _RunningBatch | None = None
        self._paused: list[_RunningBatch] = []
        # --- fault machinery (capacity always nominal by default) ---------
        #: Live capacity as a fraction of nominal: transfer work drains at
        #: ``capacity_factor`` nominal-seconds per wall-second.  ``0.0`` is
        #: a failed link — in-flight work parks (never lost) until restored.
        #: Statistics stay in nominal seconds regardless of the factor.
        self.capacity_factor = 1.0
        #: Optional runtime invariant auditor (see :mod:`repro.sim.audit`).
        #: Observer-only; attached by ``NetworkSimulator(audit=True)``.
        self.auditor: "InvariantAuditor | None" = None

    # --- fairness configuration -------------------------------------------
    def set_share_weights(
        self, weights: dict[str, float], default: float = 1.0
    ) -> None:
        """Enable (or re-tune) weighted per-tenant bandwidth sharing.

        ``weights`` maps tenant (``OpState.owner``) to a positive share;
        tenants absent from the map get ``default``.  Safe to call mid-run:
        in-flight flows keep their progress and drain at the new rates.
        """
        for owner, weight in weights.items():
            if weight <= 0:
                raise ConfigError(
                    f"tenant {owner!r}: share weight must be positive, "
                    f"got {weight}"
                )
        if default <= 0:
            raise ConfigError(f"default share weight must be positive, got {default}")
        if self.share_weights is None and (self.busy or self._paused):
            raise ConfigError(
                f"dim{self.dim_index}: cannot switch to weighted sharing "
                "while the serial wire has a batch in flight"
            )
        self.share_weights = dict(weights)
        self.default_weight = default
        if self._flows:
            self._reschedule_flows()
        self.try_start()

    def enable_preemption(self) -> None:
        """Let strictly higher-priority arrivals pause the running batch."""
        self.preemption_enabled = True

    def enable_priority_sharing(self) -> None:
        """Strict-priority rates on the shared wire (fluid preemption).

        Only in-flight flows at the current maximum priority split the
        wire; lower-priority flows are parked at rate zero with their
        progress banked — the fluid-model analogue of serial preemption,
        with each running→parked transition counted as a preemption.
        """
        if self.share_weights is None:
            raise ConfigError(
                f"dim{self.dim_index}: priority sharing requires the shared "
                "wire; call set_share_weights first"
            )
        self.priority_sharing = True

    # --- fault injection ---------------------------------------------------
    def set_capacity_factor(self, factor: float) -> None:
        """Change the wire's live capacity mid-run (fault inject/restore).

        ``factor`` is the fraction of nominal bandwidth the dimension now
        carries (``1.0`` = healthy, ``0.0`` = failed).  In-flight work is
        re-segmented at the new rate through the same generation-guarded
        path preemption uses, so byte/seconds accounting is conserved
        across the change: the done part of the current segment stays
        credited, the leftover is debited and re-credited when its new
        segment (or its park/resume cycle) runs.  At ``0.0`` the in-flight
        batch parks (serial wire) or every flow's rate drops to zero with
        progress banked (shared wire); nothing is lost and nothing drains
        until a later call restores capacity.
        """
        if factor < 0.0:
            raise ConfigError(
                f"dim{self.dim_index}: capacity factor must be >= 0, "
                f"got {factor}"
            )
        if factor > 1.0:
            raise ConfigError(
                f"dim{self.dim_index}: capacity factor must be <= 1 "
                f"(degradation cannot exceed nominal), got {factor}"
            )
        if factor != 0.0 and factor < MIN_CAPACITY_FACTOR:
            factor = 0.0  # near-zero capacity behaves as a failure
        old = self.capacity_factor
        if factor == old:
            return
        if self.share_weights is not None:
            self.capacity_factor = factor
            # Fault transitions are precision points (the fluid backend's
            # hybrid contract): recompute immediately, never coalesced.
            self._reschedule_flows(immediate=True)
            if self.auditor is not None:
                self.auditor.on_capacity_change(self, old, factor)
            self.try_start()
            return
        # Serial wire: close the running segment at the old rate, then
        # either restart the leftover at the new rate or park it.
        running = self._running
        if running is not None and self.busy:
            now = self.engine.now
            done = (now - running.segment_start) * old
            remaining = running.remaining - done
            if remaining > 1e-18:
                running.generation += 1
                self.engine.cancel(running.complete_handle)
                self.engine.cancel(running.release_handle)
                frac = remaining / running.transfer_total
                self.stats.busy_seconds -= remaining
                self.stats.transfer_seconds -= remaining
                self.stats.fixed_seconds -= running.fixed
                self.stats.bytes_sent -= running.bytes_total * frac
                running.remaining = remaining
                self.busy = False
                self._running = None
                self.capacity_factor = factor
                if factor > 0.0:
                    self._start_segment(running)
                else:
                    self._paused.append(running)
                    self._update_activity()
                if self.auditor is not None:
                    self.auditor.on_capacity_change(self, old, factor)
                self.try_start()
                return
            # else: segment effectively done — let its pending events fire.
        self.capacity_factor = factor
        if self.auditor is not None:
            self.auditor.on_capacity_change(self, old, factor)
        self.try_start()

    def _weight(self, owner: str) -> float:
        assert self.share_weights is not None
        return max(self.share_weights.get(owner, self.default_weight), _MIN_WEIGHT)

    # --- outstanding load (placement signals) ------------------------------
    @property
    def outstanding_bytes(self) -> float:
        """Bytes of enqueued-but-uncompleted work currently on this dimension.

        Counts ready, running, and paused/preempted ops (their bytes are
        still owed to the wire).  Ops of *later* stages of an in-flight
        chunk are not included until their predecessor completes and they
        are enqueued here.
        """
        return max(0.0, self._outstanding_bytes)

    @property
    def active_tenant_count(self) -> int:
        """Distinct owners with outstanding (uncompleted) ops here."""
        return len(self._outstanding_owner_ops)

    def _track_enqueued(self, op: OpState) -> None:
        self._outstanding_bytes += op.bytes_sent
        self._outstanding_owner_ops[op.owner] = (
            self._outstanding_owner_ops.get(op.owner, 0) + 1
        )

    def _track_completed(self, batch: list[OpState]) -> None:
        for op in batch:
            self._outstanding_bytes -= op.bytes_sent
            count = self._outstanding_owner_ops.get(op.owner, 0) - 1
            if count > 0:
                self._outstanding_owner_ops[op.owner] = count
            else:
                self._outstanding_owner_ops.pop(op.owner, None)

    # --- activity tracking ------------------------------------------------
    @property
    def has_work(self) -> bool:
        return (
            self.busy
            or bool(self.queue)
            or bool(self._flows)
            or bool(self._paused)
        )

    def _update_activity(self) -> None:
        now = self.engine.now
        if self.has_work and self._active_since is None:
            self._active_since = now
        elif not self.has_work and self._active_since is not None:
            if now > self._active_since:
                self.stats.activity_intervals.append(
                    Interval(self._active_since, now)
                )
            self._active_since = None

    def snapshot_activity(self) -> list[Interval]:
        """Closed activity intervals plus any still-open one up to ``now``.

        Non-destructive: the open interval (a dimension mid-transfer) is
        closed *in the returned copy only*, so ``NetworkSimulator.result()``
        can snapshot a live simulation without corrupting the accounting of
        the remainder of the run.
        """
        intervals = list(self.stats.activity_intervals)
        if self._active_since is not None and self.engine.now > self._active_since:
            intervals.append(Interval(self._active_since, self.engine.now))
        return intervals

    # --- enforced orders (schedule consistency, Sec. 4.6.2) ---------------
    def set_enforced_order(
        self, collective_seq: int, op_keys: list[tuple[int, int, int]]
    ) -> None:
        """Lock this channel's op order for one collective."""
        self.enforced_orders[collective_seq] = list(op_keys)

    # --- execution ----------------------------------------------------------
    def enqueue(self, op: OpState) -> None:
        """An op's previous stage finished: it is now ready on this channel."""
        op.ready_time = self.engine.now
        eligible = self._op_is_eligible(op)
        self.queue.push(op, eligible)
        self._track_enqueued(op)
        if self.auditor is not None:
            self.auditor.on_enqueue(self, op)
        self._update_activity()
        if (
            self.preemption_enabled
            and self.share_weights is None
            and self.busy
            and self._running is not None
            and op.priority > self._running.priority
            and eligible
        ):
            self._preempt_running()
        self.try_start()

    def _op_is_eligible(self, op: OpState) -> bool:
        """Whether ``op`` may start now under enforced per-collective orders.

        Preemption checks this before pausing the wire: an order-blocked op
        cannot start, so preempting for it would be immediately undone (and
        would inflate the reported preemption count).
        """
        order = self.enforced_orders.get(op.collective_seq)
        return order is None or bool(order and order[0] == op.key)

    def try_start(self) -> None:
        """Start the next batch/flow if the wire discipline allows one."""
        if self.capacity_factor <= 0.0:
            return  # failed link: ready/parked work waits for restoration
        if self.share_weights is not None:
            self._try_start_shared()
            return
        if self.busy:
            return
        best = self.policy.select_from(self.queue)
        paused = self._best_paused()
        if paused is not None and (
            best is None or paused.priority >= self.queue.max_priority()
        ):
            self._paused.remove(paused)
            self._start_segment(paused)
            return
        if best is None:
            return
        self._execute(self._pick_batch(best))

    def _take(self, op: OpState) -> OpState:
        """Remove a selected op from the ready structure and advance orders.

        Popping an enforced order's head makes the next op in that order
        eligible; the indexed queue unparks it immediately, so fusion and
        subsequent selections see it without any rescan (this is the
        incremental equivalent of the seed's sliding ``taken`` offsets).
        """
        self.queue.discard(op)
        order = self.enforced_orders.get(op.collective_seq)
        if order and order[0] == op.key:
            order.pop(0)
            if order:
                self.queue.promote(order[0])
        return op

    def _pick_batch(
        self, first: OpState, fusion_owner: str | None = None
    ) -> list[OpState]:
        batch = [self._take(first)]
        if not self.fusion.enabled or not self.fusion.is_small(first):
            return batch
        # Fusing preserves relative start order: each accepted op advances
        # its enforced order, so eligibility slides forward with the batch.
        while len(batch) < self.fusion.max_ops:
            candidate = self.policy.select_from(self.queue, owner=fusion_owner)
            if candidate is None or not self.fusion.is_small(candidate):
                break
            batch.append(self._take(candidate))
        return batch

    # --- serial wire (default, with optional preemption) -------------------
    def _execute(self, batch: list[OpState]) -> None:
        """Run a batch with pipelined fixed latency (paper Sec. 4.4).

        The dimension's wire is occupied for the batch's *transfer* time
        only; the fixed delay ``A_K = steps x step_latency`` is a pipeline
        shadow — the results become available ``fixed`` later, but the next
        batch may start injecting as soon as the wire frees.  This realizes
        the paper's per-dimension total ``A_K + N_K x B_K + idle_K``, where
        A_K is paid once (by the exposed tail), not per chunk.
        """
        now = self.engine.now
        fixed = max(op.fixed_time for op in batch)
        transfer = sum(op.transfer_time for op in batch)
        for op in batch:
            op.start_time = now
        self.stats.op_count += len(batch)
        self.stats.batch_count += 1
        if self.auditor is not None:
            self.auditor.on_batch_start(self, batch)
        self._start_segment(_RunningBatch(batch, fixed, transfer))

    def _start_segment(self, running: _RunningBatch) -> None:
        """(Re)occupy the wire for the batch's remaining transfer work.

        A fresh batch runs one segment covering its whole transfer; a batch
        resumed after preemption runs a segment for the leftover work.
        Statistics are credited per segment (and debited on preemption), so
        across all segments each batch contributes exactly its transfer
        seconds and bytes once.  The fixed-latency shadow is paid at the end
        of the final segment.

        ``remaining`` is nominal transfer work; a degraded wire drains it at
        ``capacity_factor`` work-seconds per wall-second, so the segment's
        wall time is ``remaining / capacity_factor`` (exactly ``remaining``
        at nominal capacity — division by 1.0 is lossless).  Statistics stay
        in nominal seconds.
        """
        assert self.capacity_factor > 0.0  # failed links park, never start
        now = self.engine.now
        running.segment_start = now
        remaining = running.remaining
        frac = (
            remaining / running.transfer_total
            if running.transfer_total > 0
            else 1.0
        )
        self.busy = True
        self._running = running
        self.stats.busy_seconds += remaining
        self.stats.transfer_seconds += remaining
        self.stats.fixed_seconds += running.fixed
        self.stats.bytes_sent += running.bytes_total * frac
        wall = remaining / self.capacity_factor
        end = now + running.fixed + wall
        for op in running.batch:
            op.end_time = end
        self._update_activity()
        generation = running.generation
        # Completion is scheduled before the wire release so that when the
        # fixed delay is zero (same-instant tie) the finished batch's
        # successor ops are enqueued before the channel picks its next batch.
        running.complete_handle = self.engine.schedule(
            end, lambda: self._complete(running, generation)
        )
        running.release_handle = self.engine.schedule(
            now + wall, lambda: self._release_wire(running, generation)
        )

    def _preempt_running(self) -> None:
        """Pause the running batch; its leftover transfer re-runs later.

        The segment's pending release/completion events are cancelled
        outright (the generation counter remains as a guard for the legacy
        no-cancellation engine mode), and the statistics credited at segment
        start are debited by exactly the un-done part, so preemption never
        loses or double-counts work.
        """
        running = self._running
        assert running is not None
        now = self.engine.now
        done = (now - running.segment_start) * self.capacity_factor
        remaining = running.remaining - done
        if remaining <= 1e-18:
            return  # the segment is done; the wire releases this instant
        running.generation += 1
        self.engine.cancel(running.complete_handle)
        self.engine.cancel(running.release_handle)
        frac = remaining / running.transfer_total
        self.stats.busy_seconds -= remaining
        self.stats.transfer_seconds -= remaining
        self.stats.fixed_seconds -= running.fixed
        self.stats.bytes_sent -= running.bytes_total * frac
        running.remaining = remaining
        self.busy = False
        self._running = None
        self._paused.append(running)
        self.preemption_count += 1
        if self.auditor is not None:
            self.auditor.on_preempt(self, running)
        self._update_activity()

    def _best_paused(self) -> _RunningBatch | None:
        """Highest-priority paused batch (ties: most recently preempted).

        On equal priority the *last* batch pushed to ``_paused`` wins — the
        most recently preempted work resumes first (LIFO), which keeps a
        preemption storm from starving the batch it displaced last.
        """
        best = None
        for running in self._paused:
            if best is None or running.priority >= best.priority:
                best = running
        return best

    def _release_wire(self, running: _RunningBatch, generation: int) -> None:
        if running.generation != generation:
            return  # segment was preempted; a later segment owns the wire
        if not self.busy:  # pragma: no cover - defensive
            raise SimulationError(
                f"dim{self.dim_index} released its wire while not busy"
            )
        running.remaining = 0.0
        self.busy = False
        self._running = None
        self._update_activity()
        self.try_start()

    def _complete(self, running: _RunningBatch, generation: int) -> None:
        if running.generation != generation:
            return  # segment was preempted before its transfer finished
        self._track_completed(running.batch)
        if self.auditor is not None:
            self.auditor.on_batch_complete(self, running.batch)
        self.on_batch_done(self, running.batch)
        self._update_activity()
        self.try_start()

    # --- weighted-sharing wire (cluster fairness) ---------------------------
    def _try_start_shared(self) -> None:
        """Admit one flow per tenant that has eligible work and none in flight."""
        while True:
            first = self.policy.select_from(
                self.queue, exclude_owners=self._flows
            )
            if first is None:
                return
            batch = self._pick_batch(first, fusion_owner=first.owner)
            self._start_flow(batch)

    def _start_flow(self, batch: list[OpState]) -> None:
        now = self.engine.now
        fixed = max(op.fixed_time for op in batch)
        transfer = sum(op.transfer_time for op in batch)
        for op in batch:
            op.start_time = now
        self.stats.busy_seconds += transfer
        self.stats.transfer_seconds += transfer
        self.stats.fixed_seconds += fixed
        self.stats.bytes_sent += sum(op.bytes_sent for op in batch)
        self.stats.op_count += len(batch)
        self.stats.batch_count += 1
        if self.auditor is not None:
            self.auditor.on_batch_start(self, batch)
        flow = _FlowState(batch, batch[0].owner, fixed, transfer)
        flow.last_update = now
        self._flows[flow.owner] = flow
        self.queue.set_owner_active(flow.owner, True)
        self._update_activity()
        self._reschedule_flows()

    def _reschedule_flows(self, immediate: bool = False) -> None:
        """Re-split the wire among active flows and re-arm their finishes.

        Called whenever the active set or the weights change.  Each flow's
        progress since its last update is banked at its old rate, then every
        flow gets rate ``w_i / sum(active w)`` and a fresh finish event; the
        superseded finish event is cancelled so reweight storms cannot grow
        the heap (the generation counter remains as a guard for the legacy
        no-cancellation engine mode).

        With a :class:`FlowCoalescer` attached, non-``immediate`` calls are
        deferred to one same-instant flush per channel: no simulated time
        passes between the request and the flush, so banking is unaffected
        and a burst of arrivals/finishes at one instant costs one
        recomputation instead of one per trigger.
        """
        if not self._flows:
            return
        if (
            not immediate
            and self.flow_coalescer is not None
            and self.flow_coalescer.defer(self)
        ):
            return
        now = self.engine.now
        active = self._flows
        parked_priority: int | None = None
        if self.priority_sharing:
            top = max(flow.priority for flow in self._flows.values())
            active = {
                owner: flow
                for owner, flow in self._flows.items()
                if flow.priority == top
            }
            if len(active) < len(self._flows):
                parked_priority = top
        total = sum(self._weight(owner) for owner in active)
        for flow in self._flows.values():
            if now > flow.last_update and flow.rate > 0:
                flow.remaining = max(
                    0.0, flow.remaining - flow.rate * (now - flow.last_update)
                )
            flow.last_update = now
            if parked_priority is not None and flow.priority < parked_priority:
                # Strict-priority sharing: a lower-priority flow parks at
                # rate zero with its progress banked; every running→parked
                # transition is one preemption.
                if flow.rate > 0.0 and self.capacity_factor > 0.0:
                    self.preemption_count += 1
                flow.rate = 0.0
            else:
                # A degraded wire splits its *live* capacity by weight; at
                # nominal capacity the multiplication by 1.0 is lossless, so
                # fault-free timelines are bit-identical to the pre-fault
                # code.
                flow.rate = (
                    self.capacity_factor * self._weight(flow.owner) / total
                )
            flow.generation += 1
            generation = flow.generation
            self.engine.cancel(flow.finish_handle)
            if flow.rate <= 0.0:
                # Failed link (or priority-parked flow): parks with its
                # progress banked.  No finish event is armed (there is no
                # finite finish time); a capacity restore or a priority
                # departure reschedules every parked flow here.
                flow.finish_handle = None
                continue
            finish = now + flow.remaining / flow.rate
            flow.finish_handle = self.engine.schedule(
                finish,
                lambda flow=flow, generation=generation: self._finish_flow(
                    flow, generation
                ),
            )
        if self.auditor is not None:
            self.auditor.on_flows_rescheduled(self, self._flows)

    def _finish_flow(self, flow: _FlowState, generation: int) -> None:
        if flow.generation != generation:
            return  # superseded by a reschedule
        flow.remaining = 0.0
        del self._flows[flow.owner]
        self.queue.set_owner_active(flow.owner, False)
        now = self.engine.now
        end = now + flow.fixed
        for op in flow.batch:
            op.end_time = end
        self.engine.schedule(end, lambda: self._complete_flow(flow))
        self._update_activity()
        self._reschedule_flows()
        self.try_start()

    def _complete_flow(self, flow: _FlowState) -> None:
        self._track_completed(flow.batch)
        if self.auditor is not None:
            self.auditor.on_batch_complete(self, flow.batch)
        self.on_batch_done(self, flow.batch)
        self._update_activity()
        self.try_start()


class FlowCoalescer:
    """Cross-channel coalescing of simultaneous rate-change events.

    A burst of flow arrivals/finishes at one simulated instant — a
    collective fanning out over every dimension, a weight retune touching
    all channels, a finish cascading into the next stage — triggers one
    ``_reschedule_flows`` per cause per channel, and each recomputation
    cancels and re-arms every in-flight finish event.  The coalescer defers
    those recomputations to a single *flush* event scheduled at the same
    instant: the event engine fires same-time events in scheduling order,
    so the flush runs after every same-instant cause, recomputing each
    dirty channel exactly once.

    Zero simulated time passes between a deferred request and its flush, so
    progress banking (which integrates over elapsed time) is unaffected —
    timelines are identical, only the event count drops.  Channels are
    flushed in the order they were first marked (deterministic; no set
    iteration).  Precision points (fault transitions) bypass the coalescer
    via ``_reschedule_flows(immediate=True)``.
    """

    __slots__ = ("engine", "_marked", "flushes", "deferrals")

    def __init__(self, engine: EventQueue) -> None:
        self.engine = engine
        self._marked: list[DimensionChannel] = []
        #: Diagnostics: flush events fired / reschedules absorbed.
        self.flushes = 0
        self.deferrals = 0

    def defer(self, channel: DimensionChannel) -> bool:
        """Mark ``channel`` dirty; returns True (the call is absorbed)."""
        self.deferrals += 1
        if channel._coalesce_marked:
            return True
        if not self._marked:
            self.engine.schedule(self.engine.now, self._flush)
        channel._coalesce_marked = True
        self._marked.append(channel)
        return True

    def _flush(self) -> None:
        marked, self._marked = self._marked, []
        self.flushes += 1
        for channel in marked:
            channel._coalesce_marked = False
            channel._reschedule_flows(immediate=True)
