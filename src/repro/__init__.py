"""repro — a reproduction of Themis (ISCA 2022).

Themis is a network-bandwidth-aware collective scheduling policy for
distributed training on multi-dimensional NPU networks.  This package
provides:

* ``repro.topology`` — multi-dimensional network models (Table 2 presets),
* ``repro.collectives`` — per-dimension collective algorithm cost models,
* ``repro.core`` — the Themis scheduler, baseline, and ideal references,
* ``repro.sim`` — the discrete-event network simulator,
* ``repro.workloads`` / ``repro.training`` — DNN workload models and the
  end-to-end training-iteration simulator,
* ``repro.cluster`` — multi-job cluster simulation (concurrent training
  jobs contending for one shared network),
* ``repro.analysis`` — utilization metrics and BW-provisioning insights,
* ``repro.experiments`` — harnesses regenerating every paper figure/table,
* ``repro.api`` — the declarative scenario layer: serializable
  ``ScenarioSpec``s, one ``run(spec)`` dispatcher, one ``RunReport`` type,
  and a ``sweep`` grid runner on top of one unified component registry.

Quickstart::

    from repro import (
        CollectiveRequest, CollectiveType, NetworkSimulator,
        SchedulerFactory, bw_utilization, get_topology, parse_size,
    )

    topo = get_topology("3D-SW_SW_SW_homo")
    sim = NetworkSimulator(topo, SchedulerFactory("themis"), policy="SCF")
    sim.submit(CollectiveRequest(CollectiveType.ALL_REDUCE, parse_size("1GB")))
    result = sim.run()
    print(result.makespan, bw_utilization(result).average)
"""

from . import api
from .cluster import (
    ClusterConfig,
    ClusterReport,
    ClusterSimulator,
    JobSpec,
    poisson_trace,
    run_cluster,
)
from .collectives import (
    CollectiveRequest,
    CollectiveType,
    PhaseOp,
    SwitchOffloadAlgorithm,
    invariant_bytes_per_npu,
    offload_overrides,
)
from .core import (
    BaselineScheduler,
    DimLoadTracker,
    ExhaustiveScheduler,
    IdealEstimator,
    LatencyModel,
    LpIdealEstimator,
    SchedulerFactory,
    Splitter,
    ThemisScheduler,
    achievable_utilization,
)
from .errors import (
    CollectiveError,
    ConfigError,
    ReproError,
    ScheduleError,
    SimulationError,
    TopologyError,
    WorkloadError,
)
from .sim import (
    EventQueue,
    ExecutionResult,
    FusionConfig,
    IdealNetwork,
    NetworkSimulator,
    bw_utilization,
    render_gantt,
)
from .topology import (
    DimensionKind,
    DimensionSpec,
    Topology,
    dimension,
    get_topology,
    load_topology,
    paper_topologies,
    preset_names,
    save_topology,
)
from .units import GB, GBPS, KB, MB, US, fmt_size, fmt_time, gbps, parse_size

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # declarative scenario layer
    "api",
    # collectives
    "CollectiveRequest",
    "CollectiveType",
    "PhaseOp",
    "invariant_bytes_per_npu",
    "SwitchOffloadAlgorithm",
    "offload_overrides",
    # core
    "BaselineScheduler",
    "ThemisScheduler",
    "SchedulerFactory",
    "Splitter",
    "DimLoadTracker",
    "LatencyModel",
    "IdealEstimator",
    "LpIdealEstimator",
    "achievable_utilization",
    "ExhaustiveScheduler",
    # errors
    "ReproError",
    "ConfigError",
    "TopologyError",
    "CollectiveError",
    "ScheduleError",
    "SimulationError",
    "WorkloadError",
    # cluster
    "JobSpec",
    "poisson_trace",
    "ClusterConfig",
    "ClusterSimulator",
    "ClusterReport",
    "run_cluster",
    # sim
    "EventQueue",
    "NetworkSimulator",
    "IdealNetwork",
    "ExecutionResult",
    "FusionConfig",
    "bw_utilization",
    "render_gantt",
    # topology
    "Topology",
    "DimensionKind",
    "DimensionSpec",
    "dimension",
    "get_topology",
    "paper_topologies",
    "preset_names",
    "load_topology",
    "save_topology",
    # units
    "KB",
    "MB",
    "GB",
    "GBPS",
    "US",
    "gbps",
    "parse_size",
    "fmt_size",
    "fmt_time",
]
