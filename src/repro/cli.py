"""Command-line interface: ``themis-sim`` (or ``python -m repro.cli``).

Subcommands
-----------
``topologies``
    List the Table 2 topology presets and their BW distributions.
``collective``
    Simulate one collective on one topology under each scheduler.
``train``
    Simulate training iterations of a paper workload.
``cluster``
    Simulate a multi-job cluster trace (Poisson arrivals, shared network)
    under per-job Baseline vs Themis scheduling; with ``--fairness``, run
    the skewed-trace cluster fairness comparison (FIFO vs weighted shares
    vs finish-time fair vs priority preemption) instead.
``provisioning``
    Sec. 6.3 BW-distribution assessment of a topology.
``fig``
    Regenerate a paper figure (4, 5, 8, 9, 10, 11, 12) or the headline
    numbers.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .analysis.provisioning import assess
from .analysis.sweep import PAPER_SCHEDULERS, run_collective
from .analysis.tables import format_table, ms, pct
from .collectives.types import CollectiveType
from .errors import ReproError
from .topology import get_topology, preset_names
from .training.iteration import TrainingConfig, simulate_training
from .units import fmt_size, fmt_time, parse_size
from .workloads import get_workload


#: Defaults of the ``cluster`` subcommand's trace-shaping flags — shared by
#: ``build_parser`` and the ``--fairness`` ignored-flag warning so the two
#: can never disagree.
_CLUSTER_TRACE_DEFAULTS = {
    "jobs": 4,
    "interarrival_ms": 2.0,
    "seed": 1,
    "iterations": 1,
    "workloads": "",
}


def _cmd_topologies(_args: argparse.Namespace) -> int:
    for name in preset_names():
        print(get_topology(name).describe())
        print()
    return 0


def _cmd_collective(args: argparse.Namespace) -> int:
    topology = get_topology(args.topology)
    size = parse_size(args.size)
    ctype = CollectiveType.from_name(args.type)
    print(
        f"{ctype.value} of {fmt_size(size)} on {topology.name} "
        f"({args.chunks} chunks):"
    )
    rows = []
    baseline_time = None
    for config in PAPER_SCHEDULERS:
        record, _ = run_collective(
            topology, config, size, ctype=ctype, chunks=args.chunks
        )
        if config.label == "Baseline":
            baseline_time = record.comm_time
        speedup = baseline_time / record.comm_time if baseline_time else 1.0
        rows.append((config.label, record.comm_time, record.utilization, speedup))
    print(
        format_table(
            ["scheduler", "comm time", "avg BW util", "speedup"],
            rows,
            [str, ms, pct, "{:.2f}x".format],
        )
    )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    topology = get_topology(args.topology)
    config = TrainingConfig(
        iterations=args.iterations,
        overlap_dp=not args.sync_dp,
        dp_bucket_bytes=parse_size(args.bucket) if args.bucket else None,
    )
    print(workload.describe(topology))
    print()
    for scheduler, ideal in (("baseline", False), ("themis", False), ("themis", True)):
        report = simulate_training(
            workload, topology, scheduler=scheduler, config=config,
            ideal_network=ideal,
        )
        print(report.describe())
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from .experiments.cluster_contention import run_cluster_contention

    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 1
    if args.interarrival_ms <= 0:
        print(
            f"error: --interarrival-ms must be > 0, got {args.interarrival_ms}",
            file=sys.stderr,
        )
        return 1
    if args.iterations < 1:
        print(
            f"error: --iterations must be >= 1, got {args.iterations}",
            file=sys.stderr,
        )
        return 1
    if args.fairness:
        from .experiments.fairness import FAIRNESS_VARIANTS, run_fairness_comparison

        ignored = [
            f"--{dest.replace('_', '-')}"
            for dest, default in _CLUSTER_TRACE_DEFAULTS.items()
            if getattr(args, dest) != default
        ]
        if ignored:
            print(
                f"note: --fairness runs the fixed skewed trace; ignoring "
                f"{', '.join(ignored)}",
                file=sys.stderr,
            )
        if args.fairness == "all":
            policies = FAIRNESS_VARIANTS
        elif args.fairness == "fifo":
            policies = ("fifo",)
        else:
            # Always include the FIFO baseline so the comparison is visible.
            policies = ("fifo", args.fairness)
        result = run_fairness_comparison(
            topology_name=args.topology, policies=policies
        )
        print(result.render())
        return 0
    workloads = tuple(
        name.strip() for name in args.workloads.split(",") if name.strip()
    )
    result = run_cluster_contention(
        topology_name=args.topology,
        n_jobs=args.jobs,
        mean_interarrival=args.interarrival_ms * 1e-3,
        seed=args.seed,
        iterations=args.iterations,
        workload_names=workloads or None,
    )
    print(result.render())
    return 0


def _cmd_provisioning(args: argparse.Namespace) -> int:
    print(assess(get_topology(args.topology)).describe())
    return 0


def _cmd_fig(args: argparse.Namespace) -> int:
    from . import experiments

    runners = {
        "4": lambda: experiments.run_fig4(quick=args.quick),
        "5": experiments.run_fig5,
        "8": lambda: experiments.run_fig8(quick=args.quick),
        "9": experiments.run_fig9,
        "10": lambda: experiments.run_fig10(quick=args.quick),
        "11": lambda: experiments.run_fig11(quick=args.quick),
        "12": lambda: experiments.run_fig12(quick=args.quick),
        "headline": lambda: experiments.run_headline(quick=args.quick),
    }
    runner = runners.get(args.figure)
    if runner is None:
        known = ", ".join(runners)
        print(f"unknown figure {args.figure!r}; known: {known}", file=sys.stderr)
        return 2
    print(runner().render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="themis-sim",
        description="Themis (ISCA 2022) collective-scheduling reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("topologies", help="list Table 2 topology presets")

    collective = sub.add_parser("collective", help="simulate one collective")
    collective.add_argument("--topology", default="3D-SW_SW_SW_homo")
    collective.add_argument("--size", default="1GB")
    collective.add_argument("--type", default="allreduce")
    collective.add_argument("--chunks", type=int, default=64)

    train = sub.add_parser("train", help="simulate training iterations")
    train.add_argument("--workload", default="resnet-152")
    train.add_argument("--topology", default="3D-SW_SW_SW_homo")
    train.add_argument("--iterations", type=int, default=1)
    train.add_argument("--bucket", default="100MB",
                       help="DP gradient bucket size ('' for per-layer)")
    train.add_argument("--sync-dp", action="store_true",
                       help="expose all DP comm at end of backprop (paper mode)")

    cluster = sub.add_parser(
        "cluster", help="simulate a multi-job cluster trace (shared network)"
    )
    cluster.add_argument("--topology", default="3D-SW_SW_SW_homo")
    cluster.add_argument("--jobs", type=int,
                         default=_CLUSTER_TRACE_DEFAULTS["jobs"],
                         help="number of jobs in the Poisson arrival trace")
    cluster.add_argument("--interarrival-ms", type=float,
                         default=_CLUSTER_TRACE_DEFAULTS["interarrival_ms"],
                         help="mean job inter-arrival time in milliseconds")
    cluster.add_argument("--seed", type=int,
                         default=_CLUSTER_TRACE_DEFAULTS["seed"],
                         help="arrival-trace RNG seed")
    cluster.add_argument("--iterations", type=int,
                         default=_CLUSTER_TRACE_DEFAULTS["iterations"],
                         help="training iterations per job")
    cluster.add_argument("--workloads",
                         default=_CLUSTER_TRACE_DEFAULTS["workloads"],
                         help="comma-separated workload rotation "
                              "(default: dlrm,resnet-152,gnmt)")
    cluster.add_argument("--fairness", default="",
                         choices=["", "fifo", "weighted", "ftf", "preempt", "all"],
                         help="run the skewed-trace fairness comparison under "
                              "this cluster fairness policy (plus the FIFO "
                              "baseline; 'all' sweeps every policy) instead "
                              "of the Poisson contention experiment")

    provisioning = sub.add_parser(
        "provisioning", help="Sec. 6.3 BW-distribution assessment"
    )
    provisioning.add_argument("--topology", default="3D-SW_SW_SW_homo")

    fig = sub.add_parser("fig", help="regenerate a paper figure")
    fig.add_argument("figure", help="4, 5, 8, 9, 10, 11, 12, or 'headline'")
    fig.add_argument("--full", dest="quick", action="store_false",
                     help="run the full (slow) sweep instead of quick mode")
    return parser


_COMMANDS = {
    "topologies": _cmd_topologies,
    "collective": _cmd_collective,
    "train": _cmd_train,
    "cluster": _cmd_cluster,
    "provisioning": _cmd_provisioning,
    "fig": _cmd_fig,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
