"""Command-line interface: ``themis-sim`` (or ``python -m repro.cli``).

Subcommands
-----------
``run``
    Run any scenario from a JSON spec file (``--spec``), with optional
    dotted-path overrides (``--set trace.seed=3``), schema validation only
    (``--check``), or JSON report output (``--json``).
``sweep``
    Run a grid of scenario variants from a base spec plus ``--axis``
    flags (``--axis topology=2D-SW_SW,3D-SW_SW_SW_homo``; coupled fields
    via ``--axis scheduler+policy=baseline:FIFO,themis:SCF``).
``topologies``
    List the Table 2 topology presets and their BW distributions.
``collective`` / ``train`` / ``cluster`` / ``provisioning``
    Thin builders over the same scenario specs: each flag set maps onto a
    :mod:`repro.api` spec (printed with ``--show-spec``) and runs through
    the same ``api.run`` dispatcher as ``run --spec``.
``fig``
    Regenerate a paper figure (4, 5, 8, 9, 10, 11, 12) or the headline
    numbers.
``registry``
    List registered component keys by kind (``--kind backend`` shows the
    network-fidelity backends with their descriptions).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from . import api
from .analysis.tables import format_table, ms, pct
from .errors import ReproError, SpecError
from .topology import get_topology, preset_names
from .units import fmt_size, parse_size
from .workloads import get_workload


#: Defaults of the ``cluster`` subcommand's trace-shaping flags — shared by
#: ``build_parser`` and the ``--fairness`` ignored-flag warning so the two
#: can never disagree.
_CLUSTER_TRACE_DEFAULTS = {
    "jobs": 4,
    "interarrival_ms": 2.0,
    "seed": 1,
    "iterations": 1,
    "workloads": "",
}


def _parse_set_flags(pairs: list[str]) -> dict[str, str]:
    overrides: dict[str, str] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ReproError(
                f"--set expects dotted.key=value, got {pair!r}"
            )
        key, _, value = pair.partition("=")
        overrides[key.strip()] = value
    return overrides


def _parse_axis_flags(pairs: list[str]) -> dict[str, list]:
    """``--axis key=v1,v2`` / ``--axis a+b=x:y,z:w`` into sweep axes."""
    axes: dict[str, list] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ReproError(f"--axis expects key=v1,v2,..., got {pair!r}")
        key, _, raw = pair.partition("=")
        key = key.strip()
        fields = [part.strip() for part in key.split("+")]
        values: list = []
        for chunk in raw.split(","):
            if len(fields) > 1:
                parts = chunk.split(":")
                if len(parts) != len(fields):
                    raise ReproError(
                        f"--axis {key!r}: value {chunk!r} needs "
                        f"{len(fields)} ':'-separated parts"
                    )
                values.append(tuple(api.parse_cli_value(p) for p in parts))
            else:
                values.append(api.parse_cli_value(chunk))
        if not values:
            raise ReproError(f"--axis {key!r} has no values")
        axes[key] = values
    return axes


def _parse_fault_event(text: str, *, failure: bool) -> dict:
    """``--degrade DIM:FACTOR:START[:DURATION]`` / ``--link-failure
    DIM:START[:DURATION]`` into a :class:`~repro.api.FaultSpec` link event."""
    flag = "--link-failure" if failure else "--degrade"
    shape = "DIM:START[:DURATION]" if failure else "DIM:FACTOR:START[:DURATION]"
    parts = text.split(":")
    want = (2, 3) if failure else (3, 4)
    if len(parts) not in want:
        raise SpecError(f"{flag} expects {shape}, got {text!r}")
    try:
        dim = int(parts[0])
        numbers = [float(part) for part in parts[1:]]
    except ValueError:
        raise SpecError(
            f"{flag} expects numeric fields ({shape}), got {text!r}"
        ) from None
    if failure:
        event = {"dim_index": dim, "factor": 0.0, "start": numbers[0]}
        rest = numbers[1:]
    else:
        event = {"dim_index": dim, "factor": numbers[0], "start": numbers[1]}
        rest = numbers[2:]
    if rest:
        event["duration"] = rest[0]
    return event


def _fault_payload(args: argparse.Namespace) -> dict | None:
    """Merge ``--faults FILE`` with ``--degrade`` / ``--link-failure`` flags
    into one FaultSpec payload dict (``None`` when no fault flag was given)."""
    payload: dict = {}
    if args.faults:
        try:
            payload = json.loads(Path(args.faults).read_text())
        except json.JSONDecodeError as error:
            raise SpecError(
                f"invalid fault JSON in {args.faults}: {error}"
            ) from error
        if not isinstance(payload, dict):
            raise SpecError(
                f"{args.faults}: a fault spec must be a JSON object of "
                f"FaultSpec fields"
            )
    links = list(payload.get("links", ()))
    for text in args.degrade:
        links.append(_parse_fault_event(text, failure=False))
    for text in args.link_failure:
        links.append(_parse_fault_event(text, failure=True))
    if links:
        payload["links"] = links
    return payload or None


def _emit_report(report: api.RunReport, as_json: bool) -> None:
    if as_json:
        print(report.to_json())
    else:
        print(report.describe())


def _cmd_run(args: argparse.Namespace) -> int:
    spec = api.load_spec(args.spec)
    if args.set:
        spec = spec.with_overrides(_parse_set_flags(args.set))
    if args.show_spec:
        print(spec.to_json())
        if not args.check:
            print()
    if args.check:
        print(f"spec OK: {type(spec).__name__} from {args.spec}")
        return 0
    _emit_report(api.run(spec, audit=args.audit or None), args.json)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = api.load_spec(args.spec)
    if args.set:
        spec = spec.with_overrides(_parse_set_flags(args.set))
    axes = _parse_axis_flags(args.axis)
    if not axes:
        raise ReproError("sweep needs at least one --axis")
    result = api.sweep(spec, axes, processes=args.processes, audit=args.audit or None)
    if args.json:
        print(result.to_json())
    else:
        print(result.render())
    return 0


def _cmd_topologies(_args: argparse.Namespace) -> int:
    for name in preset_names():
        print(get_topology(name).describe())
        print()
    return 0


def _maybe_show_spec(args: argparse.Namespace, spec: api.ScenarioSpec) -> None:
    if getattr(args, "show_spec", False):
        print(spec.to_json())
        print()


def _cmd_collective(args: argparse.Namespace) -> int:
    size = parse_size(args.size)
    base = api.CollectiveScenario(
        topology=args.topology,
        collective=args.type,
        size=size,
        chunks=args.chunks,
    )
    _maybe_show_spec(args, base)
    grid = api.sweep(
        base,
        {
            "scheduler+policy": [
                ("baseline", "FIFO"), ("themis", "FIFO"), ("themis", "SCF")
            ]
        },
    )
    first = grid.points[0].report
    print(
        f"{first.payload['collective']} of {fmt_size(size)} on "
        f"{first.payload['topology']} ({args.chunks} chunks):"
    )
    rows = []
    baseline_time = None
    for point in grid:
        payload = point.report.payload
        if payload["scheduler_label"] == "Baseline":
            baseline_time = payload["comm_time"]
        speedup = (
            baseline_time / payload["comm_time"] if baseline_time else 1.0
        )
        rows.append(
            (
                payload["scheduler_label"],
                payload["comm_time"],
                point.report.avg_utilization or 0.0,
                speedup,
            )
        )
    print(
        format_table(
            ["scheduler", "comm time", "avg BW util", "speedup"],
            rows,
            [str, ms, pct, "{:.2f}x".format],
        )
    )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    base = api.TrainingScenario(
        workload=args.workload,
        topology=args.topology,
        iterations=args.iterations,
        overlap_dp=not args.sync_dp,
        dp_bucket_bytes=parse_size(args.bucket) if args.bucket else None,
        backend=args.backend or None,
    )
    _maybe_show_spec(args, base)
    workload = get_workload(args.workload)
    print(workload.describe(get_topology(args.topology)))
    print()
    if args.backend:
        # An explicit fidelity pins the backend axis: compare schedulers
        # at that fidelity (the Ideal row belongs to the default sweep).
        axes: dict = {"scheduler": ["baseline", "themis"]}
    else:
        axes = {
            "scheduler+ideal_network": [
                ("baseline", False), ("themis", False), ("themis", True)
            ]
        }
    grid = api.sweep(base, axes)
    for point in grid:
        print(point.report.detail.describe())
    return 0


def _cmd_cluster_open_loop(args: argparse.Namespace) -> int:
    """Open-loop cluster run: seeded arrivals + steady-state window."""
    if (args.rate is None) == (args.target_rho is None):
        print(
            "error: open-loop runs need exactly one of --rate or --target-rho",
            file=sys.stderr,
        )
        return 1
    if args.target_rho is not None and args.max_concurrent is None:
        print(
            "error: --target-rho needs --max-concurrent (offered load is "
            "defined against a fixed number of slots)",
            file=sys.stderr,
        )
        return 1
    open_loop: dict = {
        "rate": args.rate,
        "target_rho": args.target_rho,
        "seed": args.seed,
        "process": args.process,
    }
    if args.arrivals is not None:
        open_loop["max_jobs"] = args.arrivals
        open_loop["duration"] = args.trace_duration  # None = count-bounded
    elif args.trace_duration is not None:
        open_loop["duration"] = args.trace_duration
    spec = api.ClusterScenario(
        topology=args.topology,
        open_loop=open_loop,
        max_concurrent=args.max_concurrent,
        warmup_time=args.warmup,
        measure_time=args.measure,
        outcome_cap=args.outcome_cap,
        isolated_per_iteration=True,
        faults=_fault_payload(args),
        backend=args.backend or None,
    )
    _maybe_show_spec(args, spec)
    print(api.run(spec).detail.describe())
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    faults = _fault_payload(args)
    if args.backend and (args.fairness or args.placement):
        print(
            "error: the --fairness/--placement comparisons run on the "
            "analytical backend; drop --backend (or run a spec with "
            "'backend' via 'run --spec')",
            file=sys.stderr,
        )
        return 1
    if faults is not None and (args.fairness or args.placement):
        print(
            "error: --fairness/--placement run fixed healthy-network "
            "comparisons; for faults under scheduler comparisons see "
            "'themis-sim fig' or run a spec with 'faults' via 'run --spec' "
            "(experiments/degraded.py is the built-in degraded comparison)",
            file=sys.stderr,
        )
        return 1
    if (
        args.arrivals is not None
        or args.rate is not None
        or args.target_rho is not None
        or args.measure is not None
    ):
        return _cmd_cluster_open_loop(args)
    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 1
    if args.interarrival_ms <= 0:
        print(
            f"error: --interarrival-ms must be > 0, got {args.interarrival_ms}",
            file=sys.stderr,
        )
        return 1
    if args.iterations < 1:
        print(
            f"error: --iterations must be >= 1, got {args.iterations}",
            file=sys.stderr,
        )
        return 1
    if args.fairness and args.placement:
        print(
            "error: --fairness and --placement each run their own fixed "
            "skewed-trace comparison; pick one",
            file=sys.stderr,
        )
        return 1
    if args.placement:
        from .experiments.placement import (
            PLACEMENT_VARIANTS,
            placement_sweep,
            run_placement_comparison,
        )

        ignored = [
            f"--{dest.replace('_', '-')}"
            for dest, default in _CLUSTER_TRACE_DEFAULTS.items()
            if getattr(args, dest) != default
        ]
        if ignored:
            print(
                f"note: --placement runs the fixed skewed trace; ignoring "
                f"{', '.join(ignored)}",
                file=sys.stderr,
            )
        if args.placement == "all":
            policies = PLACEMENT_VARIANTS
        elif args.placement in ("manual", "all-dims"):
            policies = (args.placement,)
        else:
            # Always include the baselines so the comparison is visible.
            policies = ("manual", "all-dims", args.placement)
        if args.show_spec:
            base, _axes = placement_sweep(
                topology_name=args.topology, policies=policies
            )
            print(base.to_json())
            print()
        result = run_placement_comparison(
            topology_name=args.topology, policies=policies
        )
        print(result.render())
        return 0
    if args.fairness:
        from .experiments.fairness import (
            FAIRNESS_VARIANTS,
            fairness_sweep,
            run_fairness_comparison,
        )

        ignored = [
            f"--{dest.replace('_', '-')}"
            for dest, default in _CLUSTER_TRACE_DEFAULTS.items()
            if getattr(args, dest) != default
        ]
        if ignored:
            print(
                f"note: --fairness runs the fixed skewed trace; ignoring "
                f"{', '.join(ignored)}",
                file=sys.stderr,
            )
        if args.fairness == "all":
            policies = FAIRNESS_VARIANTS
        elif args.fairness == "fifo":
            policies = ("fifo",)
        else:
            # Always include the FIFO baseline so the comparison is visible.
            policies = ("fifo", args.fairness)
        if args.show_spec:
            base, _axes = fairness_sweep(
                topology_name=args.topology, policies=policies
            )
            print(base.to_json())
            print()
        result = run_fairness_comparison(
            topology_name=args.topology, policies=policies
        )
        print(result.render())
        return 0
    workloads = tuple(
        name.strip() for name in args.workloads.split(",") if name.strip()
    )
    if faults is not None or args.backend:
        # Fault injection (or a pinned network fidelity) runs the Poisson
        # trace directly — one cluster run — instead of the
        # multi-scheduler contention experiment.
        trace: dict = {
            "interarrival": args.interarrival_ms * 1e-3,
            "seed": args.seed,
            "iterations": args.iterations,
            "jobs": args.jobs,
        }
        if workloads:
            trace["workloads"] = workloads
        spec = api.ClusterScenario(
            topology=args.topology,
            trace=trace,
            faults=faults,
            backend=args.backend or None,
        )
        _maybe_show_spec(args, spec)
        print(api.run(spec).detail.describe())
        return 0
    from .experiments.cluster_contention import (
        contention_sweep,
        run_cluster_contention,
    )
    if args.show_spec:
        base, _axes = contention_sweep(
            topology_name=args.topology,
            n_jobs=args.jobs,
            mean_interarrival=args.interarrival_ms * 1e-3,
            seed=args.seed,
            iterations=args.iterations,
            workload_names=workloads or None,
        )
        print(base.to_json())
        print()
    result = run_cluster_contention(
        topology_name=args.topology,
        n_jobs=args.jobs,
        mean_interarrival=args.interarrival_ms * 1e-3,
        seed=args.seed,
        iterations=args.iterations,
        workload_names=workloads or None,
    )
    print(result.render())
    return 0


def _cmd_provisioning(args: argparse.Namespace) -> int:
    spec = api.ProvisioningScenario(topology=args.topology)
    _maybe_show_spec(args, spec)
    print(api.run(spec).detail.describe())
    return 0


def _cmd_fig(args: argparse.Namespace) -> int:
    from . import experiments

    runners = {
        "4": lambda: experiments.run_fig4(quick=args.quick),
        "5": experiments.run_fig5,
        "8": lambda: experiments.run_fig8(quick=args.quick),
        "9": experiments.run_fig9,
        "10": lambda: experiments.run_fig10(quick=args.quick),
        "11": lambda: experiments.run_fig11(quick=args.quick),
        "12": lambda: experiments.run_fig12(quick=args.quick),
        "headline": lambda: experiments.run_headline(quick=args.quick),
        "fidelity": lambda: experiments.run_fidelity(quick=args.quick),
        "fluid-scale": lambda: experiments.run_fluid_scale(quick=args.quick),
    }
    runner = runners.get(args.figure)
    if runner is None:
        known = ", ".join(runners)
        print(f"unknown figure {args.figure!r}; known: {known}", file=sys.stderr)
        return 2
    print(runner().render())
    return 0


def _cmd_registry(args: argparse.Namespace) -> int:
    kinds = api.registry_kinds()
    if args.kind:
        if args.kind not in kinds:
            known = ", ".join(kinds)
            print(f"unknown kind {args.kind!r}; known: {known}",
                  file=sys.stderr)
            return 2
        kinds = (args.kind,)
    if args.json:
        print(json.dumps({kind: list(api.registry_keys(kind))
                          for kind in kinds}, indent=2))
        return 0
    from .sim.backends import get_backend

    for kind in kinds:
        print(f"{kind}:")
        for key in api.registry_keys(kind):
            if kind == "backend":
                print(f"  {key:<12} {get_backend(key).description}")
            else:
                print(f"  {key}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="themis-sim",
        description="Themis (ISCA 2022) collective-scheduling reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_cmd = sub.add_parser("run", help="run a scenario from a JSON spec")
    run_cmd.add_argument("--spec", required=True, help="path to a spec JSON file")
    run_cmd.add_argument("--set", action="append", default=[],
                         metavar="KEY=VALUE",
                         help="dotted-path spec override (repeatable)")
    run_cmd.add_argument("--check", action="store_true",
                         help="validate the spec and exit without running")
    run_cmd.add_argument("--show-spec", action="store_true",
                         help="print the effective spec JSON before running")
    run_cmd.add_argument("--json", action="store_true",
                         help="emit the RunReport as JSON")
    run_cmd.add_argument("--audit", action="store_true",
                         help="enable the runtime invariant auditor "
                              "(equivalent to THEMIS_AUDIT=1)")

    sweep_cmd = sub.add_parser(
        "sweep", help="run a grid of scenario variants from a base spec"
    )
    sweep_cmd.add_argument("--spec", required=True,
                           help="path to the base spec JSON file")
    sweep_cmd.add_argument("--set", action="append", default=[],
                           metavar="KEY=VALUE",
                           help="dotted-path base-spec override (repeatable)")
    sweep_cmd.add_argument("--axis", action="append", default=[],
                           metavar="KEY=V1,V2",
                           help="sweep axis (repeatable); couple fields "
                                "with 'a+b=x:y,z:w'")
    sweep_cmd.add_argument("--processes", type=int, default=None,
                           help="run grid points on a process pool")
    sweep_cmd.add_argument("--json", action="store_true",
                           help="emit the SweepResult as JSON")
    sweep_cmd.add_argument("--audit", action="store_true",
                           help="enable the runtime invariant auditor on "
                                "every grid point (THEMIS_AUDIT=1)")

    sub.add_parser("topologies", help="list Table 2 topology presets")

    collective = sub.add_parser("collective", help="simulate one collective")
    collective.add_argument("--topology", default="3D-SW_SW_SW_homo")
    collective.add_argument("--size", default="1GB")
    collective.add_argument("--type", default="allreduce")
    collective.add_argument("--chunks", type=int, default=64)
    collective.add_argument("--show-spec", action="store_true",
                            help="print the scenario spec this run maps to")

    train = sub.add_parser("train", help="simulate training iterations")
    train.add_argument("--workload", default="resnet-152")
    train.add_argument("--topology", default="3D-SW_SW_SW_homo")
    train.add_argument("--iterations", type=int, default=1)
    train.add_argument("--bucket", default="100MB",
                       help="DP gradient bucket size ('' for per-layer)")
    train.add_argument("--sync-dp", action="store_true",
                       help="expose all DP comm at end of backprop (paper mode)")
    train.add_argument("--backend", default="",
                       help="network-fidelity backend (see 'registry --kind "
                            "backend'); pins the Themis-vs-Baseline sweep to "
                            "this backend instead of the default "
                            "analytical+Ideal comparison")
    train.add_argument("--show-spec", action="store_true",
                       help="print the scenario spec this run maps to")

    cluster = sub.add_parser(
        "cluster", help="simulate a multi-job cluster trace (shared network)"
    )
    cluster.add_argument("--topology", default="3D-SW_SW_SW_homo")
    cluster.add_argument("--jobs", type=int,
                         default=_CLUSTER_TRACE_DEFAULTS["jobs"],
                         help="number of jobs in the Poisson arrival trace")
    cluster.add_argument("--interarrival-ms", type=float,
                         default=_CLUSTER_TRACE_DEFAULTS["interarrival_ms"],
                         help="mean job inter-arrival time in milliseconds")
    cluster.add_argument("--seed", type=int,
                         default=_CLUSTER_TRACE_DEFAULTS["seed"],
                         help="arrival-trace RNG seed")
    cluster.add_argument("--iterations", type=int,
                         default=_CLUSTER_TRACE_DEFAULTS["iterations"],
                         help="training iterations per job")
    cluster.add_argument("--workloads",
                         default=_CLUSTER_TRACE_DEFAULTS["workloads"],
                         help="comma-separated workload rotation "
                              "(default: dlrm,resnet-152,gnmt)")
    from .cluster import fairness_names, placement_names

    # Choices come from the fairness/placement registries, so policies
    # added via ``register_fairness`` / ``register_placement`` /
    # ``api.register(...)`` before the parser is built are selectable too.
    cluster.add_argument("--fairness", default="",
                         choices=["", *fairness_names(), "all"],
                         help="run the skewed-trace fairness comparison under "
                              "this cluster fairness policy (plus the FIFO "
                              "baseline; 'all' sweeps every built-in policy) "
                              "instead of the Poisson contention experiment")
    cluster.add_argument("--placement", default="",
                         choices=["", *placement_names(), "all"],
                         help="run the skewed-trace placement comparison "
                              "under this placement policy (plus the manual "
                              "and all-dims baselines; 'all' sweeps every "
                              "built-in policy) instead of the Poisson "
                              "contention experiment")
    from .cluster import ARRIVAL_PROCESSES

    open_loop = cluster.add_argument_group(
        "open-loop arrivals",
        "any of these switches the command to a seeded open-loop arrival "
        "workload with a steady-state measurement window",
    )
    open_loop.add_argument("--arrivals", type=int, default=None,
                           metavar="N",
                           help="generate an open-loop trace of N arrivals")
    open_loop.add_argument("--rate", type=float, default=None,
                           help="arrival rate in jobs/second")
    open_loop.add_argument("--target-rho", type=float, default=None,
                           help="offered load; the arrival rate is "
                                "calibrated from the job mix's mean solo "
                                "service time (needs --max-concurrent)")
    open_loop.add_argument("--process", default="poisson",
                           choices=list(ARRIVAL_PROCESSES),
                           help="arrival process (default: poisson)")
    open_loop.add_argument("--trace-duration", type=float, default=None,
                           metavar="SECONDS",
                           help="bound the trace by simulated time instead "
                                "of (or in addition to) --arrivals")
    open_loop.add_argument("--warmup", type=float, default=0.0,
                           metavar="SECONDS",
                           help="discard jobs finishing in the first SECONDS "
                                "of simulated time (needs --measure)")
    open_loop.add_argument("--measure", type=float, default=None,
                           metavar="SECONDS",
                           help="measure for SECONDS past the warm-up, then "
                                "stop (steady-state window)")
    open_loop.add_argument("--max-concurrent", type=int, default=None,
                           metavar="K",
                           help="admission control: at most K jobs run at "
                                "once; later arrivals queue")
    open_loop.add_argument("--outcome-cap", type=int, default=1000,
                           metavar="N",
                           help="keep per-iteration detail for the first N "
                                "completions only (bounded memory; "
                                "default 1000)")
    fault_group = cluster.add_argument_group(
        "fault injection",
        "degrade or fail network dimensions on a schedule and optionally "
        "crash/retry jobs; any of these runs the arrival trace under the "
        "composed fault schedule (see docs/faults.md)",
    )
    fault_group.add_argument("--faults", default="",
                             metavar="FILE",
                             help="JSON file of FaultSpec fields (links, "
                                  "flap/straggler generators, crash_rate, "
                                  "retry/checkpoint knobs)")
    fault_group.add_argument("--degrade", action="append", default=[],
                             metavar="DIM:FACTOR:START[:DURATION]",
                             help="degrade dimension DIM to FACTOR of its "
                                  "bandwidth at START seconds, restoring "
                                  "after DURATION (forever if omitted); "
                                  "repeatable")
    fault_group.add_argument("--link-failure", action="append", default=[],
                             metavar="DIM:START[:DURATION]",
                             help="fail dimension DIM completely (capacity "
                                  "0, in-flight work parked) at START "
                                  "seconds, restoring after DURATION; "
                                  "repeatable")
    cluster.add_argument("--backend", default="",
                         help="network-fidelity backend for the arrival "
                              "trace (see 'registry --kind backend'); not "
                              "combinable with --fairness/--placement")
    cluster.add_argument("--show-spec", action="store_true",
                         help="print the scenario spec this run maps to")

    provisioning = sub.add_parser(
        "provisioning", help="Sec. 6.3 BW-distribution assessment"
    )
    provisioning.add_argument("--topology", default="3D-SW_SW_SW_homo")
    provisioning.add_argument("--show-spec", action="store_true",
                              help="print the scenario spec this run maps to")

    fig = sub.add_parser("fig", help="regenerate a paper figure")
    fig.add_argument("figure",
                     help="4, 5, 8, 9, 10, 11, 12, 'headline', "
                          "'fidelity' (cross-backend check), or "
                          "'fluid-scale' (fast-path capacity study)")
    fig.add_argument("--full", dest="quick", action="store_false",
                     help="run the full (slow) sweep instead of quick mode")

    registry = sub.add_parser(
        "registry", help="list registered component keys by kind"
    )
    registry.add_argument("--kind", default="",
                          help="show one kind only (topology, workload, "
                               "scheduler, fairness, placement, backend, ...)")
    registry.add_argument("--json", action="store_true",
                          help="emit {kind: [keys]} as JSON")
    return parser


_COMMANDS = {
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "topologies": _cmd_topologies,
    "collective": _cmd_collective,
    "train": _cmd_train,
    "cluster": _cmd_cluster,
    "provisioning": _cmd_provisioning,
    "fig": _cmd_fig,
    "registry": _cmd_registry,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
