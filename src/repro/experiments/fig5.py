"""Fig. 5 / Fig. 7 reproduction: the 2D worked example.

A 256 MB All-Reduce on a 4x4 2-dimensional network with
``BW(dim1) = 2 x BW(dim2)``, split into four 64 MB chunks, zero link
latency.  The baseline pipeline needs 8 time units (a unit = one 64 MB
Reduce-Scatter on dim1); Themis finishes in 7 by starting chunk 2 on dim2
(Fig. 7's load-balancing walk-through).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import format_table
from ..collectives.phases import stage_plan
from ..collectives.types import CollectiveRequest, CollectiveType
from ..core.latency_model import LatencyModel
from ..core.scheduler import SchedulerFactory, ThemisScheduler
from ..core.splitter import Splitter
from ..sim.executor import FusionConfig
from ..sim.network import NetworkSimulator
from ..sim.timeline import render_gantt
from ..topology import Topology, dimension
from ..units import MB


def fig5_topology() -> Topology:
    """4x4 rings, dim1 at 96 Gb/s and dim2 at 48 Gb/s, zero latency."""
    return Topology(
        [
            dimension("ring", 4, 96.0, latency_ns=0),
            dimension("ring", 4, 48.0, latency_ns=0),
        ],
        name="fig5-4x4",
    )


@dataclass
class Fig5Result:
    """Makespans (in Fig. 5 time units), chunk orders, and load evolution."""

    baseline_units: float
    themis_units: float
    themis_orders: list[tuple[int, ...]]
    load_evolution: list[tuple[float, float]]  # (dim1, dim2) after each chunk
    baseline_gantt: str
    themis_gantt: str

    def render(self) -> str:
        lines = [
            "Fig. 5 worked example (256MB AR, 4x4, BW 2:1, 4 chunks)",
            f"  baseline makespan: {self.baseline_units:.3f} units (paper: 8)",
            f"  Themis   makespan: {self.themis_units:.3f} units (paper: 7)",
            "",
            "Fig. 7 load evolution (units, after scheduling each chunk):",
        ]
        rows = [
            (f"chunk {i + 1} ({'->'.join(f'dim{d + 1}' for d in order)})", d1, d2)
            for i, (order, (d1, d2)) in enumerate(
                zip(self.themis_orders, self.load_evolution)
            )
        ]
        lines.append(
            format_table(
                ["chunk (RS order)", "dim1 load", "dim2 load"],
                rows,
                [str, lambda v: f"{v:.2f}", lambda v: f"{v:.2f}"],
                indent="  ",
            )
        )
        lines.append("")
        lines.append("Baseline pipeline (Fig. 5.a):")
        lines.append(self.baseline_gantt)
        lines.append("")
        lines.append("Themis pipeline (Fig. 5.b):")
        lines.append(self.themis_gantt)
        return "\n".join(lines)


def run_fig5() -> Fig5Result:
    """Regenerate the Fig. 5 / Fig. 7 worked example."""
    topology = fig5_topology()
    unit = 48 * MB / topology.dims[0].bandwidth
    size = 256 * MB

    def simulate(kind: str, policy: str):
        sim = NetworkSimulator(
            topology,
            SchedulerFactory(kind, splitter=Splitter(4)),
            policy=policy,
            fusion=FusionConfig(enabled=False),
        )
        sim.submit(CollectiveRequest(CollectiveType.ALL_REDUCE, size))
        return sim.run()

    baseline = simulate("baseline", "FIFO")
    themis = simulate("themis", "SCF")

    # Fig. 7: re-derive the load evolution chunk by chunk.
    model = LatencyModel(topology)
    scheduler = ThemisScheduler(Splitter(4))
    request = CollectiveRequest(CollectiveType.ALL_REDUCE, size)
    chunk_sizes = scheduler.splitter.split(size)
    orders = scheduler.chunk_orders(request, chunk_sizes, model)
    loads = [0.0, 0.0]
    evolution = []
    for chunk_size, order in zip(chunk_sizes, orders):
        stages = stage_plan(CollectiveType.ALL_REDUCE, chunk_size, order, topology)
        for dim, load in enumerate(model.stage_loads(stages)):
            loads[dim] += load
        evolution.append((loads[0] / unit, loads[1] / unit))

    return Fig5Result(
        baseline_units=baseline.makespan / unit,
        themis_units=themis.makespan / unit,
        themis_orders=list(orders),
        load_evolution=evolution,
        baseline_gantt=render_gantt(baseline.records, 2, width=88),
        themis_gantt=render_gantt(themis.records, 2, width=88),
    )
