"""Fairness-comparison experiment: one skewed trace, four sharing policies.

The multi-tenant experiment the cluster fairness layer exists for: a
deliberately *skewed* three-job trace on one shared platform —

* **elephant** — many layers with small parameter tensors, so its gradient
  collectives decompose into a flood of small chunk ops that the SCF
  intra-dimension policy always favors;
* **mouse** — one big parameter tensor, so its chunk ops are large and
  perpetually lose to the elephant's under first-come sharing;
* **urgent** — a latency-sensitive job (``priority=2``) arriving last.

The same trace runs under each cluster fairness policy (FIFO first-come,
static weighted shares, finish-time fair, priority preemption) and the
per-job finish-time-fairness rho, the cluster max/mean rho, and Jain's
fairness index are compared.  The expected shape of the result:

* **FIFO** starves the mouse (max rho far above the others, low Jain);
* **weighted shares** cap the elephant, pulling max rho down;
* **finish-time fair** re-weights online toward equal rho — the lowest max
  rho of the four (strictly lower than FIFO's);
* **preemption** rescues only the urgent job (rho ~1, preemptions > 0) and
  leaves the mouse starved: priority is not fairness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import api
from ..analysis.tables import format_table, ms, ratio
from ..cluster import ClusterReport, JobSpec
from ..cluster.fairness import fairness_names
from ..errors import ConfigError
from ..topology import Topology
from ..training.iteration import TrainingConfig
from ..workloads import flood

#: Policies compared, in presentation order.
FAIRNESS_VARIANTS: tuple[str, ...] = ("fifo", "weighted", "ftf", "preempt")


def skewed_trace(scale: float = 1.0) -> list[JobSpec]:
    """The elephant / mouse / urgent trace described in the module docstring.

    ``scale`` multiplies every payload (1.0 suits a small test platform;
    the paper platforms digest larger payloads fine).  The mouse and the
    urgent job carry ``weight=2`` so the static weighted policy has
    something to express; only the urgent job has a priority.
    """
    if scale <= 0:
        raise ConfigError(f"scale must be positive, got {scale}")
    return [
        JobSpec(
            name="elephant",
            workload=flood(16, 4 * scale, "elephant"),
            arrival_time=0.0,
            iterations=3,
        ),
        JobSpec(
            name="mouse",
            workload=flood(1, 64 * scale, "mouse"),
            arrival_time=1e-4,
            iterations=1,
            weight=2.0,
        ),
        JobSpec(
            name="urgent",
            workload=flood(1, 32 * scale, "urgent"),
            arrival_time=5e-4,
            iterations=1,
            priority=2,
            weight=2.0,
        ),
    ]


@dataclass
class FairnessComparisonResult:
    """Cluster reports for one trace keyed by fairness policy name."""

    topology_name: str
    reports: dict[str, ClusterReport] = field(default_factory=dict)

    def report(self, policy: str) -> ClusterReport:
        return self.reports[policy]

    def max_rho(self, policy: str) -> float:
        value = self.reports[policy].max_rho
        assert value is not None  # isolated baselines always on here
        return value

    def ftf_vs_fifo(self) -> float:
        """Max-rho improvement of finish-time fair over FIFO (>1 = fairer)."""
        return self.max_rho("fifo") / self.max_rho("ftf")

    def render(self) -> str:
        blocks = [
            f"Cluster fairness comparison on {self.topology_name}: one "
            "skewed trace (elephant floods small chunks, mouse has large "
            "chunks, urgent arrives last with priority) under "
            f"{len(self.reports)} sharing policies"
        ]
        for policy, report in self.reports.items():
            blocks.append(f"\n[{policy}]")
            blocks.append(report.describe())
        rows = []
        for policy, report in self.reports.items():
            rows.append(
                (
                    policy,
                    report.makespan,
                    report.mean_jct,
                    report.max_rho,
                    report.mean_rho,
                    report.jains_fairness_index,
                    report.preemption_count,
                )
            )
        blocks.append(
            "\nsummary:\n"
            + format_table(
                ["policy", "makespan", "mean JCT", "max rho", "mean rho",
                 "Jain idx", "preempts"],
                rows,
                [str, ms, ms, ratio, ratio, "{:.3f}".format, str],
                indent="  ",
            )
        )
        if "fifo" in self.reports and "ftf" in self.reports:
            blocks.append(
                f"  finish-time fair vs FIFO: max rho "
                f"{self.max_rho('fifo'):.2f} -> {self.max_rho('ftf'):.2f} "
                f"({self.ftf_vs_fifo():.2f}x fairer)"
            )
        return "\n".join(blocks)


def _training_fields(training: TrainingConfig | None) -> dict:
    """Map a :class:`TrainingConfig` onto ``ClusterScenario`` fields.

    The scenario names exactly the knobs the cluster layer reads; a config
    carrying anything it cannot express (custom compute model, fusion,
    MP priority) is rejected rather than silently dropped.
    """
    if training is None:
        return {}
    default = TrainingConfig()
    unsupported = [
        name
        for name in ("compute", "fusion", "mp_priority")
        if getattr(training, name) != getattr(default, name)
    ]
    if unsupported:
        raise ConfigError(
            f"TrainingConfig fields not expressible in a ClusterScenario: "
            f"{', '.join(unsupported)}"
        )
    return {
        "policy": training.policy,
        "chunks": training.chunks_per_collective,
        "overlap_dp": training.overlap_dp,
        "dp_bucket_bytes": training.dp_bucket_bytes,
    }


def fairness_sweep(
    quick: bool = True,
    topology_name: str = "3D-SW_SW_SW_homo",
    policies: tuple[str, ...] | None = None,
    topology: Topology | None = None,
    jobs: list[JobSpec] | None = None,
    training: TrainingConfig | None = None,
) -> "tuple[api.ClusterScenario, dict]":
    """The declarative form of the comparison: base spec + fairness axis.

    The skewed trace serializes into the spec (flood workloads inline), so
    the whole experiment — and any policy subset of it — is a JSON document
    plus one swept field.
    """
    chosen = tuple(policies or FAIRNESS_VARIANTS)
    unknown = [p for p in chosen if p not in fairness_names()]
    if unknown:
        raise ConfigError(
            f"unknown fairness policies: {', '.join(unknown)}; "
            f"known: {', '.join(fairness_names())}"
        )
    trace = list(jobs) if jobs is not None else skewed_trace(
        scale=1.0 if quick else 4.0
    )
    base = api.ClusterScenario(
        topology=topology if topology is not None else topology_name,
        jobs=tuple(api.ScenarioJob.from_jobspec(spec) for spec in trace),
        fairness=chosen[0],
        **_training_fields(training),
    )
    return base, {"fairness": list(chosen)}


def run_fairness_comparison(
    quick: bool = True,
    topology_name: str = "3D-SW_SW_SW_homo",
    policies: tuple[str, ...] | None = None,
    topology: Topology | None = None,
    jobs: list[JobSpec] | None = None,
    training: TrainingConfig | None = None,
) -> FairnessComparisonResult:
    """Run the skewed trace under each fairness policy and compare.

    ``topology`` / ``jobs`` / ``training`` override the defaults (tests
    pass tiny ones); ``policies`` selects a subset of
    :data:`FAIRNESS_VARIANTS`.  ``quick`` controls the trace's payload
    scale on the default platform.
    """
    base, axes = fairness_sweep(
        quick=quick,
        topology_name=topology_name,
        policies=policies,
        topology=topology,
        jobs=jobs,
        training=training,
    )
    grid = api.sweep(base, axes)
    result = FairnessComparisonResult(
        topology_name=grid.points[0].report.payload["topology"]
    )
    for point in grid:
        result.reports[point.overrides["fairness"]] = point.report.detail
    return result
