"""Placement-comparison experiment: one skewed trace, four placement policies.

The multi-tenant experiment the placement layer exists for: a deliberately
*skewed* trace on one shared platform —

* **talkers** — comm-bound jobs (many medium gradient tensors, almost no
  compute) whose communication duty cycle is ~1: they keep whatever
  dimensions they land on busy for essentially their whole lifetime;
* **thinkers** — compute-bound jobs (tiny gradients, heavy FLOPs) whose
  duty cycle is ~0: they barely touch the wire.

The trace carries *twice as many talkers as the platform has dimensions*:
the cluster's communication demand exceeds any single dimension's
capacity, so where the talkers land decides everything.  The same trace
runs under each placement policy (and under Baseline vs Themis collective
scheduling, per job), and makespan, mean JCT, per-job rho, and the
per-dimension load-imbalance metric are compared.  The expected shape of
the result:

* **all-dims** loses on mean JCT: every talker's collectives span — and
  contend on — every dimension, so the whole talker population advances at
  the cluster-wide rate and every talker finishes late (processor-sharing
  across k tenants makes every JCT ~k/D of the work), where narrow
  placements let early talkers finish in their own dimension's time;
* **load-balanced** spreads the talkers evenly (two per dimension) by live
  tenant counts/outstanding bytes, cutting mean JCT and the load
  imbalance;
* **interleaved** places the same talkers apart because their duty cycles
  collide, and additionally steers them away from dimensions that look
  idle by instantaneous load but are duty-saturated — on this trace it
  matches or beats load-balanced;
* **manual** is whatever the hand placement says — here a round-robin
  pinning by arrival order, a decent static choice: automatic placement
  should match it without the hand effort (and without knowing the trace).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .. import api
from ..analysis.tables import format_table, ms, ratio
from ..cluster import ClusterReport, JobSpec
from ..cluster.placement import placement_names
from ..errors import ConfigError
from ..topology import Topology
from ..training.iteration import TrainingConfig
from ..workloads import Workload, flood
from .fairness import _training_fields

#: Policies compared, in presentation order.
PLACEMENT_VARIANTS: tuple[str, ...] = (
    "manual", "all-dims", "load-balanced", "interleaved",
)

#: Per-job collective schedulers compared (the paper's axis).
PLACEMENT_SCHEDULERS: tuple[str, ...] = ("baseline", "themis")


def _talker(index: int, scale: float) -> Workload:
    """Comm-bound workload: duty cycle ~1 on a paper-platform dimension."""
    return flood(8, 16 * scale, f"talker{index}")


def _thinker(index: int, scale: float) -> Workload:
    """Compute-bound workload: heavy FLOPs, tiny gradients, duty ~0."""
    return flood(
        2, 0.5 * scale, f"thinker{index}", fwd_flops=6e10, bwd_flops=1.2e11
    )


def placement_trace(scale: float = 1.0, ndims: int = 3) -> list[JobSpec]:
    """The talkers/thinkers trace described in the module docstring.

    ``2 x ndims`` talkers plus ``ndims + 1`` thinkers, arrivals staggered
    and mixed, so the communication demand is twice what one dimension can
    carry.  ``scale`` multiplies every payload; ``ndims`` is the dimension
    count of the platform the trace will run on (the hand placement pins
    jobs round-robin across it, in arrival order).
    """
    if scale <= 0:
        raise ConfigError(f"scale must be positive, got {scale}")
    if ndims < 2:
        raise ConfigError(f"need a >= 2D platform, got {ndims}")
    gap = 2e-4
    specs: list[JobSpec] = []
    talkers = 2 * ndims
    thinkers = ndims + 1
    # Arrival order alternates talker / thinker until the thinkers run out.
    order: list[tuple[str, int]] = []
    for i in range(max(talkers, thinkers)):
        if i < talkers:
            order.append(("talker", i))
        if i < thinkers:
            order.append(("thinker", i))
    for arrival_index, (kind, i) in enumerate(order):
        workload = _talker(i, scale) if kind == "talker" else _thinker(i, scale)
        specs.append(
            JobSpec(
                name=f"{kind}{i}",
                workload=workload,
                arrival_time=arrival_index * gap,
                iterations=2,
            )
        )
    # Hand placement for the "manual" baseline: round-robin by arrival.
    return [
        replace(spec, dim_indices=(index % ndims,))
        for index, spec in enumerate(specs)
    ]


@dataclass
class PlacementComparisonResult:
    """Cluster reports for one trace keyed by (placement, scheduler)."""

    topology_name: str
    reports: dict[tuple[str, str], ClusterReport] = field(default_factory=dict)

    def report(self, placement: str, scheduler: str = "themis") -> ClusterReport:
        return self.reports[(placement, scheduler)]

    def mean_jct(self, placement: str, scheduler: str = "themis") -> float:
        value = self.reports[(placement, scheduler)].mean_jct
        assert value is not None  # every job completes in this experiment
        return value

    def makespan(self, placement: str, scheduler: str = "themis") -> float:
        return self.reports[(placement, scheduler)].makespan

    def auto_vs_all_dims(self, scheduler: str = "themis") -> float:
        """Mean-JCT improvement of the best automatic policy over all-dims."""
        best = min(
            self.mean_jct(policy, scheduler)
            for policy in ("load-balanced", "interleaved")
            if (policy, scheduler) in self.reports
        )
        return self.mean_jct("all-dims", scheduler) / best

    def render(self) -> str:
        blocks = [
            f"Cluster placement comparison on {self.topology_name}: one "
            "skewed trace (comm-bound talkers outnumbering the dimensions, "
            f"compute-bound thinkers mixed in) under "
            f"{len(self.reports)} placement x scheduler variants"
        ]
        for (placement, scheduler), report in self.reports.items():
            blocks.append(f"\n[{placement} / {scheduler}]")
            blocks.append(report.describe())
        rows = []
        for (placement, scheduler), report in self.reports.items():
            rows.append(
                (
                    placement,
                    scheduler,
                    report.makespan,
                    report.mean_jct,
                    report.max_rho,
                    report.load_imbalance
                    if report.load_imbalance is not None
                    else float("nan"),
                )
            )
        blocks.append(
            "\nsummary:\n"
            + format_table(
                ["placement", "sched", "makespan", "mean JCT", "max rho",
                 "load imb"],
                rows,
                [str, str, ms, ms, ratio, "{:.2f}".format],
                indent="  ",
            )
        )
        schedulers = sorted({s for _, s in self.reports})
        for scheduler in schedulers:
            if ("all-dims", scheduler) in self.reports:
                try:
                    gain = self.auto_vs_all_dims(scheduler)
                except ValueError:
                    continue
                blocks.append(
                    f"  automatic vs all-dims ({scheduler}): mean JCT "
                    f"{gain:.2f}x better"
                )
        return "\n".join(blocks)


def placement_sweep(
    quick: bool = True,
    topology_name: str = "3D-SW_SW_SW_homo",
    policies: tuple[str, ...] | None = None,
    schedulers: tuple[str, ...] | None = None,
    topology: Topology | None = None,
    jobs: list[JobSpec] | None = None,
    training: TrainingConfig | None = None,
) -> "tuple[api.ClusterScenario, dict]":
    """The declarative form of the comparison: base spec + placement axis.

    The skewed trace serializes into the spec (flood workloads inline), so
    the whole experiment — and any policy/scheduler subset of it — is a
    JSON document plus two swept fields.  The scheduler axis couples every
    job's ``scheduler`` field, comparing an all-Baseline against an
    all-Themis cluster under each placement.
    """
    chosen = tuple(policies or PLACEMENT_VARIANTS)
    unknown = [p for p in chosen if p not in placement_names()]
    if unknown:
        raise ConfigError(
            f"unknown placement policies: {', '.join(unknown)}; "
            f"known: {', '.join(placement_names())}"
        )
    sched = tuple(schedulers or PLACEMENT_SCHEDULERS)
    if topology is not None:
        ndims = len(topology.dims)
    else:
        from ..topology import get_topology

        ndims = len(get_topology(topology_name).dims)
    trace = list(jobs) if jobs is not None else placement_trace(
        scale=1.0 if quick else 4.0, ndims=ndims
    )
    base = api.ClusterScenario(
        topology=topology if topology is not None else topology_name,
        jobs=tuple(api.ScenarioJob.from_jobspec(spec) for spec in trace),
        placement=chosen[0],
        **_training_fields(training),
    )
    axes: dict = {"placement": list(chosen)}
    if len(sched) > 1 or sched[0] != trace[0].scheduler:
        fields = tuple(f"jobs.{i}.scheduler" for i in range(len(trace)))
        axes[fields] = [tuple([s] * len(trace)) for s in sched]
    return base, axes


def run_placement_comparison(
    quick: bool = True,
    topology_name: str = "3D-SW_SW_SW_homo",
    policies: tuple[str, ...] | None = None,
    schedulers: tuple[str, ...] | None = None,
    topology: Topology | None = None,
    jobs: list[JobSpec] | None = None,
    training: TrainingConfig | None = None,
) -> PlacementComparisonResult:
    """Run the skewed trace under each placement x scheduler and compare.

    ``topology`` / ``jobs`` / ``training`` override the defaults (tests
    pass tiny ones); ``policies`` / ``schedulers`` select subsets of
    :data:`PLACEMENT_VARIANTS` / :data:`PLACEMENT_SCHEDULERS`.  ``quick``
    controls the trace's payload scale on the default platform.
    """
    base, axes = placement_sweep(
        quick=quick,
        topology_name=topology_name,
        policies=policies,
        schedulers=schedulers,
        topology=topology,
        jobs=jobs,
        training=training,
    )
    grid = api.sweep(base, axes)
    result = PlacementComparisonResult(
        topology_name=grid.points[0].report.payload["topology"]
    )
    for point in grid:
        placement = point.overrides["placement"]
        scheduler = point.overrides.get("jobs.0.scheduler")
        if scheduler is None:
            scheduler = base.jobs[0].scheduler
        result.reports[(placement, scheduler)] = point.report.detail
    return result
