"""Cross-fidelity check: Themis-vs-Baseline at analytical and packet level.

The paper's results run on the analytical bandwidth model (per-dimension
fluid channels, alpha-beta op latency).  The packet backend re-simulates
the same platform at packet granularity — MTU packetization, FIFO egress
lanes, store-and-forward switch hops — so this experiment asks the
fidelity question directly: **does the paper's conclusion survive a
higher-fidelity network model?**

Each workload runs Baseline and Themis at both fidelities on the paper
platform.  Two things are checked:

* the *conclusion* — Themis's iteration-time gain over Baseline holds at
  packet fidelity (same direction, comparable magnitude);
* the *calibration* — per-configuration iteration times diverge between
  backends only by the packet model's genuine extra physics (header
  overhead, pipeline-refill tails, cross-stage packet handoffs).

Everything is deterministic: both backends are seedless discrete-event
simulations, so reruns are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import api
from ..analysis.tables import format_table, ms, ratio
from ..errors import ConfigError
from ..training.results import TrainingReport
from ..units import MB

#: Network-fidelity backends compared (presentation order).
FIDELITY_BACKENDS: tuple[str, ...] = ("analytical", "packet")

#: Per-workload collective schedulers compared (the paper's axis).
FIDELITY_SCHEDULERS: tuple[str, ...] = ("baseline", "themis")

#: Workload registry keys covered; quick mode drops Transformer-1T (its
#: depth dominates runtime and every layer is identical).
FIDELITY_WORKLOADS: tuple[str, ...] = ("resnet-152", "gnmt", "dlrm")
FULL_FIDELITY_WORKLOADS: tuple[str, ...] = FIDELITY_WORKLOADS + (
    "transformer-1t",
)


@dataclass
class FidelityResult:
    """Training reports keyed by (workload, backend, scheduler)."""

    topology_name: str
    reports: dict[tuple[str, str, str], TrainingReport] = field(
        default_factory=dict
    )

    def report(
        self, workload: str, backend: str, scheduler: str = "themis"
    ) -> TrainingReport:
        return self.reports[(workload, backend, scheduler)]

    def iteration_time(
        self, workload: str, backend: str, scheduler: str = "themis"
    ) -> float:
        return self.report(workload, backend, scheduler).total_time

    def themis_gain(self, workload: str, backend: str) -> float:
        """Baseline-over-Themis iteration-time ratio (>1 = Themis wins)."""
        return self.iteration_time(
            workload, backend, "baseline"
        ) / self.iteration_time(workload, backend, "themis")

    def divergence(self, workload: str, scheduler: str = "themis") -> float:
        """Packet-over-analytical iteration-time ratio for one config."""
        return self.iteration_time(
            workload, "packet", scheduler
        ) / self.iteration_time(workload, "analytical", scheduler)

    def workload_names(self) -> list[str]:
        names: list[str] = []
        for workload, _backend, _scheduler in self.reports:
            if workload not in names:
                names.append(workload)
        return names

    def backend_names(self) -> list[str]:
        names: list[str] = []
        for _workload, backend, _scheduler in self.reports:
            if backend not in names:
                names.append(backend)
        return names

    def conclusion_holds(self, tolerance: float = 0.02) -> bool:
        """True iff no workload's Themis win flips to a Baseline win at
        packet fidelity (``tolerance`` forgives sub-noise regressions on
        workloads where both schedulers tie)."""
        return all(
            self.themis_gain(w, "packet") >= 1.0 - tolerance
            for w in self.workload_names()
        )

    def render(self) -> str:
        blocks = [
            f"Network-fidelity comparison on {self.topology_name}: "
            "Themis vs Baseline under each backend"
        ]
        rows = []
        for workload in self.workload_names():
            for backend in self.backend_names():
                rows.append(
                    (
                        workload,
                        backend,
                        self.iteration_time(workload, backend, "baseline"),
                        self.iteration_time(workload, backend, "themis"),
                        self.themis_gain(workload, backend),
                    )
                )
        blocks.append(
            format_table(
                ["workload", "backend", "baseline", "themis", "gain"],
                rows,
                [str, str, ms, ms, ratio],
                indent="  ",
            )
        )
        divergence_rows = [
            (
                workload,
                self.divergence(workload, "baseline"),
                self.divergence(workload, "themis"),
            )
            for workload in self.workload_names()
        ]
        blocks.append(
            "\npacket/analytical iteration-time ratio "
            "(1.00x = perfect agreement):\n"
            + format_table(
                ["workload", "baseline", "themis"],
                divergence_rows,
                [str, ratio, ratio],
                indent="  ",
            )
        )
        verdict = (
            "Themis's gain over Baseline survives packet fidelity"
            if self.conclusion_holds()
            else "WARNING: a Themis win flips at packet fidelity"
        )
        blocks.append(f"\nconclusion: {verdict}")
        return "\n".join(blocks)


def fidelity_sweep(
    quick: bool = True,
    topology_name: str = "3D-FC_Ring_SW",
    workloads: tuple[str, ...] | None = None,
    backends: tuple[str, ...] | None = None,
) -> "tuple[api.TrainingScenario, dict]":
    """The declarative form: base training spec + workload/backend axes.

    Backend fidelity is *part of the spec* (the ``backend`` field), so the
    whole comparison is one JSON document plus three axes; any spec-driven
    scenario can be re-run at packet fidelity the same way.
    """
    chosen = tuple(
        workloads
        if workloads is not None
        else (FIDELITY_WORKLOADS if quick else FULL_FIDELITY_WORKLOADS)
    )
    if not chosen:
        raise ConfigError("need at least one workload")
    fidelities = tuple(backends if backends is not None else FIDELITY_BACKENDS)
    if not fidelities:
        raise ConfigError("need at least one backend")
    base = api.TrainingScenario(
        workload=chosen[0],
        topology=topology_name,
        scheduler=FIDELITY_SCHEDULERS[0],
        backend=fidelities[0],
        iterations=1,
        overlap_dp=False,
        dp_bucket_bytes=100 * MB,
    )
    axes: dict = {
        "workload": list(chosen),
        "backend": list(fidelities),
        "scheduler": list(FIDELITY_SCHEDULERS),
    }
    return base, axes


def run_fidelity(
    quick: bool = True,
    topology_name: str = "3D-FC_Ring_SW",
    workloads: tuple[str, ...] | None = None,
    backends: tuple[str, ...] | None = None,
) -> FidelityResult:
    """Run every workload x backend x scheduler cell and compare.

    ``workloads`` / ``backends`` select subsets (tests pass tiny ones);
    ``quick`` drops Transformer-1T from the default workload set.
    """
    base, axes = fidelity_sweep(
        quick=quick,
        topology_name=topology_name,
        workloads=workloads,
        backends=backends,
    )
    grid = api.sweep(base, axes)
    result = FidelityResult(
        topology_name=grid.points[0].report.payload["topology"]
    )
    for point in grid:
        workload = point.overrides["workload"]
        backend = point.overrides["backend"]
        scheduler = point.overrides["scheduler"]
        result.reports[(workload, backend, scheduler)] = point.report.detail
    return result
