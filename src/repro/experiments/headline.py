"""The paper's abstract-level headline numbers, in one harness.

"Themis can improve the network BW utilization of the single All-Reduce by
1.72x (2.70x max) [reaching] 95.14% BW utilization, and improve the
end-to-end training iteration performance of ResNet-152, GNMT, DLRM, and
Transformer-1T by 1.49x (2.25x max), 1.30x (1.78x max), 1.30x (1.77x max),
and 1.25x (1.53x max)."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.tables import format_table, pct, ratio
from .fig8 import run_fig8
from .fig11 import run_fig11
from .fig12 import run_fig12

#: The abstract's numbers, for paper-vs-measured tables.
PAPER_HEADLINES = {
    "ar_speedup_mean": 1.72,
    "ar_speedup_max": 2.70,
    "scf_utilization": 0.9514,
    "e2e": {
        "ResNet-152": (1.49, 2.25),
        "GNMT": (1.30, 1.78),
        "DLRM": (1.30, 1.77),
        "Transformer-1T": (1.25, 1.53),
    },
}


@dataclass
class HeadlineResult:
    """Measured headline numbers alongside the paper's."""

    ar_speedup_mean: float = 0.0
    ar_speedup_max: float = 0.0
    scf_utilization: float = 0.0
    baseline_utilization: float = 0.0
    e2e: dict[str, tuple[float, float]] = field(default_factory=dict)

    def render(self) -> str:
        rows = [
            (
                "single-AR speedup (mean)",
                f"{self.ar_speedup_mean:.2f}x",
                f"{PAPER_HEADLINES['ar_speedup_mean']:.2f}x",
            ),
            (
                "single-AR speedup (max)",
                f"{self.ar_speedup_max:.2f}x",
                f"{PAPER_HEADLINES['ar_speedup_max']:.2f}x",
            ),
            (
                "Themis+SCF BW utilization",
                pct(self.scf_utilization),
                pct(PAPER_HEADLINES["scf_utilization"]),
            ),
        ]
        for workload, (mean, peak) in self.e2e.items():
            paper_mean, paper_max = PAPER_HEADLINES["e2e"][workload]
            rows.append(
                (
                    f"{workload} E2E speedup",
                    f"{mean:.2f}x ({peak:.2f}x max)",
                    f"{paper_mean:.2f}x ({paper_max:.2f}x max)",
                )
            )
        return "Headline results (measured vs paper):\n" + format_table(
            ["metric", "measured", "paper"], rows
        )


def run_headline(quick: bool = True) -> HeadlineResult:
    """Measure every abstract headline (quick mode trims sweep points)."""
    fig8 = run_fig8(quick=quick)
    fig11 = run_fig11(quick=quick)
    fig12 = run_fig12(quick=quick)
    result = HeadlineResult(
        ar_speedup_mean=fig8.mean_speedup("Themis+SCF"),
        ar_speedup_max=fig8.max_speedup("Themis+SCF"),
        scf_utilization=fig11.mean_utilization("Themis+SCF"),
        baseline_utilization=fig11.mean_utilization("Baseline"),
    )
    for workload in fig12.workload_names():
        result.e2e[workload] = (
            fig12.mean_speedup(workload, "Themis+SCF"),
            fig12.max_speedup(workload, "Themis+SCF"),
        )
    return result
