"""Fig. 8 reproduction: All-Reduce communication time, 100 MB - 1 GB.

For every Table 2 topology and collective size, compare the total
communication time of Baseline, Themis+FIFO, and Themis+SCF.  The paper's
headline from this figure: averaged over all topologies and sizes,
Themis+FIFO is 1.58x and Themis+SCF 1.72x faster than the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.sweep import PAPER_SCHEDULERS, MicrobenchRecord, geometric_mean, sweep
from ..analysis.tables import format_table, ms, ratio
from ..topology import paper_topologies
from ..units import GB, MB

#: Paper's microbenchmark size range (Sec. 6.1): 100 MB to 1 GB.
DEFAULT_SIZES: tuple[float, ...] = (100 * MB, 250 * MB, 500 * MB, GB)
QUICK_SIZES: tuple[float, ...] = (100 * MB, GB)


@dataclass
class Fig8Result:
    """Per-(topology, size) communication times plus speedup summaries."""

    records: list[MicrobenchRecord] = field(default_factory=list)

    def _by_key(self) -> dict[tuple[str, float], dict[str, MicrobenchRecord]]:
        table: dict[tuple[str, float], dict[str, MicrobenchRecord]] = {}
        for record in self.records:
            table.setdefault((record.topology_name, record.size), {})[
                record.scheduler
            ] = record
        return table

    def speedups(self, scheduler: str) -> list[float]:
        """Baseline-time / scheduler-time per (topology, size) point."""
        return [
            group["Baseline"].comm_time / group[scheduler].comm_time
            for group in self._by_key().values()
            if "Baseline" in group and scheduler in group
        ]

    def mean_speedup(self, scheduler: str) -> float:
        return geometric_mean(self.speedups(scheduler))

    def max_speedup(self, scheduler: str) -> float:
        return max(self.speedups(scheduler))

    def render(self) -> str:
        headers = ["topology", "size", "Baseline", "Themis+FIFO", "Themis+SCF",
                   "SCF speedup"]
        rows = []
        for (topo, size), group in sorted(self._by_key().items()):
            rows.append(
                (
                    topo,
                    f"{size / MB:.0f}MB",
                    group["Baseline"].comm_time,
                    group["Themis+FIFO"].comm_time,
                    group["Themis+SCF"].comm_time,
                    group["Baseline"].comm_time / group["Themis+SCF"].comm_time,
                )
            )
        table = format_table(
            headers, rows, [str, str, ms, ms, ms, ratio]
        )
        summary = (
            f"\nmean speedup: Themis+FIFO {self.mean_speedup('Themis+FIFO'):.2f}x "
            f"(paper 1.58x), Themis+SCF {self.mean_speedup('Themis+SCF'):.2f}x "
            f"(paper 1.72x, 2.70x max; measured max "
            f"{self.max_speedup('Themis+SCF'):.2f}x)"
        )
        return "Fig. 8: All-Reduce communication time\n" + table + summary


def run_fig8(quick: bool = False, chunks: int = 64) -> Fig8Result:
    """Regenerate Fig. 8 over the six Table 2 topologies."""
    sizes = list(QUICK_SIZES if quick else DEFAULT_SIZES)
    records = sweep(paper_topologies(), sizes, PAPER_SCHEDULERS, chunks=chunks)
    return Fig8Result(records=records)
