"""Fig. 8 reproduction: All-Reduce communication time, 100 MB - 1 GB.

For every Table 2 topology and collective size, compare the total
communication time of Baseline, Themis+FIFO, and Themis+SCF.  The paper's
headline from this figure: averaged over all topologies and sizes,
Themis+FIFO is 1.58x and Themis+SCF 1.72x faster than the baseline.

The whole experiment is one declarative grid — a base
:class:`~repro.api.CollectiveScenario` swept over topology x size x
(scheduler, policy) — so any slice of it can be re-run from a JSON spec
via ``themis-sim run --spec`` / ``themis-sim sweep``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import api
from ..analysis.sweep import MicrobenchRecord, geometric_mean
from ..analysis.tables import format_table, ms, ratio
from ..collectives.types import CollectiveType
from ..topology import PAPER_TOPOLOGY_NAMES
from ..units import GB, MB

#: The paper's three simulated configurations as a coupled sweep axis.
SCHEDULER_AXIS: tuple[tuple[str, str], ...] = (
    ("baseline", "FIFO"),
    ("themis", "FIFO"),
    ("themis", "SCF"),
)

#: Paper's microbenchmark size range (Sec. 6.1): 100 MB to 1 GB.
DEFAULT_SIZES: tuple[float, ...] = (100 * MB, 250 * MB, 500 * MB, GB)
QUICK_SIZES: tuple[float, ...] = (100 * MB, GB)


@dataclass
class Fig8Result:
    """Per-(topology, size) communication times plus speedup summaries."""

    records: list[MicrobenchRecord] = field(default_factory=list)

    def _by_key(self) -> dict[tuple[str, float], dict[str, MicrobenchRecord]]:
        table: dict[tuple[str, float], dict[str, MicrobenchRecord]] = {}
        for record in self.records:
            table.setdefault((record.topology_name, record.size), {})[
                record.scheduler
            ] = record
        return table

    def speedups(self, scheduler: str) -> list[float]:
        """Baseline-time / scheduler-time per (topology, size) point."""
        return [
            group["Baseline"].comm_time / group[scheduler].comm_time
            for group in self._by_key().values()
            if "Baseline" in group and scheduler in group
        ]

    def mean_speedup(self, scheduler: str) -> float:
        return geometric_mean(self.speedups(scheduler))

    def max_speedup(self, scheduler: str) -> float:
        return max(self.speedups(scheduler))

    def render(self) -> str:
        headers = ["topology", "size", "Baseline", "Themis+FIFO", "Themis+SCF",
                   "SCF speedup"]
        rows = []
        for (topo, size), group in sorted(self._by_key().items()):
            rows.append(
                (
                    topo,
                    f"{size / MB:.0f}MB",
                    group["Baseline"].comm_time,
                    group["Themis+FIFO"].comm_time,
                    group["Themis+SCF"].comm_time,
                    group["Baseline"].comm_time / group["Themis+SCF"].comm_time,
                )
            )
        table = format_table(
            headers, rows, [str, str, ms, ms, ms, ratio]
        )
        summary = (
            f"\nmean speedup: Themis+FIFO {self.mean_speedup('Themis+FIFO'):.2f}x "
            f"(paper 1.58x), Themis+SCF {self.mean_speedup('Themis+SCF'):.2f}x "
            f"(paper 1.72x, 2.70x max; measured max "
            f"{self.max_speedup('Themis+SCF'):.2f}x)"
        )
        return "Fig. 8: All-Reduce communication time\n" + table + summary


def fig8_sweep(
    quick: bool = False, chunks: int = 64
) -> "tuple[api.CollectiveScenario, dict]":
    """The declarative form of Fig. 8: one base spec plus its sweep axes."""
    sizes = list(QUICK_SIZES if quick else DEFAULT_SIZES)
    base = api.CollectiveScenario(chunks=chunks)
    axes = {
        "topology": list(PAPER_TOPOLOGY_NAMES),
        "size": sizes,
        "scheduler+policy": list(SCHEDULER_AXIS),
    }
    return base, axes


def run_fig8(quick: bool = False, chunks: int = 64) -> Fig8Result:
    """Regenerate Fig. 8 over the six Table 2 topologies."""
    base, axes = fig8_sweep(quick=quick, chunks=chunks)
    result = api.sweep(base, axes)
    records = [
        MicrobenchRecord(
            topology_name=point.report.payload["topology"],
            scheduler=point.report.payload["scheduler_label"],
            ctype=CollectiveType.from_name(point.report.payload["collective"]),
            size=point.report.payload["size"],
            chunks=point.report.payload["chunks"],
            comm_time=point.report.payload["comm_time"],
            utilization=point.report.avg_utilization or 0.0,
            ideal_time=point.report.payload["ideal_time"],
        )
        for point in result
    ]
    return Fig8Result(records=records)
