"""Fig. 9 reproduction: per-dimension frontend activity rates.

A 1 GB All-Reduce on 3D-SW_SW_SW_homo.  The paper's observation: under the
baseline, dim2 and dim3 idle most of the time (dim1 is the pipeline
bottleneck); Themis+FIFO balances them but shows occasional starvation
dips; Themis+SCF keeps all three dimensions busy nearly continuously.

Activity is binned into 100 us windows, exactly as the figure caption
specifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.sweep import PAPER_SCHEDULERS, run_collective
from ..analysis.tables import format_table, pct, us
from ..sim.stats import dimension_activity_rates, mean_activity_rate
from ..topology import get_topology
from ..units import GB, US

ACTIVITY_WINDOW = 100 * US


@dataclass
class Fig9Result:
    """Mean activity per dimension and the full windowed series."""

    makespans: dict[str, float] = field(default_factory=dict)
    mean_rates: dict[str, list[float]] = field(default_factory=dict)
    series: dict[str, list[list[tuple[float, float]]]] = field(default_factory=dict)

    def render(self) -> str:
        schedulers = list(self.mean_rates)
        ndims = len(next(iter(self.mean_rates.values())))
        rows = []
        for scheduler in schedulers:
            rates = self.mean_rates[scheduler]
            rows.append((scheduler, self.makespans[scheduler], *rates))
        headers = ["scheduler", "makespan"] + [f"dim{i + 1}" for i in range(ndims)]
        table = format_table(
            headers, rows, [str, us] + [pct] * ndims
        )
        return (
            "Fig. 9: frontend activity rate, 1GB AR on 3D-SW_SW_SW_homo "
            "(mean over 100us windows)\n" + table
        )


def run_fig9(size: float = GB, chunks: int = 64) -> Fig9Result:
    """Regenerate Fig. 9's activity-rate comparison."""
    topology = get_topology("3D-SW_SW_SW_homo")
    result = Fig9Result()
    for config in PAPER_SCHEDULERS:
        _, execution = run_collective(topology, config, size, chunks=chunks)
        result.makespans[config.label] = execution.makespan
        result.mean_rates[config.label] = [
            mean_activity_rate(execution, dim) for dim in range(topology.ndims)
        ]
        result.series[config.label] = dimension_activity_rates(
            execution, ACTIVITY_WINDOW
        )
    return result
