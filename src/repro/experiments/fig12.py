"""Fig. 12 reproduction: end-to-end training-iteration breakdowns.

Four workloads (ResNet-152, GNMT, DLRM, Transformer-1T) x six Table 2
topologies x three configurations (Baseline, Themis+SCF, Ideal), decomposed
into forward compute, backward compute, exposed MP comm, exposed DP comm.

Paper headlines: averaged over topologies, Themis speeds up training
iterations by 1.49x / 1.30x / 1.30x / 1.25x for ResNet-152 / GNMT / DLRM /
Transformer-1T, close to the Ideal's 1.54x / 1.32x / 1.33x / 1.26x.

Accounting follows the paper (Sec. 6.2): data-parallel gradient collectives
are exposed at the end of back-propagation (no DDP-style overlap), bucketed
to 100 MB so collective sizes land in the paper's 100 MB-1 GB microbench
range.  ``quick`` mode shrinks Transformer-1T's depth (every layer is
identical, so relative speedups are preserved) and simulates one iteration
instead of three.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.tables import format_table, ms, ratio
from ..topology import PAPER_TOPOLOGY_NAMES, get_topology
from ..training.iteration import TrainingConfig, simulate_training
from ..training.results import TrainingReport
from ..units import MB
from ..workloads import dlrm, gnmt, resnet152, transformer_1t
from ..workloads.base import Workload

#: Fig. 12 simulated configurations.
CONFIG_LABELS: tuple[str, ...] = ("Baseline", "Themis+SCF", "Ideal")


def fig12_workloads(quick: bool = False) -> list[Workload]:
    """The paper's four workloads; quick mode shrinks Transformer-1T depth."""
    transformer_layers = 8 if quick else 128
    return [
        resnet152(),
        gnmt(),
        dlrm(),
        transformer_1t(num_layers=transformer_layers),
    ]


def fig12_training_config(quick: bool = False) -> TrainingConfig:
    return TrainingConfig(
        iterations=1 if quick else 3,
        overlap_dp=False,
        dp_bucket_bytes=100 * MB,
    )


@dataclass
class Fig12Result:
    """Training reports keyed by (workload, topology, configuration)."""

    reports: dict[tuple[str, str, str], TrainingReport] = field(default_factory=dict)

    def report(self, workload: str, topology: str, config: str) -> TrainingReport:
        return self.reports[(workload, topology, config)]

    def speedup(self, workload: str, topology: str, config: str) -> float:
        """Iteration-time speedup of ``config`` over the baseline."""
        baseline = self.report(workload, topology, "Baseline").total_time
        return baseline / self.report(workload, topology, config).total_time

    def workload_names(self) -> list[str]:
        return sorted({k[0] for k in self.reports}, key=str)

    def topology_names(self) -> list[str]:
        return sorted({k[1] for k in self.reports}, key=str)

    def mean_speedup(self, workload: str, config: str) -> float:
        values = [
            self.speedup(workload, topo, config) for topo in self.topology_names()
        ]
        return sum(values) / len(values)

    def max_speedup(self, workload: str, config: str) -> float:
        return max(
            self.speedup(workload, topo, config) for topo in self.topology_names()
        )

    def render(self) -> str:
        blocks = ["Fig. 12: training iteration breakdown (per iteration averages)"]
        for workload in self.workload_names():
            rows = []
            for topo in self.topology_names():
                for config in CONFIG_LABELS:
                    report = self.report(workload, topo, config)
                    breakdown = report.total
                    n = max(1, len(report.iterations))
                    rows.append(
                        (
                            f"{topo} / {config}",
                            breakdown.fwd_compute / n,
                            breakdown.bwd_compute / n,
                            breakdown.exposed_mp / n,
                            breakdown.exposed_dp / n,
                            breakdown.total / n,
                        )
                    )
            blocks.append(
                f"\n{workload}:\n"
                + format_table(
                    ["topology / config", "fwd", "bwd", "MP comm", "DP comm", "total"],
                    rows,
                    [str, ms, ms, ms, ms, ms],
                    indent="  ",
                )
            )
        summary_rows = []
        for workload in self.workload_names():
            summary_rows.append(
                (
                    workload,
                    self.mean_speedup(workload, "Themis+SCF"),
                    self.max_speedup(workload, "Themis+SCF"),
                    self.mean_speedup(workload, "Ideal"),
                )
            )
        blocks.append(
            "\nspeedup over baseline (mean across topologies):\n"
            + format_table(
                ["workload", "Themis+SCF", "Themis max", "Ideal"],
                summary_rows,
                [str, ratio, ratio, ratio],
                indent="  ",
            )
        )
        blocks.append(
            "  (paper: ResNet-152 1.49x/2.25x, GNMT 1.30x/1.78x, "
            "DLRM 1.30x/1.77x, Transformer-1T 1.25x/1.53x; "
            "Ideal 1.54x/1.32x/1.33x/1.26x)"
        )
        return "\n".join(blocks)


def run_fig12(
    quick: bool = True,
    workloads: list[Workload] | None = None,
    topology_names: tuple[str, ...] = PAPER_TOPOLOGY_NAMES,
) -> Fig12Result:
    """Regenerate Fig. 12 (quick mode by default; full mode is minutes)."""
    workloads = workloads if workloads is not None else fig12_workloads(quick)
    config = fig12_training_config(quick)
    result = Fig12Result()
    for topo_name in topology_names:
        topology = get_topology(topo_name)
        for workload in workloads:
            for label in CONFIG_LABELS:
                if label == "Ideal":
                    report = simulate_training(
                        workload, topology, config=config, ideal_network=True
                    )
                else:
                    scheduler = "baseline" if label == "Baseline" else "themis"
                    report = simulate_training(
                        workload, topology, scheduler=scheduler, config=config
                    )
                result.reports[(workload.name, topo_name, label)] = report
    return result
