"""Fluid fast-path capacity study: open-loop clusters at 512-4096 jobs.

The analytical backend pays hundreds of events per 64-chunk collective
even when nothing contends, which caps the tractable cluster size near
the fairness matrix's 64 jobs.  The ``fluid`` backend collapses
stable-rate intervals into closed-form flow advancement (see
``docs/backends.md``), so this experiment asks the capacity question
directly: **how far does the job count stretch once events track rate
changes instead of chunks, and what does the collapse cost in accuracy?**

Each job count runs one open-loop Poisson arrival trace to completion
under ``backend: "fluid"``; the smallest count is re-run under
``analytical`` on the identical trace.  Two things are checked:

* the *capacity* — events per job stay flat across the sweep (the fast
  path is O(rate changes), not O(chunks x jobs));
* the *agreement* — the exact re-run's event count is the eliminated
  work (the headline ratio), and its mean JCT bounds the modeling error
  introduced by fluidizing chunk trains into single flows.

Everything is deterministic: the arrival trace is seeded and both
backends are seedless discrete-event simulations, so event counts are
machine-independent and reruns are bit-identical
(``benchmarks/bench_scaling.py`` gates the same counters in CI under
its ``fluid_scaling`` document key).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import api
from ..analysis.tables import format_table, ratio, us
from ..errors import ConfigError
from ..topology import Topology, dimension, topology_to_dict

#: Open-loop job counts in the fast-path regime (full mode).
FLUID_SCALE_JOBS: tuple[int, ...] = (512, 1024, 2048, 4096)

#: Quick-mode subset: small enough for tests and the CLI smoke, still
#: two sizes so the events-per-job flatness is observable.
QUICK_FLUID_SCALE_JOBS: tuple[int, ...] = (128, 256)

#: Chunks per collective — the paper's operating point, and the regime
#: where the exact path's per-chunk event cost dominates.
FLUID_SCALE_CHUNKS = 64


def fluid_scale_topology() -> Topology:
    """The benchmark's small 2D platform (``bench_scaling.py``): the
    sweep measures contention at scale, not topology, and sharing the
    platform keeps this study's ratios comparable to the gated
    ``fluid_scaling`` rows in ``BENCH_scaling.json``."""
    return Topology(
        [
            dimension("sw", 4, 400.0, latency_ns=100),
            dimension("sw", 4, 200.0, latency_ns=500),
        ],
        name="bench-4x4",
    )


def fluid_scale_spec(arrivals: int, backend: str) -> api.ClusterScenario:
    """One open-loop cluster spec at ``arrivals`` jobs under ``backend``.

    Mirrors the benchmark's fluid cells: all-mouse mix (1 MB parameters,
    two iterations) so collectives are numerous rather than individually
    heavy, 8 concurrency slots, outcomes capped — the run measures
    scheduling/event throughput, not one giant collective.
    """
    if arrivals <= 0:
        raise ConfigError(f"need a positive job count, got {arrivals}")
    return api.ClusterScenario(
        topology=topology_to_dict(fluid_scale_topology()),
        open_loop=api.OpenLoopTrace(
            rate=20_000.0,
            duration=None,
            max_jobs=arrivals,
            seed=7,
            mix={
                "elephant_fraction": 0.0,
                "mouse_layers": 1,
                "mouse_param_mb": 1.0,
                "max_iterations": 2,
            },
        ),
        max_concurrent=8,
        outcome_cap=100,
        isolated_baselines=False,
        chunks=FLUID_SCALE_CHUNKS,
        backend=backend,
    )


@dataclass
class FluidScaleResult:
    """Per-size fluid rows plus the analytical reference at the smallest."""

    job_counts: tuple[int, ...]
    rows: dict[int, dict[str, float]] = field(default_factory=dict)
    exact_reference: dict[str, float] = field(default_factory=dict)

    def events(self, jobs: int) -> int:
        return int(self.rows[jobs]["events"])

    def events_per_job(self, jobs: int) -> float:
        return self.rows[jobs]["events"] / jobs

    def mean_jct(self, jobs: int) -> float:
        return self.rows[jobs]["mean_jct"]

    @property
    def event_ratio(self) -> float:
        """Exact-over-fluid event count at the reference size."""
        fluid_events = self.events(self.job_counts[0])
        return self.exact_reference["events"] / fluid_events

    @property
    def jct_ratio(self) -> float:
        """Fluid-over-exact mean JCT at the reference size (1.0 = exact)."""
        return (
            self.mean_jct(self.job_counts[0])
            / self.exact_reference["mean_jct"]
        )

    def events_flat(self, tolerance: float = 0.25) -> bool:
        """True iff events/job varies under ``tolerance`` across sizes."""
        per_job = [self.events_per_job(jobs) for jobs in self.job_counts]
        return max(per_job) <= min(per_job) * (1.0 + tolerance)

    def render(self) -> str:
        blocks = [
            "Fluid fast-path capacity study: open-loop arrivals on "
            f"bench-4x4 at {FLUID_SCALE_CHUNKS} chunks/collective"
        ]
        rows = [
            (
                f"{jobs}",
                self.events(jobs),
                f"{self.events_per_job(jobs):.1f}",
                self.mean_jct(jobs),
            )
            for jobs in self.job_counts
        ]
        blocks.append(
            format_table(
                ["jobs", "events", "events/job", "mean JCT"],
                rows,
                [str, str, str, us],
                indent="  ",
            )
        )
        reference = self.job_counts[0]
        blocks.append(
            f"\nexact reference at {reference} jobs: "
            f"{int(self.exact_reference['events'])} events vs "
            f"{self.events(reference)} fluid "
            f"({ratio(self.event_ratio)} fewer), "
            f"mean-JCT ratio {self.jct_ratio:.4f}"
        )
        flatness = (
            "events/job is flat across the sweep (O(rate changes))"
            if self.events_flat()
            else "WARNING: events/job grows with the job count"
        )
        blocks.append(f"conclusion: {flatness}")
        return "\n".join(blocks)


def _cell(arrivals: int, backend: str) -> dict[str, float]:
    report = api.run(fluid_scale_spec(arrivals, backend))
    payload = report.payload
    engine = payload["engine"]
    return {
        "events": float(engine["events"]),
        "peak_pending_events": float(engine["peak_pending_events"]),
        "makespan": report.makespan,
        "mean_jct": float(payload["mean_jct"]),
    }


def run_fluid_scale(
    quick: bool = True,
    job_counts: tuple[int, ...] | None = None,
) -> FluidScaleResult:
    """Run the fluid sweep plus the exact reference and compare.

    ``job_counts`` selects explicit sizes (tests pass tiny ones);
    ``quick`` swaps the 512-4096 sweep for a two-size smoke.
    """
    chosen = tuple(
        job_counts
        if job_counts is not None
        else (QUICK_FLUID_SCALE_JOBS if quick else FLUID_SCALE_JOBS)
    )
    if not chosen:
        raise ConfigError("need at least one job count")
    result = FluidScaleResult(job_counts=chosen)
    for arrivals in chosen:
        result.rows[arrivals] = _cell(arrivals, "fluid")
    result.exact_reference = _cell(chosen[0], "analytical")
    return result
