"""Experiment harnesses regenerating every paper figure and table."""

from .cluster_contention import ClusterContentionResult, run_cluster_contention
from .degraded import (
    DEGRADED_SEVERITIES,
    DegradedComparisonResult,
    degraded_sweep,
    degraded_trace,
    run_degraded_comparison,
)
from .fairness import (
    FAIRNESS_VARIANTS,
    FairnessComparisonResult,
    run_fairness_comparison,
    skewed_trace,
)
from .fidelity import (
    FIDELITY_BACKENDS,
    FIDELITY_SCHEDULERS,
    FIDELITY_WORKLOADS,
    FidelityResult,
    fidelity_sweep,
    run_fidelity,
)
from .fig4 import Fig4Result, run_fig4
from .fluid_scale import (
    FLUID_SCALE_JOBS,
    FluidScaleResult,
    fluid_scale_spec,
    run_fluid_scale,
)
from .fig5 import Fig5Result, run_fig5
from .fig8 import Fig8Result, run_fig8
from .fig9 import Fig9Result, run_fig9
from .fig10 import Fig10Result, run_fig10
from .fig11 import Fig11Result, run_fig11
from .fig12 import Fig12Result, run_fig12
from .headline import PAPER_HEADLINES, HeadlineResult, run_headline
from .placement import (
    PLACEMENT_VARIANTS,
    PlacementComparisonResult,
    placement_trace,
    run_placement_comparison,
)
from .steady_state import (
    RHO_GRID,
    SCHEDULER_VARIANTS,
    SteadyStateResult,
    run_steady_state,
    steady_state_sweep,
)

__all__ = [
    "run_fig4",
    "run_fig5",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_headline",
    "run_cluster_contention",
    "ClusterContentionResult",
    "run_fairness_comparison",
    "FairnessComparisonResult",
    "FAIRNESS_VARIANTS",
    "skewed_trace",
    "run_steady_state",
    "steady_state_sweep",
    "SteadyStateResult",
    "RHO_GRID",
    "SCHEDULER_VARIANTS",
    "run_placement_comparison",
    "PlacementComparisonResult",
    "PLACEMENT_VARIANTS",
    "placement_trace",
    "run_degraded_comparison",
    "DegradedComparisonResult",
    "DEGRADED_SEVERITIES",
    "degraded_sweep",
    "degraded_trace",
    "run_fidelity",
    "fidelity_sweep",
    "FidelityResult",
    "run_fluid_scale",
    "fluid_scale_spec",
    "FluidScaleResult",
    "FLUID_SCALE_JOBS",
    "FIDELITY_BACKENDS",
    "FIDELITY_SCHEDULERS",
    "FIDELITY_WORKLOADS",
    "Fig4Result",
    "Fig5Result",
    "Fig8Result",
    "Fig9Result",
    "Fig10Result",
    "Fig11Result",
    "Fig12Result",
    "HeadlineResult",
    "PAPER_HEADLINES",
]
