"""Fig. 4 reproduction: normalized runtime vs average BW utilization.

For ResNet-152, GNMT and Transformer-1T on the current 2D platform plus
the six Table 2 next-gen topologies, plot how the end-to-end iteration
time shrinks as the network's average BW utilization rises from 10% to
100%, mark the "Inf" (pure-compute) floor, and overlay the utilization the
*baseline* collective scheduling actually achieves (the bold dots).

The analytic curve uses the paper's construction: at utilization ``u`` the
exposed communication takes ``ideal_comm / u`` where ``ideal_comm`` is the
100%-utilization (invariant-bytes / total-BW) time of the iteration's
collectives on their communicators.  Runtimes are normalized to the current
topology's runtime at 10% utilization, exactly as the figure caption says.

Declaratively, the figure is one grid: a base
:class:`~repro.api.TrainingScenario` (baseline scheduler, paper DP
accounting) swept over workload x topology x {ideal, simulated} network.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import api
from ..analysis.tables import format_table, pct
from ..topology import PAPER_TOPOLOGY_NAMES
from ..units import MB
from ..workloads import gnmt, resnet152, transformer_1t
from ..workloads.base import Workload

UTILIZATION_GRID: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
FIG4_TOPOLOGIES: tuple[str, ...] = ("current-2D", *PAPER_TOPOLOGY_NAMES)


@dataclass
class Fig4Curve:
    """One topology's runtime-vs-utilization curve for one workload."""

    workload: str
    topology: str
    compute_time: float
    ideal_comm_time: float
    baseline_utilization: float
    baseline_runtime: float

    def runtime_at(self, utilization: float) -> float:
        """Iteration time if the network ran at the given avg utilization."""
        if not 0 < utilization <= 1:
            raise ValueError(f"utilization must be in (0, 1], got {utilization}")
        return self.compute_time + self.ideal_comm_time / utilization

    @property
    def ideal_runtime(self) -> float:
        return self.runtime_at(1.0)

    @property
    def inf_runtime(self) -> float:
        """The Inf-BW floor: zero exposed communication."""
        return self.compute_time


@dataclass
class Fig4Result:
    """All curves, keyed by (workload, topology)."""

    curves: dict[tuple[str, str], Fig4Curve] = field(default_factory=dict)

    def curve(self, workload: str, topology: str) -> Fig4Curve:
        return self.curves[(workload, topology)]

    def normalization(self, workload: str) -> float:
        """Slowest-topology runtime at 10% utilization (the figure's 1.0)."""
        return max(
            c.runtime_at(0.1)
            for (w, _t), c in self.curves.items()
            if w == workload
        )

    def ideal_speedup_over_baseline(self, workload: str, topology: str) -> float:
        curve = self.curve(workload, topology)
        return curve.baseline_runtime / curve.ideal_runtime

    def render(self) -> str:
        blocks = ["Fig. 4: normalized runtime vs average BW utilization"]
        for workload in sorted({w for w, _ in self.curves}):
            norm = self.normalization(workload)
            rows = []
            for topo in FIG4_TOPOLOGIES:
                if (workload, topo) not in self.curves:
                    continue
                curve = self.curve(workload, topo)
                rows.append(
                    (
                        topo,
                        curve.runtime_at(0.1) / norm,
                        curve.ideal_runtime / norm,
                        curve.inf_runtime / norm,
                        curve.baseline_utilization,
                        curve.baseline_runtime / norm,
                    )
                )
            blocks.append(
                f"\n{workload} (normalized to slowest topology at 10%):\n"
                + format_table(
                    [
                        "topology",
                        "@10%",
                        "@100% (Ideal)",
                        "Inf",
                        "baseline util",
                        "baseline runtime",
                    ],
                    rows,
                    [str, "{:.3f}".format, "{:.3f}".format, "{:.3f}".format,
                     pct, "{:.3f}".format],
                    indent="  ",
                )
            )
        return "\n".join(blocks)


def fig4_workloads(quick: bool = True) -> list[Workload]:
    transformer_layers = 8 if quick else 128
    return [resnet152(), gnmt(), transformer_1t(num_layers=transformer_layers)]


def fig4_sweep(quick: bool = True) -> "tuple[api.TrainingScenario, dict]":
    """The declarative form of Fig. 4: one base spec plus its sweep axes.

    The workload axis couples registry key and factory args (the quick mode
    shrinks the Transformer); the ``ideal_network`` axis yields the curve's
    analytic anchor (True) and the measured baseline dot (False).
    """
    transformer_layers = 8 if quick else 128
    base = api.TrainingScenario(
        scheduler="baseline",
        iterations=1,
        overlap_dp=False,
        dp_bucket_bytes=100 * MB,
    )
    axes = {
        "workload+workload_args": [
            ("resnet-152", {}),
            ("gnmt", {}),
            ("transformer-1t", {"num_layers": transformer_layers}),
        ],
        "topology": list(FIG4_TOPOLOGIES),
        "ideal_network": [True, False],
    }
    return base, axes


def run_fig4(quick: bool = True) -> Fig4Result:
    """Regenerate Fig. 4's curves and baseline dots."""
    base, axes = fig4_sweep(quick)
    grid = api.sweep(base, axes)
    result = Fig4Result()
    for key, _args in axes["workload+workload_args"]:
        for topo_name in FIG4_TOPOLOGIES:
            # Ideal run gives the compute floor and the 100%-util comm time.
            ideal = grid.find(
                workload=key, topology=topo_name, ideal_network=True
            ).report
            # Baseline run gives the measured dot.
            baseline = grid.find(
                workload=key, topology=topo_name, ideal_network=False
            ).report
            workload_name = ideal.payload["workload"]
            result.curves[(workload_name, topo_name)] = Fig4Curve(
                workload=workload_name,
                topology=topo_name,
                compute_time=ideal.payload["compute"],
                ideal_comm_time=ideal.payload["exposed_comm"],
                baseline_utilization=baseline.avg_utilization or 0.0,
                baseline_runtime=baseline.makespan,
            )
    return result
