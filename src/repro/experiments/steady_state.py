"""Steady-state open-loop experiment: offered load vs measured slowdown.

The closed-loop experiments (contention, fairness, placement) drain a fixed
job list, so their metrics mix the warm-up and drain-down transients into
every number.  This experiment instead drives the cluster *open loop*: a
seeded arrival process offers jobs at a target load rho (the arrival rate
is calibrated from the mix's mean isolated service time and the admission
slots), the first ``warmup`` seconds are discarded, and metrics come from a
fixed measurement window — the queueing-theory methodology (PARSEC/Sparrow
style) applied to the shared-network training cluster.

Swept axes: offered load rho x per-job collective scheduler (Baseline vs
Themis) x cluster fairness policy.  Per point, the report carries the
window-scoped slowdown/JCT/queueing-delay digests plus the per-epoch rho
series — the convergence evidence that the window sits in steady state
(rising epochs at rho near 1 mean the queue never stabilized, which is
itself the expected open-loop signature of overload).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import api
from ..analysis.tables import format_table, ms, ratio
from ..errors import ConfigError

#: Offered loads swept (quick keeps the ends, full fills the middle).
RHO_GRID: tuple[float, ...] = (0.5, 0.65, 0.8, 0.95)
RHO_GRID_QUICK: tuple[float, ...] = (0.5, 0.8)

#: Per-job collective scheduler variants.
SCHEDULER_VARIANTS: tuple[str, ...] = ("baseline", "themis")

#: Cluster fairness policies compared (None = default first-come sharing).
FAIRNESS_VARIANTS: tuple[str | None, ...] = (None, "ftf")


def _epoch_text(series: tuple[float | None, ...]) -> str:
    return "[" + ", ".join(
        f"{value:.2f}" if value is not None else "-" for value in series
    ) + "]"


@dataclass
class SteadyStateResult:
    """One row per (rho, scheduler, fairness) grid point."""

    topology_name: str
    rows: list[dict] = field(default_factory=list)

    def find(
        self, rho: float, scheduler: str, fairness: "str | None"
    ) -> dict:
        for row in self.rows:
            if (
                row["target_rho"] == rho
                and row["scheduler"] == scheduler
                and row["fairness"] == fairness
            ):
                return row
        raise KeyError(f"no point ({rho}, {scheduler}, {fairness})")

    def render(self) -> str:
        blocks = [
            f"Open-loop steady state on {self.topology_name}: offered load "
            f"vs measured slowdown (window-scoped, warm-up discarded)"
        ]
        table_rows = []
        for row in self.rows:
            table_rows.append(
                (
                    f"{row['target_rho']:.2f}",
                    row["scheduler"],
                    row["fairness"] or "fifo",
                    row["measured_jobs"],
                    row["mean_rho"] if row["mean_rho"] is not None else float("nan"),
                    row["p95_jct"] if row["p95_jct"] is not None else float("nan"),
                    row["mean_queueing_delay"]
                    if row["mean_queueing_delay"] is not None
                    else float("nan"),
                    f"{row['slot_utilization']:.0%}",
                    {True: "yes", False: "no", None: "n/a"}[row["stationary"]],
                )
            )
        blocks.append(
            format_table(
                ["rho", "sched", "fairness", "jobs", "mean slowdown",
                 "p95 JCT", "mean queue delay", "occupancy", "stationary"],
                table_rows,
                [str, str, str, str, ratio, ms, ms, str, str],
                indent="  ",
            )
        )
        blocks.append("\nper-epoch slowdown series (convergence evidence):")
        for row in self.rows:
            blocks.append(
                f"  rho={row['target_rho']:.2f} {row['scheduler']:<8} "
                f"{(row['fairness'] or 'fifo'):<6} "
                f"{_epoch_text(row['epoch_series'])}"
            )
        return "\n".join(blocks)


def steady_state_sweep(
    quick: bool = True,
    topology_name: str = "2D-SW_SW",
    rhos: "tuple[float, ...] | None" = None,
    fairness: "tuple[str | None, ...] | None" = None,
    seed: int = 1,
    max_concurrent: int = 2,
) -> "tuple[api.ClusterScenario, dict]":
    """The declarative form: base spec + sweep axes.

    The arrival trace is time-bounded, so every grid point offers load for
    the same simulated horizon; the seed is shared, so points differ only
    in the swept knobs (same arrival skeleton under each rho's rate).
    """
    measure = 0.12 if quick else 0.3
    base = api.ClusterScenario(
        topology=topology_name,
        open_loop=api.OpenLoopTrace(
            target_rho=0.5,
            # Flood mixes are comm-bound: aggregate capacity is one shared
            # network however many admission slots exist, so offered load
            # is calibrated against a single service slot.
            calibration_slots=1,
            duration=0.02 + measure,
            seed=seed,
            # Mild elephants (8x vs the default 64x total size ratio):
            # extreme tails are exercised by the statistical tests; here
            # the window has to reach steady state within a short horizon.
            mix={
                "elephant_fraction": 0.1,
                "elephant_param_mb": 2.0,
                "size_alpha": 1.5,
                "size_levels": 2,
                "size_max_scale": 2.0,
                "max_iterations": 3,
            },
        ),
        max_concurrent=max_concurrent,
        warmup_time=0.02,
        measure_time=measure,
        outcome_cap=0,
        isolated_per_iteration=True,
        convergence_epochs=6,
        chunks=2,
    )
    axes = {
        "open_loop.target_rho": list(
            rhos if rhos is not None else (RHO_GRID_QUICK if quick else RHO_GRID)
        ),
        "open_loop.schedulers": [(name,) for name in SCHEDULER_VARIANTS],
        "fairness": list(
            fairness if fairness is not None
            else (FAIRNESS_VARIANTS[:1] if quick else FAIRNESS_VARIANTS)
        ),
    }
    return base, axes


def run_steady_state(
    quick: bool = True,
    topology_name: str = "2D-SW_SW",
    rhos: "tuple[float, ...] | None" = None,
    fairness: "tuple[str | None, ...] | None" = None,
    seed: int = 1,
    max_concurrent: int = 2,
) -> SteadyStateResult:
    """Run the rho x scheduler x fairness grid and collect window metrics."""
    if max_concurrent < 1:
        raise ConfigError(
            f"need at least 1 concurrency slot, got {max_concurrent}"
        )
    base, axes = steady_state_sweep(
        quick=quick,
        topology_name=topology_name,
        rhos=rhos,
        fairness=fairness,
        seed=seed,
        max_concurrent=max_concurrent,
    )
    grid = api.sweep(base, axes)
    result = SteadyStateResult(
        topology_name=grid.points[0].report.payload["topology"]
    )
    for point in grid.points:
        steady = point.report.payload["steady_state"]
        result.rows.append(
            {
                "target_rho": point.overrides["open_loop.target_rho"],
                "scheduler": point.overrides["open_loop.schedulers"][0],
                "fairness": point.overrides["fairness"],
                "arrival_rate": point.report.payload["arrival_rate"],
                "measured_jobs": steady["measured_jobs"],
                "mean_rho": steady["rho"]["mean"],
                "p95_jct": steady["jct"]["p95"],
                "mean_queueing_delay": steady["queueing_delay"]["mean"],
                "slot_utilization": steady["slot_utilization"],
                "peak_live_jobs": steady["peak_live_jobs"],
                "stationary": steady["stationary"],
                "epoch_series": tuple(steady["epoch_series"]),
            }
        )
    return result
