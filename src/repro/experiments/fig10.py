"""Fig. 10 reproduction: BW utilization vs chunks-per-collective.

A 100 MB All-Reduce on 3D-SW_SW_SW_hetero and 4D-Ring_FC_Ring_SW with
chunk counts swept from 4 to 512.  Paper observations:

* the baseline is insensitive to chunk count (dim1 is first and bottleneck
  regardless of granularity);
* Themis improves steeply with more chunks (finer load-balancing
  granularity), from ~48.6% (SCF) at 4 chunks to ~91.2% at 512 on average
  over the two topologies;
* Themis+SCF is stable from 8 chunks up, while Themis+FIFO shows
  starvation dips.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.sweep import PAPER_SCHEDULERS, MicrobenchRecord, run_collective
from ..analysis.tables import format_table, pct
from ..topology import get_topology
from ..units import MB

DEFAULT_CHUNK_COUNTS: tuple[int, ...] = (4, 8, 16, 32, 64, 128, 256, 512)
QUICK_CHUNK_COUNTS: tuple[int, ...] = (4, 64, 512)
TOPOLOGY_NAMES: tuple[str, ...] = ("3D-SW_SW_SW_hetero", "4D-Ring_FC_Ring_SW")


@dataclass
class Fig10Result:
    """Utilization records keyed by (topology, chunk count, scheduler)."""

    records: list[MicrobenchRecord] = field(default_factory=list)

    def utilization(self, topology: str, chunks: int, scheduler: str) -> float:
        for record in self.records:
            if (
                record.topology_name == topology
                and record.chunks == chunks
                and record.scheduler == scheduler
            ):
                return record.utilization
        raise KeyError((topology, chunks, scheduler))

    def mean_utilization(self, scheduler: str, chunks: int) -> float:
        values = [
            r.utilization
            for r in self.records
            if r.scheduler == scheduler and r.chunks == chunks
        ]
        return sum(values) / len(values)

    def render(self) -> str:
        chunk_counts = sorted({r.chunks for r in self.records})
        blocks = []
        for topo in TOPOLOGY_NAMES:
            rows = []
            for chunks in chunk_counts:
                rows.append(
                    (
                        chunks,
                        self.utilization(topo, chunks, "Baseline"),
                        self.utilization(topo, chunks, "Themis+FIFO"),
                        self.utilization(topo, chunks, "Themis+SCF"),
                    )
                )
            blocks.append(
                f"{topo}:\n"
                + format_table(
                    ["chunks", "Baseline", "Themis+FIFO", "Themis+SCF"],
                    rows,
                    [str, pct, pct, pct],
                    indent="  ",
                )
            )
        return (
            "Fig. 10: BW utilization vs chunks per collective (100MB AR)\n"
            + "\n".join(blocks)
        )


def run_fig10(quick: bool = False, size: float = 100 * MB) -> Fig10Result:
    """Regenerate Fig. 10's chunk-granularity sensitivity sweep."""
    chunk_counts = QUICK_CHUNK_COUNTS if quick else DEFAULT_CHUNK_COUNTS
    result = Fig10Result()
    for name in TOPOLOGY_NAMES:
        topology = get_topology(name)
        for chunks in chunk_counts:
            for config in PAPER_SCHEDULERS:
                record, _ = run_collective(
                    topology, config, size, chunks=chunks
                )
                result.records.append(record)
    return result
