"""Themis-under-misbehaving-networks: scheduler comparison on a degraded ring.

The robustness experiment the fault-injection layer exists for: the same
contended trace runs on a platform whose *ring* dimension misbehaves at
increasing severity —

* **healthy** — no faults, the usual Themis-vs-Baseline comparison;
* **soft-2x** — the ring persistently degrades to half its bandwidth
  (a misbehaving switch, an oversubscribed optical link);
* **hard-4x** — the ring runs at a quarter of its bandwidth;
* **outage** — the ring fails completely mid-trace (capacity zero,
  in-flight chunks parked) and recovers after a window.

Every job's collectives span all dimensions, so the degraded ring sits on
every critical path.  The expected shape of the result: **Baseline**'s
static chunk schedule keeps feeding the ring its full share and the whole
trace slows toward the ring's pace, while **Themis** sees the degraded
capacity through its load tracker (planning runs against the scaled
latency model) and shifts chunk load onto the healthy dimensions — so the
Themis-over-Baseline mean-JCT gain should *grow* with severity, and
Themis must win under at least one degraded-link scenario.  Both runs of
the same variant are bit-identical: the fault schedule is part of the
spec, and the whole experiment is deterministic from its fixed trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .. import api
from ..analysis.tables import format_table, ms, ratio
from ..cluster import ClusterReport, JobSpec
from ..errors import ConfigError
from ..topology import Topology
from ..training.iteration import TrainingConfig
from ..workloads import Workload, flood
from .fairness import _training_fields

#: Dimension index degraded by the built-in severities (the ring of the
#: default ``3D-FC_Ring_SW`` platform).
RING_DIM = 1

#: ``(severity name, FaultSpec payload)`` in presentation order.  ``None``
#: is the healthy control; each payload degrades :data:`RING_DIM` only,
#: so the platform's other dimensions stay trustworthy.
DEGRADED_SEVERITIES: tuple[tuple[str, dict | None], ...] = (
    ("healthy", None),
    (
        "soft-2x",
        {"links": [{"dim_index": RING_DIM, "start": 0.0, "factor": 0.5}]},
    ),
    (
        "hard-4x",
        {"links": [{"dim_index": RING_DIM, "start": 0.0, "factor": 0.25}]},
    ),
    (
        "outage",
        {
            "links": [
                {
                    "dim_index": RING_DIM,
                    "start": 5e-4,
                    "factor": 0.0,
                    "duration": 2e-3,
                    "label": "ring outage",
                }
            ]
        },
    ),
)

#: Per-job collective schedulers compared (the paper's axis).
DEGRADED_SCHEDULERS: tuple[str, ...] = ("baseline", "themis")


def _tenant(index: int, scale: float) -> Workload:
    """Comm-bound tenant: its JCT tracks whatever the network delivers."""
    return flood(6, 8 * scale, f"tenant{index}")


def degraded_trace(scale: float = 1.0, n_jobs: int = 4) -> list[JobSpec]:
    """``n_jobs`` comm-bound tenants with staggered arrivals.

    All jobs span every platform dimension (no placement games — this
    experiment isolates the *scheduler's* reaction to degradation), and
    arrivals are staggered so early tenants are mid-collective when the
    built-in outage severity cuts the ring.
    """
    if scale <= 0:
        raise ConfigError(f"scale must be positive, got {scale}")
    if n_jobs < 1:
        raise ConfigError(f"need >= 1 jobs, got {n_jobs}")
    gap = 2e-4
    return [
        JobSpec(
            name=f"tenant{i}",
            workload=_tenant(i, scale),
            arrival_time=i * gap,
            iterations=2,
        )
        for i in range(n_jobs)
    ]


@dataclass
class DegradedComparisonResult:
    """Cluster reports for one trace keyed by (severity, scheduler)."""

    topology_name: str
    reports: dict[tuple[str, str], ClusterReport] = field(default_factory=dict)

    def report(self, severity: str, scheduler: str = "themis") -> ClusterReport:
        return self.reports[(severity, scheduler)]

    def mean_jct(self, severity: str, scheduler: str = "themis") -> float:
        value = self.reports[(severity, scheduler)].mean_jct
        assert value is not None  # every job completes in this experiment
        return value

    def themis_gain(self, severity: str) -> float:
        """Baseline-over-Themis mean-JCT ratio at one severity (>1 = win)."""
        return self.mean_jct(severity, "baseline") / self.mean_jct(
            severity, "themis"
        )

    def degradation(self, severity: str, scheduler: str = "themis") -> float:
        """Mean-JCT inflation of one severity over the healthy control —
        the graceful-degradation curve (1.0 = the fault cost nothing)."""
        return self.mean_jct(severity, scheduler) / self.mean_jct(
            "healthy", scheduler
        )

    def render(self) -> str:
        blocks = [
            f"Degraded-network scheduler comparison on {self.topology_name}: "
            f"one contended trace under {len(self.reports)} severity x "
            "scheduler variants (the ring dimension misbehaves; "
            "dim indices are 0-based)"
        ]
        for (severity, scheduler), report in self.reports.items():
            blocks.append(f"\n[{severity} / {scheduler}]")
            blocks.append(report.describe())
        rows = []
        for (severity, scheduler), report in self.reports.items():
            rows.append(
                (
                    severity,
                    scheduler,
                    report.makespan,
                    report.mean_jct,
                    report.max_rho
                    if report.max_rho is not None
                    else float("nan"),
                )
            )
        blocks.append(
            "\nsummary:\n"
            + format_table(
                ["severity", "sched", "makespan", "mean JCT", "max rho"],
                rows,
                [str, str, ms, ms, ratio],
                indent="  ",
            )
        )
        severities = []
        for severity, _scheduler in self.reports:
            if severity not in severities:
                severities.append(severity)
        for severity in severities:
            if all(
                (severity, s) in self.reports
                for s in ("baseline", "themis")
            ):
                blocks.append(
                    f"  themis vs baseline ({severity}): mean JCT "
                    f"{self.themis_gain(severity):.2f}x better"
                )
        return "\n".join(blocks)


def degraded_sweep(
    quick: bool = True,
    topology_name: str = "3D-FC_Ring_SW",
    severities: "tuple[tuple[str, dict | None], ...] | None" = None,
    schedulers: tuple[str, ...] | None = None,
    topology: Topology | None = None,
    jobs: list[JobSpec] | None = None,
    training: TrainingConfig | None = None,
) -> "tuple[api.ClusterScenario, dict]":
    """The declarative form of the comparison: base spec + fault axis.

    The fault schedule is *part of the spec* (the ``faults`` field), so
    severity is just another swept field: the whole experiment is one JSON
    document plus two axes.  The scheduler axis couples every job's
    ``scheduler`` field, comparing an all-Baseline against an all-Themis
    cluster at each severity.
    """
    chosen = tuple(severities if severities is not None else DEGRADED_SEVERITIES)
    if not chosen:
        raise ConfigError("need at least one severity")
    sched = tuple(schedulers or DEGRADED_SCHEDULERS)
    trace = list(jobs) if jobs is not None else degraded_trace(
        scale=1.0 if quick else 4.0
    )
    base = api.ClusterScenario(
        topology=topology if topology is not None else topology_name,
        jobs=tuple(api.ScenarioJob.from_jobspec(spec) for spec in trace),
        faults=chosen[0][1],
        **_training_fields(training),
    )
    axes: dict = {"faults": [payload for _name, payload in chosen]}
    if len(sched) > 1 or sched[0] != trace[0].scheduler:
        fields = tuple(f"jobs.{i}.scheduler" for i in range(len(trace)))
        axes[fields] = [tuple([s] * len(trace)) for s in sched]
    return base, axes


def run_degraded_comparison(
    quick: bool = True,
    topology_name: str = "3D-FC_Ring_SW",
    severities: "tuple[tuple[str, dict | None], ...] | None" = None,
    schedulers: tuple[str, ...] | None = None,
    topology: Topology | None = None,
    jobs: list[JobSpec] | None = None,
    training: TrainingConfig | None = None,
) -> DegradedComparisonResult:
    """Run the trace under each severity x scheduler and compare.

    ``topology`` / ``jobs`` / ``training`` override the defaults (tests
    pass tiny ones); ``severities`` / ``schedulers`` select subsets of
    :data:`DEGRADED_SEVERITIES` / :data:`DEGRADED_SCHEDULERS`.  ``quick``
    controls the trace's payload scale.
    """
    chosen = tuple(severities if severities is not None else DEGRADED_SEVERITIES)
    base, axes = degraded_sweep(
        quick=quick,
        topology_name=topology_name,
        severities=chosen,
        schedulers=schedulers,
        topology=topology,
        jobs=jobs,
        training=training,
    )
    grid = api.sweep(base, axes)
    result = DegradedComparisonResult(
        topology_name=grid.points[0].report.payload["topology"]
    )
    for point in grid:
        payload = point.overrides["faults"]
        severity = next(
            name for name, candidate in chosen if candidate == payload
        )
        scheduler = point.overrides.get("jobs.0.scheduler")
        if scheduler is None:
            scheduler = base.jobs[0].scheduler
        result.reports[(severity, scheduler)] = point.report.detail
    return result
