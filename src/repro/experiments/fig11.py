"""Fig. 11 reproduction: average BW utilization vs All-Reduce size.

Same sweep as Fig. 8, reported as the paper's average BW utilization.
Headline: averaged over all topologies and sizes, baseline reaches 56.31%,
Themis+FIFO 87.67%, and Themis+SCF 95.14%.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.sweep import PAPER_SCHEDULERS, MicrobenchRecord, sweep
from ..analysis.tables import format_table, pct
from ..topology import paper_topologies
from ..units import MB
from .fig8 import DEFAULT_SIZES, QUICK_SIZES


@dataclass
class Fig11Result:
    """Per-(topology, size) utilizations plus per-scheduler averages."""

    records: list[MicrobenchRecord] = field(default_factory=list)

    def utilizations(self, scheduler: str) -> list[float]:
        return [r.utilization for r in self.records if r.scheduler == scheduler]

    def mean_utilization(self, scheduler: str) -> float:
        values = self.utilizations(scheduler)
        return sum(values) / len(values)

    def render(self) -> str:
        groups: dict[tuple[str, float], dict[str, float]] = {}
        for record in self.records:
            groups.setdefault((record.topology_name, record.size), {})[
                record.scheduler
            ] = record.utilization
        rows = [
            (
                topo,
                f"{size / MB:.0f}MB",
                group.get("Baseline", float("nan")),
                group.get("Themis+FIFO", float("nan")),
                group.get("Themis+SCF", float("nan")),
            )
            for (topo, size), group in sorted(groups.items())
        ]
        table = format_table(
            ["topology", "size", "Baseline", "Themis+FIFO", "Themis+SCF"],
            rows,
            [str, str, pct, pct, pct],
        )
        summary = (
            f"\nmean utilization: Baseline {self.mean_utilization('Baseline'):.1%} "
            f"(paper 56.31%), Themis+FIFO "
            f"{self.mean_utilization('Themis+FIFO'):.1%} (paper 87.67%), "
            f"Themis+SCF {self.mean_utilization('Themis+SCF'):.1%} (paper 95.14%)"
        )
        return "Fig. 11: average BW utilization vs collective size\n" + table + summary


def run_fig11(quick: bool = False, chunks: int = 64) -> Fig11Result:
    """Regenerate Fig. 11 over the six Table 2 topologies."""
    sizes = list(QUICK_SIZES if quick else DEFAULT_SIZES)
    records = sweep(paper_topologies(), sizes, PAPER_SCHEDULERS, chunks=chunks)
    return Fig11Result(records=records)
