"""Cluster-contention experiment: a Poisson job trace, Baseline vs Themis.

Goes beyond the paper's single-job evaluation to the multi-tenant setting
(CASSINI, Themis-fair): N training jobs arrive over a Poisson process and
share one platform's network.  The same trace is simulated twice — every
job scheduling its collectives with the Baseline hierarchical schedule, and
every job using Themis — and the per-job JCT, slowdown versus isolated
execution, cluster makespan, and per-dimension BW utilization are compared.

The paper's claim transfers: Themis's balanced chunk schedules keep the
fat dimensions busier, so under contention jobs finish sooner and the
cluster drains faster.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import api
from ..analysis.tables import format_table, ms, pct, ratio
from ..cluster import ClusterReport
from ..errors import ConfigError
from ..units import MB

#: The two per-job scheduler variants compared.
VARIANT_LABELS: tuple[str, ...] = ("Baseline", "Themis")

#: Default workload rotation for generated traces (comm-heavy mix).
DEFAULT_WORKLOADS: tuple[str, ...] = ("dlrm", "resnet-152", "gnmt")


@dataclass
class ClusterContentionResult:
    """Cluster reports keyed by per-job scheduler variant."""

    topology_name: str
    n_jobs: int
    reports: dict[str, ClusterReport] = field(default_factory=dict)

    def report(self, variant: str) -> ClusterReport:
        return self.reports[variant]

    def makespan_speedup(self) -> float:
        """Cluster-drain speedup of all-Themis over all-Baseline."""
        return (
            self.report("Baseline").makespan / self.report("Themis").makespan
        )

    def mean_jct_speedup(self) -> float:
        """Mean-JCT speedup of all-Themis over all-Baseline."""
        return (
            self.report("Baseline").mean_jct / self.report("Themis").mean_jct
        )

    def render(self) -> str:
        blocks = [
            f"Cluster contention: {self.n_jobs} Poisson-arrival jobs on "
            f"{self.topology_name}, per-job Baseline vs Themis scheduling"
        ]
        for variant in VARIANT_LABELS:
            blocks.append(f"\n[{variant} jobs]")
            blocks.append(self.report(variant).describe())
        rows = []
        for variant in VARIANT_LABELS:
            report = self.report(variant)
            rows.append(
                (
                    variant,
                    report.makespan,
                    report.mean_jct,
                    report.max_jct,
                    report.mean_slowdown
                    if report.mean_slowdown is not None
                    else float("nan"),
                    report.utilization.average if report.utilization else float("nan"),
                )
            )
        blocks.append(
            "\nsummary:\n"
            + format_table(
                ["variant", "makespan", "mean JCT", "max JCT",
                 "mean slowdown", "avg BW util"],
                rows,
                [str, ms, ms, ms, ratio, pct],
                indent="  ",
            )
        )
        blocks.append(
            f"  Themis vs Baseline: makespan {self.makespan_speedup():.2f}x, "
            f"mean JCT {self.mean_jct_speedup():.2f}x"
        )
        return "\n".join(blocks)


def run_cluster_contention(
    quick: bool = True,
    topology_name: str = "3D-SW_SW_SW_homo",
    n_jobs: int = 4,
    mean_interarrival: float = 2e-3,
    seed: int = 1,
    iterations: int | None = None,
    workload_names: tuple[str, ...] | None = None,
) -> ClusterContentionResult:
    """Simulate the same Poisson trace under all-Baseline and all-Themis.

    ``mean_interarrival`` is in seconds (training iterations on the paper
    platforms are single-digit milliseconds, so the 2 ms default produces
    heavy overlap).  ``quick`` controls iterations per job (1 vs 2) when
    ``iterations`` is not given.
    """
    if n_jobs < 1:
        raise ConfigError(f"need at least 1 job, got n_jobs={n_jobs}")
    base, axes = contention_sweep(
        quick=quick,
        topology_name=topology_name,
        n_jobs=n_jobs,
        mean_interarrival=mean_interarrival,
        seed=seed,
        iterations=iterations,
        workload_names=workload_names,
    )
    grid = api.sweep(base, axes)
    result = ClusterContentionResult(
        topology_name=grid.points[0].report.payload["topology"], n_jobs=n_jobs
    )
    for variant in VARIANT_LABELS:
        point = grid.find(**{"trace.schedulers": (variant.lower(),)})
        result.reports[variant] = point.report.detail
    return result


def contention_sweep(
    quick: bool = True,
    topology_name: str = "3D-SW_SW_SW_homo",
    n_jobs: int = 4,
    mean_interarrival: float = 2e-3,
    seed: int = 1,
    iterations: int | None = None,
    workload_names: tuple[str, ...] | None = None,
) -> "tuple[api.ClusterScenario, dict]":
    """The declarative form of the experiment: base spec + sweep axes.

    One :class:`~repro.api.ClusterScenario` with a generated Poisson trace;
    the single axis flips every job's collective scheduler between Baseline
    and Themis while the arrival trace (seeded) stays identical.
    """
    iters = iterations if iterations is not None else (1 if quick else 2)
    base = api.ClusterScenario(
        topology=topology_name,
        trace=api.PoissonTrace(
            workloads=tuple(workload_names or DEFAULT_WORKLOADS),
            interarrival=mean_interarrival,
            seed=seed,
            iterations=iters,
            jobs=n_jobs,
        ),
        overlap_dp=False,
        dp_bucket_bytes=100 * MB,
    )
    axes = {
        "trace.schedulers": [
            (variant.lower(),) for variant in VARIANT_LABELS
        ],
    }
    return base, axes
