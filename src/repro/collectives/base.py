"""Abstract cost model of a topology-aware collective algorithm.

The paper's latency model (Sec. 4.4) for one chunk operation on one network
dimension is:

    latency = A_K + n_K x B_K
    A_K     = number_of_steps x step_latency
    n_K     = bytes each NPU sends into the dimension for the op
    B_K     = per-byte latency = 1 / aggregate-per-NPU-bandwidth

Every algorithm in Table 1 is *bandwidth-optimal* on its native topology,
so the byte term is identical across them — ``stage_size x (P-1)/P`` for RS
and AG — and they differ only in ``number_of_steps`` (and hence in the fixed
latency paid per op).  Subclasses provide the per-pattern step counts.
"""

from __future__ import annotations

import abc

from ..errors import CollectiveError
from ..topology import DimensionSpec
from .types import PhaseOp


class CollectiveAlgorithm(abc.ABC):
    """Cost model for RS/AG/A2A (and one-shot AR) on a single dimension."""

    #: Human-readable algorithm name as used in Table 1.
    name: str = "abstract"

    # --- step counts (subclass responsibility) --------------------------
    @abc.abstractmethod
    def steps(self, op: PhaseOp, peers: int) -> int:
        """Number of sequential communication steps for ``op`` on ``peers`` NPUs."""

    # --- byte volumes -------------------------------------------------------
    def bytes_per_npu(self, op: PhaseOp, stage_size: float, peers: int) -> float:
        """Bytes each NPU sends into the dimension to run ``op``.

        ``stage_size`` follows the paper's convention (Sec. 2.3): the chunk
        data residing on each NPU *as the RS op of this dimension sees it*
        (for AG this is the post-gather size, which makes RS and AG of the
        same stage size cost the same — cf. Fig. 5's normalization).

        Bandwidth-optimal RS/AG move ``stage_size x (P-1)/P`` per NPU
        (paper footnote 7).  Hierarchical All-to-All likewise exchanges
        everything but the local share.
        """
        if peers < 2:
            raise CollectiveError(f"need at least 2 peers, got {peers}")
        if stage_size < 0:
            raise CollectiveError(f"stage size must be >= 0, got {stage_size}")
        return stage_size * (peers - 1) / peers

    # --- latency ------------------------------------------------------------
    def fixed_latency(self, op: PhaseOp, dim: DimensionSpec) -> float:
        """The fixed delay ``A_K = steps x step_latency`` (seconds)."""
        return self.steps(op, dim.size) * dim.step_latency

    def transfer_time(
        self, op: PhaseOp, stage_size: float, dim: DimensionSpec
    ) -> float:
        """The bandwidth term ``n_K x B_K`` (seconds).

        When the dimension's packet model is enabled, per-packet header
        overhead inflates the wire bytes — the goodput effect the paper
        notes for very fine chunking (Sec. 6.1).
        """
        payload = self.bytes_per_npu(op, stage_size, dim.size)
        wire = dim.wire_bytes(payload, steps=self.steps(op, dim.size))
        return wire / dim.bandwidth

    def op_time(self, op: PhaseOp, stage_size: float, dim: DimensionSpec) -> float:
        """Full chunk-op latency ``A_K + n_K x B_K`` (seconds)."""
        return self.fixed_latency(op, dim) + self.transfer_time(op, stage_size, dim)
