"""Ring collective algorithm (paper Table 1, Fig. 3).

On a physical ring of ``P`` NPUs, Reduce-Scatter and All-Gather each take
``P - 1`` steps moving ``stage_size / P`` bytes per step, for a total of
``stage_size x (P-1)/P`` bytes per NPU — bandwidth-optimal and contention
free.  A one-shot ring All-Reduce is the RS+AG concatenation (``2P - 2``
steps, as cited in Sec. 4.4).

All-to-All on a ring is modelled as ``P - 1`` steps of peer-wise exchange
(each NPU forwards the shares destined for farther peers), still sending
``stage_size x (P-1)/P`` payload bytes from the local NPU's perspective.
"""

from __future__ import annotations

from ..errors import CollectiveError
from .base import CollectiveAlgorithm
from .types import PhaseOp


class RingAlgorithm(CollectiveAlgorithm):
    """Bandwidth-optimal ring schedule for RS / AG / A2A."""

    name = "Ring"

    def steps(self, op: PhaseOp, peers: int) -> int:
        if peers < 2:
            raise CollectiveError(f"need at least 2 peers, got {peers}")
        if op in (PhaseOp.RS, PhaseOp.AG, PhaseOp.A2A):
            return peers - 1
        raise CollectiveError(f"unsupported phase op {op!r}")
