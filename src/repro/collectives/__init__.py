"""Collective communication patterns, algorithms, and stage math."""

from .base import CollectiveAlgorithm
from .direct import DirectAlgorithm
from .halving_doubling import HalvingDoublingAlgorithm
from .offload import SwitchOffloadAlgorithm, offload_overrides
from .phases import (
    Stage,
    invariant_bytes_per_npu,
    phase_ops,
    stage_bytes_fraction,
    stage_plan,
    validate_dim_order,
)
from .registry import (
    DEFAULT_KIND_ALGORITHMS,
    algorithm_for_dimension,
    algorithm_names,
    algorithms_for_topology,
    get_algorithm,
    register_algorithm,
)
from .ring import RingAlgorithm
from .tree import TreeAlgorithm
from .types import CollectiveRequest, CollectiveType, PhaseOp

__all__ = [
    "CollectiveAlgorithm",
    "CollectiveRequest",
    "CollectiveType",
    "PhaseOp",
    "RingAlgorithm",
    "DirectAlgorithm",
    "HalvingDoublingAlgorithm",
    "SwitchOffloadAlgorithm",
    "offload_overrides",
    "TreeAlgorithm",
    "Stage",
    "stage_plan",
    "phase_ops",
    "stage_bytes_fraction",
    "invariant_bytes_per_npu",
    "validate_dim_order",
    "DEFAULT_KIND_ALGORITHMS",
    "algorithm_for_dimension",
    "algorithms_for_topology",
    "algorithm_names",
    "get_algorithm",
    "register_algorithm",
]
