"""Direct (one-step) collective algorithm for fully-connected dimensions.

When every pair of the ``P`` peer NPUs shares a dedicated link (paper
Table 1: FullyConnected -> Direct [59]), Reduce-Scatter and All-Gather
complete in a single step: each NPU simultaneously sends a distinct
``stage_size / P`` share to each of the ``P - 1`` peers.  The byte volume is
the same bandwidth-optimal ``stage_size x (P-1)/P``; only the step count
(and hence the fixed latency ``A_K``) differs from the ring.

All-to-All is likewise a single simultaneous exchange on a fully-connected
dimension.
"""

from __future__ import annotations

from ..errors import CollectiveError
from .base import CollectiveAlgorithm
from .types import PhaseOp


class DirectAlgorithm(CollectiveAlgorithm):
    """Single-step direct exchange on a fully-connected dimension."""

    name = "Direct"

    def steps(self, op: PhaseOp, peers: int) -> int:
        if peers < 2:
            raise CollectiveError(f"need at least 2 peers, got {peers}")
        if op in (PhaseOp.RS, PhaseOp.AG, PhaseOp.A2A):
            return 1
        raise CollectiveError(f"unsupported phase op {op!r}")
