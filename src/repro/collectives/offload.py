"""In-network (switch) collective offload (paper Sec. 4.5).

SHARP-style switches [12, 33] reduce data in the network: for a
Reduce-Scatter each NPU uploads its full contribution once and receives its
reduced shard back, instead of exchanging ``(P-1)/P`` of the data over
``log2 P`` rounds; for an All-Gather each NPU uploads only its own shard
and the switch multicasts.  The paper notes offload "reduces the
collective's network traffic (n_K) and fixed delay (A_K)" but that the
hierarchical scheduling problem — and hence Themis's role — is unchanged.

Byte volumes per NPU (send side, ``stage_size`` in the library's
convention):

* RS:  ``stage_size``          (one full upload; ~half of RS+AG round trip)
* AG:  ``stage_size / P``      (upload own shard; switch multicasts)
* A2A: ``stage_size x (P-1)/P``  (no reduction to offload)

Steps: a single up+down exchange (2 step latencies) for RS/AG.
"""

from __future__ import annotations

from ..errors import CollectiveError
from .base import CollectiveAlgorithm
from .types import PhaseOp


class SwitchOffloadAlgorithm(CollectiveAlgorithm):
    """SHARP-style in-switch reduction/multicast for switch dimensions."""

    name = "SwitchOffload"

    def steps(self, op: PhaseOp, peers: int) -> int:
        if peers < 2:
            raise CollectiveError(f"need at least 2 peers, got {peers}")
        if op in (PhaseOp.RS, PhaseOp.AG):
            return 2  # NPU -> switch -> NPU
        if op is PhaseOp.A2A:
            return peers - 1
        raise CollectiveError(f"unsupported phase op {op!r}")

    def bytes_per_npu(self, op: PhaseOp, stage_size: float, peers: int) -> float:
        if peers < 2:
            raise CollectiveError(f"need at least 2 peers, got {peers}")
        if stage_size < 0:
            raise CollectiveError(f"stage size must be >= 0, got {stage_size}")
        if op is PhaseOp.RS:
            return stage_size
        if op is PhaseOp.AG:
            return stage_size / peers
        return stage_size * (peers - 1) / peers


def offload_overrides(topology) -> dict[int, str]:
    """Override map putting SwitchOffload on every switch dimension.

    Convenience for experiments: pass to
    :func:`repro.collectives.algorithms_for_topology`.
    """
    from ..topology import DimensionKind

    return {
        index: "SwitchOffload"
        for index, dim in enumerate(topology.dims)
        if dim.kind is DimensionKind.SWITCH
    }
