"""Collective communication pattern types (paper Sec. 2.1).

The paper's scheduler handles All-Reduce (AR), Reduce-Scatter (RS) and
All-Gather (AG); we additionally model All-to-All (A2A) because DLRM's
model-parallel embedding exchange uses it (Sec. 5.2 / Sec. 6.2).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from ..errors import CollectiveError


class CollectiveType(enum.Enum):
    """The communication pattern requested by the workload layer."""

    ALL_REDUCE = "AllReduce"
    REDUCE_SCATTER = "ReduceScatter"
    ALL_GATHER = "AllGather"
    ALL_TO_ALL = "AllToAll"

    @property
    def is_two_phase(self) -> bool:
        """All-Reduce decomposes into an RS phase followed by an AG phase."""
        return self is CollectiveType.ALL_REDUCE

    @classmethod
    def from_name(cls, name: str) -> "CollectiveType":
        lowered = name.strip().lower().replace("-", "").replace("_", "")
        aliases = {
            "allreduce": cls.ALL_REDUCE,
            "ar": cls.ALL_REDUCE,
            "reducescatter": cls.REDUCE_SCATTER,
            "rs": cls.REDUCE_SCATTER,
            "allgather": cls.ALL_GATHER,
            "ag": cls.ALL_GATHER,
            "alltoall": cls.ALL_TO_ALL,
            "a2a": cls.ALL_TO_ALL,
        }
        if lowered not in aliases:
            raise CollectiveError(f"unknown collective type {name!r}")
        return aliases[lowered]


class PhaseOp(enum.Enum):
    """The operation a chunk performs on one dimension during one stage."""

    RS = "RS"
    AG = "AG"
    A2A = "A2A"


_REQUEST_IDS = itertools.count()


@dataclass(frozen=True)
class CollectiveRequest:
    """A collective operation issued by the workload layer (paper Fig. 6, step 1).

    Attributes
    ----------
    ctype:
        The communication pattern.
    size:
        Total collective payload per NPU, in bytes (the data residing on each
        NPU before the collective starts).
    tag:
        Free-form label used by the training simulator to attribute exposed
        communication (e.g. ``"DP"`` vs ``"MP"``).
    dim_indices:
        Which topology dimensions the communicator spans; ``None`` means all.
    peer_counts:
        Optional per-dimension participating peer counts, for communicators
        that span only part of a physical dimension (e.g. a 128-NPU
        model-parallel group on a 16x64 platform).  Aligned with
        ``dim_indices``; ``None`` means the full dimension size.
    priority:
        Scheduling priority when multiple collectives share the network:
        higher-priority ops are preferred by the intra-dimension policies
        (like NCCL priority streams).  Blocking model-parallel collectives
        typically outrank asynchronous data-parallel gradient traffic.
    owner:
        Identity of the tenant (training job) this collective belongs to.
        The network simulator keeps per-owner communication-active
        intervals so multi-job cluster runs can attribute network time to
        individual jobs.  Empty string for single-tenant simulations.
    request_id:
        Monotonically increasing issue identifier (FIFO tie-breaking across
        collectives).
    """

    ctype: CollectiveType
    size: float
    tag: str = ""
    dim_indices: tuple[int, ...] | None = None
    peer_counts: tuple[int, ...] | None = None
    priority: int = 0
    owner: str = ""
    request_id: int = field(default_factory=lambda: next(_REQUEST_IDS))

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise CollectiveError(
                f"collective size must be positive, got {self.size!r}"
            )
        if self.peer_counts is not None:
            if self.dim_indices is None:
                raise CollectiveError(
                    "peer_counts requires dim_indices to be specified"
                )
            if len(self.peer_counts) != len(self.dim_indices):
                raise CollectiveError(
                    f"{len(self.dim_indices)} dim indices but "
                    f"{len(self.peer_counts)} peer counts"
                )

    @property
    def communicator_key(self) -> tuple:
        """Hashable key identifying the communicator this request spans."""
        return (self.dim_indices, self.peer_counts)
