"""Recursive halving / doubling algorithm for switch-based dimensions.

Paper Table 1 pairs Switch dimensions with Halving-Doubling [34]: a
hypercube-style exchange where Reduce-Scatter recursively halves the data
over ``log2(P)`` steps (sending ``stage_size/2 + stage_size/4 + ... =
stage_size x (P-1)/P`` in total) and All-Gather recursively doubles it back.
The byte volume matches ring/direct; the step count is logarithmic, which is
why switches with non-negligible per-step latency prefer it over rings.

``P`` must be a power of two; the Table 2 switch dimensions (8, 16, 64) all
are.  All-to-All over a switch uses pairwise exchange in ``P - 1`` rounds
(the classic XOR schedule), each round moving ``stage_size / P``.
"""

from __future__ import annotations

from ..errors import CollectiveError
from .base import CollectiveAlgorithm
from .types import PhaseOp


def _log2_exact(value: int) -> int:
    """log2 for exact powers of two; raises otherwise."""
    if value < 1 or value & (value - 1):
        raise CollectiveError(
            f"halving-doubling requires a power-of-two peer count, got {value}"
        )
    return value.bit_length() - 1


class HalvingDoublingAlgorithm(CollectiveAlgorithm):
    """Recursive halving (RS) / doubling (AG) on a switch dimension."""

    name = "HalvingDoubling"

    def steps(self, op: PhaseOp, peers: int) -> int:
        if peers < 2:
            raise CollectiveError(f"need at least 2 peers, got {peers}")
        if op in (PhaseOp.RS, PhaseOp.AG):
            return _log2_exact(peers)
        if op is PhaseOp.A2A:
            return peers - 1
        raise CollectiveError(f"unsupported phase op {op!r}")
