"""Topology-aware algorithm selection (paper Table 1).

Communication libraries pick the collective algorithm per dimension based on
the physical topology (Sec. 2.2): rings run the ring schedule, fully
connected dimensions run the one-step direct exchange, and switch dimensions
run halving-doubling.  The registry reproduces that mapping and allows
callers to register custom algorithms (e.g. the tree ablation, or an
in-network-offload model per Sec. 4.5).
"""

from __future__ import annotations

from collections.abc import Callable

from ..errors import CollectiveError
from ..topology import DimensionKind, DimensionSpec, Topology
from .base import CollectiveAlgorithm
from .direct import DirectAlgorithm
from .halving_doubling import HalvingDoublingAlgorithm
from .offload import SwitchOffloadAlgorithm
from .ring import RingAlgorithm
from .tree import TreeAlgorithm

_FACTORIES: dict[str, Callable[[], CollectiveAlgorithm]] = {
    "Ring": RingAlgorithm,
    "Direct": DirectAlgorithm,
    "HalvingDoubling": HalvingDoublingAlgorithm,
    "Tree": TreeAlgorithm,
    "SwitchOffload": SwitchOffloadAlgorithm,
}

#: Table 1: physical dimension kind -> contention-free collective algorithm.
DEFAULT_KIND_ALGORITHMS: dict[DimensionKind, str] = {
    DimensionKind.RING: "Ring",
    DimensionKind.FULLY_CONNECTED: "Direct",
    DimensionKind.SWITCH: "HalvingDoubling",
}


def register_algorithm(name: str, factory: Callable[[], CollectiveAlgorithm]) -> None:
    """Register a custom per-dimension algorithm under ``name``."""
    if name in _FACTORIES:
        raise CollectiveError(f"algorithm {name!r} is already registered")
    _FACTORIES[name] = factory


def algorithm_names() -> tuple[str, ...]:
    """All registered algorithm names."""
    return tuple(_FACTORIES)


def get_algorithm(name: str) -> CollectiveAlgorithm:
    """Instantiate a registered algorithm by name."""
    factory = _FACTORIES.get(name)
    if factory is None:
        known = ", ".join(_FACTORIES)
        raise CollectiveError(f"unknown algorithm {name!r}; known: {known}")
    return factory()


def algorithm_for_dimension(dim: DimensionSpec) -> CollectiveAlgorithm:
    """Pick the Table 1 algorithm for one dimension's physical kind."""
    return get_algorithm(DEFAULT_KIND_ALGORITHMS[dim.kind])


def algorithms_for_topology(
    topology: Topology,
    overrides: dict[int, str] | None = None,
) -> tuple[CollectiveAlgorithm, ...]:
    """Resolve one algorithm per dimension, honouring per-index overrides.

    ``overrides`` maps dimension index -> algorithm name and exists for
    ablation studies; by default every dimension gets its topology-aware
    choice, exactly as the paper's collective scheduler does (Sec. 2.3).
    """
    overrides = overrides or {}
    for index in overrides:
        if index < 0 or index >= topology.ndims:
            raise CollectiveError(
                f"override index {index} out of range for {topology.ndims}D topology"
            )
    return tuple(
        get_algorithm(overrides[i]) if i in overrides else algorithm_for_dimension(dim)
        for i, dim in enumerate(topology.dims)
    )
