"""Stage-plan and stage-size math for hierarchical collectives (Sec. 2.3).

A chunk traversing a ``D``-dimensional network executes ``2D`` stages for
All-Reduce (``D`` RS stages in some dimension order, then ``D`` AG stages in
the *reverse* order — Algorithm 1 line 8), or ``D`` stages for a pure
RS / AG / A2A.

Stage sizes follow the paper's convention ("we assume the size of each chunk
in each stage to be the size of the corresponding chunk data residing on each
NPU before the stage begins", with AG stages quoted at their post-gather size
so that a 64 MB RS and a 16 MB->64 MB AG cost the same — cf. Fig. 5):

* RS on a dimension of size ``P``: ``stage_size = resident``; the resident
  data then shrinks ``P``-fold.
* AG: the resident data grows ``P``-fold *first*; ``stage_size`` is the
  grown size.
* A2A: ``stage_size = resident``; resident size is unchanged.

This module also exposes the **invariant-bytes lemma** used by the Ideal
estimator: the total bytes per NPU of a hierarchical RS (or AG) telescopes to
``S x (1 - 1/P_total)`` regardless of the dimension order, because

    sum_j (prod_{i<j} 1/P_i) x (1 - 1/P_j)  =  1 - prod_j 1/P_j.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

from ..errors import CollectiveError, ScheduleError
from ..topology import Topology
from .types import CollectiveType, PhaseOp


@dataclass(frozen=True)
class Stage:
    """One chunk operation: a phase op on one dimension at a known size.

    ``dim_index`` is local to the topology the collective runs on;
    ``stage_size`` is the paper-convention size the op is charged for.
    """

    dim_index: int
    op: PhaseOp
    stage_size: float


def validate_dim_order(dim_order: Sequence[int], ndims: int) -> tuple[int, ...]:
    """Check that ``dim_order`` is a permutation of ``range(ndims)``."""
    order = tuple(dim_order)
    if sorted(order) != list(range(ndims)):
        raise ScheduleError(
            f"dimension order {order!r} is not a permutation of 0..{ndims - 1}"
        )
    return order


def stage_plan(
    ctype: CollectiveType,
    chunk_size: float,
    dim_order: Sequence[int],
    topology: Topology,
) -> list[Stage]:
    """Build the per-stage plan for one chunk given its dimension order.

    For All-Reduce the AG phase mirrors the RS order (Algorithm 1 line 8),
    which makes the stage sizes palindromic: the AG stage on a dimension is
    charged exactly the size its RS stage was.
    """
    if chunk_size <= 0:
        raise CollectiveError(f"chunk size must be positive, got {chunk_size}")
    order = validate_dim_order(dim_order, topology.ndims)
    sizes = [topology.dims[i].size for i in order]

    stages: list[Stage] = []
    resident = chunk_size
    if ctype is CollectiveType.ALL_REDUCE:
        for dim_index, peers in zip(order, sizes):
            stages.append(Stage(dim_index, PhaseOp.RS, resident))
            resident /= peers
        for dim_index, peers in zip(reversed(order), reversed(sizes)):
            resident *= peers
            stages.append(Stage(dim_index, PhaseOp.AG, resident))
    elif ctype is CollectiveType.REDUCE_SCATTER:
        for dim_index, peers in zip(order, sizes):
            stages.append(Stage(dim_index, PhaseOp.RS, resident))
            resident /= peers
    elif ctype is CollectiveType.ALL_GATHER:
        for dim_index, peers in zip(order, sizes):
            resident *= peers
            stages.append(Stage(dim_index, PhaseOp.AG, resident))
    elif ctype is CollectiveType.ALL_TO_ALL:
        for dim_index in order:
            stages.append(Stage(dim_index, PhaseOp.A2A, resident))
    else:  # pragma: no cover - exhaustive over the enum
        raise CollectiveError(f"unsupported collective type {ctype!r}")
    return stages


def phase_ops(ctype: CollectiveType, ndims: int) -> list[PhaseOp]:
    """The op sequence (without dimensions) a chunk of ``ctype`` performs."""
    if ctype is CollectiveType.ALL_REDUCE:
        return [PhaseOp.RS] * ndims + [PhaseOp.AG] * ndims
    if ctype is CollectiveType.REDUCE_SCATTER:
        return [PhaseOp.RS] * ndims
    if ctype is CollectiveType.ALL_GATHER:
        return [PhaseOp.AG] * ndims
    if ctype is CollectiveType.ALL_TO_ALL:
        return [PhaseOp.A2A] * ndims
    raise CollectiveError(f"unsupported collective type {ctype!r}")


def invariant_bytes_per_npu(
    ctype: CollectiveType, size: float, topology: Topology
) -> float:
    """Schedule-invariant total bytes each NPU sends for the collective.

    This is the quantity the paper's Ideal method divides by the total BW
    (Table 3).  For RS/AG the telescoping sum gives ``S x (1 - 1/P_total)``;
    All-Reduce pays it twice; hierarchical A2A pays ``S x (1 - 1/P_K)`` per
    dimension at constant resident size.
    """
    if size <= 0:
        raise CollectiveError(f"collective size must be positive, got {size}")
    total_peers = math.prod(d.size for d in topology.dims)
    one_phase = size * (1.0 - 1.0 / total_peers)
    if ctype is CollectiveType.ALL_REDUCE:
        return 2.0 * one_phase
    if ctype in (CollectiveType.REDUCE_SCATTER, CollectiveType.ALL_GATHER):
        return one_phase
    if ctype is CollectiveType.ALL_TO_ALL:
        return size * sum(1.0 - 1.0 / d.size for d in topology.dims)
    raise CollectiveError(f"unsupported collective type {ctype!r}")


def stage_bytes_fraction(
    ctype: CollectiveType,
    dim_order: Sequence[int],
    topology: Topology,
) -> dict[int, float]:
    """Per-dimension *fraction of the collective size* sent under an order.

    Returns ``{dim_index: bytes / S}`` for a unit-size chunk following
    ``dim_order``.  Used by the LP ideal (fluid relaxation over all D!
    orders) and by the provisioning analysis of Sec. 6.3.
    """
    stages = stage_plan(ctype, 1.0, dim_order, topology)
    fractions: dict[int, float] = {i: 0.0 for i in range(topology.ndims)}
    for stage in stages:
        peers = topology.dims[stage.dim_index].size
        fractions[stage.dim_index] += stage.stage_size * (peers - 1) / peers
    return fractions
