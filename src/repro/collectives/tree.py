"""Binomial-tree collective algorithm (extension beyond Table 1).

Tree-based All-Reduce [50] is cited in the paper's background (Sec. 2.2) as
one of the basic algorithms implemented by NCCL/oneCCL.  We include a
binomial-tree cost model as an optional per-dimension algorithm so that
ablation benches can compare bandwidth-optimal (ring/direct/HD) schedules
against the latency-optimal-but-bandwidth-suboptimal tree.

A binomial reduce (or broadcast) over ``P`` NPUs takes ``ceil(log2 P)``
steps, but every step moves the *full* ``stage_size`` payload, so the byte
volume is ``stage_size x ceil(log2 P)`` — worse than the optimal
``stage_size x (P-1)/P`` for P > 2.  RS is modelled as reduce-then-scatter,
AG as gather-then-broadcast, both pessimistically charged the tree's byte
volume.
"""

from __future__ import annotations

import math

from ..errors import CollectiveError
from .base import CollectiveAlgorithm
from .types import PhaseOp


class TreeAlgorithm(CollectiveAlgorithm):
    """Binomial-tree schedule; latency-optimal, bandwidth-suboptimal."""

    name = "Tree"

    def steps(self, op: PhaseOp, peers: int) -> int:
        if peers < 2:
            raise CollectiveError(f"need at least 2 peers, got {peers}")
        if op in (PhaseOp.RS, PhaseOp.AG):
            return math.ceil(math.log2(peers))
        if op is PhaseOp.A2A:
            return peers - 1
        raise CollectiveError(f"unsupported phase op {op!r}")

    def bytes_per_npu(self, op: PhaseOp, stage_size: float, peers: int) -> float:
        if peers < 2:
            raise CollectiveError(f"need at least 2 peers, got {peers}")
        if stage_size < 0:
            raise CollectiveError(f"stage size must be >= 0, got {stage_size}")
        if op is PhaseOp.A2A:
            return stage_size * (peers - 1) / peers
        # Each tree level forwards the full payload once.
        return stage_size * math.ceil(math.log2(peers))
