"""Multi-dimensional network topologies (paper Sec. 2, Table 2)."""

from .dimension import DimensionKind, DimensionSpec, dimension
from .presets import (
    PAPER_TOPOLOGY_NAMES,
    current_2d,
    get_topology,
    paper_topologies,
    preset_names,
    register_preset,
    topo_2d_sw_sw,
    topo_3d_fc_ring_sw,
    topo_3d_sw_sw_sw_hetero,
    topo_3d_sw_sw_sw_homo,
    topo_4d_ring_fc_ring_sw,
    topo_4d_ring_sw_sw_sw,
)
from .serialization import (
    dimension_from_dict,
    dimension_to_dict,
    load_topology,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)
from .topology import Topology

__all__ = [
    "DimensionKind",
    "DimensionSpec",
    "dimension",
    "Topology",
    "dimension_to_dict",
    "dimension_from_dict",
    "topology_to_dict",
    "topology_from_dict",
    "load_topology",
    "save_topology",
    "PAPER_TOPOLOGY_NAMES",
    "current_2d",
    "get_topology",
    "paper_topologies",
    "preset_names",
    "register_preset",
    "topo_2d_sw_sw",
    "topo_3d_fc_ring_sw",
    "topo_3d_sw_sw_sw_hetero",
    "topo_3d_sw_sw_sw_homo",
    "topo_4d_ring_fc_ring_sw",
    "topo_4d_ring_sw_sw_sw",
]
