"""Named topology presets from the paper (Table 2 plus the "current" system).

All presets model 1024-NPU platforms.  Bandwidths are the *aggregate* per-NPU
values from Table 2 expressed as ``BW/link x links/NPU``; latencies are the
``step_latency`` column (direct NPU-to-NPU latency for a minimum message).

The "current" topology is the 2-dimensional DGX-2-like system of Fig. 4
(1200 Gb/s intra-node vs 100 Gb/s NIC), which the baseline scheduler already
drives at ~97.7% utilization — included so that Fig. 4 can be regenerated.
"""

from __future__ import annotations

from collections.abc import Callable

from ..errors import TopologyError
from .dimension import dimension
from .topology import Topology


def current_2d() -> Topology:
    """Today's 2D platform: 16 NPUs/node at 1200 Gb/s, 64 nodes at 100 Gb/s."""
    return Topology(
        [
            dimension(
                "SW", 16, 200.0, links_per_npu=6, latency_ns=700, name="intra-node"
            ),
            dimension("SW", 64, 100.0, links_per_npu=1, latency_ns=1700, name="NIC"),
        ],
        name="current-2D",
    )


def topo_2d_sw_sw() -> Topology:
    """2D-SW_SW: 16x64, aggregate BW (1200, 800) Gb/s."""
    return Topology(
        [
            dimension(
                "SW", 16, 200.0, links_per_npu=6, latency_ns=700, name="intra-node"
            ),
            dimension("SW", 64, 800.0, links_per_npu=1, latency_ns=1700, name="NIC"),
        ],
        name="2D-SW_SW",
    )


def topo_3d_sw_sw_sw_homo() -> Topology:
    """3D-SW_SW_SW_homo: 16x8x8, aggregate BW (800, 800, 800) Gb/s."""
    return Topology(
        [
            dimension(
                "SW", 16, 200.0, links_per_npu=4, latency_ns=700, name="intra-node"
            ),
            dimension("SW", 8, 200.0, links_per_npu=4, latency_ns=700, name="pod"),
            dimension("SW", 8, 800.0, links_per_npu=1, latency_ns=1700, name="NIC"),
        ],
        name="3D-SW_SW_SW_homo",
    )


def topo_3d_sw_sw_sw_hetero() -> Topology:
    """3D-SW_SW_SW_hetero: 16x8x8, aggregate BW (1600, 800, 400) Gb/s."""
    return Topology(
        [
            dimension(
                "SW", 16, 200.0, links_per_npu=8, latency_ns=700, name="intra-node"
            ),
            dimension("SW", 8, 200.0, links_per_npu=4, latency_ns=700, name="pod"),
            dimension("SW", 8, 400.0, links_per_npu=1, latency_ns=1700, name="NIC"),
        ],
        name="3D-SW_SW_SW_hetero",
    )


def topo_3d_fc_ring_sw() -> Topology:
    """3D-FC_Ring_SW: 8x16x8, aggregate BW (1400, 800, 400) Gb/s."""
    return Topology(
        [
            dimension(
                "FC", 8, 200.0, links_per_npu=7, latency_ns=700, name="intra-node"
            ),
            dimension("Ring", 16, 200.0, links_per_npu=4, latency_ns=700, name="pod"),
            dimension("SW", 8, 400.0, links_per_npu=1, latency_ns=1700, name="NIC"),
        ],
        name="3D-FC_Ring_SW",
    )


def topo_4d_ring_sw_sw_sw() -> Topology:
    """4D-Ring_SW_SW_SW: 4x4x8x8, aggregate BW (2000, 1600, 800, 400) Gb/s."""
    return Topology(
        [
            dimension(
                "Ring", 4, 1000.0, links_per_npu=2, latency_ns=20, name="package"
            ),
            dimension(
                "SW", 4, 200.0, links_per_npu=8, latency_ns=700, name="intra-node"
            ),
            dimension("SW", 8, 200.0, links_per_npu=4, latency_ns=700, name="pod"),
            dimension("SW", 8, 400.0, links_per_npu=1, latency_ns=1700, name="NIC"),
        ],
        name="4D-Ring_SW_SW_SW",
    )


def topo_4d_ring_fc_ring_sw() -> Topology:
    """4D-Ring_FC_Ring_SW: 4x8x4x8, aggregate BW (3000, 1400, 1200, 800) Gb/s."""
    return Topology(
        [
            dimension(
                "Ring", 4, 1500.0, links_per_npu=2, latency_ns=20, name="package"
            ),
            dimension(
                "FC", 8, 200.0, links_per_npu=7, latency_ns=700, name="intra-node"
            ),
            dimension("Ring", 4, 200.0, links_per_npu=6, latency_ns=700, name="pod"),
            dimension("SW", 8, 800.0, links_per_npu=1, latency_ns=1700, name="NIC"),
        ],
        name="4D-Ring_FC_Ring_SW",
    )


_PRESETS: dict[str, Callable[[], Topology]] = {
    "current-2D": current_2d,
    "2D-SW_SW": topo_2d_sw_sw,
    "3D-SW_SW_SW_homo": topo_3d_sw_sw_sw_homo,
    "3D-SW_SW_SW_hetero": topo_3d_sw_sw_sw_hetero,
    "3D-FC_Ring_SW": topo_3d_fc_ring_sw,
    "4D-Ring_SW_SW_SW": topo_4d_ring_sw_sw_sw,
    "4D-Ring_FC_Ring_SW": topo_4d_ring_fc_ring_sw,
}

#: Topology names evaluated in the paper's result figures (Fig. 8, 11, 12).
PAPER_TOPOLOGY_NAMES: tuple[str, ...] = (
    "2D-SW_SW",
    "3D-SW_SW_SW_homo",
    "3D-SW_SW_SW_hetero",
    "3D-FC_Ring_SW",
    "4D-Ring_SW_SW_SW",
    "4D-Ring_FC_Ring_SW",
)


def preset_names() -> tuple[str, ...]:
    """All registered preset names, current-system first."""
    return tuple(_PRESETS)


def register_preset(name: str, factory: Callable[[], Topology]) -> None:
    """Register a custom topology preset under ``name``.

    The name becomes valid wherever topologies are chosen by key:
    :func:`get_topology`, scenario specs, and every CLI ``--topology`` flag.
    """
    if not name:
        raise TopologyError("topology preset name must be non-empty")
    if name in _PRESETS:
        raise TopologyError(f"topology preset {name!r} is already registered")
    _PRESETS[name] = factory


def get_topology(name: str) -> Topology:
    """Instantiate a preset by its Table 2 name.

    Raises :class:`TopologyError` with the list of valid names on a miss.
    """
    factory = _PRESETS.get(name)
    if factory is None:
        known = ", ".join(_PRESETS)
        raise TopologyError(f"unknown topology preset {name!r}; known: {known}")
    return factory()


def paper_topologies() -> list[Topology]:
    """The six next-gen topologies of Table 2, in paper order."""
    return [get_topology(name) for name in PAPER_TOPOLOGY_NAMES]
