"""Multi-dimensional network topology (paper Fig. 1.a, Table 2).

A :class:`Topology` is an ordered list of :class:`DimensionSpec` objects,
dim1 first.  The total NPU count is the product of the dimension sizes.
Collectives may span all dimensions or any contiguous/arbitrary subset
(e.g. Transformer-1T's data-parallel All-Reduce uses only the last
dimension, Sec. 5.2), so the class supports *slicing* into sub-topologies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterator, Sequence

from ..errors import TopologyError
from ..units import to_gbps
from .dimension import DimensionSpec


@dataclass(frozen=True)
class Topology:
    """An ordered, immutable collection of network dimensions.

    The paper's naming convention ``P1 x P2 x ... x PD`` maps directly onto
    ``dims[0].size x dims[1].size x ...``; dim1 (index 0) is the innermost,
    typically highest-bandwidth rail.
    """

    dims: tuple[DimensionSpec, ...]
    name: str = ""

    def __init__(self, dims: Sequence[DimensionSpec], name: str = "") -> None:
        if not dims:
            raise TopologyError("a topology needs at least one dimension")
        object.__setattr__(self, "dims", tuple(dims))
        object.__setattr__(self, "name", name or self._default_name())

    # --- basic shape ---------------------------------------------------
    @property
    def ndims(self) -> int:
        """Number of network dimensions ``D``."""
        return len(self.dims)

    @property
    def npus(self) -> int:
        """Total NPU count: the product of all dimension sizes."""
        return math.prod(d.size for d in self.dims)

    @property
    def shape(self) -> tuple[int, ...]:
        """Dimension sizes ``(P1, ..., PD)``."""
        return tuple(d.size for d in self.dims)

    def __len__(self) -> int:
        return len(self.dims)

    def __iter__(self) -> Iterator[DimensionSpec]:
        return iter(self.dims)

    def __getitem__(self, index: int) -> DimensionSpec:
        return self.dims[index]

    # --- bandwidth -------------------------------------------------------
    @property
    def bandwidths(self) -> tuple[float, ...]:
        """Aggregate per-NPU bandwidth of each dimension (bytes/second)."""
        return tuple(d.bandwidth for d in self.dims)

    @property
    def total_bandwidth(self) -> float:
        """Sum of aggregate per-NPU bandwidths across dimensions.

        This is the denominator of the paper's Ideal latency
        (``collective size / total BW``, Table 3).
        """
        return sum(self.bandwidths)

    def bw_share(self, dim_index: int) -> float:
        """Fraction of the total BW budget held by one dimension.

        These are the weights of the paper's *average BW utilization*
        definition (Sec. 3): dimensions with higher BW get higher weight.
        """
        return self.dims[dim_index].bandwidth / self.total_bandwidth

    # --- derived views ----------------------------------------------------
    def subset(self, dim_indices: Sequence[int], name: str = "") -> "Topology":
        """Build a sub-topology over a subset of dimensions.

        Collectives restricted to a communicator spanning only some network
        dimensions (model-parallel groups, ZeRO data-parallel groups on the
        last dimension, ...) run on the sub-topology; dimension indices map
        back through :meth:`parent_index`.
        """
        if not dim_indices:
            raise TopologyError("dimension subset cannot be empty")
        seen: set[int] = set()
        for index in dim_indices:
            if index < 0 or index >= self.ndims:
                raise TopologyError(
                    f"dimension index {index} out of range for {self.ndims}D topology"
                )
            if index in seen:
                raise TopologyError(f"duplicate dimension index {index}")
            seen.add(index)
        dims = tuple(self.dims[i] for i in dim_indices)
        sub = Topology(dims, name=name or f"{self.name}[{list(dim_indices)}]")
        # Constructor-style init of a brand-new frozen instance, never mutation
        # of one that escaped this method.
        object.__setattr__(  # replint: ignore[RPL006]
            sub, "_parent_indices", tuple(dim_indices)
        )
        return sub

    def communicator(
        self,
        dim_indices: Sequence[int],
        peer_counts: Sequence[int] | None = None,
        name: str = "",
    ) -> "Topology":
        """Build a communicator: a subset of dims with possibly fewer peers.

        Model-parallel groups often span only *part* of a physical dimension
        (e.g. a 128-NPU tensor-parallel group on a 16x64 platform uses all of
        dim1 and 8 of dim2's 64 peers).  ``peer_counts[i]`` replaces the
        participating peer count of ``dim_indices[i]``; it must be between 2
        and the dimension's physical size.  Bandwidth and latency are
        inherited from the physical dimension.
        """
        if peer_counts is None:
            return self.subset(dim_indices, name=name)
        if len(peer_counts) != len(dim_indices):
            raise TopologyError(
                f"{len(dim_indices)} dim indices but {len(peer_counts)} peer counts"
            )
        base = self.subset(dim_indices)
        dims = []
        for dim, count in zip(base.dims, peer_counts):
            if count < 2 or count > dim.size:
                raise TopologyError(
                    f"peer count {count} invalid for dimension of size {dim.size}"
                )
            from dataclasses import replace

            dims.append(replace(dim, size=count))
        comm = Topology(dims, name=name or f"{self.name}:comm{tuple(dim_indices)}")
        object.__setattr__(  # replint: ignore[RPL006]
            comm, "_parent_indices", tuple(dim_indices)
        )
        return comm

    def parent_index(self, local_index: int) -> int:
        """Map a sub-topology dimension index back to the parent topology."""
        parents = getattr(self, "_parent_indices", None)
        if parents is None:
            return local_index
        return parents[local_index]

    @property
    def parent_indices(self) -> tuple[int, ...]:
        """Parent-topology indices for each local dimension."""
        parents = getattr(self, "_parent_indices", None)
        if parents is None:
            return tuple(range(self.ndims))
        return parents

    def with_packet_model(
        self,
        max_packet_bytes: float | Sequence[float],
        packet_header_bytes: float | Sequence[float],
        name: str = "",
    ) -> "Topology":
        """Return a copy with the packet/goodput model on every dimension.

        Scalar arguments apply to all dimensions; sequences give one value
        per dimension (e.g. chiplet vs NIC packet formats, paper Sec. 6.1
        footnote 10).
        """
        packets = (
            [max_packet_bytes] * self.ndims
            if isinstance(max_packet_bytes, (int, float))
            else list(max_packet_bytes)
        )
        headers = (
            [packet_header_bytes] * self.ndims
            if isinstance(packet_header_bytes, (int, float))
            else list(packet_header_bytes)
        )
        if len(packets) != self.ndims or len(headers) != self.ndims:
            raise TopologyError(
                f"need {self.ndims} packet-model entries"
            )
        dims = tuple(
            d.with_packet_model(p, h)
            for d, p, h in zip(self.dims, packets, headers)
        )
        return Topology(dims, name=name or f"{self.name}+pkt")

    def with_bandwidths(self, factors: Sequence[float], name: str = "") -> "Topology":
        """Return a copy with per-dimension bandwidth scale factors applied."""
        if len(factors) != self.ndims:
            raise TopologyError(
                f"need {self.ndims} factors, got {len(factors)}"
            )
        dims = tuple(d.scaled(f) for d, f in zip(self.dims, factors))
        return Topology(dims, name=name or f"{self.name}*bw")

    # --- reporting ---------------------------------------------------------
    def _default_name(self) -> str:
        kinds = "_".join(d.kind.short_name for d in self.dims)
        return f"{len(self.dims)}D-{kinds}"

    def describe(self) -> str:
        """Multi-line, Table 2-style description of the topology."""
        shape = "x".join(str(p) for p in self.shape)
        lines = [f"{self.name}: {self.npus} NPUs, size {shape}"]
        for i, dim in enumerate(self.dims, start=1):
            lines.append(f"  dim{i}: {dim.describe()}")
        lines.append(f"  total BW/NPU: {to_gbps(self.total_bandwidth):.4g} Gb/s")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        shape = "x".join(str(p) for p in self.shape)
        return f"Topology({self.name!r}, {shape})"
