"""Per-dimension description of a multi-dimensional NPU network.

A *dimension* (paper Fig. 1.a) is one rail of the hierarchical network: the
set of peer NPUs an NPU communicates with at that level, the physical
interconnect kind (ring, fully-connected, or switch), and the bandwidth and
latency characteristics of that rail.

The paper's Table 2 specifies, per dimension:

* ``size`` — the number of peer NPUs participating at that level (P_i),
* ``BW/Link`` — uni-directional bandwidth of one physical link,
* ``#Links/NPU`` — how many such links each NPU devotes to the dimension,
* ``Network Latency`` — the NPU-to-NPU step latency for a minimum message.

The aggregate bandwidth an NPU can drive into the dimension is
``BW/Link x Links/NPU``; topology-aware contention-free collectives (Table 1)
are assumed to saturate exactly this budget, which is how the paper's latency
model (Sec. 4.4) treats the per-byte cost ``B_K``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace

from ..errors import TopologyError
from ..units import gbps, to_gbps


class DimensionKind(enum.Enum):
    """Physical interconnect style of one network dimension (paper Table 1)."""

    RING = "Ring"
    FULLY_CONNECTED = "FullyConnected"
    SWITCH = "Switch"

    @property
    def short_name(self) -> str:
        """Abbreviation used in topology names, e.g. ``3D-FC_Ring_SW``."""
        return {
            DimensionKind.RING: "Ring",
            DimensionKind.FULLY_CONNECTED: "FC",
            DimensionKind.SWITCH: "SW",
        }[self]

    @classmethod
    def from_name(cls, name: str) -> "DimensionKind":
        """Parse a kind from a full or abbreviated name (case-insensitive)."""
        lowered = name.strip().lower()
        aliases = {
            "ring": cls.RING,
            "fc": cls.FULLY_CONNECTED,
            "fullyconnected": cls.FULLY_CONNECTED,
            "fully_connected": cls.FULLY_CONNECTED,
            "direct": cls.FULLY_CONNECTED,
            "sw": cls.SWITCH,
            "switch": cls.SWITCH,
        }
        if lowered not in aliases:
            raise TopologyError(f"unknown dimension kind {name!r}")
        return aliases[lowered]


@dataclass(frozen=True)
class DimensionSpec:
    """One dimension of a multi-dimensional training network.

    Attributes
    ----------
    kind:
        The interconnect style; selects the topology-aware collective
        algorithm (Table 1).
    size:
        Number of peer NPUs in the dimension (``P_i`` in the paper). Must be
        at least 2 for communication to be meaningful.
    link_bw:
        Uni-directional bandwidth of a single link in bytes/second.
    links_per_npu:
        Number of links each NPU devotes to this dimension.
    step_latency:
        NPU-to-NPU latency (seconds) for a minimum-size message — the
        ``step_latency`` of the paper's fixed-delay term ``A_K``.
    max_packet_bytes:
        Maximum payload per network packet.  When positive, transfers are
        charged per-packet header overhead, modelling the goodput loss the
        paper discusses for very fine chunking ("this increases the
        header-to-packet ratio and hurts the network's goodput", Sec. 6.1).
        0 disables the packet model (the default, matching the paper's main
        experiments).
    packet_header_bytes:
        Header/framing bytes charged per packet when the packet model is on.
    name:
        Optional human label (e.g. ``"intra-package"``).
    """

    kind: DimensionKind
    size: int
    link_bw: float
    links_per_npu: int = 1
    step_latency: float = 0.0
    max_packet_bytes: float = 0.0
    packet_header_bytes: float = 0.0
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.size < 2:
            raise TopologyError(
                f"dimension size must be >= 2, got {self.size} "
                f"(a size-1 dimension carries no traffic)"
            )
        if self.link_bw <= 0:
            raise TopologyError(f"link bandwidth must be positive, got {self.link_bw}")
        if self.links_per_npu < 1:
            raise TopologyError(
                f"links per NPU must be >= 1, got {self.links_per_npu}"
            )
        if self.step_latency < 0:
            raise TopologyError(
                f"step latency must be non-negative, got {self.step_latency}"
            )
        if self.max_packet_bytes < 0 or self.packet_header_bytes < 0:
            raise TopologyError("packet model parameters must be non-negative")
        if self.packet_header_bytes > 0 and self.max_packet_bytes <= 0:
            raise TopologyError(
                "packet headers require a positive max_packet_bytes"
            )

    @property
    def bandwidth(self) -> float:
        """Aggregate per-NPU bandwidth into this dimension (bytes/second).

        This is the ``Aggr BW/NPU`` column of Table 2 and the inverse of the
        per-byte latency ``B_K`` of Sec. 4.4.
        """
        return self.link_bw * self.links_per_npu

    @property
    def bandwidth_gbps(self) -> float:
        """Aggregate bandwidth in Gb/s, for reporting against Table 2."""
        return to_gbps(self.bandwidth)

    def wire_bytes(self, payload_bytes: float, steps: int = 1) -> float:
        """Payload plus per-packet header overhead actually put on the wire.

        The payload is split evenly across ``steps`` messages; each message
        is packetized at ``max_packet_bytes`` and charged
        ``packet_header_bytes`` per packet.  With the packet model disabled
        this is the identity.
        """
        if payload_bytes < 0:
            raise TopologyError(f"payload must be >= 0, got {payload_bytes}")
        if self.max_packet_bytes <= 0 or payload_bytes == 0:
            return payload_bytes
        steps = max(1, steps)
        per_step = payload_bytes / steps
        packets_per_step = math.ceil(per_step / self.max_packet_bytes)
        return payload_bytes + steps * packets_per_step * self.packet_header_bytes

    def with_packet_model(
        self, max_packet_bytes: float, packet_header_bytes: float
    ) -> "DimensionSpec":
        """Return a copy with the packet/goodput model enabled."""
        return replace(
            self,
            max_packet_bytes=max_packet_bytes,
            packet_header_bytes=packet_header_bytes,
        )

    def scaled(self, bw_factor: float) -> "DimensionSpec":
        """Return a copy with the link bandwidth multiplied by ``bw_factor``.

        Used by the Sec. 6.3 provisioning sweeps that re-distribute BW across
        dimensions while keeping everything else fixed.
        """
        if bw_factor <= 0:
            raise TopologyError(f"bandwidth factor must be positive, got {bw_factor}")
        return replace(self, link_bw=self.link_bw * bw_factor)

    def describe(self) -> str:
        """One-line summary used by CLI/bench table output."""
        return (
            f"{self.kind.short_name}(P={self.size}, "
            f"{self.bandwidth_gbps:.4g} Gb/s, "
            f"{self.step_latency * 1e9:.4g} ns)"
        )


def dimension(
    kind: str | DimensionKind,
    size: int,
    link_gbps: float,
    links_per_npu: int = 1,
    latency_ns: float = 0.0,
    name: str = "",
) -> DimensionSpec:
    """Convenience constructor using the paper's units (Gb/s and ns)."""
    resolved = (
        kind if isinstance(kind, DimensionKind) else DimensionKind.from_name(kind)
    )
    return DimensionSpec(
        kind=resolved,
        size=size,
        link_bw=gbps(link_gbps),
        links_per_npu=links_per_npu,
        step_latency=latency_ns * 1e-9,
        name=name,
    )
