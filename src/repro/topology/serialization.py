"""Topology (de)serialization to plain dicts / JSON files.

Lets users describe platforms in version-controlled JSON instead of code::

    {
      "name": "my-pod",
      "dims": [
        {"kind": "FC",   "size": 8,  "link_gbps": 200, "links_per_npu": 7,
         "latency_ns": 700, "name": "intra-node"},
        {"kind": "SW",   "size": 16, "link_gbps": 400, "links_per_npu": 1,
         "latency_ns": 1700, "name": "pod"}
      ]
    }

Round-trips exactly: ``topology_from_dict(topology_to_dict(t)) == t``.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import TopologyError
from ..units import to_gbps
from .dimension import DimensionSpec
from .topology import Topology

_REQUIRED_DIM_KEYS = {"kind", "size"}
_BW_KEYS = {"link_gbps", "link_bw"}
_LATENCY_KEYS = {"latency_ns", "step_latency"}
_PACKET_KEYS = {"max_packet_bytes", "packet_header_bytes"}
_OPTIONAL_DIM_KEYS = (
    {"links_per_npu", "name"} | _BW_KEYS | _LATENCY_KEYS | _PACKET_KEYS
)


def dimension_to_dict(dim: DimensionSpec) -> dict:
    """Serialize one dimension.

    Native units (``link_bw`` in bytes/s, ``step_latency`` in seconds) are
    authoritative so round-trips are bit-exact; the paper-unit fields
    (``link_gbps``, ``latency_ns``) are included for human readers.
    """
    return {
        "kind": dim.kind.short_name,
        "size": dim.size,
        "link_bw": dim.link_bw,
        "link_gbps": to_gbps(dim.link_bw),
        "links_per_npu": dim.links_per_npu,
        "step_latency": dim.step_latency,
        "latency_ns": dim.step_latency * 1e9,
        "max_packet_bytes": dim.max_packet_bytes,
        "packet_header_bytes": dim.packet_header_bytes,
        "name": dim.name,
    }


def dimension_from_dict(data: dict) -> DimensionSpec:
    """Parse one dimension; unknown keys are rejected to catch typos.

    Accepts bandwidth as ``link_bw`` (bytes/s; exact) or ``link_gbps``, and
    latency as ``step_latency`` (seconds; exact) or ``latency_ns``.  Native
    units win when both are present.
    """
    if not isinstance(data, dict):
        raise TopologyError(f"dimension entry must be a dict, got {type(data)}")
    unknown = set(data) - _REQUIRED_DIM_KEYS - _OPTIONAL_DIM_KEYS
    if unknown:
        raise TopologyError(f"unknown dimension keys: {sorted(unknown)}")
    missing = _REQUIRED_DIM_KEYS - set(data)
    if missing:
        raise TopologyError(f"missing dimension keys: {sorted(missing)}")
    if not (_BW_KEYS & set(data)):
        raise TopologyError("dimension needs 'link_bw' or 'link_gbps'")

    from ..units import gbps
    from .dimension import DimensionKind

    link_bw = (
        float(data["link_bw"])
        if "link_bw" in data
        else gbps(float(data["link_gbps"]))
    )
    if "step_latency" in data:
        step_latency = float(data["step_latency"])
    else:
        step_latency = float(data.get("latency_ns", 0.0)) * 1e-9
    return DimensionSpec(
        kind=DimensionKind.from_name(str(data["kind"])),
        size=int(data["size"]),
        link_bw=link_bw,
        links_per_npu=int(data.get("links_per_npu", 1)),
        step_latency=step_latency,
        max_packet_bytes=float(data.get("max_packet_bytes", 0.0)),
        packet_header_bytes=float(data.get("packet_header_bytes", 0.0)),
        name=str(data.get("name", "")),
    )


def topology_to_dict(topology: Topology) -> dict:
    """Serialize a topology (parent-index views are flattened)."""
    return {
        "name": topology.name,
        "dims": [dimension_to_dict(dim) for dim in topology.dims],
    }


def topology_from_dict(data: dict) -> Topology:
    """Build a topology from a dict produced by :func:`topology_to_dict`."""
    if not isinstance(data, dict):
        raise TopologyError(f"topology must be a dict, got {type(data)}")
    dims_data = data.get("dims")
    if not dims_data:
        raise TopologyError("topology dict needs a non-empty 'dims' list")
    dims = [dimension_from_dict(entry) for entry in dims_data]
    return Topology(dims, name=str(data.get("name", "")))


def load_topology(path: str | Path) -> Topology:
    """Load a topology from a JSON file."""
    text = Path(path).read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise TopologyError(f"invalid topology JSON in {path}: {error}") from error
    return topology_from_dict(data)


def save_topology(topology: Topology, path: str | Path) -> None:
    """Write a topology to a JSON file."""
    Path(path).write_text(json.dumps(topology_to_dict(topology), indent=2) + "\n")
