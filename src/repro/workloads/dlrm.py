"""DLRM workload builder (Naumov et al. [49], config per Rashidi et al. [54]).

DLRM is a hybrid-parallel recommendation model (paper Sec. 5.2):

* the dense MLPs (bottom + top) are **data-parallel** — their gradients
  All-Reduce across all NPUs;
* the embedding tables are **model-parallel** — sharded across NPUs — and
  exchange pooled embedding vectors through **All-to-All** collectives.

The All-to-All overlap structure follows Sec. 6.2 exactly: the forward
embedding exchange runs concurrently with the bottom-MLP forward pass and is
awaited just before the feature-interaction/top-MLP; the backward exchange
runs concurrently with the bottom-MLP backward pass and is awaited before
the local embedding update.

We do not have the exact proprietary configuration of [54], so the default
is an industrial-scale stand-in (64 tables x 1M rows x 256-dim embeddings,
4096-wide top MLP, per-NPU batch 512) — see DESIGN.md for the substitution
rationale.  All dimensions are keyword-tunable.
"""

from __future__ import annotations

from ..collectives.types import CollectiveType
from .base import Workload
from .layers import GRADIENT_BYTES, CommAttachment, Layer


def _mlp_layers(
    prefix: str,
    widths: list[int],
    batch: float,
    fwd_comm: dict[int, CommAttachment] | None = None,
    fwd_wait: dict[int, str] | None = None,
) -> list[Layer]:
    """Dense MLP: one Layer per linear, params = in x out (+ bias)."""
    fwd_comm = fwd_comm or {}
    fwd_wait = fwd_wait or {}
    layers = []
    for index, (fan_in, fan_out) in enumerate(zip(widths, widths[1:])):
        params = fan_in * fan_out + fan_out
        flops = 2.0 * batch * fan_in * fan_out
        layers.append(
            Layer(
                name=f"{prefix}{index + 1}",
                fwd_flops=flops,
                bwd_flops=2.0 * flops,
                param_bytes=params * GRADIENT_BYTES,
                fwd_mem_bytes=params * GRADIENT_BYTES
                + batch * (fan_in + fan_out) * GRADIENT_BYTES,
                bwd_mem_bytes=2.0
                * (
                    params * GRADIENT_BYTES
                    + batch * (fan_in + fan_out) * GRADIENT_BYTES
                ),
                fwd_comm=fwd_comm.get(index),
                fwd_wait_label=fwd_wait.get(index, ""),
            )
        )
    return layers


def dlrm(
    batch_per_npu: int = 512,
    num_tables: int = 64,
    emb_dim: int = 256,
    rows_per_table: int = 1_000_000,
    dense_features: int = 2048,
    bottom_widths: tuple[int, ...] = (2048, 1024, 512),
    top_widths: tuple[int, ...] = (4096, 4096, 4096, 1),
) -> Workload:
    """Build the DLRM workload (per-NPU batch 512 as in the paper)."""
    batch = float(batch_per_npu)

    # Pooled embedding vectors exchanged per NPU per direction.
    a2a_bytes = batch * num_tables * emb_dim * GRADIENT_BYTES
    # Per-NPU shard of the embedding tables (update traffic is memory-bound).
    table_bytes = num_tables * rows_per_table * emb_dim * GRADIENT_BYTES

    layers: list[Layer] = []

    # Embedding lookup: issues the forward All-to-All asynchronously; the
    # backward pass (reversed order) waits for the gradient All-to-All
    # before applying the local sparse update.
    layers.append(
        Layer(
            name="embedding",
            fwd_flops=0.0,
            bwd_flops=0.0,
            param_bytes=0.0,  # model-parallel: no data-parallel All-Reduce
            fwd_mem_bytes=2.0 * a2a_bytes,
            bwd_mem_bytes=4.0 * a2a_bytes,  # gradient read + sparse update
            fwd_comm=CommAttachment(
                CollectiveType.ALL_TO_ALL, a2a_bytes, blocking=False, label="emb_fwd"
            ),
            bwd_wait_label="emb_bwd",
        )
    )

    # Bottom MLP over the dense features (overlapped with the All-to-All).
    layers.extend(
        _mlp_layers("bottom_mlp", [dense_features, *bottom_widths, emb_dim], batch)
    )

    # Feature interaction: pairwise dots of (tables + 1) embedding-dim
    # vectors.  Its forward waits for the embedding exchange; its backward
    # issues the gradient All-to-All that flows back to the tables.
    features = num_tables + 1
    interaction_flops = 2.0 * batch * (features * (features - 1) / 2.0) * emb_dim
    interaction_out = int(features * (features - 1) / 2.0) + emb_dim
    layers.append(
        Layer(
            name="interaction",
            fwd_flops=interaction_flops,
            bwd_flops=2.0 * interaction_flops,
            param_bytes=0.0,
            fwd_mem_bytes=2.0 * a2a_bytes,
            bwd_mem_bytes=4.0 * a2a_bytes,
            fwd_wait_label="emb_fwd",
            bwd_comm=CommAttachment(
                CollectiveType.ALL_TO_ALL, a2a_bytes, blocking=False, label="emb_bwd"
            ),
        )
    )

    # Top MLP over the interaction features.
    layers.extend(_mlp_layers("top_mlp", [interaction_out, *top_widths], batch))

    workload = Workload(
        name="DLRM",
        layers=layers,
        batch_per_npu=batch_per_npu,
        mp_group_size=None,  # MLPs are data-parallel over all dims
        dp_style="allreduce",
        notes=(
            f"hybrid-parallel: DP MLPs + MP embeddings "
            f"({num_tables} tables x {rows_per_table} rows x {emb_dim}, "
            f"{table_bytes / 2 ** 30:.1f} GiB sharded); All-to-All "
            f"{a2a_bytes / 2 ** 20:.1f} MiB/NPU overlapped with bottom MLP"
        ),
    )
    return workload
