"""Comm/compute profiles of workloads: the placement layer's job model.

CASSINI-style placement (``repro.cluster.placement``) reasons about a job
as an alternating compute / communication process: during each training
iteration the NPU computes for some time, and the network carries the job's
collectives for some (possibly overlapped) time.  The fraction of an
iteration the job keeps the network busy — its **communication duty
cycle** — decides whether two jobs sharing a dimension collide (both comm-
heavy: their phases fight for the wire) or interleave (one computes while
the other communicates).

:func:`comm_compute_profile` derives that model analytically from the
workload description, without simulating:

* *compute seconds* — the roofline time of one iteration's forward plus
  backward passes (same :class:`ComputeModel` the training simulator uses);
* *comm bytes* — the per-NPU wire bytes one iteration must move: the
  data-parallel gradient synchronization (All-Reduce moves ``~2x`` the
  parameter bytes; ZeRO-2's Reduce-Scatter + All-Gather moves the same
  total) plus any per-layer comm attachments (embedding All-to-Alls,
  model-parallel activation All-Reduces).

Both are *estimates* for placement scoring — chunking, scheduling, fusion,
and contention shift the real numbers — but the duty-cycle ordering across
jobs (which is all placement needs) is robust to those effects.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from .base import Workload
from .compute import ComputeModel


@dataclass(frozen=True)
class CommComputeProfile:
    """One iteration of a workload as compute seconds + comm bytes."""

    workload_name: str
    compute_seconds: float
    comm_bytes: float

    def comm_seconds(self, bandwidth: float) -> float:
        """Estimated seconds to move the iteration's bytes at ``bandwidth``."""
        if bandwidth <= 0:
            raise ConfigError(f"bandwidth must be positive, got {bandwidth}")
        return self.comm_bytes / bandwidth

    def duty_cycle(self, bandwidth: float) -> float:
        """Fraction of an iteration the job keeps the network busy.

        ``comm / (comm + compute)`` under the no-overlap approximation:
        close to 1.0 for a comm-bound job (its collectives always have work
        for the wire), close to 0.0 for a compute-bound one.  Two jobs
        whose duty cycles sum to <= 1 can in principle interleave on one
        dimension without slowing each other down — the CASSINI insight.
        """
        comm = self.comm_seconds(bandwidth)
        total = comm + self.compute_seconds
        if total <= 0:
            return 0.0
        return comm / total


def comm_compute_profile(
    workload: Workload, compute: ComputeModel | None = None
) -> CommComputeProfile:
    """Analytic comm/compute profile of one training iteration.

    The gradient-synchronization volume uses the large-group limit of the
    All-Reduce cost, ``2 x (P-1)/P ~= 2`` bytes on the wire per parameter
    byte, which is also the ZeRO-2 RS+AG total — so the estimate does not
    depend on the (placement-time unknown) communicator sizes.
    """
    model = compute or ComputeModel()
    compute_seconds = sum(
        model.time_for(layer.fwd_flops, layer.fwd_mem_bytes)
        + model.time_for(layer.bwd_flops, layer.bwd_mem_bytes)
        for layer in workload.layers
    )
    comm_bytes = 2.0 * workload.total_param_bytes
    for layer in workload.layers:
        for attachment in (layer.fwd_comm, layer.bwd_comm):
            if attachment is not None:
                comm_bytes += attachment.size
    return CommComputeProfile(
        workload_name=workload.name,
        compute_seconds=compute_seconds,
        comm_bytes=comm_bytes,
    )
