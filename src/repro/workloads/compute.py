"""Roofline compute model (paper Sec. 5.1).

"For compute times (in the case of real workloads) we assumed roofline FP16
performance from the total FLOPS available on current state-of-the-art
accelerators [13]" — reference [13] is the NVIDIA A100 (312 TFLOP/s FP16
tensor-core peak, ~2 TB/s HBM).

The model is the classic two-term roofline: an operation of ``flops``
floating-point operations touching ``bytes`` of memory takes::

    time = max(flops / (peak_flops x efficiency),
               bytes / (memory_bw x efficiency))

``efficiency`` defaults to 1.0 — the paper assumes ideal roofline — but is
configurable for sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

#: NVIDIA A100 FP16 tensor-core peak (FLOP/s).
A100_PEAK_FLOPS = 312e12
#: NVIDIA A100 80GB HBM2e bandwidth (bytes/s).
A100_MEMORY_BW = 2.0e12


@dataclass(frozen=True)
class ComputeModel:
    """Roofline FP16 compute-time estimator for one NPU."""

    peak_flops: float = A100_PEAK_FLOPS
    memory_bw: float = A100_MEMORY_BW
    efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.peak_flops <= 0:
            raise ConfigError(f"peak FLOPS must be positive, got {self.peak_flops}")
        if self.memory_bw <= 0:
            raise ConfigError(f"memory BW must be positive, got {self.memory_bw}")
        if not 0 < self.efficiency <= 1:
            raise ConfigError(
                f"efficiency must be in (0, 1], got {self.efficiency}"
            )

    def time_for(self, flops: float, bytes_accessed: float = 0.0) -> float:
        """Roofline execution time (seconds) for one kernel."""
        if flops < 0 or bytes_accessed < 0:
            raise ConfigError("flops and bytes must be non-negative")
        compute_time = flops / (self.peak_flops * self.efficiency)
        memory_time = bytes_accessed / (self.memory_bw * self.efficiency)
        return max(compute_time, memory_time)

    def is_memory_bound(self, flops: float, bytes_accessed: float) -> bool:
        """True when the kernel's arithmetic intensity is below the ridge."""
        if bytes_accessed == 0:
            return False
        intensity = flops / bytes_accessed
        ridge = self.peak_flops / self.memory_bw
        return intensity < ridge
