"""Parametric synthetic workloads for cluster experiments and tests.

Real paper workloads (``resnet``, ``gnmt``, ...) model concrete networks;
cluster fairness and contention experiments additionally need *shaped*
traffic — e.g. a tenant that floods a dimension with many small gradient
collectives versus one that issues a single large one.  :func:`flood`
builds such a workload from two knobs, and is registered under the
``"flood"`` key so scenario specs can declare these tenants by name.
"""

from __future__ import annotations

from ..errors import WorkloadError
from ..units import MB
from .base import Workload
from .layers import Layer


def flood(
    layers: int = 16,
    param_mb: float = 4.0,
    name: str = "",
    fwd_flops: float = 1e8,
    bwd_flops: float = 2e8,
) -> Workload:
    """Comm-dominated workload: ``layers`` layers of ``param_mb`` MB each.

    Many layers with small tensors decompose into a flood of small chunk
    ops (the SCF intra-dimension policy always favors them); a single
    large-tensor layer produces big chunk ops that perpetually lose under
    first-come sharing — the elephant/mouse pair of the fairness
    experiments is just two calls to this factory.
    """
    if layers < 1:
        raise WorkloadError(f"flood workload needs >= 1 layers, got {layers}")
    if param_mb <= 0:
        raise WorkloadError(
            f"flood workload needs positive param_mb, got {param_mb}"
        )
    return Workload(
        name=name or f"flood-{layers}x{param_mb:g}MB",
        layers=[
            Layer(
                name=f"l{i}",
                fwd_flops=fwd_flops,
                bwd_flops=bwd_flops,
                param_bytes=param_mb * MB,
            )
            for i in range(layers)
        ],
        batch_per_npu=1,
    )
