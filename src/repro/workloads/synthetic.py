"""Parametric synthetic workloads for cluster experiments and tests.

Real paper workloads (``resnet``, ``gnmt``, ...) model concrete networks;
cluster fairness and contention experiments additionally need *shaped*
traffic — e.g. a tenant that floods a dimension with many small gradient
collectives versus one that issues a single large one.  :func:`flood`
builds such a workload from two knobs, and is registered under the
``"flood"`` key so scenario specs can declare these tenants by name.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import WorkloadError
from ..units import MB
from .base import Workload
from .layers import Layer


def flood(
    layers: int = 16,
    param_mb: float = 4.0,
    name: str = "",
    fwd_flops: float = 1e8,
    bwd_flops: float = 2e8,
) -> Workload:
    """Comm-dominated workload: ``layers`` layers of ``param_mb`` MB each.

    Many layers with small tensors decompose into a flood of small chunk
    ops (the SCF intra-dimension policy always favors them); a single
    large-tensor layer produces big chunk ops that perpetually lose under
    first-come sharing — the elephant/mouse pair of the fairness
    experiments is just two calls to this factory.
    """
    if layers < 1:
        raise WorkloadError(f"flood workload needs >= 1 layers, got {layers}")
    if param_mb <= 0:
        raise WorkloadError(
            f"flood workload needs positive param_mb, got {param_mb}"
        )
    return Workload(
        name=name or f"flood-{layers}x{param_mb:g}MB",
        layers=[
            Layer(
                name=f"l{i}",
                fwd_flops=fwd_flops,
                bwd_flops=bwd_flops,
                param_bytes=param_mb * MB,
            )
            for i in range(layers)
        ],
        batch_per_npu=1,
    )


def flood_ladder(
    layers: int,
    param_mb: float,
    scales: Sequence[float],
    name_prefix: str = "flood",
) -> list[Workload]:
    """A quantized size ladder of :func:`flood` workloads.

    Open-loop job mixes draw continuous heavy-tailed job sizes but must
    collapse them onto a *finite* set of workload shapes so isolated-JCT
    baselines stay cacheable (one solo run per rung, not per job).  Each
    ``scale`` multiplies the per-layer parameter size; names encode the
    rung index so every rung is a distinct, stable workload identity.
    """
    if not scales:
        raise WorkloadError("flood_ladder needs at least one scale")
    for scale in scales:
        if scale <= 0:
            raise WorkloadError(f"flood_ladder scales must be positive, got {scale}")
    return [
        flood(
            layers=layers,
            param_mb=param_mb * scale,
            name=f"{name_prefix}-s{index}-{layers}x{param_mb * scale:g}MB",
        )
        for index, scale in enumerate(scales)
    ]
