"""Transformer-1T workload builder (paper Sec. 5.2, [18]).

A one-trillion-parameter dense Transformer at Megatron-1T scale: 128
layers, hidden 25600 (12 x L x h^2 ~ 1.007e12 parameters).  Per the paper:

* **model-parallel across the first dimensions up to 128 NPUs** — tensor
  parallelism; every attention and MLP sub-layer All-Reduces its output
  activations across the MP group in both forward and backward passes
  (blocking, Megatron-style);
* **data-parallel across the remaining dimensions** — and since the MP
  group consumes the leading dims, "the data-parallel communication of
  Transformer-1T uses only the last network dimension";
* **ZeRO stage-2** for the optimizer: gradients Reduce-Scatter across the
  DP group during backprop and updated parameters All-Gather at the end of
  the iteration (``dp_style="zero2"``).

Per-NPU mini-batch is 16 (paper).  Parameter/FLOP counts are per NPU, i.e.
after 128-way tensor-parallel sharding.
"""

from __future__ import annotations

from ..collectives.types import CollectiveType
from ..errors import WorkloadError
from .base import Workload
from .layers import GRADIENT_BYTES, CommAttachment, Layer

#: Paper's model-parallel group size for Transformer-1T.
MP_GROUP_SIZE = 128


def transformer_1t(
    batch_per_npu: int = 16,
    hidden: int = 25_600,
    num_layers: int = 128,
    seq_len: int = 2048,
    vocab: int = 51_200,
    mp_group_size: int = MP_GROUP_SIZE,
) -> Workload:
    """Build the Transformer-1T workload (1.0e12 dense parameters)."""
    if mp_group_size < 2:
        raise WorkloadError(f"MP group must be >= 2, got {mp_group_size}")
    batch = float(batch_per_npu)

    # Megatron tensor parallelism: the activation All-Reduce payload is the
    # full (batch x seq x hidden) tensor at FP16.
    activation_bytes = batch * seq_len * hidden * GRADIENT_BYTES
    mp_ar = CommAttachment(CollectiveType.ALL_REDUCE, activation_bytes, blocking=True)

    layers: list[Layer] = []

    # Token + position embeddings (sharded over the MP group).
    emb_params = (vocab + seq_len) * hidden / mp_group_size
    emb_bytes = batch * seq_len * hidden * GRADIENT_BYTES
    layers.append(
        Layer(
            name="embedding",
            fwd_flops=0.0,
            bwd_flops=0.0,
            param_bytes=emb_params * GRADIENT_BYTES,
            fwd_mem_bytes=2.0 * emb_bytes,
            bwd_mem_bytes=2.0 * emb_bytes,
        )
    )

    tokens = batch * seq_len
    for index in range(1, num_layers + 1):
        # Self-attention: 4 h^2 params; QKV + scores + context + output.
        attn_params = 4.0 * hidden * hidden / mp_group_size
        attn_flops = (
            2.0 * attn_params * tokens
            + 4.0 * batch * seq_len * seq_len * hidden / mp_group_size
        )
        layers.append(
            Layer(
                name=f"layer{index}_attn",
                fwd_flops=attn_flops,
                bwd_flops=2.0 * attn_flops,
                param_bytes=attn_params * GRADIENT_BYTES,
                fwd_mem_bytes=attn_params * GRADIENT_BYTES + emb_bytes,
                bwd_mem_bytes=2.0 * (attn_params * GRADIENT_BYTES + emb_bytes),
                fwd_comm=mp_ar,
                bwd_comm=mp_ar,
            )
        )
        # MLP: 8 h^2 params (4h expansion).
        mlp_params = 8.0 * hidden * hidden / mp_group_size
        mlp_flops = 2.0 * mlp_params * tokens
        layers.append(
            Layer(
                name=f"layer{index}_mlp",
                fwd_flops=mlp_flops,
                bwd_flops=2.0 * mlp_flops,
                param_bytes=mlp_params * GRADIENT_BYTES,
                fwd_mem_bytes=mlp_params * GRADIENT_BYTES + emb_bytes,
                bwd_mem_bytes=2.0 * (mlp_params * GRADIENT_BYTES + emb_bytes),
                fwd_comm=mp_ar,
                bwd_comm=mp_ar,
            )
        )

    # Output projection to the vocabulary (sharded).
    proj_params = hidden * vocab / mp_group_size
    proj_flops = 2.0 * proj_params * tokens
    layers.append(
        Layer(
            name="lm_head",
            fwd_flops=proj_flops,
            bwd_flops=2.0 * proj_flops,
            param_bytes=proj_params * GRADIENT_BYTES,
            fwd_mem_bytes=proj_params * GRADIENT_BYTES,
            bwd_mem_bytes=2.0 * proj_params * GRADIENT_BYTES,
            fwd_comm=mp_ar,
            bwd_comm=mp_ar,
        )
    )

    global_params = 12.0 * num_layers * hidden * hidden + (vocab + seq_len) * hidden
    return Workload(
        name="Transformer-1T",
        layers=layers,
        batch_per_npu=batch_per_npu,
        mp_group_size=mp_group_size,
        dp_style="zero2",
        notes=(
            f"{global_params / 1e12:.2f}T global params, "
            f"{mp_group_size}-way tensor parallel + ZeRO-2 DP; "
            f"MP All-Reduce {activation_bytes / 2 ** 20:.0f} MiB/sub-layer"
        ),
    )
