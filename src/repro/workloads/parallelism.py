"""Parallelization plans: mapping DP/MP communicators onto topology dims.

The paper's workloads use (Sec. 5.2):

* ResNet-152, GNMT — pure data-parallel over all 1024 NPUs (collectives
  span every network dimension);
* DLRM — data-parallel MLPs (all dims) + model-parallel embeddings whose
  All-to-All also spans all NPUs;
* Transformer-1T — model-parallel across the first dimensions up to 128
  NPUs, data-parallel across the rest ("the data-parallel communication of
  Transformer-1T uses only the last network dimension in all of the
  topologies").

:func:`split_leading_dims` computes the MP/DP communicator scopes for a
target group size, splitting a physical dimension's peers when the group
boundary falls inside it (e.g. 128-way MP on 16x64 = dim1 x 8-of-dim2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import WorkloadError
from ..topology import Topology


@dataclass(frozen=True)
class CommScope:
    """Which dimensions (and how many peers of each) a communicator spans.

    ``dim_indices is None`` means the full topology.  Mirrors the
    ``CollectiveRequest`` addressing fields.
    """

    dim_indices: tuple[int, ...] | None = None
    peer_counts: tuple[int, ...] | None = None

    def degree(self, topology: Topology) -> int:
        """Number of NPUs participating in this communicator."""
        if self.dim_indices is None:
            return topology.npus
        if self.peer_counts is not None:
            return math.prod(self.peer_counts)
        return math.prod(topology.dims[i].size for i in self.dim_indices)

    def describe(self, topology: Topology) -> str:
        if self.dim_indices is None:
            return f"all dims ({topology.npus} NPUs)"
        counts = self.peer_counts or tuple(
            topology.dims[i].size for i in self.dim_indices
        )
        dims = ", ".join(
            f"dim{i + 1}:{c}" for i, c in zip(self.dim_indices, counts)
        )
        return f"[{dims}] ({self.degree(topology)} NPUs)"


@dataclass(frozen=True)
class ParallelismPlan:
    """The communicator layout of one workload on one topology."""

    dp: CommScope | None
    mp: CommScope | None
    description: str = ""

    def dp_degree(self, topology: Topology) -> int:
        return self.dp.degree(topology) if self.dp else 1

    def mp_degree(self, topology: Topology) -> int:
        return self.mp.degree(topology) if self.mp else 1


def data_parallel_plan() -> ParallelismPlan:
    """Pure data parallelism: gradients All-Reduce over every dimension."""
    return ParallelismPlan(
        dp=CommScope(), mp=None, description="data-parallel over all dims"
    )


def split_leading_dims(
    topology: Topology, group_size: int
) -> tuple[CommScope, CommScope]:
    """Split the platform into (MP scope, DP scope) at ``group_size`` NPUs.

    The MP group packs the first dimensions; if the boundary falls inside a
    dimension, that dimension's peers are split between MP and DP (both
    scopes keep the dimension's physical BW/latency).  The DP scope covers
    the remaining peers/dimensions.
    """
    if group_size < 2:
        raise WorkloadError(f"model-parallel group size must be >= 2, got {group_size}")
    if topology.npus % group_size != 0:
        raise WorkloadError(
            f"group size {group_size} does not divide {topology.npus} NPUs"
        )

    mp_dims: list[int] = []
    mp_counts: list[int] = []
    remaining = group_size
    boundary_dim: int | None = None
    boundary_dp_peers = 1
    for index, dim in enumerate(topology.dims):
        if remaining == 1:
            break
        if dim.size <= remaining:
            if remaining % dim.size != 0:
                raise WorkloadError(
                    f"group size {group_size} incompatible with dimension "
                    f"sizes {topology.shape}"
                )
            mp_dims.append(index)
            mp_counts.append(dim.size)
            remaining //= dim.size
        else:
            if dim.size % remaining != 0:
                raise WorkloadError(
                    f"group size {group_size} incompatible with dimension "
                    f"sizes {topology.shape}"
                )
            mp_dims.append(index)
            mp_counts.append(remaining)
            boundary_dim = index
            boundary_dp_peers = dim.size // remaining
            remaining = 1
    if remaining != 1:
        raise WorkloadError(
            f"group size {group_size} exceeds platform size {topology.npus}"
        )

    dp_dims: list[int] = []
    dp_counts: list[int] = []
    if boundary_dim is not None and boundary_dp_peers > 1:
        dp_dims.append(boundary_dim)
        dp_counts.append(boundary_dp_peers)
    first_unused = (mp_dims[-1] + 1) if mp_dims else 0
    for index in range(first_unused, topology.ndims):
        dp_dims.append(index)
        dp_counts.append(topology.dims[index].size)

    if not dp_dims:
        raise WorkloadError(
            f"group size {group_size} leaves no NPUs for data parallelism"
        )
    mp_scope = CommScope(tuple(mp_dims), tuple(mp_counts))
    dp_scope = CommScope(tuple(dp_dims), tuple(dp_counts))
    return mp_scope, dp_scope


def model_parallel_plan(topology: Topology, group_size: int) -> ParallelismPlan:
    """MP over the leading ``group_size`` NPUs, DP over the rest."""
    mp_scope, dp_scope = split_leading_dims(topology, group_size)
    return ParallelismPlan(
        dp=dp_scope,
        mp=mp_scope,
        description=(
            f"model-parallel {mp_scope.describe(topology)}, "
            f"data-parallel {dp_scope.describe(topology)}"
        ),
    )
