"""Layer and communication descriptors for DNN workload models.

A workload is a sequence of :class:`Layer` objects.  Each layer carries its
forward/backward FLOP counts, memory traffic, parameter (gradient) bytes,
and optional *model-parallel* communication attached to its forward and/or
backward pass.  Data-parallel gradient All-Reduces are not attached to
layers here — the training simulator derives them from ``param_bytes`` plus
the workload's parallelism plan (with optional bucketing).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..collectives.types import CollectiveType
from ..errors import WorkloadError

#: FP16 — the paper's gradient precision for all workloads (Sec. 5.2).
GRADIENT_BYTES = 2.0


@dataclass(frozen=True)
class CommAttachment:
    """A model-parallel collective tied to a layer's fwd or bwd pass.

    Attributes
    ----------
    ctype:
        Collective pattern (All-Reduce / All-Gather / All-to-All ...).
    size:
        Payload per NPU in bytes.
    blocking:
        If True the pass stalls until the collective completes (tensor
        parallel activations); if False it is issued asynchronously and
        waited on via ``wait_label`` (DLRM's embedding All-to-All).
    label:
        Identifier for async attachments, referenced by ``WaitComm`` steps.
    """

    ctype: CollectiveType
    size: float
    blocking: bool = True
    label: str = ""

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise WorkloadError(f"comm size must be positive, got {self.size}")
        if not self.blocking and not self.label:
            raise WorkloadError("async comm attachments need a label to wait on")


@dataclass(frozen=True)
class Layer:
    """One schedulable unit of a DNN (a block, an LSTM layer, an MLP...).

    FLOPs are per NPU per iteration (i.e. after model-parallel sharding and
    for the local mini-batch).  ``param_bytes`` is the *local* gradient
    volume this layer contributes to data-parallel synchronization.
    """

    name: str
    fwd_flops: float
    bwd_flops: float
    param_bytes: float = 0.0
    fwd_mem_bytes: float = 0.0
    bwd_mem_bytes: float = 0.0
    fwd_comm: CommAttachment | None = None
    bwd_comm: CommAttachment | None = None
    fwd_wait_label: str = ""
    bwd_wait_label: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("layers must be named")
        if self.fwd_flops < 0 or self.bwd_flops < 0:
            raise WorkloadError(f"negative FLOPs on layer {self.name!r}")
        if self.param_bytes < 0:
            raise WorkloadError(f"negative param bytes on layer {self.name!r}")
        if self.fwd_mem_bytes < 0 or self.bwd_mem_bytes < 0:
            raise WorkloadError(f"negative memory bytes on layer {self.name!r}")

    @property
    def params(self) -> float:
        """Parameter count implied by ``param_bytes`` at FP16."""
        return self.param_bytes / GRADIENT_BYTES


def total_param_bytes(layers: list[Layer]) -> float:
    """Sum of local gradient bytes across layers."""
    return sum(layer.param_bytes for layer in layers)


def total_flops(layers: list[Layer]) -> tuple[float, float]:
    """``(forward, backward)`` FLOPs across layers."""
    return (
        sum(layer.fwd_flops for layer in layers),
        sum(layer.bwd_flops for layer in layers),
    )
