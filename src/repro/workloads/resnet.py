"""ResNet-152 workload builder (He et al. [37]; paper Sec. 5.2).

Builds the standard ImageNet ResNet-152 layer by layer from first
principles (conv shapes -> params & FLOPs), grouped at bottleneck-block
granularity, which is how gradient buckets form during backprop.

Parallelization: pure data-parallel (the model fits on one NPU), per-NPU
mini-batch 32, FP16 gradients — per the paper.  Total parameters come out
at ~60.2M (the canonical ResNet-152 count), i.e. ~120 MB of gradients.
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import Workload
from .layers import GRADIENT_BYTES, Layer

#: torchvision-style stage specification: (blocks, mid_channels, out_channels).
_RESNET152_STAGES: tuple[tuple[int, int, int], ...] = (
    (3, 64, 256),
    (8, 128, 512),
    (36, 256, 1024),
    (3, 512, 2048),
)


@dataclass(frozen=True)
class _ConvCost:
    """Accumulated params / FLOPs / activation traffic of a conv stack."""

    params: float = 0.0
    mac_flops: float = 0.0
    act_bytes: float = 0.0

    def __add__(self, other: "_ConvCost") -> "_ConvCost":
        return _ConvCost(
            self.params + other.params,
            self.mac_flops + other.mac_flops,
            self.act_bytes + other.act_bytes,
        )


def _conv(cin: int, cout: int, kernel: int, h_out: int, w_out: int) -> _ConvCost:
    """Cost of one conv layer: 2 x MACs FLOPs, weight + output-act bytes."""
    params = cin * cout * kernel * kernel
    macs = params * h_out * w_out
    act = h_out * w_out * cout * GRADIENT_BYTES
    return _ConvCost(params=params, mac_flops=2.0 * macs, act_bytes=act)


def _bottleneck(
    cin: int, mid: int, cout: int, stride: int, spatial_in: int
) -> _ConvCost:
    """One bottleneck block: 1x1 -> 3x3(stride) -> 1x1 (+ projection)."""
    spatial_out = spatial_in // stride
    cost = _conv(cin, mid, 1, spatial_in, spatial_in)
    cost = cost + _conv(mid, mid, 3, spatial_out, spatial_out)
    cost = cost + _conv(mid, cout, 1, spatial_out, spatial_out)
    if stride != 1 or cin != cout:
        cost = cost + _conv(cin, cout, 1, spatial_out, spatial_out)
    return cost


def resnet152(batch_per_npu: int = 32, image_size: int = 224) -> Workload:
    """Build the ResNet-152 workload (per-NPU batch 32 as in the paper)."""
    layers: list[Layer] = []
    batch = float(batch_per_npu)

    # Stem: 7x7/2 conv + 3x3/2 max-pool.
    spatial = image_size // 2
    stem = _conv(3, 64, 7, spatial, spatial)
    layers.append(
        Layer(
            name="conv1",
            fwd_flops=batch * stem.mac_flops,
            bwd_flops=2.0 * batch * stem.mac_flops,
            param_bytes=stem.params * GRADIENT_BYTES,
            fwd_mem_bytes=batch * stem.act_bytes + stem.params * GRADIENT_BYTES,
            bwd_mem_bytes=2.0 * (batch * stem.act_bytes + stem.params * GRADIENT_BYTES),
        )
    )
    spatial //= 2  # max-pool

    cin = 64
    for stage_index, (blocks, mid, cout) in enumerate(_RESNET152_STAGES, start=2):
        for block_index in range(blocks):
            stride = 2 if (block_index == 0 and stage_index > 2) else 1
            cost = _bottleneck(cin, mid, cout, stride, spatial)
            spatial //= stride
            layers.append(
                Layer(
                    name=f"conv{stage_index}_{block_index + 1}",
                    fwd_flops=batch * cost.mac_flops,
                    bwd_flops=2.0 * batch * cost.mac_flops,
                    param_bytes=cost.params * GRADIENT_BYTES,
                    fwd_mem_bytes=batch * cost.act_bytes
                    + cost.params * GRADIENT_BYTES,
                    bwd_mem_bytes=2.0
                    * (batch * cost.act_bytes + cost.params * GRADIENT_BYTES),
                )
            )
            cin = cout

    # Classifier: global-average-pool + 2048 -> 1000 FC.
    fc_params = 2048 * 1000 + 1000
    layers.append(
        Layer(
            name="fc",
            fwd_flops=batch * 2.0 * 2048 * 1000,
            bwd_flops=2.0 * batch * 2.0 * 2048 * 1000,
            param_bytes=fc_params * GRADIENT_BYTES,
            fwd_mem_bytes=fc_params * GRADIENT_BYTES,
            bwd_mem_bytes=2.0 * fc_params * GRADIENT_BYTES,
        )
    )

    return Workload(
        name="ResNet-152",
        layers=layers,
        batch_per_npu=batch_per_npu,
        mp_group_size=None,
        dp_style="allreduce",
        notes="pure data-parallel; ~60.2M params (~120MB FP16 gradients)",
    )
