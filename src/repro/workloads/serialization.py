"""Workload (de)serialization to plain dicts / JSON.

Scenario specs (``repro.api``) reference workloads by registry key when
possible, but custom workloads — hand-built layer stacks in tests, tenant
shapes no factory produces — must survive a spec's JSON round trip too.
These converters are lossless: ``workload_from_dict(workload_to_dict(w))``
compares equal to ``w`` for any valid :class:`Workload`.
"""

from __future__ import annotations

from ..collectives.types import CollectiveType
from ..errors import WorkloadError
from .base import Workload
from .layers import CommAttachment, Layer

_LAYER_KEYS = {
    "name", "fwd_flops", "bwd_flops", "param_bytes", "fwd_mem_bytes",
    "bwd_mem_bytes", "fwd_comm", "bwd_comm", "fwd_wait_label",
    "bwd_wait_label",
}
_WORKLOAD_KEYS = {
    "name", "layers", "batch_per_npu", "mp_group_size", "dp_style", "notes",
}


def _comm_to_dict(comm: CommAttachment) -> dict:
    return {
        "ctype": comm.ctype.value,
        "size": comm.size,
        "blocking": comm.blocking,
        "label": comm.label,
    }


def _comm_from_dict(data: dict) -> CommAttachment:
    if not isinstance(data, dict):
        raise WorkloadError(f"comm attachment must be a dict, got {type(data)}")
    return CommAttachment(
        ctype=CollectiveType.from_name(str(data["ctype"])),
        size=float(data["size"]),
        blocking=bool(data.get("blocking", True)),
        label=str(data.get("label", "")),
    )


def layer_to_dict(layer: Layer) -> dict:
    """Serialize one layer; default-valued fields are omitted for brevity."""
    data: dict = {
        "name": layer.name,
        "fwd_flops": layer.fwd_flops,
        "bwd_flops": layer.bwd_flops,
    }
    if layer.param_bytes:
        data["param_bytes"] = layer.param_bytes
    if layer.fwd_mem_bytes:
        data["fwd_mem_bytes"] = layer.fwd_mem_bytes
    if layer.bwd_mem_bytes:
        data["bwd_mem_bytes"] = layer.bwd_mem_bytes
    if layer.fwd_comm is not None:
        data["fwd_comm"] = _comm_to_dict(layer.fwd_comm)
    if layer.bwd_comm is not None:
        data["bwd_comm"] = _comm_to_dict(layer.bwd_comm)
    if layer.fwd_wait_label:
        data["fwd_wait_label"] = layer.fwd_wait_label
    if layer.bwd_wait_label:
        data["bwd_wait_label"] = layer.bwd_wait_label
    return data


def layer_from_dict(data: dict) -> Layer:
    """Parse one layer; unknown keys are rejected to catch typos."""
    if not isinstance(data, dict):
        raise WorkloadError(f"layer entry must be a dict, got {type(data)}")
    unknown = set(data) - _LAYER_KEYS
    if unknown:
        raise WorkloadError(f"unknown layer keys: {sorted(unknown)}")
    return Layer(
        name=str(data.get("name", "")),
        fwd_flops=float(data.get("fwd_flops", 0.0)),
        bwd_flops=float(data.get("bwd_flops", 0.0)),
        param_bytes=float(data.get("param_bytes", 0.0)),
        fwd_mem_bytes=float(data.get("fwd_mem_bytes", 0.0)),
        bwd_mem_bytes=float(data.get("bwd_mem_bytes", 0.0)),
        fwd_comm=_comm_from_dict(data["fwd_comm"]) if data.get("fwd_comm") else None,
        bwd_comm=_comm_from_dict(data["bwd_comm"]) if data.get("bwd_comm") else None,
        fwd_wait_label=str(data.get("fwd_wait_label", "")),
        bwd_wait_label=str(data.get("bwd_wait_label", "")),
    )


def workload_to_dict(workload: Workload) -> dict:
    """Serialize a workload losslessly (``notes`` included for humans)."""
    data: dict = {
        "name": workload.name,
        "batch_per_npu": workload.batch_per_npu,
        "layers": [layer_to_dict(layer) for layer in workload.layers],
    }
    if workload.mp_group_size is not None:
        data["mp_group_size"] = workload.mp_group_size
    if workload.dp_style != "allreduce":
        data["dp_style"] = workload.dp_style
    if workload.notes:
        data["notes"] = workload.notes
    return data


def workload_from_dict(data: dict) -> Workload:
    """Build a workload from a dict produced by :func:`workload_to_dict`."""
    if not isinstance(data, dict):
        raise WorkloadError(f"workload must be a dict, got {type(data)}")
    unknown = set(data) - _WORKLOAD_KEYS
    if unknown:
        raise WorkloadError(f"unknown workload keys: {sorted(unknown)}")
    layers_data = data.get("layers")
    if not layers_data:
        raise WorkloadError("workload dict needs a non-empty 'layers' list")
    mp = data.get("mp_group_size")
    return Workload(
        name=str(data.get("name", "")),
        layers=[layer_from_dict(entry) for entry in layers_data],
        batch_per_npu=int(data.get("batch_per_npu", 1)),
        mp_group_size=int(mp) if mp is not None else None,
        dp_style=str(data.get("dp_style", "allreduce")),
        notes=str(data.get("notes", "")),
    )
