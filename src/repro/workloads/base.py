"""Workload base class: a named stack of layers plus a parallelism rule.

Concrete workloads (``resnet``, ``gnmt``, ``dlrm``, ``transformer``) build
their layer lists from architectural parameters and choose how they map
onto a topology (pure DP, or MP-over-leading-dims + DP-on-the-rest).

The training simulator consumes three things from a workload:

* ``layers`` — ordered forward-pass layer list (backward runs it reversed),
* ``plan(topology)`` — the DP/MP communicator scopes,
* ``dp_style`` — how data-parallel gradients synchronize:
  ``"allreduce"`` (classic DDP) or ``"zero2"`` (ZeRO stage-2: gradients
  Reduce-Scatter during backprop, parameters All-Gather at iteration end).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import WorkloadError
from ..topology import Topology
from .layers import Layer, total_flops, total_param_bytes
from .parallelism import ParallelismPlan, data_parallel_plan, model_parallel_plan


@dataclass
class Workload:
    """A DNN training workload: layers + batch + parallelization strategy.

    Attributes
    ----------
    name:
        Workload label used in result tables.
    layers:
        Forward-order layer list.
    batch_per_npu:
        Local mini-batch (paper Sec. 5.2: 32 / 512 / 128 / 16 for
        ResNet-152 / DLRM / GNMT / Transformer-1T).
    mp_group_size:
        If set, model-parallel over the leading ``mp_group_size`` NPUs and
        data-parallel over the rest; otherwise pure data parallel.
    dp_style:
        ``"allreduce"`` or ``"zero2"`` (see module docstring).
    """

    name: str
    layers: list[Layer]
    batch_per_npu: int
    mp_group_size: int | None = None
    dp_style: str = "allreduce"
    notes: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.layers:
            raise WorkloadError(f"workload {self.name!r} has no layers")
        if self.batch_per_npu < 1:
            raise WorkloadError(
                f"batch size must be >= 1, got {self.batch_per_npu}"
            )
        if self.dp_style not in ("allreduce", "zero2"):
            raise WorkloadError(f"unknown dp_style {self.dp_style!r}")
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            raise WorkloadError(f"duplicate layer names in {self.name!r}")

    # --- aggregates ---------------------------------------------------------
    @property
    def total_param_bytes(self) -> float:
        """Local (per-NPU) gradient bytes per iteration."""
        return total_param_bytes(self.layers)

    @property
    def total_params(self) -> float:
        """Local parameter count (FP16)."""
        return self.total_param_bytes / 2.0

    @property
    def total_fwd_flops(self) -> float:
        return total_flops(self.layers)[0]

    @property
    def total_bwd_flops(self) -> float:
        return total_flops(self.layers)[1]

    # --- parallelism ---------------------------------------------------------
    def plan(self, topology: Topology) -> ParallelismPlan:
        """Communicator layout on ``topology`` (Sec. 5.2 rules)."""
        if self.mp_group_size is None:
            return data_parallel_plan()
        return model_parallel_plan(topology, self.mp_group_size)

    def describe(self, topology: Topology | None = None) -> str:
        """Human-readable summary used by examples and bench output."""
        lines = [
            f"{self.name}: {len(self.layers)} layers, "
            f"{self.total_params / 1e6:.1f}M local params, "
            f"batch {self.batch_per_npu}/NPU",
            f"  fwd {self.total_fwd_flops / 1e12:.2f} TFLOPs, "
            f"bwd {self.total_bwd_flops / 1e12:.2f} TFLOPs per NPU",
        ]
        if topology is not None:
            lines.append(f"  parallelism: {self.plan(topology).description}")
        if self.notes:
            lines.append(f"  {self.notes}")
        return "\n".join(lines)
