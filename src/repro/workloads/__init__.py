"""DNN workload models (paper Sec. 5.2)."""

from .base import Workload
from .compute import A100_MEMORY_BW, A100_PEAK_FLOPS, ComputeModel
from .dlrm import dlrm
from .gnmt import gnmt
from .layers import GRADIENT_BYTES, CommAttachment, Layer, total_flops, total_param_bytes
from .parallelism import (
    CommScope,
    ParallelismPlan,
    data_parallel_plan,
    model_parallel_plan,
    split_leading_dims,
)
from .resnet import resnet152
from .transformer import MP_GROUP_SIZE, transformer_1t

#: The paper's four evaluation workloads (Sec. 5.2), in Fig. 12 order.
PAPER_WORKLOADS = ("ResNet-152", "GNMT", "DLRM", "Transformer-1T")


def get_workload(name: str, **kwargs) -> Workload:
    """Instantiate a paper workload by name (case-insensitive)."""
    from ..errors import WorkloadError

    factories = {
        "resnet-152": resnet152,
        "resnet152": resnet152,
        "gnmt": gnmt,
        "dlrm": dlrm,
        "transformer-1t": transformer_1t,
        "transformer1t": transformer_1t,
    }
    key = name.strip().lower()
    if key not in factories:
        known = ", ".join(sorted(set(factories)))
        raise WorkloadError(f"unknown workload {name!r}; known: {known}")
    return factories[key](**kwargs)


__all__ = [
    "Workload",
    "Layer",
    "CommAttachment",
    "GRADIENT_BYTES",
    "total_flops",
    "total_param_bytes",
    "ComputeModel",
    "A100_PEAK_FLOPS",
    "A100_MEMORY_BW",
    "CommScope",
    "ParallelismPlan",
    "data_parallel_plan",
    "model_parallel_plan",
    "split_leading_dims",
    "resnet152",
    "gnmt",
    "dlrm",
    "transformer_1t",
    "MP_GROUP_SIZE",
    "PAPER_WORKLOADS",
    "get_workload",
]
