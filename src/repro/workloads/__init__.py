"""DNN workload models (paper Sec. 5.2) and the workload registry."""

from collections.abc import Callable

from .base import Workload
from .compute import A100_MEMORY_BW, A100_PEAK_FLOPS, ComputeModel
from .dlrm import dlrm
from .gnmt import gnmt
from .layers import (
    GRADIENT_BYTES,
    CommAttachment,
    Layer,
    total_flops,
    total_param_bytes,
)
from .parallelism import (
    CommScope,
    ParallelismPlan,
    data_parallel_plan,
    model_parallel_plan,
    split_leading_dims,
)
from .profile import CommComputeProfile, comm_compute_profile
from .resnet import resnet152
from .serialization import (
    layer_from_dict,
    layer_to_dict,
    workload_from_dict,
    workload_to_dict,
)
from .synthetic import flood, flood_ladder
from .transformer import MP_GROUP_SIZE, transformer_1t

#: The paper's four evaluation workloads (Sec. 5.2), in Fig. 12 order.
PAPER_WORKLOADS = ("ResNet-152", "GNMT", "DLRM", "Transformer-1T")

_FACTORIES: dict[str, Callable[..., Workload]] = {
    "resnet-152": resnet152,
    "resnet152": resnet152,
    "gnmt": gnmt,
    "dlrm": dlrm,
    "transformer-1t": transformer_1t,
    "transformer1t": transformer_1t,
    "flood": flood,
}


def get_workload(name: str, **kwargs) -> Workload:
    """Instantiate a registered workload by name (case-insensitive).

    ``kwargs`` are forwarded to the factory (e.g.
    ``get_workload("transformer-1t", num_layers=8)`` or
    ``get_workload("flood", layers=1, param_mb=64)``).
    """
    from ..errors import WorkloadError

    key = name.strip().lower()
    if key not in _FACTORIES:
        known = ", ".join(workload_names())
        raise WorkloadError(f"unknown workload {name!r}; known: {known}")
    return _FACTORIES[key](**kwargs)


def workload_names() -> tuple[str, ...]:
    """All registered workload keys (aliases included), sorted."""
    return tuple(sorted(set(_FACTORIES)))


def register_workload(name: str, factory: Callable[..., Workload]) -> None:
    """Register a custom workload factory under a (case-insensitive) name.

    The name becomes valid wherever workloads are chosen by key: cluster
    :class:`~repro.cluster.JobSpec`, scenario specs, and CLI ``--workload``
    flags.
    """
    from ..errors import WorkloadError

    key = name.strip().lower()
    if not key:
        raise WorkloadError("workload name must be non-empty")
    if key in _FACTORIES:
        raise WorkloadError(f"workload {name!r} is already registered")
    _FACTORIES[key] = factory


__all__ = [
    "Workload",
    "Layer",
    "CommAttachment",
    "GRADIENT_BYTES",
    "total_flops",
    "total_param_bytes",
    "ComputeModel",
    "A100_PEAK_FLOPS",
    "A100_MEMORY_BW",
    "CommScope",
    "ParallelismPlan",
    "data_parallel_plan",
    "model_parallel_plan",
    "split_leading_dims",
    "resnet152",
    "gnmt",
    "dlrm",
    "transformer_1t",
    "flood",
    "flood_ladder",
    "MP_GROUP_SIZE",
    "PAPER_WORKLOADS",
    "get_workload",
    "workload_names",
    "register_workload",
    "CommComputeProfile",
    "comm_compute_profile",
    "layer_to_dict",
    "layer_from_dict",
    "workload_to_dict",
    "workload_from_dict",
]
