"""GNMT workload builder (Wu et al. [64]; paper Sec. 5.2).

Google's Neural Machine Translation model: an 8-layer LSTM encoder (first
layer bidirectional), an 8-layer LSTM decoder with additive attention, tied
1024-wide hidden states, and a 32k-vocabulary softmax classifier.

Parallelization: pure data-parallel, per-NPU mini-batch 128 (paper).  The
builder derives parameters and FLOPs from the LSTM closed forms:

* LSTM layer params = 4 x ((input + hidden) x hidden + hidden)
* LSTM layer FLOPs  = 2 x params x batch x seq_len

yielding ~220M parameters (~440 MB of FP16 gradients) for the defaults.
"""

from __future__ import annotations

from .base import Workload
from .layers import GRADIENT_BYTES, Layer


def _lstm_params(input_size: int, hidden: int) -> float:
    """Parameter count of one LSTM layer (4 gates, input + recurrent + bias)."""
    return 4.0 * ((input_size + hidden) * hidden + hidden)


def _lstm_layer(
    name: str,
    input_size: int,
    hidden: int,
    batch: float,
    seq_len: float,
    directions: int = 1,
) -> Layer:
    params = directions * _lstm_params(input_size, hidden)
    fwd_flops = 2.0 * params * batch * seq_len
    weight_bytes = params * GRADIENT_BYTES
    act_bytes = directions * batch * seq_len * hidden * GRADIENT_BYTES
    return Layer(
        name=name,
        fwd_flops=fwd_flops,
        bwd_flops=2.0 * fwd_flops,
        param_bytes=weight_bytes,
        fwd_mem_bytes=weight_bytes + act_bytes,
        bwd_mem_bytes=2.0 * (weight_bytes + act_bytes),
    )


def gnmt(
    batch_per_npu: int = 128,
    hidden: int = 1024,
    vocab: int = 32_000,
    seq_len: int = 50,
    encoder_layers: int = 8,
    decoder_layers: int = 8,
) -> Workload:
    """Build the GNMT workload (per-NPU batch 128 as in the paper)."""
    batch = float(batch_per_npu)
    layers: list[Layer] = []

    # Source embedding: a memory-bound gather.
    emb_params = vocab * hidden
    emb_bytes = batch * seq_len * hidden * GRADIENT_BYTES
    layers.append(
        Layer(
            name="enc_embedding",
            fwd_flops=0.0,
            bwd_flops=0.0,
            param_bytes=emb_params * GRADIENT_BYTES,
            fwd_mem_bytes=2.0 * emb_bytes,
            bwd_mem_bytes=2.0 * emb_bytes,
        )
    )
    # Encoder: bidirectional first layer, then 7 unidirectional layers
    # (layer 2 consumes the concatenated 2 x hidden bidirectional output).
    layers.append(
        _lstm_layer("enc_lstm1", hidden, hidden, batch, seq_len, directions=2)
    )
    for index in range(2, encoder_layers + 1):
        input_size = 2 * hidden if index == 2 else hidden
        layers.append(
            _lstm_layer(f"enc_lstm{index}", input_size, hidden, batch, seq_len)
        )

    # Target embedding.
    layers.append(
        Layer(
            name="dec_embedding",
            fwd_flops=0.0,
            bwd_flops=0.0,
            param_bytes=emb_params * GRADIENT_BYTES,
            fwd_mem_bytes=2.0 * emb_bytes,
            bwd_mem_bytes=2.0 * emb_bytes,
        )
    )
    # Additive attention over encoder states.
    attn_params = 2 * hidden * hidden + hidden
    attn_flops = 2.0 * batch * seq_len * seq_len * hidden
    layers.append(
        Layer(
            name="attention",
            fwd_flops=attn_flops + 2.0 * attn_params * batch * seq_len,
            bwd_flops=2.0 * (attn_flops + 2.0 * attn_params * batch * seq_len),
            param_bytes=attn_params * GRADIENT_BYTES,
            fwd_mem_bytes=attn_params * GRADIENT_BYTES + emb_bytes,
            bwd_mem_bytes=2.0 * (attn_params * GRADIENT_BYTES + emb_bytes),
        )
    )
    # Decoder: first layer consumes embedding + attention context.
    for index in range(1, decoder_layers + 1):
        input_size = 2 * hidden if index == 1 else hidden
        layers.append(
            _lstm_layer(f"dec_lstm{index}", input_size, hidden, batch, seq_len)
        )

    # Output projection / softmax classifier.
    proj_params = hidden * vocab + vocab
    proj_flops = 2.0 * batch * seq_len * hidden * vocab
    layers.append(
        Layer(
            name="classifier",
            fwd_flops=proj_flops,
            bwd_flops=2.0 * proj_flops,
            param_bytes=proj_params * GRADIENT_BYTES,
            fwd_mem_bytes=proj_params * GRADIENT_BYTES,
            bwd_mem_bytes=2.0 * proj_params * GRADIENT_BYTES,
        )
    )

    return Workload(
        name="GNMT",
        layers=layers,
        batch_per_npu=batch_per_npu,
        mp_group_size=None,
        dp_style="allreduce",
        notes="pure data-parallel; 8+8 LSTM layers, 32k vocab",
    )
