"""The replint engine: findings, rule metadata, suppressions, file walking.

The engine is deliberately small: rules are AST visitors (one combined
visitor in :mod:`.rules` emits findings for every enabled rule in a single
walk), and this module owns everything around them — the :class:`Finding`
record, the :class:`Rule` catalog entries, ``# replint: ignore[RPLxxx]``
suppression parsing, path collection, and rendering.

Scope model
-----------
Rules declare whether they apply everywhere (``sim_only=False``) or only to
*simulator code* (``sim_only=True``): files under the packages whose event
ordering must be deterministic (``repro/sim``, ``repro/cluster``,
``repro/collectives``, ``repro/core``, ``repro/training``).  A wall-clock
read in ``repro/api`` (wall-time measurement of a finished run) is fine;
the same call inside an event callback would silently couple simulated
timelines to host load.

Suppressions
------------
A finding on line N is suppressed by a trailing (or same-line) comment::

    t = time.time()  # replint: ignore[RPL001]

Several codes may be listed (``ignore[RPL001,RPL005]``); a bare
``ignore`` with no bracket suppresses every rule on that line, and a
``skip-file`` directive comment anywhere in the file skips it entirely.
Suppressions are counted and reported so they cannot accumulate unseen.
"""

from __future__ import annotations

import ast
import json
import re
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

#: Path fragments marking *simulator* code, where the determinism rules
#: apply.  Matching is substring-based on the posix form of the path, so it
#: works for ``src/repro/sim/engine.py`` and ``repro/cluster/jobs.py`` alike.
SIM_PATH_MARKERS: tuple[str, ...] = (
    "repro/sim",
    "repro/cluster",
    "repro/collectives",
    "repro/core",
    "repro/training",
)

_IGNORE_RE = re.compile(
    r"#\s*replint:\s*ignore(?:\[(?P<codes>[A-Z0-9,\s]+)\])?"
)
_SKIP_FILE_RE = re.compile(r"#\s*replint:\s*skip-file")


@dataclass(frozen=True)
class Rule:
    """Catalog entry for one lint rule (used by ``--list-rules`` and docs)."""

    code: str
    name: str
    summary: str
    hint: str
    #: When True the rule fires only in simulator code (see module docstring).
    sim_only: bool = True


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    hint: str

    def render(self, show_hint: bool = True) -> str:
        text = f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"
        if show_hint and self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass
class LintResult:
    """Everything one lint run produced, for reporting and tests."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    files_skipped: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.findings or self.errors else 0

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.files_checked += other.files_checked
        self.files_skipped += other.files_skipped
        self.errors.extend(other.errors)

    def to_json(self) -> str:
        return json.dumps(
            {
                "findings": [f.to_dict() for f in self.findings],
                "suppressed": [f.to_dict() for f in self.suppressed],
                "files_checked": self.files_checked,
                "files_skipped": self.files_skipped,
                "errors": self.errors,
            },
            indent=2,
        )


def is_sim_path(path: str) -> bool:
    """Whether ``path`` belongs to the determinism-scoped simulator code."""
    posix = path.replace("\\", "/")
    return any(marker in posix for marker in SIM_PATH_MARKERS)


def parse_suppressions(source: str) -> tuple[dict[int, set[str] | None], bool]:
    """Per-line suppression map and the file-level skip flag.

    The map sends line numbers to the suppressed code set, or ``None`` for
    a bare ``ignore`` (suppress everything on that line).
    """
    per_line: dict[int, set[str] | None] = {}
    skip_file = False
    for lineno, line in enumerate(source.splitlines(), start=1):
        if _SKIP_FILE_RE.search(line):
            skip_file = True
        match = _IGNORE_RE.search(line)
        if match is None:
            continue
        raw = match.group("codes")
        if raw is None:
            per_line[lineno] = None
        else:
            codes = {part.strip() for part in raw.split(",") if part.strip()}
            existing = per_line.get(lineno)
            if existing is None and lineno in per_line:
                continue  # bare ignore already covers the line
            per_line[lineno] = (existing or set()) | codes
    return per_line, skip_file


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    sim_scope: bool | None = None,
    select: Iterable[str] | None = None,
) -> LintResult:
    """Lint one source text; the unit the file walker and the tests share.

    ``sim_scope`` forces the simulator-code scope on or off; ``None``
    derives it from ``path`` (see :func:`is_sim_path`).  ``select``
    restricts checking to the given rule codes.
    """
    from .rules import run_rules

    result = LintResult(files_checked=1)
    suppress_map, skip_file = parse_suppressions(source)
    if skip_file:
        return LintResult(files_checked=0, files_skipped=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        result.errors.append(f"{path}: syntax error: {error.msg} (line {error.lineno})")
        return result
    scope = is_sim_path(path) if sim_scope is None else sim_scope
    selected = set(select) if select is not None else None
    for finding in run_rules(tree, path, sim_scope=scope):
        if selected is not None and finding.code not in selected:
            continue
        if finding.line in suppress_map:
            codes = suppress_map[finding.line]
            if codes is None or finding.code in codes:
                result.suppressed.append(finding)
                continue
        result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return result


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Expand files/directories into the sorted set of ``.py`` files."""
    seen: list[Path] = []
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            seen.extend(p for p in root.rglob("*.py"))
        elif root.suffix == ".py":
            seen.append(root)
    return iter(sorted(set(seen)))


def lint_paths(
    paths: Iterable[str],
    *,
    select: Iterable[str] | None = None,
) -> LintResult:
    """Lint every Python file under ``paths`` and merge the results."""
    total = LintResult()
    found_any = False
    for file_path in iter_python_files(paths):
        found_any = True
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as error:
            total.errors.append(f"{file_path}: {error}")
            continue
        total.extend(lint_source(source, str(file_path), select=select))
    if not found_any:
        total.errors.append(
            "no Python files found under: " + ", ".join(str(p) for p in paths)
        )
    total.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return total
