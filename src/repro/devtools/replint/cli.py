"""Command-line front end for replint (also the ``themis-lint`` script)."""

from __future__ import annotations

import argparse
from collections.abc import Sequence

from .engine import lint_paths
from .rules import RULES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="themis-lint",
        description=(
            "replint: repo-specific determinism and safety lints for the "
            "Themis simulator code"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src/)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (e.g. RPL001,RPL005)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit findings as JSON instead of text",
    )
    parser.add_argument(
        "--no-hints",
        action="store_true",
        help="omit fix hints from text output",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for code in sorted(RULES):
        rule = RULES[code]
        scope = "sim-only" if rule.sim_only else "repo-wide"
        lines.append(f"{code}  {rule.name}  [{scope}]")
        lines.append(f"    {rule.summary}")
        lines.append(f"    fix: {rule.hint}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    paths = args.paths or ["src"]
    select: list[str] | None = None
    if args.select:
        select = [code.strip() for code in args.select.split(",") if code.strip()]
        unknown = [code for code in select if code not in RULES]
        if unknown:
            parser.error(
                "unknown rule code(s): "
                + ", ".join(unknown)
                + " (see --list-rules)"
            )

    result = lint_paths(paths, select=select)

    if args.json:
        print(result.to_json())
        return result.exit_code

    for finding in result.findings:
        print(finding.render(show_hint=not args.no_hints))
    for error in result.errors:
        print(f"error: {error}")
    tail = (
        f"{len(result.findings)} finding(s), "
        f"{len(result.suppressed)} suppressed, "
        f"{result.files_checked} file(s) checked"
    )
    if result.files_skipped:
        tail += f", {result.files_skipped} skipped"
    print(tail)
    return result.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
