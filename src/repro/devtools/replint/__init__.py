"""replint — AST lint pack for deterministic simulator code.

Usage::

    python -m repro.devtools.replint src/            # lint a tree
    themis-lint --list-rules                         # rule catalog
    themis-lint --select RPL001,RPL005 src/repro/sim # subset of rules

See :mod:`repro.devtools.replint.rules` for the rule catalog and
``docs/correctness.md`` for the rationale behind each rule.
"""

from .cli import main
from .engine import (
    SIM_PATH_MARKERS,
    Finding,
    LintResult,
    Rule,
    is_sim_path,
    lint_paths,
    lint_source,
)
from .rules import RULES

__all__ = [
    "RULES",
    "SIM_PATH_MARKERS",
    "Finding",
    "LintResult",
    "Rule",
    "is_sim_path",
    "lint_paths",
    "lint_source",
    "main",
]
