"""The replint rule pack: repo-specific determinism and safety checks.

One combined :class:`ast.NodeVisitor` walks each file once and emits
findings for every rule; the :data:`RULES` catalog carries the metadata
(``--list-rules``, docs, tests).  Rule rationale lives in
``docs/correctness.md``; in one line each:

=======  ==============================================================
RPL001   No wall-clock reads in simulator code — timelines must depend
         only on the event engine's clock, never on host time.
RPL002   No unseeded module-level ``random`` — a trace built from the
         global RNG differs run to run; use ``random.Random(seed)``.
RPL003   No iteration over sets (or list()/tuple() of a set) — set order
         is hash-seed dependent and would feed event ordering.
RPL004   No ``id()`` as a key or sort key — CPython addresses vary run
         to run; use a stable identity such as ``OpState.key``.
RPL005   No ``==``/``!=`` on simulated timestamps — accumulated float
         round-off makes exact equality timing-dependent; use the
         engine's tolerance helpers (``times_close``) or ``math.isnan``.
RPL006   No ``object.__setattr__`` outside ``__init__``/``__post_init__``
         /``__new__`` — mutating frozen specs breaks the serialization
         and caching contracts built on their immutability.
RPL007   No mutable default arguments — the shared default leaks state
         across calls (and across simulations).
=======  ==============================================================
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .engine import Finding, Rule

RULES: dict[str, Rule] = {
    rule.code: rule
    for rule in (
        Rule(
            code="RPL001",
            name="wall-clock-in-sim",
            summary="wall-clock read in simulator code",
            hint=(
                "simulator code must read time from the EventQueue clock "
                "(engine.now); wall-clock belongs outside sim/cluster/"
                "collectives (e.g. report wall_time in repro.api)"
            ),
            sim_only=True,
        ),
        Rule(
            code="RPL002",
            name="unseeded-random",
            summary="module-level (unseeded) random in simulator code",
            hint=(
                "use an explicit random.Random(seed) instance so traces are "
                "reproducible (see repro.cluster.jobs.poisson_trace)"
            ),
            sim_only=True,
        ),
        Rule(
            code="RPL003",
            name="set-iteration-order",
            summary="iteration over a set (hash-order dependent)",
            hint=(
                "wrap in sorted(...) or keep an insertion-ordered dict/list; "
                "set order depends on the hash seed and would make event "
                "ordering irreproducible"
            ),
            sim_only=True,
        ),
        Rule(
            code="RPL004",
            name="id-as-key",
            summary="id() used as a key (address-dependent identity)",
            hint=(
                "object addresses differ run to run; key on a stable "
                "identity instead (e.g. OpState.key, request_id, name)"
            ),
            sim_only=True,
        ),
        Rule(
            code="RPL005",
            name="float-time-equality",
            summary="==/!= on simulated timestamps",
            hint=(
                "exact float equality on times breaks under accumulated "
                "round-off; use repro.sim.times_close(a, b), ordered "
                "comparisons, or math.isnan for NaN sentinels"
            ),
            sim_only=True,
        ),
        Rule(
            code="RPL006",
            name="frozen-spec-mutation",
            summary="object.__setattr__ outside __init__/__post_init__",
            hint=(
                "frozen dataclasses may self-initialize in __post_init__ "
                "only; elsewhere build a new instance with dataclasses."
                "replace(...) instead of mutating"
            ),
            sim_only=False,
        ),
        Rule(
            code="RPL007",
            name="mutable-default-arg",
            summary="mutable default argument",
            hint=(
                "default to None and create the list/dict/set inside the "
                "function; the shared default object leaks state across "
                "calls"
            ),
            sim_only=False,
        ),
    )
}

#: ``time`` module functions that read the host clock.
_WALL_CLOCK_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)
#: ``datetime``/``date`` constructors that read the host clock.
_WALL_CLOCK_DATE_ATTRS = frozenset({"now", "utcnow", "today"})
_DATEY_NAMES = frozenset({"datetime", "date"})

#: Module-level ``random.X`` calls that draw from the unseeded global RNG.
_GLOBAL_RANDOM_ATTRS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "paretovariate",
        "lognormvariate",
        "vonmisesvariate",
        "weibullvariate",
        "triangular",
        "getrandbits",
        "randbytes",
        "seed",
    }
)

#: Attribute/variable names treated as simulated timestamps by RPL005.
_TIME_NAME_EXACT = frozenset({"now", "time"})
_TIME_NAME_SUFFIXES = ("_time", "_since", "_at", "_deadline")

#: Constructors whose zero-argument call builds a mutable container.
_MUTABLE_FACTORIES = frozenset({"list", "dict", "set"})


def _terminal_name(node: ast.expr) -> str | None:
    """The identifier a Name/Attribute expression ends in, if any."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_time_like(node: ast.expr) -> bool:
    """Whether an expression reads like a simulated timestamp (RPL005)."""
    name = _terminal_name(node)
    if name is None:
        return False
    return name in _TIME_NAME_EXACT or name.endswith(_TIME_NAME_SUFFIXES)


def _is_set_expr(node: ast.expr) -> bool:
    """Set display, set comprehension, or ``set(...)``/``frozenset(...)``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_FACTORIES
    )


#: Methods in which frozen dataclasses may legitimately self-initialize.
_SETATTR_OK_SCOPES = frozenset({"__init__", "__post_init__", "__new__", "__setstate__"})


class _Checker(ast.NodeVisitor):
    """Single-pass visitor emitting findings for every enabled rule."""

    def __init__(self, path: str, sim_scope: bool) -> None:
        self.path = path
        self.sim_scope = sim_scope
        self.findings: list[Finding] = []
        self._function_stack: list[str] = []

    # --- emission -----------------------------------------------------------
    def _emit(self, node: ast.AST, code: str, message: str) -> None:
        rule = RULES[code]
        if rule.sim_only and not self.sim_scope:
            return
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                code=code,
                message=message,
                hint=rule.hint,
            )
        )

    # --- function scope tracking (RPL006 exemptions, RPL007) ----------------
    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        args = node.args
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                self._emit(
                    default,
                    "RPL007",
                    f"function {node.name!r} has a mutable default argument",
                )
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            if _is_mutable_default(default):
                self._emit(default, "RPL007", "lambda has a mutable default argument")
        self.generic_visit(node)

    # --- calls (RPL001, RPL002, RPL004, RPL006) -----------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            self._check_attribute_call(node, func)
        elif isinstance(func, ast.Name):
            self._check_name_call(node, func)
        # ``key=id`` hands the address-identity function straight to a sort.
        for keyword in node.keywords:
            if (
                keyword.arg == "key"
                and isinstance(keyword.value, ast.Name)
                and keyword.value.id == "id"
            ):
                self._emit(
                    keyword.value, "RPL004", "id used as a sort/group key"
                )
        self.generic_visit(node)

    def _check_attribute_call(self, node: ast.Call, func: ast.Attribute) -> None:
        base = func.value
        base_name = _terminal_name(base)
        if base_name == "time" and func.attr in _WALL_CLOCK_TIME_ATTRS:
            self._emit(node, "RPL001", f"wall-clock read time.{func.attr}()")
        elif base_name in _DATEY_NAMES and func.attr in _WALL_CLOCK_DATE_ATTRS:
            self._emit(
                node, "RPL001", f"wall-clock read {base_name}.{func.attr}()"
            )
        elif (
            isinstance(base, ast.Name)
            and base.id == "random"
            and func.attr in _GLOBAL_RANDOM_ATTRS
        ):
            self._emit(
                node,
                "RPL002",
                f"global-RNG call random.{func.attr}() (unseeded, "
                "process-wide state)",
            )
        elif (
            isinstance(base, ast.Name)
            and base.id == "random"
            and func.attr == "Random"
            and not node.args
            and not node.keywords
        ):
            self._emit(
                node, "RPL002", "random.Random() constructed without a seed"
            )
        elif (
            isinstance(base, ast.Name)
            and base.id == "object"
            and func.attr == "__setattr__"
            and not (
                self._function_stack
                and self._function_stack[-1] in _SETATTR_OK_SCOPES
            )
        ):
            scope = (
                self._function_stack[-1] if self._function_stack else "<module>"
            )
            self._emit(
                node,
                "RPL006",
                f"object.__setattr__ in {scope!r} mutates a frozen instance",
            )

    def _check_name_call(self, node: ast.Call, func: ast.Name) -> None:
        if func.id == "Random" and not node.args and not node.keywords:
            self._emit(
                node, "RPL002", "Random() constructed without a seed"
            )
        elif func.id in ("list", "tuple", "sorted") and node.args:
            arg = node.args[0]
            if _is_set_expr(arg) and func.id != "sorted":
                self._emit(
                    arg,
                    "RPL003",
                    f"{func.id}() materializes a set in hash order",
                )

    # --- iteration (RPL003) -------------------------------------------------
    def _check_iter(self, iterable: ast.expr) -> None:
        if _is_set_expr(iterable):
            self._emit(iterable, "RPL003", "iteration over a set")
        elif (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in ("enumerate", "reversed", "list", "tuple", "iter")
            and iterable.args
            and _is_set_expr(iterable.args[0])
        ):
            self._emit(
                iterable.args[0],
                "RPL003",
                f"iteration over a set via {iterable.func.id}()",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension_node(
        self,
        node: ast.ListComp | ast.SetComp | ast.DictComp | ast.GeneratorExp,
    ) -> None:
        for generator in node.generators:
            self._check_iter(generator.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension_node(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension_node(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension_node(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension_node(node)

    # --- subscripts (RPL004) ------------------------------------------------
    def visit_Subscript(self, node: ast.Subscript) -> None:
        index = node.slice
        if (
            isinstance(index, ast.Call)
            and isinstance(index.func, ast.Name)
            and index.func.id == "id"
        ):
            self._emit(index, "RPL004", "id() used as a subscript key")
        self.generic_visit(node)

    # --- comparisons (RPL004 membership, RPL005) ----------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Eq, ast.NotEq)):
                if _is_time_like(left) or _is_time_like(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    self._emit(
                        node,
                        "RPL005",
                        f"{symbol} on simulated timestamps "
                        f"({ast.unparse(left)} {symbol} {ast.unparse(right)})",
                    )
            if isinstance(op, (ast.In, ast.NotIn)):
                if (
                    isinstance(left, ast.Call)
                    and isinstance(left.func, ast.Name)
                    and left.func.id == "id"
                ):
                    self._emit(
                        left, "RPL004", "id() used as a membership key"
                    )
        self.generic_visit(node)


def run_rules(tree: ast.AST, path: str, *, sim_scope: bool) -> Iterator[Finding]:
    """Run every rule over one parsed module; yields findings unsorted."""
    checker = _Checker(path, sim_scope)
    checker.visit(tree)
    yield from checker.findings
