"""repro.devtools — correctness tooling for the simulator codebase.

Two machine-checked guarantees back the repo's determinism and
conservation claims (see ``docs/correctness.md``):

* :mod:`repro.devtools.replint` — a repo-specific AST lint pack that
  forbids nondeterminism sources (wall-clock reads, unseeded RNG, set
  iteration, ``id()`` keys, float time equality, frozen-spec mutation,
  mutable default arguments) in simulator code at review time.  Run it
  with ``python -m repro.devtools.replint src/`` or the ``themis-lint``
  console script.
* :mod:`repro.sim.audit` — the runtime :class:`~repro.sim.audit.
  InvariantAuditor` sanitizer that checks conservation laws while a
  simulation runs (opt-in; see ``THEMIS_AUDIT``).

This package is import-light on purpose: nothing here is imported by the
simulation hot path.
"""

from .replint import RULES, Finding, lint_paths, lint_source

__all__ = ["Finding", "RULES", "lint_paths", "lint_source"]
