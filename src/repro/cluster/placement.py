"""Network-aware automatic job placement for the multi-job simulator.

Themis schedules collectives *given* where a job's communicators land;
until this module, the reproduction pinned every job to a dimension subset
by hand (``JobSpec.dim_indices``).  CASSINI (Rajasekaran et al.) shows the
next win lives one layer up: *where* jobs land decides which jobs contend,
and placing jobs whose communication phases are complementary on the same
links lets them interleave instead of collide.  This module adds that
layer as a pluggable policy, mirroring ``fairness.py``'s shape:

* :class:`ManualPlacement` — today's behavior (the default): each job's
  communicators span exactly its ``JobSpec.dim_indices``;
* :class:`AllDimsPlacement` — every job spans every platform dimension
  (the naive baseline: maximal bandwidth per job, maximal contention);
* :class:`LoadBalancedPlacement` — bin-packing: an arriving job takes the
  dimensions with the least outstanding load, read live from each
  :class:`~repro.sim.executor.DimensionChannel` (outstanding bytes) and
  from the cluster's unfinished-tenant assignment counts, under an
  optional per-dimension tenant capacity;
* :class:`InterleavedPlacement` — CASSINI-style: each job's communication
  duty cycle is estimated from its :class:`~repro.workloads.Workload`
  compute/comm profile (:func:`repro.workloads.comm_compute_profile`), and
  an arriving job takes the dimensions where the duty cycles already
  resident leave the most headroom — comm-heavy jobs land next to
  compute-heavy ones (complementary phases interleave) and away from each
  other (colliding phases serialize).

A policy is a strategy object: :meth:`PlacementPolicy.prepare` is called
once at simulation time zero with the :class:`ClusterSimulator` about to
run; :meth:`PlacementPolicy.place` is called *at each job's arrival event*
and returns the dimension subset (or ``None`` for all dimensions) that
job's communicators will span for its lifetime.  Select one via
``ClusterConfig(placement="interleaved")``, a configured instance, or the
``ClusterScenario.placement`` spec field / ``themis-sim cluster
--placement`` flag.

See ``docs/placement.md`` for definitions, knobs, and a worked example.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from ..errors import ConfigError
from ..workloads.compute import ComputeModel
from ..workloads.profile import comm_compute_profile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .jobs import JobSpec
    from .simulator import ClusterSimulator


class PlacementPolicy(abc.ABC):
    """Assigns each arriving job the dimension subset it will span."""

    #: Registry key (``ClusterConfig(placement=<name>)``).
    name: str = "abstract"
    #: Human-readable label for reports.
    label: str = "?"

    def prepare(self, cluster: "ClusterSimulator") -> None:
        """Reset per-run state before ``cluster``'s jobs start (t=0)."""

    @abc.abstractmethod
    def place(
        self, spec: "JobSpec", cluster: "ClusterSimulator"
    ) -> "tuple[int, ...] | None":
        """Dimension subset for ``spec``, decided at its arrival instant.

        ``None`` means all platform dimensions.  Called exactly once per
        job, in arrival order, with the shared network's live state
        readable through ``cluster`` — the decision is permanent (no
        migration), exactly like a real scheduler binding communicators at
        job start.
        """

    def describe(self) -> str:
        """One-line policy description for report headers."""
        return self.label

    # --- shared helpers -----------------------------------------------------
    @staticmethod
    def _width(spec: "JobSpec", ndims: int, dims_per_job: int | None) -> int:
        """How many dimensions the arriving job should span.

        Explicit ``dims_per_job`` wins; otherwise a job that hand-declared
        ``dim_indices`` keeps its declared width, and everything else gets
        one dimension (the narrowest slice — placement then decides which).
        """
        if dims_per_job is not None:
            width = dims_per_job
        elif spec.dim_indices is not None:
            width = len(spec.dim_indices)
        else:
            width = 1
        return max(1, min(width, ndims))

    @staticmethod
    def _assigned_counts(cluster: "ClusterSimulator") -> list[int]:
        """Unfinished jobs currently assigned to each dimension.

        The simulator maintains this incrementally at each admission and
        departure (O(dims) per event); the old per-arrival scan over every
        driver made placement quadratic in trace length, which open-loop
        traces of 10k+ jobs cannot afford.
        """
        return list(cluster.dim_assigned_counts)


class ManualPlacement(PlacementPolicy):
    """Hand placement (the default): honor ``JobSpec.dim_indices`` as-is.

    Bit-for-bit identical to the pre-placement-layer behavior — the policy
    exists so hand placement can be *named* in reports and compared against
    the automatic policies.
    """

    name = "manual"
    label = "Manual (JobSpec.dim_indices)"

    def place(
        self, spec: "JobSpec", cluster: "ClusterSimulator"
    ) -> "tuple[int, ...] | None":
        return spec.dim_indices


class AllDimsPlacement(PlacementPolicy):
    """Every job spans every dimension (maximal bandwidth, maximal contention).

    The natural naive baseline: each job sees the platform's full aggregate
    bandwidth, but every pair of jobs contends on every wire — and a
    hierarchical collective over D dimensions also moves more total bytes
    per NPU than one over a subset, so the network carries strictly more
    load than under any narrower placement.
    """

    name = "all-dims"
    label = "All dimensions"

    def place(
        self, spec: "JobSpec", cluster: "ClusterSimulator"
    ) -> "tuple[int, ...] | None":
        return None


class LoadBalancedPlacement(PlacementPolicy):
    """Bin-packing on live per-dimension load.

    An arriving job takes the least-loaded dimensions, where load is read
    at the arrival instant as ``(outstanding bytes, unfinished tenants
    assigned)`` — the outstanding bytes live from each
    :class:`DimensionChannel` (enqueued but uncompleted work, so a
    dimension digesting a backlog looks as busy as it is even if the
    arriving instant falls between its batches), the tenant count from the
    cluster's placement records as the tie-break (it is the only signal in
    an arrival burst, before anyone has enqueued a byte).

    Parameters
    ----------
    dims_per_job:
        Dimensions each auto-placed job spans.  ``None`` (default) keeps a
        job's declared ``dim_indices`` width, or 1 when it declared none.
    capacity:
        Optional cap on unfinished tenants per dimension.  Dimensions at
        capacity are skipped while any dimension below it remains; when
        every dimension is saturated the job overflows onto the least-
        loaded ones (the cluster admits jobs rather than queueing them).
    """

    name = "load-balanced"
    label = "Load-balanced bin-packing"

    def __init__(
        self, dims_per_job: int | None = None, capacity: int | None = None
    ) -> None:
        if dims_per_job is not None and dims_per_job < 1:
            raise ConfigError(
                f"dims_per_job must be >= 1, got {dims_per_job}"
            )
        if capacity is not None and capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        self.dims_per_job = dims_per_job
        self.capacity = capacity

    def place(
        self, spec: "JobSpec", cluster: "ClusterSimulator"
    ) -> "tuple[int, ...] | None":
        ndims = len(cluster.topology.dims)
        width = self._width(spec, ndims, self.dims_per_job)
        counts = self._assigned_counts(cluster)
        ranked = sorted(
            range(ndims),
            key=lambda d: (
                cluster.network.channels[d].outstanding_bytes,
                counts[d],
                d,
            ),
        )
        if self.capacity is not None:
            open_dims = [d for d in ranked if counts[d] < self.capacity]
            full_dims = [d for d in ranked if counts[d] >= self.capacity]
            ranked = open_dims + full_dims  # overflow only when saturated
        chosen = tuple(sorted(ranked[:width]))
        return None if len(chosen) == ndims else chosen

    def describe(self) -> str:
        width = "job width" if self.dims_per_job is None else self.dims_per_job
        cap = "unbounded" if self.capacity is None else self.capacity
        return f"{self.label} (dims/job={width}, capacity={cap})"


class InterleavedPlacement(PlacementPolicy):
    """CASSINI-style placement on communication duty cycles.

    Each job's communication duty cycle — the fraction of an iteration its
    collectives keep the network busy, estimated analytically from its
    workload's compute/comm profile — is treated as the bandwidth-time it
    occupies on whichever dimensions it lands on.  An arriving job takes
    the dimensions where adding its duty cycle to the duty already resident
    overflows 1.0 the least: comm-heavy jobs are steered next to
    compute-heavy jobs (their phases interleave in time) and away from
    other comm-heavy jobs (their phases collide and serialize).  Ties break
    on the bin-packing load signals, so with homogeneous jobs the policy
    degrades gracefully to :class:`LoadBalancedPlacement`.

    Parameters
    ----------
    dims_per_job:
        As for :class:`LoadBalancedPlacement`.
    compute:
        Roofline model for the duty-cycle estimates (defaults to the same
        A100 roofline the training simulator uses).
    """

    name = "interleaved"
    label = "Interleaved (CASSINI-style duty cycles)"

    def __init__(
        self,
        dims_per_job: int | None = None,
        compute: ComputeModel | None = None,
    ) -> None:
        if dims_per_job is not None and dims_per_job < 1:
            raise ConfigError(
                f"dims_per_job must be >= 1, got {dims_per_job}"
            )
        self.dims_per_job = dims_per_job
        self.compute = compute or ComputeModel()
        #: ``job name -> {dim index: duty cycle}`` of placed jobs, rebuilt
        #: per run so one configured instance can be reused.
        self._duty: dict[str, dict[int, float]] = {}

    def prepare(self, cluster: "ClusterSimulator") -> None:
        self._duty = {}

    def _resident_duty(self, cluster: "ClusterSimulator") -> list[float]:
        """Summed duty cycles of unfinished placed jobs, per dimension.

        Iterates ``cluster.live_jobs`` — the simulator's insertion-ordered
        admitted-and-unfinished map — so the float summation order is the
        deterministic admission order (never a hash-salted set) and each
        arrival costs O(live jobs), not O(trace length).
        """
        ndims = len(cluster.topology.dims)
        resident = [0.0] * ndims
        for job_name in cluster.live_jobs:
            by_dim = self._duty.get(job_name)
            if by_dim is None:
                continue
            for dim_index, duty in by_dim.items():
                resident[dim_index] += duty
        return resident

    def place(
        self, spec: "JobSpec", cluster: "ClusterSimulator"
    ) -> "tuple[int, ...] | None":
        ndims = len(cluster.topology.dims)
        width = self._width(spec, ndims, self.dims_per_job)
        resident = self._resident_duty(cluster)
        counts = self._assigned_counts(cluster)
        # The profile is bandwidth-independent: compute it once, then read
        # the duty cycle off each dimension's bandwidth.
        profile = comm_compute_profile(spec.resolve_workload(), self.compute)
        duty_here = [
            profile.duty_cycle(cluster.topology.dims[d].bandwidth)
            for d in range(ndims)
        ]
        ranked = sorted(
            range(ndims),
            key=lambda d: (
                # Duty overflow past a full wire = expected collision.
                max(0.0, resident[d] + duty_here[d] - 1.0),
                resident[d],
                cluster.network.channels[d].outstanding_bytes,
                counts[d],
                d,
            ),
        )
        chosen = tuple(sorted(ranked[:width]))
        self._duty[spec.name] = {d: duty_here[d] for d in chosen}
        return None if len(chosen) == ndims else chosen

    def describe(self) -> str:
        width = "job width" if self.dims_per_job is None else self.dims_per_job
        return f"{self.label} (dims/job={width})"


_PLACEMENT: dict[str, type[PlacementPolicy]] = {
    "manual": ManualPlacement,
    "all-dims": AllDimsPlacement,
    "load-balanced": LoadBalancedPlacement,
    "interleaved": InterleavedPlacement,
}


def register_placement(name: str, policy: type[PlacementPolicy]) -> None:
    """Register a custom placement policy under ``name``.

    The name becomes valid everywhere policies are selected by key:
    ``ClusterConfig(placement=name)``, ``ClusterScenario.placement``, and
    the CLI's ``--placement`` choices (via the unified ``repro.api``
    registry).
    """
    lowered = name.strip().lower()
    if not lowered:
        raise ConfigError("placement policy name must be non-empty")
    if lowered in _PLACEMENT:
        raise ConfigError(f"placement policy {name!r} is already registered")
    _PLACEMENT[lowered] = policy


def get_placement(
    policy: "str | PlacementPolicy | None",
) -> PlacementPolicy | None:
    """Resolve a placement policy: name, configured instance, or ``None``.

    ``None`` means the implicit default (hand placement from
    ``JobSpec.dim_indices``) with no policy object attached; ``"manual"``
    is the same behavior but named in reports.
    """
    if policy is None or isinstance(policy, PlacementPolicy):
        return policy
    lowered = policy.strip().lower()
    if lowered not in _PLACEMENT:
        known = ", ".join(sorted(_PLACEMENT))
        raise ConfigError(
            f"unknown placement policy {policy!r}; known: {known}"
        )
    return _PLACEMENT[lowered]()


def placement_names() -> tuple[str, ...]:
    """Registry keys of the available placement policies."""
    return tuple(sorted(_PLACEMENT))
