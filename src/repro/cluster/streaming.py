"""Bounded-memory aggregation for open-loop cluster runs.

A steady-state run sees tens of thousands of job completions; keeping
every per-job record alive defeats the point of job departure.  This
module provides the two streaming accumulators the cluster layer uses:

* :class:`StreamingStats` — count / mean / min / max / sum-of-squares in
  O(1) memory, plus a seeded fixed-size reservoir (Vitter's algorithm R)
  for percentile estimates.  The reservoir RNG is seeded at construction,
  so identical ingestion orders produce identical percentile estimates —
  the determinism contract every report in this repo honors.
* :class:`EpochAccumulator` — per-epoch means over a measurement window
  (the convergence series behind the stationarity flag).

Both are pure consumers: they never schedule events or touch simulator
state, so attaching them cannot perturb a timeline.
"""

from __future__ import annotations

import random

from ..errors import ConfigError

#: Default reservoir size: percentile error ~1/sqrt(4096) is far below the
#: tolerances any statistical check in this repo uses.
DEFAULT_RESERVOIR = 4096


class StreamingStats:
    """Streaming count/mean/extrema/variance plus reservoir percentiles."""

    def __init__(
        self, reservoir_size: int = DEFAULT_RESERVOIR, seed: int = 0
    ) -> None:
        if reservoir_size < 1:
            raise ConfigError(
                f"reservoir size must be >= 1, got {reservoir_size}"
            )
        self._rng = random.Random(seed)
        self._size = reservoir_size
        self._reservoir: list[float] = []
        self.count = 0
        self.total = 0.0
        self.total_sq = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.total_sq += value * value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._reservoir) < self._size:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self._size:
                self._reservoir[slot] = value

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    @property
    def jain_index(self) -> float | None:
        """Jain's fairness index over *all* ingested values (exact).

        Uses the running sums, not the reservoir, so it stays exact past
        the reservoir cap.
        """
        if not self.count or self.total_sq <= 0:
            return None
        return (self.total * self.total) / (self.count * self.total_sq)

    def percentile(self, q: float) -> float | None:
        """Linear-interpolated percentile estimate from the reservoir.

        Exact while ingestion stays under the reservoir size; an unbiased
        sample estimate beyond it.  ``None`` before any ingestion — never
        NaN, so zero-job measurement windows render cleanly.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"percentile must be in [0, 1], got {q}")
        if not self._reservoir:
            return None
        ordered = sorted(self._reservoir)
        if len(ordered) == 1:
            return ordered[0]
        position = q * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        frac = position - low
        return ordered[low] * (1.0 - frac) + ordered[high] * frac

    def summary(self) -> dict:
        """JSON-plain digest (``None`` fields when nothing was ingested)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class EpochAccumulator:
    """Per-epoch means of a metric over ``[window_start, window_end]``."""

    def __init__(self, window_start: float, window_end: float, epochs: int) -> None:
        if epochs < 1:
            raise ConfigError(f"need >= 1 epochs, got {epochs}")
        if not window_end > window_start:
            raise ConfigError(
                f"need window_end > window_start, got "
                f"[{window_start}, {window_end}]"
            )
        self.window_start = window_start
        self.window_end = window_end
        self.epochs = epochs
        self._length = (window_end - window_start) / epochs
        self._totals = [0.0] * epochs
        self._counts = [0] * epochs

    def add(self, time: float, value: float) -> None:
        """Credit ``value`` to the epoch containing ``time`` (clamped)."""
        index = int((time - self.window_start) / self._length)
        index = max(0, min(self.epochs - 1, index))
        self._totals[index] += value
        self._counts[index] += 1

    def series(self) -> tuple[float | None, ...]:
        """Per-epoch means; ``None`` for epochs that saw no samples."""
        return tuple(
            total / count if count else None
            for total, count in zip(self._totals, self._counts)
        )

    def counts(self) -> tuple[int, ...]:
        return tuple(self._counts)

    def stationary(self, rtol: float = 0.25) -> bool | None:
        """First-half vs second-half mean comparison of the epoch series.

        ``True`` when both halves have samples and their means agree within
        relative tolerance ``rtol`` — a deliberately simple stationarity
        proxy (a drifting warm-up transient fails it; a converged run
        passes).  ``None`` when fewer than four epochs carry samples, i.e.
        there is not enough signal to judge either way.
        """
        values = [v for v in self.series() if v is not None]
        if len(values) < 4:
            return None
        half = len(values) // 2
        first = sum(values[:half]) / half
        second = sum(values[half:]) / (len(values) - half)
        scale = max(abs(first), abs(second))
        if scale <= 0:
            return True
        return abs(second - first) <= rtol * scale
