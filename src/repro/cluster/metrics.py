"""Per-job and cluster-wide metrics for multi-job simulations.

The scheduling literature's standard quantities:

* **JCT** (job completion time) — finish minus arrival, per job;
* **slowdown / rho** — JCT divided by the job's *isolated* JCT (same job,
  same platform, nobody else on the network); 1.0 means contention cost
  nothing.  This is exactly the *finish-time fairness* metric rho of
  Themis-fair (Mahajan et al.) — a fair cluster gives every job the same
  rho, so the per-job spread (max rho, Jain's index over rho) is the
  headline fairness number;
* **Jain's fairness index** — ``(sum rho)^2 / (n * sum rho^2)`` over the
  per-job rhos: 1.0 when all jobs suffer contention equally, approaching
  ``1/n`` when one job bears it all;
* **makespan** — first arrival to last finish, cluster-wide;
* **utilization** — the paper's Sec. 3 per-dimension BW utilization of the
  shared network over its communication-active window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.tables import format_table, ms, pct, ratio
from ..sim.stats import UtilizationReport
from ..training.results import IterationBreakdown
from ..units import fmt_time


@dataclass
class JobOutcome:
    """What happened to one job in a cluster run."""

    name: str
    workload_name: str
    scheduler_name: str
    arrival_time: float
    #: ``None`` when the run was truncated before this job completed.
    finish_time: float | None
    #: When the job was *admitted* (a concurrency slot became available and
    #: its loop was bound).  Equals ``arrival_time`` without admission
    #: control; ``None`` while the job still waits in the admission queue.
    admit_time: float | None = None
    iterations: list[IterationBreakdown] = field(default_factory=list)
    #: Time this job had at least one collective in flight on the network.
    comm_active_seconds: float = 0.0
    #: The job's completion time when run alone on the same platform with
    #: the same scheduler; ``None`` when the isolated baseline was skipped.
    isolated_time: float | None = None
    #: Dimension subset the job's communicators spanned (``None`` = all
    #: platform dimensions) — the placement decision made at arrival.
    placement: tuple[int, ...] | None = None
    #: False only when a truncated run cut the job before its arrival, so
    #: no placement was ever decided (``placement`` then echoes the spec's
    #: hand-declared dims).
    placed: bool = True
    #: Execution attempts (1 + retries).  Stays 1 without fault injection;
    #: 0 when the run stopped before the job was ever admitted.
    attempts: int = 1
    #: True when the job exhausted its retry budget and was abandoned
    #: (``finish_time`` is then ``None`` — a failed job never finishes).
    failed: bool = False
    #: Simulated time the retry budget ran out (``None`` unless ``failed``).
    fail_time: float | None = None
    #: Simulated seconds of progress discarded across all crashes (work
    #: since the last checkpoint, or since attempt start without one).
    lost_work: float = 0.0

    @property
    def finished(self) -> bool:
        return self.finish_time is not None

    @property
    def retries(self) -> int:
        """Retry count: attempts beyond the first."""
        return max(0, self.attempts - 1)

    @property
    def placement_label(self) -> str:
        """Compact dims label for tables (``all``, ``0+2``, or ``?``)."""
        if not self.placed:
            return "?"
        if self.placement is None:
            return "all"
        return "+".join(str(d) for d in self.placement)

    @property
    def jct(self) -> float | None:
        """Job completion time: finish minus arrival (``None`` if unfinished)."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time

    @property
    def queueing_delay(self) -> float | None:
        """Admission-queue wait: admit minus arrival (``None`` until admitted).

        Zero whenever a concurrency slot was free at arrival (and always,
        without ``max_concurrent``); positive only when admission control
        made the job wait for a departing tenant's slot.
        """
        if self.admit_time is None:
            return None
        return self.admit_time - self.arrival_time

    @property
    def slowdown(self) -> float | None:
        """JCT relative to the isolated run (``None`` if not computed)."""
        jct = self.jct
        if jct is None or self.isolated_time is None or self.isolated_time <= 0:
            return None
        return jct / self.isolated_time

    @property
    def rho(self) -> float | None:
        """Finish-time fairness rho (Themis-fair): shared JCT / isolated JCT.

        Numerically identical to :attr:`slowdown`; exposed under the
        fairness literature's name so fairness reports read naturally.
        """
        return self.slowdown

    @property
    def breakdown(self) -> IterationBreakdown:
        """Summed breakdown over the job's iterations."""
        combined = IterationBreakdown()
        for iteration in self.iterations:
            combined = combined + iteration
        return combined


@dataclass
class SteadyStateReport:
    """Window-scoped metrics of an open-loop run (warmup/measure mode).

    All per-job statistics cover only the *measured* jobs — jobs whose
    whole lifetime (arrival through finish) falls inside the measurement
    window ``[warmup_time, warmup_time + measure_time]`` — the standard
    steady-state discipline: the warm-up transient is discarded, and jobs
    straddling the window edges (arrived during warm-up, or cut off by the
    window end) are excluded rather than half-counted.

    Every distribution field is ``None`` (never NaN) when
    ``measured_jobs == 0``, so an empty window renders as a clear typed
    report instead of an exception.
    """

    warmup_time: float
    measure_time: float
    #: Arrivals / completions whose event fell inside the window (these
    #: count boundary-straddling jobs; ``measured_jobs`` does not).
    arrivals: int = 0
    completions: int = 0
    measured_jobs: int = 0
    #: Jobs whose retry budget ran out inside the window.  Failed jobs are
    #: counted here and *never* fed into the JCT/rho digests — abandoning a
    #: job must not read as a (vacuously fast) completion.
    failed_jobs: int = 0
    #: Highest simultaneous admitted-job count over the whole run (the
    #: bounded-memory headline: must stay far below total arrivals).
    peak_live_jobs: int = 0
    #: Time-average of the admitted-job count over the window.
    mean_live_jobs: float = 0.0
    #: ``mean_live_jobs / max_concurrent`` — measured slot occupancy (the
    #: empirical offered-load check); ``None`` without admission control.
    slot_utilization: float | None = None
    #: Streaming digests over measured jobs (see ``StreamingStats.summary``).
    queueing_delay: dict = field(default_factory=dict)
    jct: dict = field(default_factory=dict)
    rho: dict = field(default_factory=dict)
    #: Jain's index over measured-job rhos (``None`` without baselines).
    jain_rho: float | None = None
    #: Per-epoch mean of ``epoch_metric`` across the window (``None`` for
    #: epochs with no measured completions) — the convergence series.
    epoch_series: tuple[float | None, ...] = ()
    epoch_counts: tuple[int, ...] = ()
    #: ``"rho"`` with isolated baselines, ``"jct"`` without.
    epoch_metric: str = "rho"
    #: First-half vs second-half agreement of ``epoch_series``; ``None``
    #: when too few epochs carry samples to judge.
    stationary: bool | None = None

    @property
    def window_end(self) -> float:
        return self.warmup_time + self.measure_time

    def to_dict(self) -> dict:
        """JSON-plain form (embedded in ``RunReport.payload``)."""
        return {
            "warmup_time": self.warmup_time,
            "measure_time": self.measure_time,
            "arrivals": self.arrivals,
            "completions": self.completions,
            "measured_jobs": self.measured_jobs,
            "failed_jobs": self.failed_jobs,
            "peak_live_jobs": self.peak_live_jobs,
            "mean_live_jobs": self.mean_live_jobs,
            "slot_utilization": self.slot_utilization,
            "queueing_delay": dict(self.queueing_delay),
            "jct": dict(self.jct),
            "rho": dict(self.rho),
            "jain_rho": self.jain_rho,
            "epoch_series": list(self.epoch_series),
            "epoch_counts": list(self.epoch_counts),
            "epoch_metric": self.epoch_metric,
            "stationary": self.stationary,
        }

    def describe(self) -> str:
        """Human-readable steady-state block for cluster reports."""
        lines = [
            f"  steady state: window [{ms(self.warmup_time)}, "
            f"{ms(self.window_end)}], {self.arrivals} arrival(s), "
            f"{self.completions} completion(s), {self.measured_jobs} measured"
            + (
                f", {self.failed_jobs} failed"
                if self.failed_jobs
                else ""
            ),
            f"  live jobs: peak {self.peak_live_jobs}, "
            f"mean {self.mean_live_jobs:.2f}"
            + (
                f", slot occupancy {pct(self.slot_utilization)}"
                if self.slot_utilization is not None
                else ""
            ),
        ]
        if self.measured_jobs == 0:
            lines.append(
                "  no job's lifetime fell inside the measurement window; "
                "distribution metrics are undefined (not zero)"
            )
            return "\n".join(lines)

        def digest(label: str, stats: dict) -> str:
            mean = stats.get("mean")
            p50, p95, p99 = (stats.get(k) for k in ("p50", "p95", "p99"))
            if mean is None:
                return f"  {label}: n/a"
            if label == "rho":
                return (
                    f"  {label}: mean {mean:.2f}, p50 {p50:.2f}, "
                    f"p95 {p95:.2f}, p99 {p99:.2f}"
                )
            return (
                f"  {label}: mean {ms(mean)}, p50 {ms(p50)}, "
                f"p95 {ms(p95)}, p99 {ms(p99)}"
            )

        lines.append(digest("queueing delay", self.queueing_delay))
        lines.append(digest("measured JCT", self.jct))
        if self.rho.get("mean") is not None:
            lines.append(digest("rho", self.rho))
            if self.jain_rho is not None:
                lines.append(f"  Jain index over measured rho: {self.jain_rho:.3f}")
        series = ", ".join(
            "-" if v is None else f"{v:.2f}" for v in self.epoch_series
        )
        verdict = (
            "inconclusive" if self.stationary is None
            else ("stationary" if self.stationary else "NOT stationary")
        )
        lines.append(
            f"  per-epoch {self.epoch_metric}: [{series}] -> {verdict}"
        )
        return "\n".join(lines)


@dataclass
class ClusterReport:
    """Results of one multi-job cluster simulation."""

    topology_name: str
    jobs: list[JobOutcome]
    #: Shared-network BW utilization over the comm-active window (``None``
    #: when no communication happened).
    utilization: UtilizationReport | None = None
    #: Cluster-wide communication-active time (any tenant in flight).
    comm_active_seconds: float = 0.0
    #: ``describe()`` of the fairness policy in force (``None`` = default
    #: first-come sharing with no policy object attached).
    fairness_name: str | None = None
    #: ``describe()`` of the placement policy in force (``None`` = default
    #: hand placement with no policy object attached).
    placement_name: str | None = None
    #: Per-dimension busy seconds of the shared network (wire-occupancy
    #: time), the basis of the load-imbalance metric; empty when no
    #: communication happened.
    dim_load: tuple[float, ...] = ()
    #: Batch preemptions across all dimensions (non-zero only under the
    #: priority-preemption fairness policy).
    preemption_count: int = 0
    #: True when the run hit its event budget before every job finished;
    #: metrics then cover the *finished* jobs only and the makespan ends at
    #: ``truncated_at``, so a partial run cannot masquerade as a complete one.
    truncated: bool = False
    #: Simulated time at which the event budget cut the run short.
    truncated_at: float | None = None
    #: Measurement-window end at which a warmup/measure run deliberately
    #: stopped (unfinished jobs are then expected, not a deadlock).
    stopped_at: float | None = None
    #: Highest simultaneous admitted-job count (1 <= peak <= job count;
    #: bounded by ``max_concurrent`` under admission control).
    peak_live_jobs: int = 0
    #: Total jobs in the trace, including jobs an outcome cap slimmed or a
    #: measurement window cut before arrival; ``len(jobs)`` elsewhere.
    total_jobs: int = 0
    #: Window-scoped steady-state metrics (open-loop measurement mode only).
    steady_state: SteadyStateReport | None = None

    def job(self, name: str) -> JobOutcome:
        for outcome in self.jobs:
            if outcome.name == name:
                return outcome
        raise KeyError(f"no job named {name!r}")

    @property
    def finished_jobs(self) -> list[JobOutcome]:
        """Jobs that completed (all of them unless ``truncated``)."""
        return [job for job in self.jobs if job.finished]

    @property
    def unfinished_jobs(self) -> list[JobOutcome]:
        """Jobs still running when the run stopped.  Failed jobs are
        *terminal*, not unfinished — they appear in ``failed_jobs`` only.
        """
        return [job for job in self.jobs if not job.finished and not job.failed]

    @property
    def failed_jobs(self) -> list[JobOutcome]:
        """Jobs abandoned after exhausting their retry budget."""
        return [job for job in self.jobs if job.failed]

    @property
    def total_retries(self) -> int:
        """Crash-triggered restarts summed over all jobs (0 without faults)."""
        return sum(job.retries for job in self.jobs)

    @property
    def lost_work_seconds(self) -> float:
        """Simulated seconds of progress discarded to crashes, cluster-wide."""
        return sum(job.lost_work for job in self.jobs)

    @property
    def completion_rate(self) -> float | None:
        """Finished fraction of terminal jobs — the graceful-degradation
        headline under fault injection (1.0 when every job that ended,
        ended by finishing).  ``None`` when no job reached a terminal state.
        """
        terminal = len(self.finished_jobs) + len(self.failed_jobs)
        if terminal == 0:
            return None
        return len(self.finished_jobs) / terminal

    @property
    def makespan(self) -> float:
        """First arrival to last finish (to the cut, for truncated or
        window-stopped runs).  0.0 when nothing arrived or finished and no
        cut time is known — never a bare ``max()`` on an empty sequence,
        so a measurement window in which zero jobs complete still reports.
        """
        if not self.jobs:
            return 0.0
        start = min(job.arrival_time for job in self.jobs)
        ends = [
            job.finish_time
            for job in self.finished_jobs
            if job.finish_time is not None
        ]
        if self.truncated_at is not None:
            ends.append(self.truncated_at)
        if self.stopped_at is not None:
            ends.append(self.stopped_at)
        if not ends:
            return 0.0
        return max(max(ends) - start, 0.0)

    @property
    def mean_jct(self) -> float | None:
        """Mean JCT over finished jobs (``None`` if nothing finished)."""
        values = [job.jct for job in self.finished_jobs]
        return sum(values) / len(values) if values else None

    @property
    def max_jct(self) -> float | None:
        values = [job.jct for job in self.finished_jobs]
        return max(values) if values else None

    def _slowdowns(self) -> list[float]:
        return [job.slowdown for job in self.jobs if job.slowdown is not None]

    @property
    def mean_slowdown(self) -> float | None:
        values = self._slowdowns()
        return sum(values) / len(values) if values else None

    @property
    def max_slowdown(self) -> float | None:
        values = self._slowdowns()
        return max(values) if values else None

    @property
    def mean_rho(self) -> float | None:
        """Mean finish-time-fairness rho (alias of :attr:`mean_slowdown`)."""
        return self.mean_slowdown

    @property
    def max_rho(self) -> float | None:
        """Worst per-job rho — the fairness headline to minimize."""
        return self.max_slowdown

    @property
    def load_imbalance(self) -> float | None:
        """Max-to-mean ratio of per-dimension busy seconds.

        1.0 means every dimension carried the same wire time; D (the
        dimension count) means one dimension carried everything.  ``None``
        when no communication happened.  Automatic placement should pull
        this toward 1.0 while also improving JCT/makespan — spreading load
        is the mechanism, not the goal.
        """
        if not self.dim_load:
            return None
        mean = sum(self.dim_load) / len(self.dim_load)
        if mean <= 0:
            return None
        return max(self.dim_load) / mean

    @property
    def jains_fairness_index(self) -> float | None:
        """Jain's index over the per-job rhos (1.0 = perfectly fair).

        ``None`` when isolated baselines were not computed, so no rho
        exists to compare.
        """
        values = self._slowdowns()
        if not values:
            return None
        square_sum = sum(v * v for v in values)
        if square_sum <= 0:
            return None
        total = sum(values)
        return (total * total) / (len(values) * square_sum)

    #: Per-job table rows shown by ``describe`` before eliding (open-loop
    #: runs have thousands of jobs; the table is a sample, the streaming
    #: ``steady_state`` block the source of truth).
    _DESCRIBE_ROW_CAP = 20

    def describe(self) -> str:
        """Human-readable per-job table plus cluster-wide summary."""
        rows = []
        ordered = sorted(self.jobs, key=lambda j: (j.arrival_time, j.name))
        elided = max(0, len(ordered) - self._DESCRIBE_ROW_CAP)
        if elided:
            ordered = ordered[: self._DESCRIBE_ROW_CAP]
        for job in ordered:
            rows.append(
                (
                    job.name,
                    job.workload_name,
                    job.scheduler_name,
                    job.placement_label,
                    job.arrival_time,
                    job.jct if job.jct is not None else float("nan"),
                    job.isolated_time
                    if job.isolated_time is not None
                    else float("nan"),
                    job.slowdown if job.slowdown is not None else float("nan"),
                )
            )
        total = self.total_jobs or len(self.jobs)
        header = f"cluster on {self.topology_name}: {total} job(s)"
        if self.fairness_name is not None:
            header += f", fairness: {self.fairness_name}"
        if self.placement_name is not None:
            header += f", placement: {self.placement_name}"
        if self.truncated:
            header += (
                f" [TRUNCATED at {fmt_time(self.truncated_at or 0.0)}: "
                f"{len(self.unfinished_jobs)} job(s) still running]"
            )
        elif self.stopped_at is not None:
            header += (
                f" [measurement window closed at {fmt_time(self.stopped_at)}: "
                f"{len(self.unfinished_jobs)} job(s) still running]"
            )
        lines = [
            header,
            format_table(
                ["job", "workload", "sched", "dims", "arrival", "JCT",
                 "isolated", "rho"],
                rows,
                [str, str, str, str, ms, ms, ms, ratio],
                indent="  ",
            ),
        ]
        if elided:
            lines.append(f"  ... {elided} more job row(s) elided")
        lines += [
            f"  makespan {fmt_time(self.makespan)}, "
            f"mean JCT "
            f"{fmt_time(self.mean_jct) if self.mean_jct is not None else 'n/a'}, "
            f"comm-active {fmt_time(self.comm_active_seconds)}",
        ]
        failed = self.failed_jobs
        if failed or self.total_retries:
            lines.append(
                f"  faults: {len(failed)} job(s) failed, "
                f"{self.total_retries} retry(ies), "
                f"{fmt_time(self.lost_work_seconds)} lost work"
                + (
                    f", completion rate {pct(self.completion_rate)}"
                    if self.completion_rate is not None
                    else ""
                )
            )
        if self.mean_rho is not None:
            lines.append(
                f"  slowdown vs isolated (finish-time fairness rho): "
                f"mean {self.mean_rho:.2f}, max {self.max_rho:.2f}, "
                f"Jain index {self.jains_fairness_index:.3f}"
            )
        if self.preemption_count:
            lines.append(f"  preemptions: {self.preemption_count}")
        if self.load_imbalance is not None:
            per_dim = ", ".join(
                f"dim{i + 1}={fmt_time(t)}" for i, t in enumerate(self.dim_load)
            )
            lines.append(
                f"  dimension load (busy time): {per_dim}; "
                f"imbalance (max/mean) {self.load_imbalance:.2f}"
            )
        if self.utilization is not None:
            per_dim = ", ".join(
                f"dim{i + 1}={pct(u)}" for i, u in enumerate(self.utilization.per_dim)
            )
            lines.append(
                f"  BW utilization (comm-active window): "
                f"avg {pct(self.utilization.average)} [{per_dim}]"
            )
        if self.steady_state is not None:
            lines.append(self.steady_state.describe())
        return "\n".join(lines)
