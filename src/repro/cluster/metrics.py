"""Per-job and cluster-wide metrics for multi-job simulations.

The scheduling literature's standard quantities:

* **JCT** (job completion time) — finish minus arrival, per job;
* **slowdown / rho** — JCT divided by the job's *isolated* JCT (same job,
  same platform, nobody else on the network); 1.0 means contention cost
  nothing.  This is exactly the *finish-time fairness* metric rho of
  Themis-fair (Mahajan et al.) — a fair cluster gives every job the same
  rho, so the per-job spread (max rho, Jain's index over rho) is the
  headline fairness number;
* **Jain's fairness index** — ``(sum rho)^2 / (n * sum rho^2)`` over the
  per-job rhos: 1.0 when all jobs suffer contention equally, approaching
  ``1/n`` when one job bears it all;
* **makespan** — first arrival to last finish, cluster-wide;
* **utilization** — the paper's Sec. 3 per-dimension BW utilization of the
  shared network over its communication-active window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.tables import format_table, ms, pct, ratio
from ..sim.stats import UtilizationReport
from ..training.results import IterationBreakdown
from ..units import fmt_time


@dataclass
class JobOutcome:
    """What happened to one job in a cluster run."""

    name: str
    workload_name: str
    scheduler_name: str
    arrival_time: float
    #: ``None`` when the run was truncated before this job completed.
    finish_time: float | None
    iterations: list[IterationBreakdown] = field(default_factory=list)
    #: Time this job had at least one collective in flight on the network.
    comm_active_seconds: float = 0.0
    #: The job's completion time when run alone on the same platform with
    #: the same scheduler; ``None`` when the isolated baseline was skipped.
    isolated_time: float | None = None
    #: Dimension subset the job's communicators spanned (``None`` = all
    #: platform dimensions) — the placement decision made at arrival.
    placement: tuple[int, ...] | None = None
    #: False only when a truncated run cut the job before its arrival, so
    #: no placement was ever decided (``placement`` then echoes the spec's
    #: hand-declared dims).
    placed: bool = True

    @property
    def finished(self) -> bool:
        return self.finish_time is not None

    @property
    def placement_label(self) -> str:
        """Compact dims label for tables (``all``, ``0+2``, or ``?``)."""
        if not self.placed:
            return "?"
        if self.placement is None:
            return "all"
        return "+".join(str(d) for d in self.placement)

    @property
    def jct(self) -> float | None:
        """Job completion time: finish minus arrival (``None`` if unfinished)."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time

    @property
    def slowdown(self) -> float | None:
        """JCT relative to the isolated run (``None`` if not computed)."""
        jct = self.jct
        if jct is None or self.isolated_time is None or self.isolated_time <= 0:
            return None
        return jct / self.isolated_time

    @property
    def rho(self) -> float | None:
        """Finish-time fairness rho (Themis-fair): shared JCT / isolated JCT.

        Numerically identical to :attr:`slowdown`; exposed under the
        fairness literature's name so fairness reports read naturally.
        """
        return self.slowdown

    @property
    def breakdown(self) -> IterationBreakdown:
        """Summed breakdown over the job's iterations."""
        combined = IterationBreakdown()
        for iteration in self.iterations:
            combined = combined + iteration
        return combined


@dataclass
class ClusterReport:
    """Results of one multi-job cluster simulation."""

    topology_name: str
    jobs: list[JobOutcome]
    #: Shared-network BW utilization over the comm-active window (``None``
    #: when no communication happened).
    utilization: UtilizationReport | None = None
    #: Cluster-wide communication-active time (any tenant in flight).
    comm_active_seconds: float = 0.0
    #: ``describe()`` of the fairness policy in force (``None`` = default
    #: first-come sharing with no policy object attached).
    fairness_name: str | None = None
    #: ``describe()`` of the placement policy in force (``None`` = default
    #: hand placement with no policy object attached).
    placement_name: str | None = None
    #: Per-dimension busy seconds of the shared network (wire-occupancy
    #: time), the basis of the load-imbalance metric; empty when no
    #: communication happened.
    dim_load: tuple[float, ...] = ()
    #: Batch preemptions across all dimensions (non-zero only under the
    #: priority-preemption fairness policy).
    preemption_count: int = 0
    #: True when the run hit its event budget before every job finished;
    #: metrics then cover the *finished* jobs only and the makespan ends at
    #: ``truncated_at``, so a partial run cannot masquerade as a complete one.
    truncated: bool = False
    #: Simulated time at which the event budget cut the run short.
    truncated_at: float | None = None

    def job(self, name: str) -> JobOutcome:
        for outcome in self.jobs:
            if outcome.name == name:
                return outcome
        raise KeyError(f"no job named {name!r}")

    @property
    def finished_jobs(self) -> list[JobOutcome]:
        """Jobs that completed (all of them unless ``truncated``)."""
        return [job for job in self.jobs if job.finished]

    @property
    def unfinished_jobs(self) -> list[JobOutcome]:
        return [job for job in self.jobs if not job.finished]

    @property
    def makespan(self) -> float:
        """First arrival to last finish (to the cut, for truncated runs)."""
        start = min(job.arrival_time for job in self.jobs)
        ends = [job.finish_time for job in self.finished_jobs]
        if self.truncated_at is not None:
            ends.append(self.truncated_at)
        return max(ends) - start

    @property
    def mean_jct(self) -> float | None:
        """Mean JCT over finished jobs (``None`` if nothing finished)."""
        values = [job.jct for job in self.finished_jobs]
        return sum(values) / len(values) if values else None

    @property
    def max_jct(self) -> float | None:
        values = [job.jct for job in self.finished_jobs]
        return max(values) if values else None

    def _slowdowns(self) -> list[float]:
        return [job.slowdown for job in self.jobs if job.slowdown is not None]

    @property
    def mean_slowdown(self) -> float | None:
        values = self._slowdowns()
        return sum(values) / len(values) if values else None

    @property
    def max_slowdown(self) -> float | None:
        values = self._slowdowns()
        return max(values) if values else None

    @property
    def mean_rho(self) -> float | None:
        """Mean finish-time-fairness rho (alias of :attr:`mean_slowdown`)."""
        return self.mean_slowdown

    @property
    def max_rho(self) -> float | None:
        """Worst per-job rho — the fairness headline to minimize."""
        return self.max_slowdown

    @property
    def load_imbalance(self) -> float | None:
        """Max-to-mean ratio of per-dimension busy seconds.

        1.0 means every dimension carried the same wire time; D (the
        dimension count) means one dimension carried everything.  ``None``
        when no communication happened.  Automatic placement should pull
        this toward 1.0 while also improving JCT/makespan — spreading load
        is the mechanism, not the goal.
        """
        if not self.dim_load:
            return None
        mean = sum(self.dim_load) / len(self.dim_load)
        if mean <= 0:
            return None
        return max(self.dim_load) / mean

    @property
    def jains_fairness_index(self) -> float | None:
        """Jain's index over the per-job rhos (1.0 = perfectly fair).

        ``None`` when isolated baselines were not computed, so no rho
        exists to compare.
        """
        values = self._slowdowns()
        if not values:
            return None
        square_sum = sum(v * v for v in values)
        if square_sum <= 0:
            return None
        total = sum(values)
        return (total * total) / (len(values) * square_sum)

    def describe(self) -> str:
        """Human-readable per-job table plus cluster-wide summary."""
        rows = []
        for job in sorted(self.jobs, key=lambda j: j.arrival_time):
            rows.append(
                (
                    job.name,
                    job.workload_name,
                    job.scheduler_name,
                    job.placement_label,
                    job.arrival_time,
                    job.jct if job.jct is not None else float("nan"),
                    job.isolated_time if job.isolated_time is not None else float("nan"),
                    job.slowdown if job.slowdown is not None else float("nan"),
                )
            )
        header = f"cluster on {self.topology_name}: {len(self.jobs)} job(s)"
        if self.fairness_name is not None:
            header += f", fairness: {self.fairness_name}"
        if self.placement_name is not None:
            header += f", placement: {self.placement_name}"
        if self.truncated:
            header += (
                f" [TRUNCATED at {fmt_time(self.truncated_at or 0.0)}: "
                f"{len(self.unfinished_jobs)} job(s) still running]"
            )
        lines = [
            header,
            format_table(
                ["job", "workload", "sched", "dims", "arrival", "JCT",
                 "isolated", "rho"],
                rows,
                [str, str, str, str, ms, ms, ms, ratio],
                indent="  ",
            ),
            f"  makespan {fmt_time(self.makespan)}, "
            f"mean JCT "
            f"{fmt_time(self.mean_jct) if self.mean_jct is not None else 'n/a'}, "
            f"comm-active {fmt_time(self.comm_active_seconds)}",
        ]
        if self.mean_rho is not None:
            lines.append(
                f"  slowdown vs isolated (finish-time fairness rho): "
                f"mean {self.mean_rho:.2f}, max {self.max_rho:.2f}, "
                f"Jain index {self.jains_fairness_index:.3f}"
            )
        if self.preemption_count:
            lines.append(f"  preemptions: {self.preemption_count}")
        if self.load_imbalance is not None:
            per_dim = ", ".join(
                f"dim{i + 1}={fmt_time(t)}" for i, t in enumerate(self.dim_load)
            )
            lines.append(
                f"  dimension load (busy time): {per_dim}; "
                f"imbalance (max/mean) {self.load_imbalance:.2f}"
            )
        if self.utilization is not None:
            per_dim = ", ".join(
                f"dim{i + 1}={pct(u)}" for i, u in enumerate(self.utilization.per_dim)
            )
            lines.append(
                f"  BW utilization (comm-active window): "
                f"avg {pct(self.utilization.average)} [{per_dim}]"
            )
        return "\n".join(lines)
