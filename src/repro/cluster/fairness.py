"""Cluster-level fairness policies for the multi-job simulator.

PR 1's :class:`ClusterSimulator` lets several training jobs contend for one
shared network, but contending chunk batches are served first-come: a large
tenant with many in-flight chunks can starve small ones.  This module adds
the cluster-scheduling layer on top — the objectives of Themis-fair GPU
scheduling (Mahajan et al.) and CASSINI applied to the collective-level
network model of the (ISCA'22) Themis paper this repo reproduces:

* :class:`FifoSharing` — the PR 1 status quo, named so it can be compared;
* :class:`WeightedSharing` — static weighted per-tenant bandwidth shares:
  concurrent batches from different jobs split each dimension's bandwidth
  in proportion to ``JobSpec.weight`` (GPS-style fluid sharing);
* :class:`FinishTimeFairness` — tracks each job's finish-time-fairness
  metric rho = (projected) shared JCT / isolated JCT online and
  periodically re-weights tenants toward equal rho: jobs that contention
  hurt most get a larger bandwidth share;
* :class:`PriorityPreemption` — a strictly higher-priority job's arriving
  chunk work pauses a lower-priority in-flight batch on a saturated
  dimension; the paused batch's leftover transfer re-runs later
  (work-conserving).

A policy is a small strategy object: :meth:`FairnessPolicy.prepare` is
called once, at simulation time zero, with the :class:`ClusterSimulator`
about to run; it configures the shared network (tenant weights, preemption)
and may schedule its own recurring events on the simulator's engine (the
finish-time-fair re-weighting tick).  Select one via
``ClusterConfig(fairness="ftf")`` or pass a configured instance.

See ``docs/fairness.md`` for definitions, knobs, and a worked example.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from ..errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .simulator import ClusterSimulator


class FairnessPolicy(abc.ABC):
    """Configures how contending tenants share the cluster network."""

    #: Registry key (``ClusterConfig(fairness=<name>)``).
    name: str = "abstract"
    #: Human-readable label for reports.
    label: str = "?"
    #: Whether the policy drives the network's weighted-sharing /
    #: preemption hooks — only the analytical backend has them (the spec
    #: layer rejects such policies on other network backends up front).
    requires_sharing: bool = False

    def prepare(self, cluster: "ClusterSimulator") -> None:
        """Configure ``cluster`` before its jobs start (engine at t=0)."""

    def describe(self) -> str:
        """One-line policy description for report headers."""
        return self.label


class FifoSharing(FairnessPolicy):
    """First-come sharing (the default): no weights, no preemption.

    Contending chunk batches serialize on each dimension's wire in the
    order the intra-dimension policy picks them; a tenant's share of the
    bandwidth is whatever its queue pressure wins.
    """

    name = "fifo"
    label = "FIFO"


class WeightedSharing(FairnessPolicy):
    """Static weighted per-tenant bandwidth shares.

    Each dimension serves one in-flight batch per tenant concurrently, at
    rate ``w_i / sum(active w)`` of the dimension's bandwidth.  Weights come
    from ``JobSpec.weight`` unless overridden here.

    Parameters
    ----------
    weights:
        Optional ``{job name: weight}`` override; jobs absent from the map
        keep their ``JobSpec.weight``.
    """

    name = "weighted"
    label = "Weighted shares"
    requires_sharing = True

    def __init__(
        self,
        weights: dict[str, float] | None = None,
        weights_by_dim: dict[str, dict[int, float]] | None = None,
    ) -> None:
        self.weights = dict(weights or {})
        self.weights_by_dim = {
            owner: dict(dims) for owner, dims in (weights_by_dim or {}).items()
        }

    def prepare(self, cluster: "ClusterSimulator") -> None:
        names = {spec.name for spec in cluster.jobs}
        for label, keys in (
            ("weights", self.weights), ("per-dim weights", self.weights_by_dim)
        ):
            unknown = sorted(set(keys) - names)
            if unknown:
                raise ConfigError(
                    f"{label} name unknown job(s) "
                    f"{', '.join(repr(u) for u in unknown)}; "
                    f"jobs: {', '.join(sorted(names))}"
                )
        mapping: dict[str, float | dict[int, float]] = {
            spec.name: self.weights.get(spec.name, spec.weight)
            for spec in cluster.jobs
        }
        mapping.update(self.weights_by_dim)
        cluster.network.set_tenant_weights(mapping)

    def describe(self) -> str:
        if self.weights_by_dim:
            return f"{self.label} (static, per-dimension)"
        return f"{self.label} (static, from JobSpec.weight)"


class FinishTimeFairness(FairnessPolicy):
    """Finish-time fairness: re-weight tenants online to equalize rho.

    The finish-time-fairness metric of Themis-fair (Mahajan et al.) is
    ``rho = shared JCT / isolated JCT`` — how much slower a job runs in the
    shared cluster than it would alone.  A perfectly fair cluster gives
    every job the same rho.  This policy runs the shared network in
    weighted-sharing mode and, every ``interval`` seconds of simulated
    time, estimates each unfinished job's rho from a safe mid-run snapshot
    of its progress:

        projected JCT = elapsed + isolated * (remaining iterations / total)
        rho           = projected JCT / isolated JCT

    (for a finished job, rho is exact), then sets each active job's weight
    to ``JobSpec.weight * (rho / max rho) ** exponent`` — the job furthest
    behind its fair finish time gets the largest bandwidth share, pulling
    the rho spread back together.

    Parameters
    ----------
    interval:
        Re-weighting period in simulated seconds.  ``None`` (default) picks
        ``min isolated JCT / 25`` so even the shortest job sees many ticks.
    exponent:
        How aggressively lagging jobs are favored (1.0 = proportional to
        rho; larger = more aggressive).
    min_share:
        Floor on the relative weight of the least-lagging active job, so
        nobody is starved outright.
    """

    name = "ftf"
    label = "Finish-time fair"
    requires_sharing = True

    def __init__(
        self,
        interval: float | None = None,
        exponent: float = 2.0,
        min_share: float = 0.05,
    ) -> None:
        if interval is not None and interval <= 0:
            raise ConfigError(
                f"re-weighting interval must be positive, got {interval}"
            )
        if exponent <= 0:
            raise ConfigError(f"exponent must be positive, got {exponent}")
        if not 0 < min_share <= 1:
            raise ConfigError(
                f"min_share must be in (0, 1], got {min_share}"
            )
        self.interval = interval
        self.exponent = exponent
        self.min_share = min_share
        self._cluster: "ClusterSimulator | None" = None
        self._isolated: dict[str, float] = {}
        self._resolved_interval: float | None = None
        self._last_weights: dict[str, float] | None = None
        #: ``(time, {job name: rho estimate})`` per re-weighting tick.
        self.rho_trace: list[tuple[float, dict[str, float]]] = []
        self.reweight_count = 0

    def prepare(self, cluster: "ClusterSimulator") -> None:
        # Per-run state is reset here so one configured policy instance can
        # be reused across ClusterSimulator runs.
        self._cluster = cluster
        self.rho_trace = []
        self.reweight_count = 0
        self._isolated = {
            spec.name: cluster.isolated_time(spec) for spec in cluster.jobs
        }
        self._resolved_interval = (
            min(self._isolated.values()) / 25.0
            if self.interval is None
            else self.interval
        )
        self._last_weights = {spec.name: spec.weight for spec in cluster.jobs}
        cluster.network.set_tenant_weights(self._last_weights)
        cluster.engine.schedule_after(self._resolved_interval, self._tick)

    def _rho_estimates(self, now: float) -> dict[str, float]:
        """Per-job rho: exact for finished jobs, projected for running ones."""
        estimates: dict[str, float] = {}
        for driver in self._cluster.drivers:
            spec = driver.spec
            isolated = self._isolated[spec.name]
            if driver.finished:
                rho = (driver.finish_time - spec.arrival_time) / isolated
            elif now <= spec.arrival_time:
                rho = 1.0  # not arrived: no contention suffered yet
            else:
                elapsed = now - spec.arrival_time
                done = len(driver.iterations)
                remaining_frac = (spec.iterations - done) / spec.iterations
                rho = (elapsed + isolated * remaining_frac) / isolated
            estimates[spec.name] = rho
        return estimates

    def _tick(self) -> None:
        cluster = self._cluster
        unfinished = [d for d in cluster.drivers if not d.finished]
        if not unfinished:
            return  # last job done: stop ticking so the engine can drain
        now = cluster.engine.now
        estimates = self._rho_estimates(now)
        self.rho_trace.append((now, dict(estimates)))
        active = {
            d.spec.name: estimates[d.spec.name]
            for d in unfinished
            if now >= d.spec.arrival_time
        }
        if active:
            worst = max(active.values())
            weights = {}
            for driver in cluster.drivers:
                spec = driver.spec
                rho = active.get(spec.name)
                if rho is None:
                    weights[spec.name] = spec.weight  # finished/future: moot
                else:
                    share = max((rho / worst) ** self.exponent, self.min_share)
                    weights[spec.name] = spec.weight * share
            # Re-pushing unchanged weights would churn every in-flight flow
            # (stale finish events pile up in the heap), so skip no-ops.
            if weights != self._last_weights:
                self._last_weights = weights
                cluster.network.set_tenant_weights(weights)
                self.reweight_count += 1
        if cluster.engine.pending == 0:
            # Nothing but this tick was scheduled: no event can ever advance
            # the unfinished jobs again.  Stop ticking so the engine drains
            # and ClusterSimulator.run() raises its DeadlockError instead of
            # the tick re-arming itself forever.
            return
        cluster.engine.schedule_after(self._resolved_interval, self._tick)

    def describe(self) -> str:
        from ..units import fmt_time

        resolved = (
            self._resolved_interval
            if self._resolved_interval is not None
            else self.interval
        )
        interval = "auto" if resolved is None else fmt_time(resolved)
        return (
            f"{self.label} (interval={interval}, "
            f"exponent={self.exponent}, min_share={self.min_share})"
        )


class PriorityPreemption(FairnessPolicy):
    """Priority preemption of in-flight chunk batches.

    Arms the shared network's preemption discipline: when a job's chunk op
    arrives on a dimension whose wire is held by a strictly lower-priority
    batch, that batch is paused and its leftover transfer re-runs after the
    higher-priority work — work-conserving, nothing lost or re-sent.
    Priorities come from ``JobSpec.priority`` (plus the per-request MP
    boost the training loop already applies).
    """

    name = "preempt"
    label = "Priority preemption"
    requires_sharing = True

    def prepare(self, cluster: "ClusterSimulator") -> None:
        cluster.network.enable_preemption()

    def describe(self) -> str:
        return f"{self.label} (from JobSpec.priority)"


_FAIRNESS: dict[str, type[FairnessPolicy]] = {
    "fifo": FifoSharing,
    "weighted": WeightedSharing,
    "ftf": FinishTimeFairness,
    "preempt": PriorityPreemption,
}


def register_fairness(name: str, policy: type[FairnessPolicy]) -> None:
    """Register a custom cluster fairness policy under ``name``.

    The name becomes valid everywhere policies are selected by key:
    ``ClusterConfig(fairness=name)``, ``ClusterScenario.fairness``, and the
    CLI's ``--fairness`` choices (via the unified ``repro.api`` registry).
    """
    lowered = name.strip().lower()
    if not lowered:
        raise ConfigError("fairness policy name must be non-empty")
    if lowered in _FAIRNESS:
        raise ConfigError(f"fairness policy {name!r} is already registered")
    _FAIRNESS[lowered] = policy


def get_fairness(policy: "str | FairnessPolicy | None") -> FairnessPolicy | None:
    """Resolve a fairness policy: name, configured instance, or ``None``.

    ``None`` means the implicit default (first-come sharing) with no policy
    object attached; ``"fifo"`` is the same behavior but named in reports.
    """
    if policy is None or isinstance(policy, FairnessPolicy):
        return policy
    lowered = policy.strip().lower()
    if lowered not in _FAIRNESS:
        known = ", ".join(sorted(_FAIRNESS))
        raise ConfigError(
            f"unknown fairness policy {policy!r}; known: {known}"
        )
    return _FAIRNESS[lowered]()


def fairness_names() -> tuple[str, ...]:
    """Registry keys of the available fairness policies."""
    return tuple(sorted(_FAIRNESS))
