"""Multi-job cluster simulator: N training jobs on one shared network.

This is the CASSINI/Themis-fair setting: several training jobs arrive over
time and their collectives contend for the same network dimensions.  Each
job runs the factored single-job iteration program (:class:`TrainingLoop`)
but, instead of owning the clock, is driven event-by-event on one shared
:class:`EventQueue` + :class:`NetworkSimulator`:

* a job's *compute* step schedules its own resumption ``duration`` later;
* a job's *wait* step parks the job until the awaited collective's
  completion callback fires;
* every submission carries the job's scheduler factory (Baseline or Themis
  — per job), priority, communicator dim-subset, and owner tag, so the
  shared network interleaves tenants exactly as the paper's intra-dimension
  policies dictate and attributes comm-active time per job.

Isolated baselines (the slowdown denominator) re-run each job alone on the
same platform with the same per-job configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Callable, Iterator, Sequence

from ..core.scheduler import SchedulerFactory
from ..core.splitter import Splitter
from ..errors import ConfigError, DeadlockError, EventBudgetError
from ..sim.audit import InvariantViolation
from ..sim.engine import EventQueue
from ..sim.network import CollectiveResult, NetworkSimulator
from ..sim.stats import bw_utilization
from ..topology import Topology
from ..training.iteration import ComputeStep, TrainingConfig, TrainingLoop, WaitStep
from ..training.results import IterationBreakdown
from .fairness import FairnessPolicy, get_fairness
from .jobs import JobSpec
from .metrics import ClusterReport, JobOutcome
from .placement import PlacementPolicy, get_placement


@dataclass(frozen=True)
class ClusterConfig:
    """Training knobs and run options for a cluster simulation.

    ``training`` supplies both the per-job loop knobs (bucketing, overlap,
    compute model) and the shared-network configuration (intra-dimension
    policy, fusion, chunk granularity) — the same fields mean the same
    thing as in a single-job :class:`TrainingSimulator` run, except that
    ``training.iterations`` is ignored in favor of each job's
    ``JobSpec.iterations``.  When ``isolated_baselines`` is True, every
    job is additionally re-run alone so its slowdown can be reported.
    ``fairness`` selects how contending tenants share the network: a
    registry name (``"fifo"``, ``"weighted"``, ``"ftf"``, ``"preempt"``), a
    configured :class:`FairnessPolicy` instance, or ``None`` for the
    default first-come sharing.

    ``placement`` selects which dimension subset each arriving job's
    communicators span: a registry name (``"manual"``, ``"all-dims"``,
    ``"load-balanced"``, ``"interleaved"``), a configured
    :class:`PlacementPolicy` instance, or ``None`` for the default hand
    placement (honor ``JobSpec.dim_indices``, today's behavior).  The
    decision is made *at the job's arrival event* — automatic policies read
    the shared network's live load — and recorded per job in the
    :class:`ClusterReport`.

    ``record_ops`` defaults to False for cluster runs: per-op
    :class:`OpRecord` collection grows without bound across hundreds of
    jobs and no cluster metric reads it.  Turn it on to inspect shared-
    network timelines (``sim.network.result().records``).

    ``optimized`` selects the hot-path implementation: the indexed ready
    queues, plan/consistency caches, and event cancellation (default), or
    the pre-indexing reference path — kept so the determinism property
    tests and ``benchmarks/bench_scaling.py --compare-legacy`` can compare
    the two.
    """

    training: TrainingConfig | None = None
    isolated_baselines: bool = True
    fairness: FairnessPolicy | str | None = None
    placement: PlacementPolicy | str | None = None
    record_ops: bool = False
    optimized: bool = True
    #: Runtime invariant auditing (repro.sim.audit): ``True``/``False``
    #: force it on/off; ``None`` defers to ``THEMIS_AUDIT``.  Observer-only
    #: — the timeline is bit-identical either way.
    audit: bool | None = None


class _JobDriver:
    """Advances one job's :class:`TrainingLoop` on the shared engine.

    The loop's step generator is pulled synchronously until it either
    computes (resume scheduled ``duration`` later) or waits on a collective
    that has not completed (resume from the completion callback).

    ``on_arrival`` is invoked at the job's arrival event, *before* its
    first iteration begins — the cluster binds the job's
    :class:`TrainingLoop` there, so placement policies can read the shared
    network's live state at the arrival instant.
    """

    def __init__(
        self,
        spec: JobSpec,
        engine: EventQueue,
        on_arrival: "Callable[[_JobDriver], None]",
    ) -> None:
        self.spec = spec
        self.engine = engine
        self.on_arrival = on_arrival
        self.loop: TrainingLoop | None = None
        self.iterations: list[IterationBreakdown] = []
        self.finish_time: float | None = None
        self._steps: Iterator[ComputeStep | WaitStep] | None = None
        self._breakdown = IterationBreakdown()
        self._waiting: WaitStep | None = None
        self._wait_start = 0.0

    @property
    def finished(self) -> bool:
        return self.finish_time is not None

    def bind(self, loop: TrainingLoop) -> None:
        self.loop = loop

    def start(self) -> None:
        self.engine.schedule(self.spec.arrival_time, self._arrive)

    def _arrive(self) -> None:
        self.on_arrival(self)
        self._begin_iteration()

    # --- driving ------------------------------------------------------------
    def _begin_iteration(self) -> None:
        if len(self.iterations) == self.spec.iterations:
            self.finish_time = self.engine.now
            return
        self._breakdown = IterationBreakdown()
        self._steps = self.loop.iteration_steps()
        self._advance()

    def _advance(self) -> None:
        while True:
            try:
                step = next(self._steps)
            except StopIteration:
                self.iterations.append(self._breakdown)
                self._begin_iteration()
                return
            if isinstance(step, ComputeStep):
                self._breakdown.add_compute(step.phase, step.duration)
                self.engine.schedule_after(step.duration, self._advance)
                return
            if step.handle.done:
                continue  # completed while the job was computing: zero stall
            self._waiting = step
            self._wait_start = self.engine.now
            return

    def collective_done(self, result: CollectiveResult) -> None:
        """Completion callback for every collective this job submitted."""
        if self._waiting is None or self._waiting.handle is not result:
            return  # an overlapped collective nobody is parked on (yet)
        step = self._waiting
        self._waiting = None
        self._breakdown.add_stall(
            step.attribution, self.engine.now - self._wait_start
        )
        self._advance()


class ClusterSimulator:
    """Runs a trace of training jobs on one shared platform network."""

    def __init__(
        self,
        topology: Topology,
        jobs: Sequence[JobSpec],
        config: ClusterConfig | None = None,
        *,
        isolated_cache: dict[tuple, float] | None = None,
    ) -> None:
        """``isolated_cache`` optionally shares isolated-JCT results across
        simulators (sweeps re-running one trace under several policies pass
        a common dict so each solo baseline is simulated once)."""
        if not jobs:
            raise ConfigError("a cluster run needs at least one job")
        names = [spec.name for spec in jobs]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise ConfigError(
                f"duplicate job names: {', '.join(sorted(duplicates))}"
            )
        self.topology = topology
        self.jobs = list(jobs)
        self.config = config or ClusterConfig()
        self.training_config = self.config.training or TrainingConfig()
        self.fairness = get_fairness(self.config.fairness)
        self.placement = get_placement(self.config.placement)
        #: ``job name -> assigned dimension subset`` (``None`` = all dims),
        #: filled at each job's arrival event.  Jobs a truncated run cut
        #: before arrival are absent.
        self.placements: dict[str, tuple[int, ...] | None] = {}
        self._isolated_cache = isolated_cache if isolated_cache is not None else {}
        self.engine = EventQueue(cancellation=self.config.optimized)
        self._splitter = Splitter(self.training_config.chunks_per_collective)
        self.network = NetworkSimulator(
            topology,
            scheduler=SchedulerFactory("themis", splitter=self._splitter),
            policy=self.training_config.policy,
            fusion=self.training_config.fusion,
            engine=self.engine,
            record_ops=self.config.record_ops,
            indexed_queues=self.config.optimized,
            plan_cache=self.config.optimized,
            audit=self.config.audit,
        )
        self._drivers = [
            _JobDriver(spec, self.engine, self._admit) for spec in self.jobs
        ]

    @property
    def drivers(self) -> list[_JobDriver]:
        """Per-job drivers (fairness policies read progress from these)."""
        return self._drivers

    def _admit(self, driver: _JobDriver) -> None:
        """Arrival event: place the job, then build and bind its loop.

        Placement happens here — not at construction time — so automatic
        policies see the shared network exactly as the job would: live
        outstanding bytes per dimension, which tenants are still running,
        and what was assigned before it.  The loop construction itself
        schedules no events, so with the default hand placement this is
        bit-for-bit the pre-placement-layer timeline.
        """
        spec = driver.spec
        if self.placement is None:
            dims = spec.dim_indices
        else:
            dims = self.placement.place(spec, self)
            if dims is not None:
                dims = tuple(dims)
                for dim_index in dims:
                    if not 0 <= dim_index < len(self.topology.dims):
                        raise ConfigError(
                            f"placement policy assigned job {spec.name!r} "
                            f"out-of-range dimension {dim_index} on a "
                            f"{len(self.topology.dims)}D topology"
                        )
        self.placements[spec.name] = dims
        loop = TrainingLoop(
            spec.resolve_workload(),
            self.topology,
            self.network,
            self.engine,
            self.training_config,
            scheduler_factory=SchedulerFactory(
                spec.scheduler, splitter=self._splitter
            ),
            dim_indices=dims,
            priority_boost=spec.priority,
            owner=spec.name,
            on_collective_complete=driver.collective_done,
        )
        driver.bind(loop)

    def assigned_dims(self, spec: JobSpec) -> tuple[int, ...] | None:
        """The dimension subset ``spec``'s communicators span (or will span).

        The decided placement once the job has arrived; before that, the
        hand-declared ``dim_indices`` — automatic policies decide only at
        the arrival instant, so pre-arrival callers (the finish-time-fair
        policy computing isolated baselines at t=0) see the hand placement.
        """
        if spec.name in self.placements:
            return self.placements[spec.name]
        return spec.dim_indices

    def isolated_time(self, spec: JobSpec) -> float:
        """Cached isolated JCT of ``spec`` (the rho / slowdown denominator).

        The solo run uses the job's *assigned* dimensions (see
        :meth:`assigned_dims`) — rho compares shared vs alone on the same
        slice of the platform.  Jobs with identical configuration share one
        isolated run.  A registry name always resolves to the same
        workload; Workload *instances* are keyed by content (name, batch,
        parallelism, layer stack — everything the simulation reads), so
        reconstructed-but-equal workloads (spec-driven sweeps rebuild them
        per point) still share one baseline.  Priority, weight, and arrival
        are irrelevant alone on the network, so they are not part of the
        key.
        """
        workload = spec.workload
        if isinstance(workload, str):
            workload_key: tuple | str = workload
        else:
            workload_key = (
                workload.name,
                workload.batch_per_npu,
                workload.mp_group_size,
                workload.dp_style,
                tuple(workload.layers),
            )
        dims = self.assigned_dims(spec)
        key = (
            workload_key,
            spec.scheduler.lower(),
            spec.iterations,
            dims,
        )
        if key not in self._isolated_cache:
            self._isolated_cache[key] = isolated_jct(
                self.topology, replace(spec, dim_indices=dims), self.config
            )
        return self._isolated_cache[key]

    def _audit_outcomes(self) -> None:
        """End-of-run cluster invariants (only with auditing enabled).

        Every finished job must finish no earlier than it arrived and must
        have run exactly its configured iteration count — a driver that
        books extra (or loses) iterations would silently skew JCT and
        slowdown metrics.
        """
        auditor = self.network.auditor
        assert auditor is not None
        for driver in self._drivers:
            auditor.checks_run += 1
            spec = driver.spec
            if driver.finish_time is None:
                continue
            if driver.finish_time < spec.arrival_time:
                raise InvariantViolation(
                    "job-causality",
                    f"job {spec.name!r} finished before it arrived",
                    time=driver.finish_time,
                    context={"arrival": spec.arrival_time},
                )
            if len(driver.iterations) != spec.iterations:
                raise InvariantViolation(
                    "job-iterations",
                    f"job {spec.name!r} recorded {len(driver.iterations)} "
                    f"iteration(s), expected {spec.iterations}",
                    time=driver.finish_time,
                )

    def run(self, max_events: int | None = None) -> ClusterReport:
        """Run all jobs to completion and collect per-job/cluster metrics.

        When ``max_events`` cuts the simulation short, the returned report
        is flagged ``truncated=True``: unfinished jobs carry
        ``finish_time=None`` and the cluster metrics cover the finished
        jobs only, instead of a complete-looking report built from a
        half-run trace.
        """
        if self.fairness is not None:
            self.fairness.prepare(self)
        if self.placement is not None:
            self.placement.prepare(self)
        for driver in self._drivers:
            driver.start()
        truncated = False
        try:
            self.engine.run(max_events=max_events)
        except EventBudgetError:
            truncated = True
        unfinished = sorted(
            driver.spec.name for driver in self._drivers if not driver.finished
        )
        if unfinished and not truncated:
            raise DeadlockError(
                f"{len(unfinished)} job(s) never completed: "
                f"{', '.join(unfinished)}"
            )
        if self.network.auditor is not None:
            self._audit_outcomes()
        submitted = sum(
            d.loop.collectives_issued
            for d in self._drivers
            if d.loop is not None  # truncated runs may cut a job pre-arrival
        )
        result = self.network.result() if submitted else None
        utilization = None
        comm_active = 0.0
        if result is not None and result.comm_active_seconds > 0:
            utilization = bw_utilization(result)
            comm_active = result.comm_active_seconds
        outcomes = []
        for driver in self._drivers:
            spec = driver.spec
            outcomes.append(
                JobOutcome(
                    name=spec.name,
                    workload_name=spec.workload_name,
                    scheduler_name=spec.scheduler_label,
                    arrival_time=spec.arrival_time,
                    finish_time=driver.finish_time,
                    iterations=driver.iterations,
                    comm_active_seconds=(
                        result.comm_active_seconds_for(spec.name)
                        if result is not None
                        else 0.0
                    ),
                    placement=self.assigned_dims(spec),
                    placed=spec.name in self.placements,
                )
            )
        if self.config.isolated_baselines:
            for spec, outcome in zip(self.jobs, outcomes):
                outcome.isolated_time = self.isolated_time(spec)
        return ClusterReport(
            topology_name=self.topology.name,
            jobs=outcomes,
            utilization=utilization,
            comm_active_seconds=comm_active,
            fairness_name=(
                self.fairness.describe() if self.fairness is not None else None
            ),
            placement_name=(
                self.placement.describe() if self.placement is not None else None
            ),
            dim_load=(
                tuple(result.dim_busy_seconds) if result is not None else ()
            ),
            preemption_count=self.network.preemption_count,
            truncated=truncated,
            truncated_at=self.engine.now if truncated else None,
        )


def isolated_jct(
    topology: Topology, spec: JobSpec, config: ClusterConfig | None = None
) -> float:
    """JCT of ``spec`` run alone on ``topology`` (the rho denominator).

    Fairness and placement policies are stripped for the solo run: alone on
    the network a job gets full bandwidth under every discipline,
    finish-time-fair re-weighting would recurse into computing its own
    isolated baselines, and the caller has already baked the decided
    placement into ``spec.dim_indices``.
    """
    solo_config = replace(
        config or ClusterConfig(),
        isolated_baselines=False,
        fairness=None,
        placement=None,
    )
    solo = ClusterSimulator(topology, [spec.at_arrival(0.0)], solo_config)
    return solo.run().jobs[0].jct


def run_cluster(
    topology: Topology,
    jobs: Sequence[JobSpec],
    config: ClusterConfig | None = None,
) -> ClusterReport:
    """One-call convenience wrapper around :class:`ClusterSimulator`."""
    return ClusterSimulator(topology, jobs, config).run()
