"""Multi-job cluster simulator: N training jobs on one shared network.

This is the CASSINI/Themis-fair setting: several training jobs arrive over
time and their collectives contend for the same network dimensions.  Each
job runs the factored single-job iteration program (:class:`TrainingLoop`)
but, instead of owning the clock, is driven event-by-event on one shared
:class:`EventQueue` + :class:`NetworkSimulator`:

* a job's *compute* step schedules its own resumption ``duration`` later;
* a job's *wait* step parks the job until the awaited collective's
  completion callback fires;
* every submission carries the job's scheduler factory (Baseline or Themis
  — per job), priority, communicator dim-subset, and owner tag, so the
  shared network interleaves tenants exactly as the paper's intra-dimension
  policies dictate and attributes comm-active time per job.

Isolated baselines (the slowdown denominator) re-run each job alone on the
same platform with the same per-job configuration.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, replace
from collections.abc import Callable, Iterator, Sequence

from ..core.scheduler import SchedulerFactory
from ..core.splitter import Splitter
from ..errors import ConfigError, DeadlockError, EventBudgetError
from ..sim.audit import InvariantViolation
from ..sim.engine import EventQueue
from ..sim.faults import FaultSchedule, JobFaultPolicy, fault_substream
from ..sim.network import CollectiveResult, NetworkSimulator
from ..sim.stats import bw_utilization
from ..topology import Topology
from ..training.iteration import ComputeStep, TrainingConfig, TrainingLoop, WaitStep
from ..training.results import IterationBreakdown
from .fairness import FairnessPolicy, get_fairness
from .jobs import JobMix, JobSpec
from .metrics import ClusterReport, JobOutcome, SteadyStateReport
from .placement import PlacementPolicy, get_placement
from .streaming import EpochAccumulator, StreamingStats


@dataclass(frozen=True)
class ClusterConfig:
    """Training knobs and run options for a cluster simulation.

    ``training`` supplies both the per-job loop knobs (bucketing, overlap,
    compute model) and the shared-network configuration (intra-dimension
    policy, fusion, chunk granularity) — the same fields mean the same
    thing as in a single-job :class:`TrainingSimulator` run, except that
    ``training.iterations`` is ignored in favor of each job's
    ``JobSpec.iterations``.  When ``isolated_baselines`` is True, every
    job is additionally re-run alone so its slowdown can be reported.
    ``fairness`` selects how contending tenants share the network: a
    registry name (``"fifo"``, ``"weighted"``, ``"ftf"``, ``"preempt"``), a
    configured :class:`FairnessPolicy` instance, or ``None`` for the
    default first-come sharing.

    ``placement`` selects which dimension subset each arriving job's
    communicators span: a registry name (``"manual"``, ``"all-dims"``,
    ``"load-balanced"``, ``"interleaved"``), a configured
    :class:`PlacementPolicy` instance, or ``None`` for the default hand
    placement (honor ``JobSpec.dim_indices``, today's behavior).  The
    decision is made *at the job's arrival event* — automatic policies read
    the shared network's live load — and recorded per job in the
    :class:`ClusterReport`.

    ``record_ops`` defaults to False for cluster runs: per-op
    :class:`OpRecord` collection grows without bound across hundreds of
    jobs and no cluster metric reads it.  Turn it on to inspect shared-
    network timelines (``sim.network.result().records``).

    ``optimized`` selects the hot-path implementation: the indexed ready
    queues, plan/consistency caches, and event cancellation (default), or
    the pre-indexing reference path — kept so the determinism property
    tests and ``benchmarks/bench_scaling.py --compare-legacy`` can compare
    the two.
    """

    training: TrainingConfig | None = None
    isolated_baselines: bool = True
    fairness: FairnessPolicy | str | None = None
    placement: PlacementPolicy | str | None = None
    record_ops: bool = False
    optimized: bool = True
    #: Runtime invariant auditing (repro.sim.audit): ``True``/``False``
    #: force it on/off; ``None`` defers to ``THEMIS_AUDIT``.  Observer-only
    #: — the timeline is bit-identical either way.
    audit: bool | None = None
    #: Admission control: at most this many jobs run concurrently; excess
    #: arrivals wait in a FIFO admission queue and are admitted as slots
    #: free up at departures (their queueing delay is ``admit - arrival``).
    #: ``None`` (default) admits every job at its arrival instant.
    max_concurrent: int | None = None
    #: Steady-state measurement window: discard the first ``warmup_time``
    #: simulated seconds, measure for ``measure_time`` more, then *stop* —
    #: jobs still running at the window end are expected, not a deadlock.
    #: ``measure_time=None`` (default) keeps the closed-loop run-to-drain
    #: behavior; ``warmup_time`` requires ``measure_time``.
    warmup_time: float = 0.0
    measure_time: float | None = None
    #: Memory bound for long open-loop runs: only the first ``outcome_cap``
    #: completions keep their :class:`TrainingLoop` and per-iteration
    #: breakdowns; later finishers are released at departure (their
    #: ``JobOutcome`` keeps times/placement but carries no breakdowns).
    #: Streaming steady-state metrics see every job either way.
    outcome_cap: int | None = None
    #: Approximate each isolated baseline as ``iterations x`` the job's
    #: solo *single-iteration* JCT.  With heavy-tailed iteration counts
    #: this collapses the baseline cache to one solo run per workload
    #: shape instead of one per (shape, iteration count) pair.
    isolated_per_iteration: bool = False
    #: Epochs the measurement window is split into for the convergence
    #: series (per-epoch rho means + stationarity flag).
    convergence_epochs: int = 8
    #: Deterministic link-capacity faults (degradations, failures, flaps,
    #: stragglers) applied to the shared network at construction; see
    #: :class:`repro.sim.faults.FaultSchedule`.  Isolated baselines strip
    #: them — rho keeps comparing against the *healthy* solo run, so fault
    #: scenarios report genuine JCT inflation.
    link_faults: FaultSchedule | None = None
    #: Job-level crash/retry semantics (crash hazard, bounded retries with
    #: exponential backoff + jitter, optional checkpoint rollback); see
    #: :class:`repro.sim.faults.JobFaultPolicy`.  ``None`` = jobs never
    #: crash (today's behavior).
    job_faults: JobFaultPolicy | None = None
    #: Network-fidelity backend key (``None`` = the analytical default;
    #: see :mod:`repro.sim.backends`).  The isolated rho baselines run at
    #: the same fidelity, so slowdown stays an apples-to-apples ratio.
    backend: str | None = None
    #: Backend-specific knobs (e.g. the packet backend's ``mtu_bytes``).
    backend_options: dict | None = None

    def __post_init__(self) -> None:
        if self.max_concurrent is not None and self.max_concurrent < 1:
            raise ConfigError(
                f"max_concurrent must be >= 1, got {self.max_concurrent}"
            )
        if self.warmup_time < 0:
            raise ConfigError(
                f"warmup_time must be >= 0, got {self.warmup_time}"
            )
        if self.measure_time is not None and self.measure_time <= 0:
            raise ConfigError(
                f"measure_time must be positive, got {self.measure_time}"
            )
        if self.warmup_time > 0 and self.measure_time is None:
            raise ConfigError("warmup_time requires measure_time")
        if self.outcome_cap is not None and self.outcome_cap < 0:
            raise ConfigError(
                f"outcome_cap must be >= 0, got {self.outcome_cap}"
            )
        if self.convergence_epochs < 1:
            raise ConfigError(
                f"convergence_epochs must be >= 1, got {self.convergence_epochs}"
            )


class _JobDriver:
    """Advances one job's :class:`TrainingLoop` on the shared engine.

    The loop's step generator is pulled synchronously until it either
    computes (resume scheduled ``duration`` later) or waits on a collective
    that has not completed (resume from the completion callback).

    ``on_arrival`` is invoked at the job's arrival event.  The cluster
    decides there whether the job is *admitted* immediately (placement +
    loop binding + :meth:`begin`, all at the arrival instant — the default,
    bit-identical to the pre-admission-control flow) or parked in the
    admission queue until a concurrency slot frees up at some departure.
    ``on_finish`` fires at the job's last iteration boundary, before any
    other event at that timestamp runs — the cluster recycles the job's
    slot there.
    """

    def __init__(
        self,
        spec: JobSpec,
        engine: EventQueue,
        on_arrival: "Callable[[_JobDriver], None]",
        on_finish: "Callable[[_JobDriver], None]",
        fault_policy: JobFaultPolicy | None = None,
    ) -> None:
        self.spec = spec
        self.engine = engine
        self.on_arrival = on_arrival
        self.on_finish = on_finish
        self.loop: TrainingLoop | None = None
        self.iterations: list[IterationBreakdown] = []
        self.iterations_done = 0
        self.arrived = False
        self.admit_time: float | None = None
        self.finish_time: float | None = None
        #: ``loop.collectives_issued`` snapshotted at :meth:`release`.
        self.released_collectives = 0
        self._steps: Iterator[ComputeStep | WaitStep] | None = None
        self._breakdown = IterationBreakdown()
        self._waiting: WaitStep | None = None
        self._wait_start = 0.0
        # --- job-fault state (inert without a policy) ----------------------
        self.fault_policy = fault_policy
        #: Per-job crash substream: time-to-failure and backoff-jitter draws
        #: depend only on ``(policy.seed, job name)``, never on trace order.
        self._fault_rng = (
            fault_substream(fault_policy.seed, f"crash:{spec.name}")
            if fault_policy is not None
            else None
        )
        self.attempts = 0
        self.crash_count = 0
        self.failed = False
        self.fail_time: float | None = None
        #: Simulated seconds of discarded progress across all crashes.
        self.lost_work = 0.0
        self._crash_pending = False
        #: Staleness guard for crash timers: events drawn for an earlier
        #: attempt carry an old generation and are ignored (the engine may
        #: run with cancellation off, so guards carry correctness).
        self._crash_generation = 0
        #: Rollback anchor: time of the last checkpoint (or attempt start).
        self._checkpoint_time = 0.0

    @property
    def finished(self) -> bool:
        return self.finish_time is not None

    @property
    def terminal(self) -> bool:
        """Finished or permanently failed — either way, done with its slot."""
        return self.finished or self.failed

    def bind(self, loop: TrainingLoop) -> None:
        self.loop = loop

    def start(self) -> None:
        self.engine.schedule(self.spec.arrival_time, self._arrive)

    def _arrive(self) -> None:
        self.arrived = True
        self.on_arrival(self)

    def begin(self) -> None:
        """Start iterating (called by the cluster at the admission instant)."""
        self.admit_time = self.engine.now
        self._start_attempt()

    # --- job faults ---------------------------------------------------------
    def _start_attempt(self) -> None:
        """Open an attempt: arm the crash timer (if any) and iterate."""
        self.attempts += 1
        self._checkpoint_time = self.engine.now
        policy = self.fault_policy
        if policy is not None:
            self._crash_generation += 1
            generation = self._crash_generation
            ttf = self._fault_rng.expovariate(policy.crash_rate)
            self.engine.schedule_after(ttf, lambda: self._crash(generation))
        self._begin_iteration()

    def _crash(self, generation: int) -> None:
        """Crash timer fired: flag the abort for the next resumption point.

        The driver is always either computing (a pending ``_advance``) or
        waiting on a collective completion, so a resumption point is
        guaranteed; aborting there keeps the engine's event set untouched
        (no cancellations needed) and the in-flight collective simply
        completes into a driver that ignores it.
        """
        if generation != self._crash_generation or self.terminal:
            return
        self._crash_pending = True

    def _abort_attempt(self) -> None:
        """Roll back to the last checkpoint, then retry or fail for good."""
        policy = self.fault_policy
        assert policy is not None
        now = self.engine.now
        self._crash_pending = False
        self._crash_generation += 1  # disarm any stale crash timer
        self.crash_count += 1
        cp = policy.checkpoint_iterations
        kept = 0 if cp is None else (self.iterations_done // cp) * cp
        self.lost_work += now - self._checkpoint_time
        self.iterations_done = kept
        del self.iterations[kept:]
        self._steps = None
        self._waiting = None
        if self.loop is not None:
            self.loop.reset_attempt()
        if self.crash_count > policy.max_retries:
            self.failed = True
            self.fail_time = now
            self.on_finish(self)
            return
        delay = policy.retry_delay(self.crash_count, self._fault_rng)
        self.engine.schedule_after(delay, self._start_attempt)

    def release(self) -> None:
        """Drop the loop and per-iteration breakdowns (bounded memory).

        Called by the cluster at departure once the job is past the
        outcome cap: the counters that feed streaming metrics
        (``iterations_done``, ``released_collectives``, the recorded
        times) survive; the per-iteration detail does not.
        """
        if self.loop is not None:
            self.released_collectives = self.loop.collectives_issued
        self.loop = None
        self._steps = None
        self.iterations = []

    # --- driving ------------------------------------------------------------
    def _begin_iteration(self) -> None:
        if self.iterations_done == self.spec.iterations:
            self.finish_time = self.engine.now
            self.on_finish(self)
            return
        self._breakdown = IterationBreakdown()
        self._steps = self.loop.iteration_steps()
        self._advance()

    def _advance(self) -> None:
        if self._crash_pending:
            self._abort_attempt()
            return
        while True:
            try:
                step = next(self._steps)
            except StopIteration:
                self.iterations.append(self._breakdown)
                self.iterations_done += 1
                cp = (
                    self.fault_policy.checkpoint_iterations
                    if self.fault_policy is not None
                    else None
                )
                if cp is not None and self.iterations_done % cp == 0:
                    self._checkpoint_time = self.engine.now
                self._begin_iteration()
                return
            if isinstance(step, ComputeStep):
                self._breakdown.add_compute(step.phase, step.duration)
                self.engine.schedule_after(step.duration, self._advance)
                return
            if step.handle.done:
                continue  # completed while the job was computing: zero stall
            self._waiting = step
            self._wait_start = self.engine.now
            return

    def collective_done(self, result: CollectiveResult) -> None:
        """Completion callback for every collective this job submitted."""
        if self._waiting is None or self._waiting.handle is not result:
            return  # an overlapped collective nobody is parked on (yet)
        step = self._waiting
        self._waiting = None
        if self._crash_pending:
            self._abort_attempt()
            return
        self._breakdown.add_stall(
            step.attribution, self.engine.now - self._wait_start
        )
        self._advance()


class _SteadyCollector:
    """Streaming window-scoped accumulators for one measurement run."""

    def __init__(
        self, warmup: float, measure: float, epochs: int, epoch_metric: str
    ) -> None:
        self.window_start = warmup
        self.window_end = warmup + measure
        self.arrivals = 0
        self.completions = 0
        self.measured = 0
        self.failures = 0
        # Distinct fixed reservoir seeds per metric: deterministic for a
        # given ingestion order, uncorrelated across the three digests.
        self.queue_delay = StreamingStats(seed=101)
        self.jct = StreamingStats(seed=102)
        self.rho = StreamingStats(seed=103)
        self.epoch_metric = epoch_metric
        self.epochs = EpochAccumulator(self.window_start, self.window_end, epochs)

    def note_arrival(self, time: float) -> None:
        if self.window_start <= time <= self.window_end:
            self.arrivals += 1

    def note_failure(self, driver: "_JobDriver") -> None:
        """A permanently-failed departure: counted, never fed to the JCT /
        rho digests (a failed job has no completion time — streaming a
        placeholder would poison the moments)."""
        fail_time = driver.fail_time
        assert fail_time is not None
        if self.window_start <= fail_time <= self.window_end:
            self.failures += 1

    def note_finish(self, driver: "_JobDriver", rho: float | None) -> None:
        finish = driver.finish_time
        assert finish is not None
        if not self.window_start <= finish <= self.window_end:
            return
        self.completions += 1
        arrival = driver.spec.arrival_time
        if arrival < self.window_start:
            return  # lifetime straddles the warm-up edge: not measured
        self.measured += 1
        jct = finish - arrival
        self.jct.add(jct)
        admit = driver.admit_time if driver.admit_time is not None else arrival
        self.queue_delay.add(admit - arrival)
        if rho is not None:
            self.rho.add(rho)
        self.epochs.add(finish, rho if rho is not None else jct)

    def report(
        self,
        *,
        peak_live_jobs: int,
        mean_live_jobs: float,
        max_concurrent: int | None,
    ) -> SteadyStateReport:
        return SteadyStateReport(
            warmup_time=self.window_start,
            measure_time=self.window_end - self.window_start,
            arrivals=self.arrivals,
            completions=self.completions,
            measured_jobs=self.measured,
            failed_jobs=self.failures,
            peak_live_jobs=peak_live_jobs,
            mean_live_jobs=mean_live_jobs,
            slot_utilization=(
                mean_live_jobs / max_concurrent
                if max_concurrent is not None
                else None
            ),
            queueing_delay=self.queue_delay.summary(),
            jct=self.jct.summary(),
            rho=self.rho.summary(),
            jain_rho=self.rho.jain_index,
            epoch_series=self.epochs.series(),
            epoch_counts=self.epochs.counts(),
            epoch_metric=self.epoch_metric,
            stationary=self.epochs.stationary(),
        )


class ClusterSimulator:
    """Runs a trace of training jobs on one shared platform network."""

    def __init__(
        self,
        topology: Topology,
        jobs: Sequence[JobSpec],
        config: ClusterConfig | None = None,
        *,
        isolated_cache: dict[tuple, float] | None = None,
    ) -> None:
        """``isolated_cache`` optionally shares isolated-JCT results across
        simulators (sweeps re-running one trace under several policies pass
        a common dict so each solo baseline is simulated once)."""
        if not jobs:
            raise ConfigError("a cluster run needs at least one job")
        duplicates = sorted(
            name
            for name, count in Counter(spec.name for spec in jobs).items()
            if count > 1
        )
        if duplicates:
            raise ConfigError(
                f"duplicate job names: {', '.join(duplicates)}"
            )
        self.topology = topology
        self.jobs = list(jobs)
        self.config = config or ClusterConfig()
        self.training_config = self.config.training or TrainingConfig()
        self.fairness = get_fairness(self.config.fairness)
        self.placement = get_placement(self.config.placement)
        #: ``job name -> assigned dimension subset`` (``None`` = all dims),
        #: filled at each job's admission event.  Jobs a truncated run cut
        #: before arrival (or that never left the admission queue) are
        #: absent.
        self.placements: dict[str, tuple[int, ...] | None] = {}
        #: Admitted-and-unfinished jobs, in admission order:
        #: ``name -> assigned dims``.  A plain dict (not a set) so policies
        #: iterating it sum floats in deterministic admission order.
        self.live_jobs: dict[str, tuple[int, ...] | None] = {}
        #: Unfinished admitted jobs per dimension — the incremental form of
        #: the placement layer's assigned-counts signal (previously an
        #: O(jobs) scan per arrival; now O(dims) per admit/depart).
        self.dim_assigned_counts = [0] * len(topology.dims)
        #: Highest simultaneous admitted-job count seen so far.
        self.peak_live_jobs = 0
        self._isolated_cache = isolated_cache if isolated_cache is not None else {}
        self.engine = EventQueue(cancellation=self.config.optimized)
        self._splitter = Splitter(self.training_config.chunks_per_collective)
        from ..sim.backends import get_backend, resolve_backend_key

        self.backend_name = resolve_backend_key(self.config.backend)
        backend_impl = get_backend(self.backend_name)
        if not backend_impl.supports_cluster:
            raise ConfigError(
                f"the {self.backend_name!r} backend cannot run a shared "
                "multi-job cluster; use 'analytical', 'fluid', or 'packet'"
            )
        if (
            self.fairness is not None
            and self.fairness.requires_sharing
            and not backend_impl.supports_sharing
        ):
            raise ConfigError(
                f"fairness policy {self.fairness.name!r} needs the "
                "network's weighted-sharing/preemption hooks, which the "
                f"{self.backend_name!r} backend does not provide; use "
                "backend='analytical'"
            )
        self.network = backend_impl.build(
            topology,
            scheduler=SchedulerFactory("themis", splitter=self._splitter),
            policy=self.training_config.policy,
            fusion=self.training_config.fusion,
            engine=self.engine,
            record_ops=self.config.record_ops,
            indexed_queues=self.config.optimized,
            plan_cache=self.config.optimized,
            audit=self.config.audit,
            options=self.config.backend_options,
        )
        if self.config.link_faults is not None:
            self.network.apply_fault_schedule(self.config.link_faults)
        self._drivers = [
            _JobDriver(
                spec,
                self.engine,
                self._on_arrival,
                self._on_finish,
                fault_policy=self.config.job_faults,
            )
            for spec in self.jobs
        ]
        self._admission_queue: deque[_JobDriver] = deque()
        self._live_count = 0
        self._last_live_change = 0.0
        self._live_window_integral = 0.0
        self._finished_count = 0
        self._released_collectives = 0
        self._collector: _SteadyCollector | None = None
        if self.config.measure_time is not None:
            self._collector = _SteadyCollector(
                self.config.warmup_time,
                self.config.measure_time,
                self.config.convergence_epochs,
                "rho" if self.config.isolated_baselines else "jct",
            )

    @property
    def drivers(self) -> list[_JobDriver]:
        """Per-job drivers (fairness policies read progress from these)."""
        return self._drivers

    # --- admission control / departures -------------------------------------
    def _note_live(self, delta: int) -> None:
        """Advance the window-clamped live-jobs time integral, then apply
        ``delta`` to the live count."""
        now = self.engine.now
        if self._collector is not None and now > self._last_live_change:
            lo = max(self._last_live_change, self._collector.window_start)
            hi = min(now, self._collector.window_end)
            if hi > lo:
                self._live_window_integral += self._live_count * (hi - lo)
        self._last_live_change = now
        self._live_count += delta
        if self._live_count > self.peak_live_jobs:
            self.peak_live_jobs = self._live_count

    def _on_arrival(self, driver: _JobDriver) -> None:
        """Arrival event: admit immediately, or queue for a free slot."""
        if self._collector is not None:
            self._collector.note_arrival(self.engine.now)
        cap = self.config.max_concurrent
        if cap is None or self._live_count < cap:
            self._admit(driver)
        else:
            self._admission_queue.append(driver)

    def _on_finish(self, driver: _JobDriver) -> None:
        """Departure: recycle the job's slot, stream its outcome, admit next."""
        spec = driver.spec
        dims = self.live_jobs.pop(spec.name)
        occupied = dims if dims is not None else range(len(self.topology.dims))
        for dim_index in occupied:
            self.dim_assigned_counts[dim_index] -= 1
        self._note_live(-1)
        auditor = self.network.auditor
        if auditor is not None:
            auditor.on_job_departed(
                spec.name, time=self.engine.now, live=self._live_count
            )
        self._finished_count += 1
        if self._collector is not None:
            if driver.failed:
                self._collector.note_failure(driver)
            else:
                rho = None
                if self.config.isolated_baselines:
                    isolated = self.isolated_time(spec)
                    if isolated > 0 and driver.finish_time is not None:
                        rho = (
                            driver.finish_time - spec.arrival_time
                        ) / isolated
                self._collector.note_finish(driver, rho)
        cap_detail = self.config.outcome_cap
        if cap_detail is not None and self._finished_count > cap_detail:
            self._released_collectives += (
                driver.loop.collectives_issued if driver.loop is not None else 0
            )
            driver.release()
        cap = self.config.max_concurrent
        while self._admission_queue and (
            cap is None or self._live_count < cap
        ):
            self._admit(self._admission_queue.popleft())

    def _admit(self, driver: _JobDriver) -> None:
        """Admission event: place the job, bind its loop, start iterating.

        Placement happens here — not at construction time — so automatic
        policies see the shared network exactly as the job would: live
        outstanding bytes per dimension, which tenants are still running,
        and what was assigned before it.  Without admission control this
        runs inside the arrival event and the loop construction schedules
        no events, so with the default hand placement this is bit-for-bit
        the pre-placement-layer timeline.
        """
        spec = driver.spec
        if self.placement is None:
            dims = spec.dim_indices
        else:
            dims = self.placement.place(spec, self)
            if dims is not None:
                dims = tuple(dims)
                for dim_index in dims:
                    if not 0 <= dim_index < len(self.topology.dims):
                        raise ConfigError(
                            f"placement policy assigned job {spec.name!r} "
                            f"out-of-range dimension {dim_index} on a "
                            f"{len(self.topology.dims)}D topology"
                        )
        self.placements[spec.name] = dims
        loop = TrainingLoop(
            spec.resolve_workload(),
            self.topology,
            self.network,
            self.engine,
            self.training_config,
            scheduler_factory=SchedulerFactory(
                spec.scheduler, splitter=self._splitter
            ),
            dim_indices=dims,
            priority_boost=spec.priority,
            owner=spec.name,
            on_collective_complete=driver.collective_done,
        )
        driver.bind(loop)
        self.live_jobs[spec.name] = dims
        occupied = dims if dims is not None else range(len(self.topology.dims))
        for dim_index in occupied:
            self.dim_assigned_counts[dim_index] += 1
        self._note_live(+1)
        auditor = self.network.auditor
        if auditor is not None:
            auditor.on_job_admitted(
                spec.name,
                time=self.engine.now,
                live=self._live_count,
                cap=self.config.max_concurrent,
            )
        driver.begin()

    def assigned_dims(self, spec: JobSpec) -> tuple[int, ...] | None:
        """The dimension subset ``spec``'s communicators span (or will span).

        The decided placement once the job has arrived; before that, the
        hand-declared ``dim_indices`` — automatic policies decide only at
        the arrival instant, so pre-arrival callers (the finish-time-fair
        policy computing isolated baselines at t=0) see the hand placement.
        """
        if spec.name in self.placements:
            return self.placements[spec.name]
        return spec.dim_indices

    def isolated_time(self, spec: JobSpec) -> float:
        """Cached isolated JCT of ``spec`` (the rho / slowdown denominator).

        The solo run uses the job's *assigned* dimensions (see
        :meth:`assigned_dims`) — rho compares shared vs alone on the same
        slice of the platform.  Jobs with identical configuration share one
        isolated run.  A registry name always resolves to the same
        workload; Workload *instances* are keyed by content (name, batch,
        parallelism, layer stack — everything the simulation reads), so
        reconstructed-but-equal workloads (spec-driven sweeps rebuild them
        per point) still share one baseline.  Priority, weight, and arrival
        are irrelevant alone on the network, so they are not part of the
        key.
        """
        workload = spec.workload
        if isinstance(workload, str):
            workload_key: tuple | str = workload
        else:
            workload_key = (
                workload.name,
                workload.batch_per_npu,
                workload.mp_group_size,
                workload.dp_style,
                tuple(workload.layers),
            )
        dims = self.assigned_dims(spec)
        if self.config.isolated_per_iteration:
            key = (workload_key, spec.scheduler.lower(), 1, dims)
            if key not in self._isolated_cache:
                self._isolated_cache[key] = isolated_jct(
                    self.topology,
                    replace(spec, dim_indices=dims, iterations=1),
                    self.config,
                )
            return self._isolated_cache[key] * spec.iterations
        key = (
            workload_key,
            spec.scheduler.lower(),
            spec.iterations,
            dims,
        )
        if key not in self._isolated_cache:
            self._isolated_cache[key] = isolated_jct(
                self.topology, replace(spec, dim_indices=dims), self.config
            )
        return self._isolated_cache[key]

    def _audit_outcomes(self) -> None:
        """End-of-run cluster invariants (only with auditing enabled).

        Every finished job must finish no earlier than it arrived and must
        have run exactly its configured iteration count — a driver that
        books extra (or loses) iterations would silently skew JCT and
        slowdown metrics.
        """
        auditor = self.network.auditor
        assert auditor is not None
        policy = self.config.job_faults
        for driver in self._drivers:
            auditor.checks_run += 1
            spec = driver.spec
            if driver.failed:
                # Retry/attempt accounting: a failed job crashed once per
                # attempt, within the retry budget, and never also finished.
                if driver.finish_time is not None:
                    raise InvariantViolation(
                        "job-fault-accounting",
                        f"job {spec.name!r} both failed and finished",
                        time=driver.fail_time,
                    )
                if driver.crash_count != driver.attempts or (
                    policy is not None
                    and driver.attempts > policy.max_retries + 1
                ):
                    raise InvariantViolation(
                        "job-fault-accounting",
                        f"job {spec.name!r} failed with {driver.attempts} "
                        f"attempt(s) and {driver.crash_count} crash(es)",
                        time=driver.fail_time,
                    )
                continue
            if driver.finish_time is None:
                continue
            if driver.crash_count != driver.attempts - 1:
                raise InvariantViolation(
                    "job-fault-accounting",
                    f"job {spec.name!r} finished with {driver.attempts} "
                    f"attempt(s) and {driver.crash_count} crash(es)",
                    time=driver.finish_time,
                )
            if driver.finish_time < spec.arrival_time:
                raise InvariantViolation(
                    "job-causality",
                    f"job {spec.name!r} finished before it arrived",
                    time=driver.finish_time,
                    context={"arrival": spec.arrival_time},
                )
            if driver.iterations_done != spec.iterations:
                raise InvariantViolation(
                    "job-iterations",
                    f"job {spec.name!r} ran {driver.iterations_done} "
                    f"iteration(s), expected {spec.iterations}",
                    time=driver.finish_time,
                )

    def run(self, max_events: int | None = None) -> ClusterReport:
        """Run all jobs to completion and collect per-job/cluster metrics.

        With a measurement window configured (``config.measure_time``), the
        run instead stops at ``warmup_time + measure_time``: jobs still
        running then are expected, not a deadlock, and the report carries a
        window-scoped :class:`SteadyStateReport` plus ``stopped_at``.  Jobs
        whose arrival the window cut off are omitted from the per-job rows
        (``total_jobs`` still counts the full trace).

        When ``max_events`` cuts the simulation short, the returned report
        is flagged ``truncated=True``: unfinished jobs carry
        ``finish_time=None`` and the cluster metrics cover the finished
        jobs only, instead of a complete-looking report built from a
        half-run trace.
        """
        if self.fairness is not None:
            self.fairness.prepare(self)
        if self.placement is not None:
            self.placement.prepare(self)
        for driver in self._drivers:
            driver.start()
        stop_time: float | None = None
        if self.config.measure_time is not None:
            stop_time = self.config.warmup_time + self.config.measure_time
        truncated = False
        try:
            if stop_time is not None:
                self.engine.run_until(stop_time, max_events=max_events)
            else:
                self.engine.run(max_events=max_events)
        except EventBudgetError:
            truncated = True
        self._note_live(0)  # close the live-jobs time integral at stop
        unfinished = sorted(
            driver.spec.name for driver in self._drivers if not driver.terminal
        )
        if unfinished and not truncated and stop_time is None:
            raise DeadlockError(
                f"{len(unfinished)} job(s) never completed: "
                f"{', '.join(unfinished)}"
            )
        if self.network.auditor is not None:
            self._audit_outcomes()
        submitted = self._released_collectives + sum(
            d.loop.collectives_issued
            for d in self._drivers
            # truncated/windowed runs may cut a job pre-arrival; released
            # drivers contribute via the accumulator instead
            if d.loop is not None
        )
        result = self.network.result() if submitted else None
        utilization = None
        comm_active = 0.0
        if result is not None and result.comm_active_seconds > 0:
            utilization = bw_utilization(result)
            comm_active = result.comm_active_seconds
        outcomes = []
        outcome_specs = []
        for driver in self._drivers:
            spec = driver.spec
            if stop_time is not None and not driver.arrived:
                continue  # the window closed before this job existed
            outcome_specs.append(spec)
            outcomes.append(
                JobOutcome(
                    name=spec.name,
                    workload_name=spec.workload_name,
                    scheduler_name=spec.scheduler_label,
                    arrival_time=spec.arrival_time,
                    finish_time=driver.finish_time,
                    iterations=driver.iterations,
                    comm_active_seconds=(
                        result.comm_active_seconds_for(spec.name)
                        if result is not None
                        else 0.0
                    ),
                    placement=self.assigned_dims(spec),
                    placed=spec.name in self.placements,
                    admit_time=driver.admit_time,
                    attempts=driver.attempts,
                    failed=driver.failed,
                    fail_time=driver.fail_time,
                    lost_work=driver.lost_work,
                )
            )
        if self.config.isolated_baselines:
            for spec, outcome in zip(outcome_specs, outcomes):
                outcome.isolated_time = self.isolated_time(spec)
        steady_state = None
        if self._collector is not None:
            measure = self._collector.window_end - self._collector.window_start
            steady_state = self._collector.report(
                peak_live_jobs=self.peak_live_jobs,
                mean_live_jobs=self._live_window_integral / measure,
                max_concurrent=self.config.max_concurrent,
            )
        return ClusterReport(
            topology_name=self.topology.name,
            jobs=outcomes,
            utilization=utilization,
            comm_active_seconds=comm_active,
            fairness_name=(
                self.fairness.describe() if self.fairness is not None else None
            ),
            placement_name=(
                self.placement.describe() if self.placement is not None else None
            ),
            dim_load=(
                tuple(result.dim_busy_seconds) if result is not None else ()
            ),
            preemption_count=self.network.preemption_count,
            truncated=truncated,
            truncated_at=self.engine.now if truncated else None,
            stopped_at=stop_time if not truncated else None,
            peak_live_jobs=self.peak_live_jobs,
            total_jobs=len(self.jobs),
            steady_state=steady_state,
        )


def isolated_jct(
    topology: Topology, spec: JobSpec, config: ClusterConfig | None = None
) -> float:
    """JCT of ``spec`` run alone on ``topology`` (the rho denominator).

    Fairness and placement policies are stripped for the solo run: alone on
    the network a job gets full bandwidth under every discipline,
    finish-time-fair re-weighting would recurse into computing its own
    isolated baselines, and the caller has already baked the decided
    placement into ``spec.dim_indices``.
    """
    solo_config = replace(
        config or ClusterConfig(),
        isolated_baselines=False,
        fairness=None,
        placement=None,
        # Window/admission knobs belong to the shared run, not the solo
        # baseline — a warm-up longer than the solo JCT would otherwise
        # truncate the denominator to nothing.
        max_concurrent=None,
        warmup_time=0.0,
        measure_time=None,
        outcome_cap=None,
        # Faults belong to the shared run too: rho compares the contended
        # run against a *healthy* solo run, so degradation shows up in the
        # numerator only.
        link_faults=None,
        job_faults=None,
    )
    solo = ClusterSimulator(topology, [spec.at_arrival(0.0)], solo_config)
    return solo.run().jobs[0].jct


def mix_mean_service_time(
    topology: Topology,
    mix: JobMix,
    config: ClusterConfig | None = None,
    schedulers: Sequence[str] = ("themis",),
    cache: dict[tuple, float] | None = None,
) -> float:
    """Expected isolated JCT of one job drawn from ``mix`` (seconds).

    The mean service demand behind target-rho calibration: per class and
    size rung, one solo single-iteration run (cached) scaled by the mix's
    expected iteration count, weighted by the analytic class/rung
    probabilities and averaged over the scheduler rotation.  Exact for the
    iteration factor (service time is linear in iterations when run solo —
    iterations are identical and independent) and exact-by-construction
    for the rung weights, so ``derive_open_loop_rate`` hits its target
    offered load without a pilot simulation.
    """
    if not schedulers:
        raise ConfigError("mix_mean_service_time needs at least one scheduler")
    cache = cache if cache is not None else {}
    pool = mix.workload_pool()
    class_probs = mix.class_probabilities()
    level_probs = mix.level_probabilities()
    expected = 0.0
    for (label, rung), workload in pool.items():
        weight = class_probs[label] * level_probs[rung]
        if weight <= 0:
            continue
        per_scheduler = 0.0
        for scheduler in schedulers:
            key = ("mix-service", workload.name, scheduler.lower())
            if key not in cache:
                cache[key] = isolated_jct(
                    topology,
                    JobSpec(
                        name=f"calib-{label}-s{rung}",
                        workload=workload,
                        iterations=1,
                        scheduler=scheduler,
                    ),
                    config,
                )
            per_scheduler += cache[key]
        expected += weight * per_scheduler / len(schedulers)
    return expected * mix.mean_iterations


def run_cluster(
    topology: Topology,
    jobs: Sequence[JobSpec],
    config: ClusterConfig | None = None,
) -> ClusterReport:
    """One-call convenience wrapper around :class:`ClusterSimulator`."""
    return ClusterSimulator(topology, jobs, config).run()
