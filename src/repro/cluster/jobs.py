"""Job specifications and arrival traces for the multi-job cluster simulator.

A :class:`JobSpec` describes one training job: which workload it trains,
when it arrives, how many iterations it runs, which collective scheduler it
uses (Baseline vs Themis — chosen *per job*, the shared network honors it
per request), which slice of the platform's dimensions its communicators
span, and its scheduling priority relative to other tenants.

Traces are plain ``list[JobSpec]``: build them explicitly, draw Poisson
arrivals with :func:`poisson_trace` (seeded, fully deterministic), or
generate *open-loop* arrival streams with :func:`open_loop_trace` —
Poisson / bursty (MMPP on-off) / diurnal (sinusoidally modulated rate)
processes over a heavy-tailed elephant/mouse :class:`JobMix`, with
bounded-Pareto iteration counts and job sizes.

Determinism contract of the open-loop generator:

* the whole trace is a pure function of its arguments (seeded RNG only —
  replint rule RPL002);
* substreams are derived with :func:`stream_seed` (SHA-256, *not* Python's
  salted ``hash()``), so the same seed yields the same trace on every
  Python version and process;
* arrivals, job sizes, and rate modulation draw from **disjoint** streams:
  changing the size mix never reshuffles the arrival times, and changing
  the arrival process never reshuffles the per-index size draws.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, replace
from collections.abc import Sequence

from ..errors import ConfigError
from ..workloads import get_workload
from ..workloads.base import Workload
from ..workloads.synthetic import flood_ladder

#: Scheduler kinds a job may request (mirrors ``SchedulerFactory``).
JOB_SCHEDULERS = ("baseline", "themis")


@dataclass(frozen=True)
class JobSpec:
    """One training job in a cluster trace.

    Attributes
    ----------
    name:
        Unique job identifier; stamped as ``owner`` on every collective the
        job submits (per-job comm-active accounting).
    workload:
        A :class:`Workload` instance or a registry name (``"resnet-152"``,
        ``"dlrm"``, ...) resolved lazily via :func:`get_workload`.
    arrival_time:
        Absolute simulation time (seconds) at which the job starts.
    scheduler:
        Collective scheduler for this job's traffic: ``"baseline"`` or
        ``"themis"``.
    iterations:
        Training iterations the job runs before completing.
    dim_indices:
        Platform dimensions the job's communicators span (its slice of the
        cluster); ``None`` means all dimensions.
    priority:
        Added to every request's priority — higher-priority jobs win ties
        in the intra-dimension policies (NCCL-priority-stream style), and
        the cluster preemption fairness policy lets strictly higher-priority
        jobs pause lower-priority in-flight batches.
    weight:
        Bandwidth share under the weighted / finish-time-fair cluster
        fairness policies: when tenants contend on a dimension, each gets
        ``weight / sum(active weights)`` of its bandwidth.  Ignored by the
        default first-come sharing.
    """

    name: str
    workload: Workload | str
    arrival_time: float = 0.0
    scheduler: str = "themis"
    iterations: int = 1
    dim_indices: tuple[int, ...] | None = None
    priority: int = 0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("job name must be non-empty")
        if self.arrival_time < 0:
            raise ConfigError(
                f"job {self.name!r}: arrival time must be >= 0, "
                f"got {self.arrival_time}"
            )
        if self.iterations < 1:
            raise ConfigError(
                f"job {self.name!r}: need >= 1 iterations, got {self.iterations}"
            )
        if self.scheduler.lower() not in JOB_SCHEDULERS:
            raise ConfigError(
                f"job {self.name!r}: unknown scheduler {self.scheduler!r}; "
                f"known: {', '.join(JOB_SCHEDULERS)}"
            )
        if self.weight <= 0:
            raise ConfigError(
                f"job {self.name!r}: weight must be positive, got {self.weight}"
            )
        if self.dim_indices is not None:
            object.__setattr__(self, "dim_indices", tuple(self.dim_indices))

    def resolve_workload(self) -> Workload:
        """The job's :class:`Workload` (resolving registry names)."""
        if isinstance(self.workload, Workload):
            return self.workload
        return get_workload(self.workload)

    @property
    def workload_name(self) -> str:
        if isinstance(self.workload, Workload):
            return self.workload.name
        return self.workload

    @property
    def scheduler_label(self) -> str:
        """Display label (``Baseline`` / ``Themis``)."""
        return "Themis" if self.scheduler.lower() == "themis" else "Baseline"

    def at_arrival(self, arrival_time: float) -> "JobSpec":
        """Copy of this spec arriving at ``arrival_time``."""
        return replace(self, arrival_time=arrival_time)


def poisson_trace(
    workloads: Sequence[Workload | str],
    mean_interarrival: float,
    *,
    seed: int = 0,
    schedulers: Sequence[str] = ("themis",),
    iterations: int = 1,
    start_time: float = 0.0,
    name_prefix: str = "job",
) -> list[JobSpec]:
    """Draw a Poisson job-arrival trace (deterministic for a given seed).

    One job per entry of ``workloads``; the first arrives at ``start_time``
    and subsequent inter-arrival gaps are exponential with mean
    ``mean_interarrival`` seconds.  ``schedulers`` is cycled across jobs, so
    ``("baseline",)`` gives an all-Baseline cluster, ``("themis",)`` an
    all-Themis one, and ``("baseline", "themis")`` alternates.
    """
    if mean_interarrival <= 0:
        raise ConfigError(
            f"mean interarrival must be positive, got {mean_interarrival}"
        )
    if not workloads:
        raise ConfigError("a trace needs at least one workload")
    if not schedulers:
        raise ConfigError("a trace needs at least one scheduler")
    rng = random.Random(seed)
    specs: list[JobSpec] = []
    arrival = start_time
    for index, workload in enumerate(workloads):
        wname = workload.name if isinstance(workload, Workload) else workload
        specs.append(
            JobSpec(
                name=f"{name_prefix}{index}-{wname}",
                workload=workload,
                arrival_time=arrival,
                scheduler=schedulers[index % len(schedulers)],
                iterations=iterations,
            )
        )
        arrival += rng.expovariate(1.0 / mean_interarrival)
    return specs


# --- open-loop generation ----------------------------------------------------
#: Arrival processes :func:`open_loop_trace` understands.
ARRIVAL_PROCESSES = ("poisson", "bursty", "diurnal")


def stream_seed(seed: int, label: str) -> int:
    """Derive an independent substream seed from ``(seed, label)``.

    SHA-256 over the pair, truncated to 64 bits — stable across Python
    versions and processes (unlike the salted builtin ``hash``), so every
    trace labelled stream (arrivals / sizes / modulation) is reproducible
    bit-for-bit anywhere.
    """
    digest = hashlib.sha256(f"{seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _stream_rng(seed: int, label: str) -> random.Random:
    return random.Random(stream_seed(seed, label))


@dataclass(frozen=True)
class BoundedPareto:
    """Bounded Pareto distribution on ``[lower, upper]`` with shape ``alpha``.

    The scheduling literature's standard heavy-tail model (elephant/mouse
    job populations): most mass near ``lower``, a polynomial tail up to the
    hard cap ``upper``.  Sampling is inverse-CDF, so one uniform draw per
    sample — exactly one RNG consumption, which the disjoint-stream
    determinism of :func:`open_loop_trace` relies on.
    """

    alpha: float
    lower: float
    upper: float

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ConfigError(f"bounded Pareto alpha must be > 0, got {self.alpha}")
        if not 0 < self.lower <= self.upper:
            raise ConfigError(
                f"bounded Pareto needs 0 < lower <= upper, "
                f"got [{self.lower}, {self.upper}]"
            )

    def cdf(self, x: float) -> float:
        """Analytic CDF (the KS-test reference)."""
        if x <= self.lower:
            return 0.0
        if x >= self.upper:
            return 1.0
        la, ua = self.lower**self.alpha, self.upper**self.alpha
        denom = 1.0 - la / ua
        if denom == 0.0:  # upper within rounding error of lower: point mass
            return 1.0
        return (1.0 - la * x**-self.alpha) / denom

    @property
    def mean(self) -> float:
        """Analytic expectation (drives target-rho rate calibration)."""
        if self.lower == self.upper:
            return self.lower
        a, lo, hi = self.alpha, self.lower, self.upper
        ratio = (lo / hi) ** a
        if ratio == 1.0:  # upper within rounding error of lower: point mass
            return lo
        if math.isclose(a, 1.0):
            value = math.log(hi / lo) * lo / (1.0 - lo / hi)
        else:
            norm = lo**a / (1.0 - ratio)
            value = norm * a / (a - 1.0) * (lo ** (1.0 - a) - hi ** (1.0 - a))
        # The analytic mean lies in [lower, upper]; for upper within a few
        # ulps of lower, catastrophic cancellation can land a step outside.
        return min(max(value, lo), hi)

    def sample(self, rng: random.Random) -> float:
        """One inverse-CDF draw (consumes exactly one uniform)."""
        if self.lower == self.upper:
            rng.random()  # keep stream alignment uniform across configs
            return self.lower
        u = rng.random()
        a, lo, hi = self.alpha, self.lower, self.upper
        ratio = (lo / hi) ** a
        value = (lo**a / (1.0 - u * (1.0 - ratio))) ** (1.0 / a)
        return min(max(value, lo), hi)


@dataclass(frozen=True)
class JobMix:
    """Heavy-tailed elephant/mouse job population for open-loop traces.

    A drawn job is an *elephant* with probability ``elephant_fraction``
    (many layers, large tensors) and a *mouse* otherwise; its iteration
    count is bounded-Pareto on ``[min_iterations, max_iterations]`` with
    shape ``iteration_alpha``; optionally (``size_alpha`` set) its per-layer
    parameter size is additionally scaled by a bounded-Pareto factor on
    ``[1, size_max_scale]``, quantized onto ``size_levels`` geometric rungs
    so the population uses a finite workload pool (isolated-JCT baselines
    stay cacheable).
    """

    elephant_fraction: float = 0.1
    elephant_layers: int = 8
    elephant_param_mb: float = 8.0
    mouse_layers: int = 2
    mouse_param_mb: float = 1.0
    iteration_alpha: float = 1.5
    min_iterations: int = 1
    max_iterations: int = 20
    size_alpha: float | None = None
    size_max_scale: float = 4.0
    size_levels: int = 4

    def __post_init__(self) -> None:
        if not 0.0 <= self.elephant_fraction <= 1.0:
            raise ConfigError(
                f"elephant_fraction must be in [0, 1], got {self.elephant_fraction}"
            )
        for label, layers in (
            ("elephant_layers", self.elephant_layers),
            ("mouse_layers", self.mouse_layers),
        ):
            if layers < 1:
                raise ConfigError(f"{label} must be >= 1, got {layers}")
        for label, mb in (
            ("elephant_param_mb", self.elephant_param_mb),
            ("mouse_param_mb", self.mouse_param_mb),
        ):
            if mb <= 0:
                raise ConfigError(f"{label} must be positive, got {mb}")
        if not 1 <= self.min_iterations <= self.max_iterations:
            raise ConfigError(
                f"need 1 <= min_iterations <= max_iterations, got "
                f"[{self.min_iterations}, {self.max_iterations}]"
            )
        if self.iteration_alpha <= 0:
            raise ConfigError(
                f"iteration_alpha must be > 0, got {self.iteration_alpha}"
            )
        if self.size_alpha is not None:
            if self.size_alpha <= 0:
                raise ConfigError(f"size_alpha must be > 0, got {self.size_alpha}")
            if self.size_max_scale < 1.0:
                raise ConfigError(
                    f"size_max_scale must be >= 1, got {self.size_max_scale}"
                )
            if self.size_levels < 1:
                raise ConfigError(f"size_levels must be >= 1, got {self.size_levels}")

    # --- distributions ------------------------------------------------------
    def iteration_dist(self) -> BoundedPareto:
        return BoundedPareto(
            self.iteration_alpha,
            float(self.min_iterations),
            float(self.max_iterations),
        )

    def size_dist(self) -> BoundedPareto | None:
        if self.size_alpha is None:
            return None
        return BoundedPareto(self.size_alpha, 1.0, self.size_max_scale)

    def size_scales(self) -> tuple[float, ...]:
        """The geometric size-rung scale factors (``(1.0,)`` without a tail)."""
        if self.size_alpha is None or self.size_levels == 1:
            return (1.0,)
        span = math.log(self.size_max_scale)
        return tuple(
            math.exp(span * level / (self.size_levels - 1))
            for level in range(self.size_levels)
        )

    def level_of(self, scale: float) -> int:
        """Nearest size rung (in log space) for a continuous scale draw."""
        scales = self.size_scales()
        if len(scales) == 1:
            return 0
        target = math.log(max(scale, scales[0]))
        return min(
            range(len(scales)),
            key=lambda i: (abs(math.log(scales[i]) - target), i),
        )

    def level_probabilities(self) -> tuple[float, ...]:
        """Probability mass each size rung receives under quantization.

        Rung boundaries sit at the geometric midpoints between adjacent
        scales; masses come from the analytic bounded-Pareto CDF, so the
        target-rho calibration can weight each rung exactly as the sampler
        populates it.
        """
        dist = self.size_dist()
        scales = self.size_scales()
        if dist is None or len(scales) == 1:
            return (1.0,)
        bounds = [
            math.sqrt(scales[i] * scales[i + 1]) for i in range(len(scales) - 1)
        ]
        edges = [0.0, *[dist.cdf(b) for b in bounds], 1.0]
        return tuple(edges[i + 1] - edges[i] for i in range(len(scales)))

    def workload_pool(self) -> dict[tuple[str, int], Workload]:
        """``(class label, size rung) -> Workload`` for every drawable shape."""
        scales = self.size_scales()
        pool: dict[tuple[str, int], Workload] = {}
        for label, layers, param_mb in (
            ("eleph", self.elephant_layers, self.elephant_param_mb),
            ("mouse", self.mouse_layers, self.mouse_param_mb),
        ):
            for rung, workload in enumerate(
                flood_ladder(layers, param_mb, scales, name_prefix=f"flood-{label}")
            ):
                pool[(label, rung)] = workload
        return pool

    def class_probabilities(self) -> dict[str, float]:
        return {
            "eleph": self.elephant_fraction,
            "mouse": 1.0 - self.elephant_fraction,
        }

    @property
    def mean_iterations(self) -> float:
        """Expectation of the (continuous) iteration distribution.

        The sampler rounds draws to whole iterations, so this is a close
        approximation used only for rate calibration, not an exact moment
        of the discrete sampler.
        """
        return self.iteration_dist().mean

    def sample_job(self, rng: random.Random) -> tuple[str, int, int]:
        """Draw ``(class label, size rung, iterations)``.

        Consumes exactly three uniforms from ``rng`` regardless of the mix
        configuration, so traces with different mixes stay stream-aligned
        (disjoint-stream determinism).
        """
        label = "eleph" if rng.random() < self.elephant_fraction else "mouse"
        size_dist = self.size_dist()
        if size_dist is None:
            rng.random()  # keep stream alignment with sized mixes
            rung = 0
        else:
            rung = self.level_of(size_dist.sample(rng))
        raw = self.iteration_dist().sample(rng)
        iterations = max(self.min_iterations, min(self.max_iterations, round(raw)))
        return label, rung, iterations


# --- arrival processes -------------------------------------------------------
def _next_poisson(rng: random.Random, rate: float) -> float:
    return rng.expovariate(rate)


def _diurnal_arrivals(
    arr_rng: random.Random,
    mod_rng: random.Random,
    rate: float,
    amplitude: float,
    period: float,
    start_time: float,
    horizon: float | None,
    max_jobs: int | None,
) -> list[float]:
    """Non-homogeneous Poisson via thinning against the peak rate."""
    peak = rate * (1.0 + amplitude)
    times: list[float] = []
    t = start_time
    while True:
        t += _next_poisson(arr_rng, peak)
        if horizon is not None and t > start_time + horizon:
            break
        lam = rate * (
            1.0 + amplitude * math.sin(2.0 * math.pi * (t - start_time) / period)
        )
        if mod_rng.random() * peak < lam:
            times.append(t)
            if max_jobs is not None and len(times) >= max_jobs:
                break
    return times


def _bursty_arrivals(
    arr_rng: random.Random,
    mod_rng: random.Random,
    rate: float,
    on_mean: float,
    off_mean: float,
    ratio: float,
    start_time: float,
    horizon: float | None,
    max_jobs: int | None,
) -> list[float]:
    """Two-state MMPP: exponential on/off dwell times, long-run mean ``rate``.

    The on-state rate is ``ratio`` times the off-state rate, scaled so the
    duty-weighted average equals ``rate``.  Exponential gaps are memoryless,
    so redrawing a fresh gap at each state switch is an exact simulation.
    """
    duty = on_mean / (on_mean + off_mean)
    rate_off = rate / (duty * ratio + (1.0 - duty))
    rate_on = ratio * rate_off
    times: list[float] = []
    t = start_time
    state_on = True
    next_switch = t + mod_rng.expovariate(1.0 / on_mean)
    while True:
        gap = _next_poisson(arr_rng, rate_on if state_on else rate_off)
        while t + gap > next_switch:
            t = next_switch
            state_on = not state_on
            mean = on_mean if state_on else off_mean
            next_switch = t + mod_rng.expovariate(1.0 / mean)
            gap = _next_poisson(arr_rng, rate_on if state_on else rate_off)
        t += gap
        if horizon is not None and t > start_time + horizon:
            break
        times.append(t)
        if max_jobs is not None and len(times) >= max_jobs:
            break
    return times


def _poisson_arrivals(
    arr_rng: random.Random,
    rate: float,
    start_time: float,
    horizon: float | None,
    max_jobs: int | None,
) -> list[float]:
    times: list[float] = []
    t = start_time
    while True:
        t += _next_poisson(arr_rng, rate)
        if horizon is not None and t > start_time + horizon:
            break
        times.append(t)
        if max_jobs is not None and len(times) >= max_jobs:
            break
    return times


def open_loop_trace(
    *,
    rate: float,
    duration: float | None = None,
    max_jobs: int | None = None,
    mix: JobMix | None = None,
    process: str = "poisson",
    seed: int = 0,
    schedulers: Sequence[str] = ("themis",),
    start_time: float = 0.0,
    rate_amplitude: float = 0.5,
    rate_period: float = 0.25,
    burst_on: float = 0.05,
    burst_off: float = 0.05,
    burst_ratio: float = 4.0,
    name_prefix: str = "oj",
) -> list[JobSpec]:
    """Generate a seeded open-loop arrival trace over a :class:`JobMix`.

    Parameters
    ----------
    rate:
        Long-run mean arrival rate (jobs per simulated second).
    duration / max_jobs:
        Stop conditions — simulated horizon after ``start_time`` and/or a
        hard arrival-count cap; at least one must be set.
    process:
        ``"poisson"`` (homogeneous), ``"bursty"`` (two-state MMPP with
        exponential dwell times ``burst_on``/``burst_off`` and on:off rate
        ratio ``burst_ratio``), or ``"diurnal"`` (sinusoidal rate with
        relative ``rate_amplitude`` and period ``rate_period`` seconds,
        simulated by thinning).
    seed:
        Master seed; arrivals, per-job sizes, and rate modulation each use
        an independent SHA-256-derived substream (see :func:`stream_seed`).
    schedulers:
        Cycled across jobs in arrival order, as in :func:`poisson_trace`.
    """
    if rate <= 0:
        raise ConfigError(f"open-loop arrival rate must be positive, got {rate}")
    if duration is None and max_jobs is None:
        raise ConfigError("open_loop_trace needs duration and/or max_jobs")
    if duration is not None and duration <= 0:
        raise ConfigError(f"duration must be positive, got {duration}")
    if max_jobs is not None and max_jobs < 1:
        raise ConfigError(f"max_jobs must be >= 1, got {max_jobs}")
    if start_time < 0:
        raise ConfigError(f"start_time must be >= 0, got {start_time}")
    if not schedulers:
        raise ConfigError("a trace needs at least one scheduler")
    process = process.strip().lower()
    if process not in ARRIVAL_PROCESSES:
        raise ConfigError(
            f"unknown arrival process {process!r}; "
            f"known: {', '.join(ARRIVAL_PROCESSES)}"
        )
    mix = mix or JobMix()
    arr_rng = _stream_rng(seed, "arrivals")
    mod_rng = _stream_rng(seed, "modulation")
    size_rng = _stream_rng(seed, "sizes")
    if process == "poisson":
        times = _poisson_arrivals(arr_rng, rate, start_time, duration, max_jobs)
    elif process == "diurnal":
        if rate_amplitude < 0 or rate_amplitude > 1:
            raise ConfigError(
                f"rate_amplitude must be in [0, 1], got {rate_amplitude}"
            )
        if rate_period <= 0:
            raise ConfigError(f"rate_period must be positive, got {rate_period}")
        times = _diurnal_arrivals(
            arr_rng, mod_rng, rate, rate_amplitude, rate_period,
            start_time, duration, max_jobs,
        )
    else:
        if burst_on <= 0 or burst_off <= 0:
            raise ConfigError(
                f"burst_on/burst_off must be positive, got "
                f"{burst_on}/{burst_off}"
            )
        if burst_ratio < 1:
            raise ConfigError(f"burst_ratio must be >= 1, got {burst_ratio}")
        times = _bursty_arrivals(
            arr_rng, mod_rng, rate, burst_on, burst_off, burst_ratio,
            start_time, duration, max_jobs,
        )
    pool = mix.workload_pool()
    specs: list[JobSpec] = []
    for index, arrival in enumerate(times):
        label, rung, iterations = mix.sample_job(size_rng)
        specs.append(
            JobSpec(
                name=f"{name_prefix}{index}-{label}",
                workload=pool[(label, rung)],
                arrival_time=arrival,
                scheduler=schedulers[index % len(schedulers)],
                iterations=iterations,
            )
        )
    return specs


def derive_open_loop_rate(
    target_rho: float, mean_service_time: float, slots: int
) -> float:
    """Arrival rate hitting offered load ``target_rho`` on ``slots`` servers.

    Offered load is ``lambda * E[service] / slots``; solve for lambda.
    """
    if not 0 < target_rho < 1:
        raise ConfigError(f"target_rho must be in (0, 1), got {target_rho}")
    if mean_service_time <= 0:
        raise ConfigError(
            f"mean service time must be positive, got {mean_service_time}"
        )
    if slots < 1:
        raise ConfigError(f"slots must be >= 1, got {slots}")
    return target_rho * slots / mean_service_time
