"""Job specifications and arrival traces for the multi-job cluster simulator.

A :class:`JobSpec` describes one training job: which workload it trains,
when it arrives, how many iterations it runs, which collective scheduler it
uses (Baseline vs Themis — chosen *per job*, the shared network honors it
per request), which slice of the platform's dimensions its communicators
span, and its scheduling priority relative to other tenants.

Traces are plain ``list[JobSpec]``: build them explicitly, or draw Poisson
arrivals with :func:`poisson_trace` (seeded, fully deterministic).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from collections.abc import Sequence

from ..errors import ConfigError
from ..workloads import get_workload
from ..workloads.base import Workload

#: Scheduler kinds a job may request (mirrors ``SchedulerFactory``).
JOB_SCHEDULERS = ("baseline", "themis")


@dataclass(frozen=True)
class JobSpec:
    """One training job in a cluster trace.

    Attributes
    ----------
    name:
        Unique job identifier; stamped as ``owner`` on every collective the
        job submits (per-job comm-active accounting).
    workload:
        A :class:`Workload` instance or a registry name (``"resnet-152"``,
        ``"dlrm"``, ...) resolved lazily via :func:`get_workload`.
    arrival_time:
        Absolute simulation time (seconds) at which the job starts.
    scheduler:
        Collective scheduler for this job's traffic: ``"baseline"`` or
        ``"themis"``.
    iterations:
        Training iterations the job runs before completing.
    dim_indices:
        Platform dimensions the job's communicators span (its slice of the
        cluster); ``None`` means all dimensions.
    priority:
        Added to every request's priority — higher-priority jobs win ties
        in the intra-dimension policies (NCCL-priority-stream style), and
        the cluster preemption fairness policy lets strictly higher-priority
        jobs pause lower-priority in-flight batches.
    weight:
        Bandwidth share under the weighted / finish-time-fair cluster
        fairness policies: when tenants contend on a dimension, each gets
        ``weight / sum(active weights)`` of its bandwidth.  Ignored by the
        default first-come sharing.
    """

    name: str
    workload: Workload | str
    arrival_time: float = 0.0
    scheduler: str = "themis"
    iterations: int = 1
    dim_indices: tuple[int, ...] | None = None
    priority: int = 0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("job name must be non-empty")
        if self.arrival_time < 0:
            raise ConfigError(
                f"job {self.name!r}: arrival time must be >= 0, "
                f"got {self.arrival_time}"
            )
        if self.iterations < 1:
            raise ConfigError(
                f"job {self.name!r}: need >= 1 iterations, got {self.iterations}"
            )
        if self.scheduler.lower() not in JOB_SCHEDULERS:
            raise ConfigError(
                f"job {self.name!r}: unknown scheduler {self.scheduler!r}; "
                f"known: {', '.join(JOB_SCHEDULERS)}"
            )
        if self.weight <= 0:
            raise ConfigError(
                f"job {self.name!r}: weight must be positive, got {self.weight}"
            )
        if self.dim_indices is not None:
            object.__setattr__(self, "dim_indices", tuple(self.dim_indices))

    def resolve_workload(self) -> Workload:
        """The job's :class:`Workload` (resolving registry names)."""
        if isinstance(self.workload, Workload):
            return self.workload
        return get_workload(self.workload)

    @property
    def workload_name(self) -> str:
        if isinstance(self.workload, Workload):
            return self.workload.name
        return self.workload

    @property
    def scheduler_label(self) -> str:
        """Display label (``Baseline`` / ``Themis``)."""
        return "Themis" if self.scheduler.lower() == "themis" else "Baseline"

    def at_arrival(self, arrival_time: float) -> "JobSpec":
        """Copy of this spec arriving at ``arrival_time``."""
        return replace(self, arrival_time=arrival_time)


def poisson_trace(
    workloads: Sequence[Workload | str],
    mean_interarrival: float,
    *,
    seed: int = 0,
    schedulers: Sequence[str] = ("themis",),
    iterations: int = 1,
    start_time: float = 0.0,
    name_prefix: str = "job",
) -> list[JobSpec]:
    """Draw a Poisson job-arrival trace (deterministic for a given seed).

    One job per entry of ``workloads``; the first arrives at ``start_time``
    and subsequent inter-arrival gaps are exponential with mean
    ``mean_interarrival`` seconds.  ``schedulers`` is cycled across jobs, so
    ``("baseline",)`` gives an all-Baseline cluster, ``("themis",)`` an
    all-Themis one, and ``("baseline", "themis")`` alternates.
    """
    if mean_interarrival <= 0:
        raise ConfigError(
            f"mean interarrival must be positive, got {mean_interarrival}"
        )
    if not workloads:
        raise ConfigError("a trace needs at least one workload")
    if not schedulers:
        raise ConfigError("a trace needs at least one scheduler")
    rng = random.Random(seed)
    specs: list[JobSpec] = []
    arrival = start_time
    for index, workload in enumerate(workloads):
        wname = workload.name if isinstance(workload, Workload) else workload
        specs.append(
            JobSpec(
                name=f"{name_prefix}{index}-{wname}",
                workload=workload,
                arrival_time=arrival,
                scheduler=schedulers[index % len(schedulers)],
                iterations=iterations,
            )
        )
        arrival += rng.expovariate(1.0 / mean_interarrival)
    return specs
