"""Multi-job cluster simulation: concurrent training jobs on one network.

Extends the single-collective / single-job reproduction to the setting real
clusters face (CASSINI, Themis-fair): many jobs whose collectives contend
for the same network dimensions, with per-job scheduler choice, priorities,
communicator dim-subsets, Poisson (or explicit) arrival traces, pluggable
cluster-level fairness policies (weighted bandwidth shares, finish-time
fairness, priority preemption — see ``fairness``), and pluggable automatic
job placement (load-balanced bin-packing, CASSINI-style comm-phase
interleaving — see ``placement``).
"""

from .fairness import (
    FairnessPolicy,
    FifoSharing,
    FinishTimeFairness,
    PriorityPreemption,
    WeightedSharing,
    fairness_names,
    get_fairness,
    register_fairness,
)
from .jobs import (
    ARRIVAL_PROCESSES,
    JOB_SCHEDULERS,
    BoundedPareto,
    JobMix,
    JobSpec,
    derive_open_loop_rate,
    open_loop_trace,
    poisson_trace,
    stream_seed,
)
from .metrics import ClusterReport, JobOutcome, SteadyStateReport
from .placement import (
    AllDimsPlacement,
    InterleavedPlacement,
    LoadBalancedPlacement,
    ManualPlacement,
    PlacementPolicy,
    get_placement,
    placement_names,
    register_placement,
)
from .simulator import (
    ClusterConfig,
    ClusterSimulator,
    isolated_jct,
    mix_mean_service_time,
    run_cluster,
)
from .streaming import EpochAccumulator, StreamingStats

__all__ = [
    "ARRIVAL_PROCESSES",
    "JOB_SCHEDULERS",
    "JobSpec",
    "JobMix",
    "BoundedPareto",
    "poisson_trace",
    "open_loop_trace",
    "derive_open_loop_rate",
    "stream_seed",
    "JobOutcome",
    "ClusterReport",
    "SteadyStateReport",
    "StreamingStats",
    "EpochAccumulator",
    "mix_mean_service_time",
    "ClusterConfig",
    "ClusterSimulator",
    "isolated_jct",
    "run_cluster",
    "FairnessPolicy",
    "FifoSharing",
    "WeightedSharing",
    "FinishTimeFairness",
    "PriorityPreemption",
    "get_fairness",
    "fairness_names",
    "register_fairness",
    "PlacementPolicy",
    "ManualPlacement",
    "AllDimsPlacement",
    "LoadBalancedPlacement",
    "InterleavedPlacement",
    "get_placement",
    "placement_names",
    "register_placement",
]
