"""Multi-job cluster simulation: concurrent training jobs on one network.

Extends the single-collective / single-job reproduction to the setting real
clusters face (CASSINI, Themis-fair): many jobs whose collectives contend
for the same network dimensions, with per-job scheduler choice, priorities,
communicator dim-subsets, Poisson (or explicit) arrival traces, pluggable
cluster-level fairness policies (weighted bandwidth shares, finish-time
fairness, priority preemption — see ``fairness``), and pluggable automatic
job placement (load-balanced bin-packing, CASSINI-style comm-phase
interleaving — see ``placement``).
"""

from .fairness import (
    FairnessPolicy,
    FifoSharing,
    FinishTimeFairness,
    PriorityPreemption,
    WeightedSharing,
    fairness_names,
    get_fairness,
    register_fairness,
)
from .jobs import JOB_SCHEDULERS, JobSpec, poisson_trace
from .metrics import ClusterReport, JobOutcome
from .placement import (
    AllDimsPlacement,
    InterleavedPlacement,
    LoadBalancedPlacement,
    ManualPlacement,
    PlacementPolicy,
    get_placement,
    placement_names,
    register_placement,
)
from .simulator import ClusterConfig, ClusterSimulator, isolated_jct, run_cluster

__all__ = [
    "JOB_SCHEDULERS",
    "JobSpec",
    "poisson_trace",
    "JobOutcome",
    "ClusterReport",
    "ClusterConfig",
    "ClusterSimulator",
    "isolated_jct",
    "run_cluster",
    "FairnessPolicy",
    "FifoSharing",
    "WeightedSharing",
    "FinishTimeFairness",
    "PriorityPreemption",
    "get_fairness",
    "fairness_names",
    "register_fairness",
    "PlacementPolicy",
    "ManualPlacement",
    "AllDimsPlacement",
    "LoadBalancedPlacement",
    "InterleavedPlacement",
    "get_placement",
    "placement_names",
    "register_placement",
]
