"""Multi-job cluster simulation: concurrent training jobs on one network.

Extends the single-collective / single-job reproduction to the setting real
clusters face (CASSINI, Themis-fair): many jobs whose collectives contend
for the same network dimensions, with per-job scheduler choice, priorities,
communicator dim-subsets, Poisson (or explicit) arrival traces, and
pluggable cluster-level fairness policies (weighted bandwidth shares,
finish-time fairness, priority preemption — see ``fairness``).
"""

from .fairness import (
    FairnessPolicy,
    FifoSharing,
    FinishTimeFairness,
    PriorityPreemption,
    WeightedSharing,
    fairness_names,
    get_fairness,
    register_fairness,
)
from .jobs import JOB_SCHEDULERS, JobSpec, poisson_trace
from .metrics import ClusterReport, JobOutcome
from .simulator import ClusterConfig, ClusterSimulator, isolated_jct, run_cluster

__all__ = [
    "JOB_SCHEDULERS",
    "JobSpec",
    "poisson_trace",
    "JobOutcome",
    "ClusterReport",
    "ClusterConfig",
    "ClusterSimulator",
    "isolated_jct",
    "run_cluster",
    "FairnessPolicy",
    "FifoSharing",
    "WeightedSharing",
    "FinishTimeFairness",
    "PriorityPreemption",
    "get_fairness",
    "fairness_names",
    "register_fairness",
]
