"""Ideal (100%-utilization) reference models (paper Table 3 / Sec. 6.3).

The paper's *Ideal* method "assumes 100% BW is utilized. Communication
latency is simply calculated by (collective size / total BW)".  With the
invariant-bytes lemma (see ``collectives.phases``), the bytes every NPU must
send are schedule-invariant, so the Ideal latency is exactly::

    T_ideal = invariant_bytes_per_npu / sum_K BW_K

This is achievable only when chunk loads can actually be balanced across
dimensions; in the *UnderProvisioned* scenario of Sec. 6.3 no schedule can
fully drive every dimension.  :class:`LpIdealEstimator` computes the exact
fluid lower bound by linear programming over all ``D!`` dimension orders:
minimize the makespan ``T`` subject to every dimension's total transfer time
not exceeding ``T``.  The gap between the two estimators is precisely the
utilization the BW distribution leaves unreachable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from ..collectives.phases import invariant_bytes_per_npu, stage_bytes_fraction
from ..collectives.types import CollectiveType
from ..errors import CollectiveError
from ..topology import Topology


class IdealEstimator:
    """Table 3 Ideal: ``invariant bytes / total BW`` (100% utilization).

    For All-to-All the sum-of-BW bound is unachievable by *any* schedule:
    A2A stage sizes do not shrink across dimensions, so every dimension K
    must carry ``size x (P_K - 1)/P_K`` regardless of chunk ordering — the
    tight bound is the bottleneck dimension, and that is what we return.
    """

    name = "Ideal"

    def collective_time(
        self, ctype: CollectiveType, size: float, topology: Topology
    ) -> float:
        """Lower-bound latency assuming every dimension transfers at full BW."""
        if ctype is CollectiveType.ALL_TO_ALL:
            return max(
                size * (dim.size - 1) / dim.size / dim.bandwidth
                for dim in topology.dims
            )
        total_bytes = invariant_bytes_per_npu(ctype, size, topology)
        return total_bytes / topology.total_bandwidth


@dataclass(frozen=True)
class FluidSolution:
    """Result of the LP fluid relaxation.

    ``makespan`` is the optimal balanced completion time; ``order_weights``
    maps each dimension order to the fraction of the collective routed
    through it; ``dim_times`` is each dimension's total transfer time under
    the optimal mix.
    """

    makespan: float
    order_weights: dict[tuple[int, ...], float]
    dim_times: tuple[float, ...]

    @property
    def bottleneck_dims(self) -> tuple[int, ...]:
        """Dimensions whose transfer time equals the makespan (tight dims)."""
        tol = 1e-9 * max(self.makespan, 1e-30)
        return tuple(
            i for i, t in enumerate(self.dim_times) if self.makespan - t <= tol
        )


class LpIdealEstimator:
    """Exact fluid bound: LP over all D! chunk dimension-orders.

    Variables are the bytes routed through each order; constraints cap each
    dimension's transfer time at the makespan ``T``; objective minimizes
    ``T``.  For All-Reduce the AG phase mirrors the RS order, matching
    Algorithm 1 (and, by RS/AG cost symmetry, losing no generality).
    """

    name = "LP-Ideal"

    def solve(
        self, ctype: CollectiveType, size: float, topology: Topology
    ) -> FluidSolution:
        if size <= 0:
            raise CollectiveError(f"collective size must be positive, got {size}")
        ndims = topology.ndims
        orders = list(itertools.permutations(range(ndims)))
        bandwidths = topology.bandwidths

        # Transfer time (seconds) per dimension if the *whole* collective is
        # routed via each order; variables are then well-scaled fractions.
        coeffs = np.zeros((ndims, len(orders)))
        for j, order in enumerate(orders):
            fractions = stage_bytes_fraction(ctype, order, topology)
            for k in range(ndims):
                coeffs[k, j] = size * fractions[k] / bandwidths[k]

        # Normalize the time unit so coefficients are O(1) regardless of the
        # collective size (HiGHS tolerances are absolute).
        time_scale = float(coeffs.max())
        if time_scale <= 0:  # pragma: no cover - degenerate inputs rejected above
            raise CollectiveError("fluid LP has no positive transfer times")
        coeffs = coeffs / time_scale

        # Variables: f_0..f_{m-1} (fraction of bytes per order), t (makespan).
        nvars = len(orders) + 1
        objective = np.zeros(nvars)
        objective[-1] = 1.0  # minimize t
        # coeffs @ f - t <= 0 for every dimension.
        a_ub = np.hstack([coeffs, -np.ones((ndims, 1))])
        b_ub = np.zeros(ndims)
        # sum(f) == 1.
        a_eq = np.zeros((1, nvars))
        a_eq[0, : len(orders)] = 1.0
        b_eq = np.array([1.0])
        result = linprog(
            objective,
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=[(0, None)] * len(orders) + [(0, None)],
            method="highs",
        )
        if not result.success:  # pragma: no cover - LP is always feasible
            raise CollectiveError(f"fluid LP failed: {result.message}")
        weights = {
            order: float(result.x[j]) * size
            for j, order in enumerate(orders)
            if result.x[j] > 1e-12
        }
        dim_times = tuple(
            float(v) * time_scale for v in coeffs @ result.x[: len(orders)]
        )
        return FluidSolution(
            makespan=float(result.x[-1]) * time_scale,
            order_weights=weights,
            dim_times=dim_times,
        )

    def collective_time(
        self, ctype: CollectiveType, size: float, topology: Topology
    ) -> float:
        """The fluid-optimal makespan (bandwidth terms only)."""
        return self.solve(ctype, size, topology).makespan


def achievable_utilization(
    ctype: CollectiveType, topology: Topology, size: float | None = None
) -> float:
    """Best average BW utilization any scheduler could reach (Sec. 6.3).

    The ratio of the 100%-utilization Ideal time to the fluid-optimal
    makespan: 1.0 when the BW distribution is balanced or over-provisioned,
    below 1.0 when some dimension is under-provisioned.  ``size`` is
    irrelevant to the ratio (both scale linearly) but may be supplied.
    """
    probe = size if size is not None else 1.0
    ideal = IdealEstimator().collective_time(ctype, probe, topology)
    fluid = LpIdealEstimator().collective_time(ctype, probe, topology)
    if fluid <= 0:
        return 1.0
    return min(1.0, ideal / fluid)
