"""The Latency Model component (paper Fig. 6 / Sec. 4.4).

"The Latency Model is a function that inputs chunk size, network dimension,
and chunk operation (RS/AG), and returns the predicted runtime for that
chunk operation running on the specific dimension."

Two kinds of predictions are exposed:

* :meth:`LatencyModel.chunk_load` — the *load* contribution used by the
  scheduler: only the bandwidth term ``n_K x B_K``, per Sec. 4.4 ("Since
  N_K only participates with B_K, the Latency Model only considers
  n_K x B_K as the latency of chunk #i on dimK").
* :meth:`LatencyModel.op_time` — the full op latency ``A_K + n_K x B_K``
  used by the executor and by the consistency pre-simulation.

Because both A_K and B_K can be measured offline and replicated on every
NPU, an identical model on all NPUs yields identical schedules —
inter-dimension schedule consistency (Sec. 4.6.1).
"""

from __future__ import annotations

from ..collectives.base import CollectiveAlgorithm
from ..collectives.phases import Stage, phase_ops
from ..collectives.registry import algorithms_for_topology
from ..collectives.types import CollectiveType, PhaseOp
from ..errors import CollectiveError
from ..topology import Topology


class LatencyModel:
    """Analytical per-dimension chunk-op latency predictor.

    Binds a topology to one collective algorithm per dimension (Table 1
    defaults unless overridden) and evaluates the Sec. 4.4 cost model.
    """

    def __init__(
        self,
        topology: Topology,
        algorithms: tuple[CollectiveAlgorithm, ...] | None = None,
    ) -> None:
        self.topology = topology
        self.algorithms = algorithms or algorithms_for_topology(topology)
        if len(self.algorithms) != topology.ndims:
            raise CollectiveError(
                f"need {topology.ndims} algorithms, got {len(self.algorithms)}"
            )
        # Per-(op, size, dim) memo: the algorithms are pure analytical
        # formulas and training loops resubmit identical collectives every
        # iteration, so the same lookups recur millions of times on the
        # simulation hot path.  One dict serves the three base predictions
        # (the key leads with the method tag); op_time composes two of them.
        self._memo: dict[tuple, float] = {}

    # --- per-op predictions ------------------------------------------------
    def bytes_per_npu(self, op: PhaseOp, stage_size: float, dim_index: int) -> float:
        """Bytes one NPU sends into ``dim_index`` for this op (``n_K``)."""
        key = ("bytes", op, stage_size, dim_index)
        value = self._memo.get(key)
        if value is None:
            dim = self.topology.dims[dim_index]
            value = self.algorithms[dim_index].bytes_per_npu(op, stage_size, dim.size)
            self._memo[key] = value
        return value

    def chunk_load(self, op: PhaseOp, stage_size: float, dim_index: int) -> float:
        """Scheduler-visible load: the bandwidth term ``n_K x B_K`` only."""
        key = ("load", op, stage_size, dim_index)
        value = self._memo.get(key)
        if value is None:
            dim = self.topology.dims[dim_index]
            value = self.algorithms[dim_index].transfer_time(op, stage_size, dim)
            self._memo[key] = value
        return value

    def fixed_latency(self, op: PhaseOp, dim_index: int) -> float:
        """Fixed delay ``A_K = steps x step_latency`` for this op."""
        key = ("fixed", op, dim_index)
        value = self._memo.get(key)
        if value is None:
            dim = self.topology.dims[dim_index]
            value = self.algorithms[dim_index].fixed_latency(op, dim)
            self._memo[key] = value
        return value

    def op_time(self, op: PhaseOp, stage_size: float, dim_index: int) -> float:
        """Full op latency ``A_K + n_K x B_K``."""
        return self.fixed_latency(op, dim_index) + self.chunk_load(
            op, stage_size, dim_index
        )

    # --- aggregates used by the scheduler -----------------------------------
    def collective_fixed_latency(self, ctype: CollectiveType, dim_index: int) -> float:
        """Total fixed delay a dimension pays for one pass of ``ctype``.

        The Dim Load Tracker initializes each dimension's load to its A_K
        for the target collective type (Sec. 4.4); All-Reduce visits every
        dimension once for RS and once for AG.
        """
        ops = {
            CollectiveType.ALL_REDUCE: (PhaseOp.RS, PhaseOp.AG),
            CollectiveType.REDUCE_SCATTER: (PhaseOp.RS,),
            CollectiveType.ALL_GATHER: (PhaseOp.AG,),
            CollectiveType.ALL_TO_ALL: (PhaseOp.A2A,),
        }[ctype]
        return sum(self.fixed_latency(op, dim_index) for op in ops)

    def stage_loads(self, stages: list[Stage] | tuple[Stage, ...]) -> list[float]:
        """Per-dimension load (bandwidth term) added by a chunk's stages.

        This is ``LatencyModel.calcLoads`` of Algorithm 1 (lines 28-29):
        given a sized stage list, return the additional load each dimension
        receives.
        """
        loads = [0.0] * self.topology.ndims
        for stage in stages:
            loads[stage.dim_index] += self.chunk_load(
                stage.op, stage.stage_size, stage.dim_index
            )
        return loads

    def single_phase_ops(self, ctype: CollectiveType) -> list[PhaseOp]:
        """The op sequence a chunk of ``ctype`` performs across dims."""
        return phase_ops(ctype, self.topology.ndims)
