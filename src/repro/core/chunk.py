"""Chunk and chunk-plan data structures (paper Sec. 2.3, Fig. 6).

A *chunk* is the scheduling unit: an equal share of a collective's payload
that traverses the network dimensions independently.  A :class:`ChunkPlan`
captures everything the executor needs for one chunk: its identity, its
dimension order, and the fully-sized list of stages; a
:class:`CollectivePlan` is the schedule for the whole collective — the
``Schedule[][]`` output of Algorithm 1 plus the per-stage size annotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from ..collectives.phases import Stage, stage_plan
from ..collectives.types import CollectiveRequest, CollectiveType
from ..errors import ScheduleError
from ..topology import Topology


@dataclass(frozen=True)
class ChunkPlan:
    """The schedule of one chunk: its dimension order and sized stages.

    ``dim_order`` is the RS-phase order for All-Reduce (the AG phase mirrors
    it, Algorithm 1 line 8) or the single-phase order otherwise.  Dimension
    indices are local to the (sub-)topology the collective runs on.
    """

    chunk_id: int
    size: float
    ctype: CollectiveType
    dim_order: tuple[int, ...]
    stages: tuple[Stage, ...]

    @property
    def nstages(self) -> int:
        return len(self.stages)

    def stage(self, index: int) -> Stage:
        return self.stages[index]


@dataclass(frozen=True)
class CollectivePlan:
    """The full schedule for one collective: one :class:`ChunkPlan` per chunk.

    Also records which scheduler produced it and the topology it targets so
    results can be attributed without side-channel bookkeeping.
    """

    request: CollectiveRequest
    topology: Topology
    chunks: tuple[ChunkPlan, ...]
    scheduler_name: str = ""
    issue_time: float = 0.0
    metadata: dict = field(default_factory=dict, compare=False)

    @property
    def nchunks(self) -> int:
        return len(self.chunks)

    @property
    def total_ops(self) -> int:
        return sum(c.nstages for c in self.chunks)

    def dim_orders(self) -> list[tuple[int, ...]]:
        """Dimension orders of all chunks, in chunk order (Algorithm 1 output)."""
        return [c.dim_order for c in self.chunks]


def build_chunk_plan(
    chunk_id: int,
    ctype: CollectiveType,
    chunk_size: float,
    dim_order: Sequence[int],
    topology: Topology,
) -> ChunkPlan:
    """Construct a :class:`ChunkPlan`, computing the sized stage list."""
    stages = tuple(stage_plan(ctype, chunk_size, dim_order, topology))
    return ChunkPlan(
        chunk_id=chunk_id,
        size=chunk_size,
        ctype=ctype,
        dim_order=tuple(dim_order),
        stages=stages,
    )


def validate_collective_plan(plan: CollectivePlan) -> None:
    """Sanity-check a plan: chunk ids, sizes, and per-chunk stage structure.

    Raises :class:`ScheduleError` on any inconsistency.  Used by tests and by
    the executor in paranoid mode.
    """
    if not plan.chunks:
        raise ScheduleError("collective plan has no chunks")
    expected_total = plan.request.size
    actual_total = sum(c.size for c in plan.chunks)
    if abs(actual_total - expected_total) > 1e-6 * max(expected_total, 1.0):
        raise ScheduleError(
            f"chunk sizes sum to {actual_total}, expected {expected_total}"
        )
    for index, chunk in enumerate(plan.chunks):
        if chunk.chunk_id != index:
            raise ScheduleError(
                f"chunk ids must be dense: got {chunk.chunk_id} at position {index}"
            )
        if chunk.ctype is not plan.request.ctype:
            raise ScheduleError("chunk collective type differs from request")
        rebuilt = build_chunk_plan(
            chunk.chunk_id, chunk.ctype, chunk.size, chunk.dim_order, plan.topology
        )
        if rebuilt.stages != chunk.stages:
            raise ScheduleError(
                f"chunk {index} stage list inconsistent with its dim order"
            )
