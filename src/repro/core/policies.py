"""Intra-dimension chunk scheduling policies (paper Sec. 4.3).

When several chunk operations are simultaneously ready on one dimension,
the policy picks which runs next:

* **FIFO** — process in arrival order.  The paper's default for the baseline
  (where policies do not matter, since every chunk has the identical
  schedule) and for the Themis+FIFO configuration.
* **SCF** (Smallest-Chunk-First) — the paper's empirically best policy for
  Themis: small ops finish quickly and feed their chunk to the next
  dimension sooner, reducing dimension starvation.
* **LCF** (Largest-Chunk-First) — the adversarial mirror of SCF, included
  as an ablation to quantify how much intra-dimension ordering matters.

Policies order *ready* ops only; op readiness (previous stage completed) is
the executor's concern.

A policy also supplies the *ready-queue structure* the executor keeps its
ready ops in (:meth:`IntraDimPolicy.make_queue`): each policy's heap is
keyed by its own ``sort_key``, so selection is O(log n) instead of the
linear ``select(list)`` scan — which remains available for compatibility
(and as the reference path for the determinism property tests).
"""

from __future__ import annotations

import abc
from collections.abc import Iterable
from typing import TYPE_CHECKING

from ..errors import ConfigError
from .ready_queue import IndexedReadyQueue, ListReadyQueue, ReadyQueue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..sim.executor import OpState


class IntraDimPolicy(abc.ABC):
    """Selects the next ready chunk-op for a dimension channel."""

    name: str = "abstract"

    @abc.abstractmethod
    def sort_key(self, op: "OpState") -> tuple:
        """Total order over ready ops; the smallest key runs first."""

    def select(self, ready_ops: list["OpState"]) -> "OpState":
        """Pick the next op to execute from the non-empty ready list."""
        if not ready_ops:
            raise ConfigError("policy invoked with no ready ops")
        return min(ready_ops, key=self.sort_key)

    def make_queue(self, indexed: bool = True) -> ReadyQueue:
        """Build this policy's ready-queue structure for one channel.

        The default indexed structure is a lazy-deletion heap ordered by
        this policy's ``sort_key`` (the key *is* the policy, so FIFO gets
        an arrival-order heap, SCF/LCF size-order heaps).  ``indexed=False``
        returns the seed-semantics flat list for reference comparisons.
        """
        if indexed:
            return IndexedReadyQueue(self.sort_key)
        return ListReadyQueue(self)

    def select_from(
        self,
        queue: ReadyQueue,
        owner: str | None = None,
        exclude_owners: Iterable[str] | None = None,
    ) -> "OpState | None":
        """Best eligible op in ``queue`` under this policy, or ``None``."""
        return queue.select(owner=owner, exclude_owners=exclude_owners)


class FifoPolicy(IntraDimPolicy):
    """First-in first-out by readiness time (ties: issue order, chunk id)."""

    name = "FIFO"

    def sort_key(self, op: "OpState") -> tuple:
        return (
            -op.priority,
            op.ready_time,
            op.collective_seq,
            op.chunk_id,
            op.stage_index,
        )


class SmallestChunkFirstPolicy(IntraDimPolicy):
    """Smallest stage first (paper's SCF); ties fall back to FIFO order."""

    name = "SCF"

    def sort_key(self, op: "OpState") -> tuple:
        return (
            -op.priority,
            op.stage.stage_size,
            op.ready_time,
            op.collective_seq,
            op.chunk_id,
            op.stage_index,
        )


class LargestChunkFirstPolicy(IntraDimPolicy):
    """Largest stage first — ablation counterpart of SCF."""

    name = "LCF"

    def sort_key(self, op: "OpState") -> tuple:
        return (
            -op.priority,
            -op.stage.stage_size,
            op.ready_time,
            op.collective_seq,
            op.chunk_id,
            op.stage_index,
        )


_POLICIES = {
    "fifo": FifoPolicy,
    "scf": SmallestChunkFirstPolicy,
    "lcf": LargestChunkFirstPolicy,
}


def get_policy(name: str) -> IntraDimPolicy:
    """Instantiate a policy by (case-insensitive) name."""
    lowered = name.strip().lower()
    if lowered not in _POLICIES:
        known = ", ".join(sorted(_POLICIES))
        raise ConfigError(f"unknown intra-dimension policy {name!r}; known: {known}")
    return _POLICIES[lowered]()


def policy_names() -> tuple[str, ...]:
    return tuple(sorted(_POLICIES))


def register_policy(name: str, policy: type[IntraDimPolicy]) -> None:
    """Register a custom intra-dimension policy under ``name``.

    The (case-insensitive) name becomes valid wherever policies are chosen
    by key: ``NetworkSimulator(policy=...)``, scenario specs, CLI flags.
    """
    lowered = name.strip().lower()
    if not lowered:
        raise ConfigError("policy name must be non-empty")
    if lowered in _POLICIES:
        raise ConfigError(f"intra-dimension policy {name!r} is already registered")
    _POLICIES[lowered] = policy
