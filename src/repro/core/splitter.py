"""The Splitter component (paper Fig. 6, step 2).

"Splitter component simply divides the collective into multiple
equally-sized chunks."  The default chunks-per-collective in the paper is 64
(Sec. 5.3).  We also support a minimum chunk size so that tiny collectives
(small gradient buckets in real workloads) are not shredded into stages far
below a packet, which the paper notes hurts goodput (Sec. 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

#: Paper default (Sec. 5.3): "we set the number of chunks per collective to
#: be 64 in all our experiments for both the baseline and Themis."
DEFAULT_CHUNKS_PER_COLLECTIVE = 64


@dataclass(frozen=True)
class Splitter:
    """Divide a collective payload into equal chunks.

    Attributes
    ----------
    chunks_per_collective:
        Target chunk count ``CPC`` (Algorithm 1 input).
    min_chunk_size:
        If splitting to ``CPC`` chunks would make chunks smaller than this,
        the count is reduced (never below 1).  Set to 0 to always split to
        exactly ``CPC``.
    """

    chunks_per_collective: int = DEFAULT_CHUNKS_PER_COLLECTIVE
    min_chunk_size: float = 0.0

    def __post_init__(self) -> None:
        if self.chunks_per_collective < 1:
            raise ConfigError(
                f"chunks per collective must be >= 1, got {self.chunks_per_collective}"
            )
        if self.min_chunk_size < 0:
            raise ConfigError(
                f"minimum chunk size must be >= 0, got {self.min_chunk_size}"
            )

    def chunk_count(self, collective_size: float) -> int:
        """Number of chunks for a collective of ``collective_size`` bytes."""
        if collective_size <= 0:
            raise ConfigError(
                f"collective size must be positive, got {collective_size}"
            )
        count = self.chunks_per_collective
        if self.min_chunk_size > 0:
            affordable = max(1, int(collective_size // self.min_chunk_size))
            count = min(count, affordable)
        return count

    def split(self, collective_size: float) -> list[float]:
        """Equal chunk sizes whose sum is exactly ``collective_size``."""
        count = self.chunk_count(collective_size)
        return [collective_size / count] * count
