"""Ready-queue structures for the dimension channels (hot path).

The seed executor kept each dimension's ready ops in a flat list and
re-scanned it — ``policy.select(list)`` plus ``list.remove`` per dequeued
op — which is O(n) per decision and O(n · max_ops) per fused batch.  Under
many concurrent tenants that dominates the whole simulation.  This module
replaces the list with *policy-indexed* structures so every hot-path
decision is O(log n):

* :class:`IndexedReadyQueue` — the production structure.  One lazy-deletion
  heap ordered by the policy's ``sort_key`` (FIFO's key is arrival order,
  SCF/LCF's their size order, so each policy's heap *is* its natural
  structure), one per-owner bucket heap for the weighted-sharing wire's
  per-tenant admission, and a parking map for ops blocked by an enforced
  per-collective order (Sec. 4.6.2) — a blocked op is unparked the moment
  it becomes its order's head, so eligibility never requires a scan.
* :class:`ListReadyQueue` — the seed semantics, kept as the reference for
  the determinism property tests (``tests/test_perf_equivalence.py``) and
  for the perf harness's before/after comparison
  (``benchmarks/bench_scaling.py --compare-legacy``).

Both present the same interface, selected via
``IntraDimPolicy.make_queue(indexed=...)``; selection goes through
``IntraDimPolicy.select_from``.  Identical op sets yield identical
selections in either implementation: the sort keys are total orders
(they end in the unique ``(collective_seq, chunk_id, stage_index)``
identity), so a heap minimum equals a linear-scan minimum.
"""

from __future__ import annotations

import abc
import heapq
from collections.abc import Callable, Iterable, Iterator
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..sim.executor import OpState
    from .policies import IntraDimPolicy

OpKey = tuple[int, int, int]


class ReadyQueue(abc.ABC):
    """Ready-op container a :class:`DimensionChannel` draws batches from.

    The channel owns eligibility (enforced per-collective orders): it binds
    its predicate via :meth:`bind`, tells :meth:`push` whether the op may
    start now, and calls :meth:`promote` when an enforced order advances.
    """

    _is_eligible: Callable[["OpState"], bool]

    def bind(self, is_eligible: Callable[["OpState"], bool]) -> None:
        """Attach the channel's eligibility predicate."""
        self._is_eligible = is_eligible

    @abc.abstractmethod
    def push(self, op: "OpState", eligible: bool) -> None:
        """Add a newly ready op (``eligible`` per the channel's orders)."""

    @abc.abstractmethod
    def discard(self, op: "OpState") -> None:
        """Remove an op selected into a batch (or parked and superseded)."""

    @abc.abstractmethod
    def select(
        self,
        owner: str | None = None,
        exclude_owners: Iterable[str] | None = None,
    ) -> "OpState | None":
        """Best eligible op under the policy order, or ``None``.

        ``owner`` restricts to one tenant (fusion within a weighted-share
        flow); ``exclude_owners`` skips tenants that already have a flow in
        flight (weighted-share admission).  At most one filter is passed.
        """

    @abc.abstractmethod
    def max_priority(self) -> int | None:
        """Highest priority among eligible ops (``None`` when none)."""

    def promote(self, op_key: OpKey) -> bool:
        """An enforced order advanced: unpark its new head if waiting."""
        return False

    def set_owner_active(self, owner: str, active: bool) -> None:
        """Track whether ``owner`` has a flow in flight (weighted sharing).

        The shared-wire channel mirrors its in-flight flow set here so the
        queue can answer ``select(exclude_owners=<in-flight set>)`` without
        scanning every owner (see :class:`IndexedReadyQueue`'s heads heap).
        The default is a no-op: the flat reference queue scans anyway.
        """

    @abc.abstractmethod
    def __len__(self) -> int:
        """Live ops held (eligible + order-blocked)."""

    @abc.abstractmethod
    def __iter__(self) -> Iterator["OpState"]:
        """Iterate live ops in unspecified order (diagnostics/tests)."""

    def __bool__(self) -> bool:
        return len(self) > 0


class _LazyHeap:
    """A min-heap of ``(key, op)`` with lazy deletion.

    Deletion marks the op (``op.queued = False``); dead entries are dropped
    when they surface at the top, and the whole heap is rebuilt in one O(n)
    sweep once dead entries outnumber live ones (ops taken through *another*
    index — e.g. an owner bucket — die buried, so top-pruning alone would
    let long steady-state runs accumulate them).
    """

    __slots__ = ("entries", "dead")

    _COMPACT_MIN_DEAD = 64

    def __init__(self) -> None:
        self.entries: list[tuple[tuple, "OpState"]] = []
        self.dead = 0

    def push(self, key: tuple, op: "OpState") -> None:
        heapq.heappush(self.entries, (key, op))

    def peek(self) -> "OpState | None":
        entries = self.entries
        while entries:
            op = entries[0][1]
            if op.queued:
                return op
            heapq.heappop(entries)
            self.dead -= 1
        return None

    def note_dead(self) -> None:
        """An op somewhere in this heap was discarded elsewhere."""
        self.dead += 1
        if (
            self.dead >= self._COMPACT_MIN_DEAD
            and self.dead * 2 >= len(self.entries)
        ):
            self.entries = [e for e in self.entries if e[1].queued]
            heapq.heapify(self.entries)
            self.dead = 0

    def __len__(self) -> int:
        return len(self.entries)


class IndexedReadyQueue(ReadyQueue):
    """Policy-keyed heaps with per-owner buckets and order-blocked parking."""

    def __init__(self, key_fn: Callable[["OpState"], tuple]) -> None:
        self._key = key_fn
        self._heap = _LazyHeap()
        self._owner_heaps: dict[str, _LazyHeap] = {}
        self._parked: dict[OpKey, "OpState"] = {}
        self._live = 0
        self._priority_counts: dict[int, int] = {}
        # --- heap-of-heads (weighted-share admission) ----------------------
        # ``select(exclude_owners=...)`` answers "best op among tenants with
        # no flow in flight".  The owner scan is O(T) per admission; at
        # thousands of tenants that dominates cluster runs.  When the channel
        # mirrors its in-flight set via :meth:`set_owner_active`, every
        # *inactive* owner's bucket head also lives in one shared lazy heap,
        # making admission O(log T).  Entries go stale when their op is
        # taken or their owner activates; stale tops are popped at peek
        # (an inactive owner's current head is always re-pushed on discard/
        # deactivate, so popping loses nothing).  The set is membership-only
        # — never iterated — so determinism is unaffected.
        self._active_owners: set[str] = set()
        self._heads: list[tuple[tuple, "OpState"]] = []
        self._track_heads = False

    # --- mutation -----------------------------------------------------------
    def push(self, op: "OpState", eligible: bool) -> None:
        if eligible:
            self._admit(op)
        else:
            self._parked[op.key] = op

    def _admit(self, op: "OpState") -> None:
        op.queued = True
        key = self._key(op)
        self._heap.push(key, op)
        owner_heap = self._owner_heaps.get(op.owner)
        if owner_heap is None:
            owner_heap = self._owner_heaps[op.owner] = _LazyHeap()
        owner_heap.push(key, op)
        if self._track_heads and op.owner not in self._active_owners:
            heapq.heappush(self._heads, (key, op))
        self._live += 1
        counts = self._priority_counts
        counts[op.priority] = counts.get(op.priority, 0) + 1

    def promote(self, op_key: OpKey) -> bool:
        op = self._parked.pop(op_key, None)
        if op is None:
            return False
        self._admit(op)
        return True

    def discard(self, op: "OpState") -> None:
        if self._parked.pop(op.key, None) is not None:
            return
        if not op.queued:
            return
        op.queued = False
        self._live -= 1
        counts = self._priority_counts
        remaining = counts[op.priority] - 1
        if remaining:
            counts[op.priority] = remaining
        else:
            del counts[op.priority]
        self._heap.note_dead()
        owner_heap = self._owner_heaps.get(op.owner)
        if owner_heap is not None:
            owner_heap.note_dead()
        if self._track_heads and op.owner not in self._active_owners:
            # The taken op may have been its owner's head: keep the owner's
            # *current* head present in the heads heap.
            head = self._peek_owner(op.owner)
            if head is not None:
                heapq.heappush(self._heads, (self._key(head), head))

    def set_owner_active(self, owner: str, active: bool) -> None:
        if not self._track_heads:
            # First activation turns tracking on: seed the heads heap with
            # every owner's current head (ops admitted before any flow
            # started predate tracking).
            self._track_heads = True
            for existing in list(self._owner_heaps):
                head = self._peek_owner(existing)
                if head is not None:
                    heapq.heappush(self._heads, (self._key(head), head))
        if active:
            self._active_owners.add(owner)
            return
        self._active_owners.discard(owner)
        head = self._peek_owner(owner)
        if head is not None:
            heapq.heappush(self._heads, (self._key(head), head))

    def _peek_heads(self) -> "OpState | None":
        """Best op among inactive owners, popping stale entries.

        An entry is stale when its op was taken or its owner currently has
        a flow in flight; both are safe to pop outright, because an
        inactive owner's current head is re-pushed on every discard and on
        every deactivation.
        """
        heads = self._heads
        active = self._active_owners
        if len(heads) >= 64 and len(heads) > 2 * self._live:
            # Stale entries can die buried (ops taken through the global
            # heap, owners toggling active); rebuild once they dominate.
            heads = [
                entry
                for entry in heads
                if entry[1].queued and entry[1].owner not in active
            ]
            heapq.heapify(heads)
            self._heads = heads
        while heads:
            op = heads[0][1]
            if op.queued and op.owner not in active:
                return op
            heapq.heappop(heads)
        return None

    # --- selection ----------------------------------------------------------
    def select(
        self,
        owner: str | None = None,
        exclude_owners: Iterable[str] | None = None,
    ) -> "OpState | None":
        if owner is not None:
            return self._peek_owner(owner)
        if exclude_owners is not None:
            # O(log T) fast path: when the exclusion set is the channel's
            # mirrored in-flight set (same size; the channel updates both in
            # lockstep), the answer is the top of the heads heap.  The
            # candidate is re-checked against ``exclude_owners`` itself, so
            # a mirror mismatch degrades to the scan instead of misselecting.
            if self._track_heads:
                size = (
                    len(exclude_owners)  # type: ignore[arg-type]
                    if hasattr(exclude_owners, "__len__")
                    else None
                )
                if size is not None and size == len(self._active_owners):
                    candidate = self._peek_heads()
                    if candidate is None or candidate.owner not in exclude_owners:
                        return candidate
            best: "OpState | None" = None
            best_key: tuple | None = None
            for candidate_owner in list(self._owner_heaps):
                if candidate_owner in exclude_owners:
                    continue
                candidate = self._peek_owner(candidate_owner)
                if candidate is None:
                    continue
                key = self._key(candidate)
                if best_key is None or key < best_key:
                    best, best_key = candidate, key
            return best
        return self._heap.peek()

    def _peek_owner(self, owner: str) -> "OpState | None":
        owner_heap = self._owner_heaps.get(owner)
        if owner_heap is None:
            return None
        op = owner_heap.peek()
        if op is None:
            del self._owner_heaps[owner]
        return op

    def max_priority(self) -> int | None:
        # Distinct priority levels are few (per-tenant), so max over the
        # count index is O(#levels), not O(#ops).
        if not self._priority_counts:
            return None
        return max(self._priority_counts)

    # --- introspection ------------------------------------------------------
    def __len__(self) -> int:
        return self._live + len(self._parked)

    def __iter__(self) -> Iterator["OpState"]:
        # Dedup on the stable op identity, not id(): stale heap entries for
        # the same op must collapse, and address-based keys would make the
        # iteration (and anything ordered by it) vary run to run.
        seen: set[tuple[int, int, int]] = set()
        for _key, op in self._heap.entries:
            if op.queued and op.key not in seen:
                seen.add(op.key)
                yield op
        yield from self._parked.values()


class ListReadyQueue(ReadyQueue):
    """Seed-semantics flat list: linear scans, ``policy.select`` minima.

    O(n) per decision — kept only as the reference implementation for the
    determinism property tests and the perf harness's ``--compare-legacy``
    mode.
    """

    def __init__(self, policy: "IntraDimPolicy") -> None:
        self._policy = policy
        self._ops: list["OpState"] = []

    def push(self, op: "OpState", eligible: bool) -> None:
        self._ops.append(op)

    def discard(self, op: "OpState") -> None:
        self._ops.remove(op)

    def select(
        self,
        owner: str | None = None,
        exclude_owners: Iterable[str] | None = None,
    ) -> "OpState | None":
        candidates = [
            op
            for op in self._ops
            if self._is_eligible(op)
            and (owner is None or op.owner == owner)
            and (exclude_owners is None or op.owner not in exclude_owners)
        ]
        if not candidates:
            return None
        return self._policy.select(candidates)

    def max_priority(self) -> int | None:
        priorities = [op.priority for op in self._ops if self._is_eligible(op)]
        return max(priorities) if priorities else None

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator["OpState"]:
        return iter(list(self._ops))
