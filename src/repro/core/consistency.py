"""Chunk schedule consistency (paper Sec. 4.6).

Deadlock-free distributed execution requires every NPU to run the same
order of chunk operations on every dimension:

* **Inter-dimension consistency** (Sec. 4.6.1) is automatic: the latency
  model and load tracker are deterministic and replicated, so every NPU
  derives the identical ``Schedule[][]`` — our scheduler is a pure function
  of the request, so this holds by construction (tested, not re-derived).
* **Intra-dimension consistency** (Sec. 4.6.2): runtime noise could make
  chunks become ready in different orders on different NPUs.  Themis
  therefore *pre-simulates* the schedule deterministically, extracts the
  per-dimension op order, and enforces it at runtime — a dimension waits
  for the next op in its locked order even if another op is ready sooner.

:func:`presimulate_intra_dim_orders` runs that deterministic simulation
(the very same executor, on a private engine) and returns, per dimension,
the op-key sequence to enforce.  The pre-simulation needs only *ordering*,
not exact times, so it runs the collective in isolation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import ScheduleError
from ..topology import Topology
from .chunk import CollectivePlan

if TYPE_CHECKING:  # pragma: no cover
    from ..collectives.types import CollectiveRequest
    from ..core.policies import IntraDimPolicy
    from ..sim.executor import FusionConfig
    from .latency_model import LatencyModel

OpKey = tuple[int, int, int]


def presimulate_intra_dim_orders(
    plan: CollectivePlan,
    topology: Topology,
    policy: "IntraDimPolicy | str" = "SCF",
    fusion: "FusionConfig | None" = None,
) -> dict[int, list[OpKey]]:
    """Deterministically derive per-dimension op orders for one collective.

    Returns ``{parent_dim_index: [(collective_seq, chunk_id, stage_index),
    ...]}`` in execution-start order.  All NPUs running this function on the
    same plan produce the same answer, which is what makes runtime
    enforcement safe (Sec. 4.6.2).
    """
    # Imported here: sim depends on core, so core must not import sim at
    # module load time.
    from ..core.scheduler import SchedulerFactory
    from ..sim.network import NetworkSimulator

    if plan is None:
        raise ScheduleError("cannot pre-simulate an empty plan")

    class _ReplayFactory(SchedulerFactory):
        """Scheduler factory that replays an already-computed plan."""

        def __init__(self) -> None:  # noqa: D107 - trivial override
            super().__init__("baseline")

        def create(self):  # type: ignore[override]
            plan_to_replay = plan

            class _Replay:
                name = plan_to_replay.scheduler_name or "replay"

                def plan(
                    self,
                    request: "CollectiveRequest",
                    subtopo: Topology,
                    model: "LatencyModel | None" = None,
                    issue_time: float = 0.0,
                ) -> CollectivePlan:
                    return plan_to_replay

            return _Replay()

    sim = NetworkSimulator(
        topology,
        scheduler=_ReplayFactory(),
        policy=policy,
        fusion=fusion,
        enforce_consistency=False,
    )
    sim.submit(plan.request, at_time=0.0)
    result = sim.run()

    orders: dict[int, list[OpKey]] = {}
    ordered = sorted(
        result.records,
        key=lambda r: (r.start_time, r.chunk_id, r.stage_index),
    )
    for record in ordered:
        orders.setdefault(record.dim_index, []).append(
            (record.collective_seq, record.chunk_id, record.stage_index)
        )
    return orders


def verify_intra_dim_consistency(
    orders_by_npu: list[dict[int, list[OpKey]]],
) -> bool:
    """Check that every NPU derived identical per-dimension orders.

    Models the distributed agreement property: the input is the list of
    per-NPU pre-simulation outputs; all must match exactly.
    """
    if not orders_by_npu:
        raise ScheduleError("no per-NPU orders supplied")
    reference = orders_by_npu[0]
    return all(other == reference for other in orders_by_npu[1:])
