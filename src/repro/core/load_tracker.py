"""The Dim Load Tracker component (paper Fig. 6 / Algorithm 1).

"Dim Load Tracker maintains the load of each network dimension in terms of
the total communication time of the chunks when executing on that
dimension."  It is reset at the start of every collective (Algorithm 1
line 2), seeding each dimension with its fixed delay ``A_K`` for the target
collective type (Sec. 4.4), and is increased as each chunk is scheduled
(line 30).
"""

from __future__ import annotations

from ..collectives.types import CollectiveType
from ..errors import ScheduleError
from .latency_model import LatencyModel


class DimLoadTracker:
    """Per-dimension accumulated communication-time loads."""

    def __init__(self, latency_model: LatencyModel) -> None:
        self._model = latency_model
        self._loads: list[float] = [0.0] * latency_model.topology.ndims
        self._resets = 0

    @property
    def ndims(self) -> int:
        return len(self._loads)

    def reset(self, ctype: CollectiveType) -> None:
        """Re-seed loads with each dimension's fixed delay for ``ctype``."""
        self._loads = [
            self._model.collective_fixed_latency(ctype, i) for i in range(self.ndims)
        ]
        self._resets += 1

    def get_loads(self) -> list[float]:
        """Current loads (a copy; mutating it does not affect the tracker)."""
        return list(self._loads)

    def update(self, additional: list[float]) -> None:
        """Add a newly scheduled chunk's per-dimension loads (line 30)."""
        if len(additional) != self.ndims:
            raise ScheduleError(
                f"expected {self.ndims} load entries, got {len(additional)}"
            )
        for value in additional:
            if value < 0:
                raise ScheduleError(f"load increments must be >= 0, got {value}")
        self._loads = [a + b for a, b in zip(self._loads, additional)]

    # --- queries used by the scheduler -------------------------------------
    @property
    def max_load(self) -> float:
        return max(self._loads)

    @property
    def min_load(self) -> float:
        return min(self._loads)

    @property
    def load_gap(self) -> float:
        """``max_dim_load - min_dim_load`` (Algorithm 1 line 19)."""
        return self.max_load - self.min_load

    @property
    def min_load_dim(self) -> int:
        """Index of the least-loaded dimension (threshold reference dim)."""
        return min(range(self.ndims), key=lambda i: (self._loads[i], i))

    def ascending_order(self) -> tuple[int, ...]:
        """Dimension indices sorted least-loaded first (RS schedule).

        Ties break toward lower dimension index, so an all-equal tracker
        yields the baseline RS order dim1..dimD.
        """
        return tuple(sorted(range(self.ndims), key=lambda i: (self._loads[i], i)))

    def descending_order(self) -> tuple[int, ...]:
        """Dimension indices sorted most-loaded first (AG schedule).

        Ties break toward *higher* dimension index, so an all-equal tracker
        yields the baseline AG order dimD..dim1.
        """
        return tuple(
            sorted(range(self.ndims), key=lambda i: (-self._loads[i], -i))
        )
