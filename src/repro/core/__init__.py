"""Themis core: splitter, load tracker, latency model, schedulers, ideal."""

from .chunk import (
    ChunkPlan,
    CollectivePlan,
    build_chunk_plan,
    validate_collective_plan,
)
from .consistency import presimulate_intra_dim_orders, verify_intra_dim_consistency
from .exhaustive import DEFAULT_SEARCH_CAP, ExhaustiveScheduler, SearchOutcome
from .ideal import (
    FluidSolution,
    IdealEstimator,
    LpIdealEstimator,
    achievable_utilization,
)
from .latency_model import LatencyModel
from .load_tracker import DimLoadTracker
from .policies import (
    FifoPolicy,
    IntraDimPolicy,
    LargestChunkFirstPolicy,
    SmallestChunkFirstPolicy,
    get_policy,
    policy_names,
    register_policy,
)
from .ready_queue import IndexedReadyQueue, ListReadyQueue, ReadyQueue
from .scheduler import (
    DEFAULT_THRESHOLD_DIVISOR,
    BaselineScheduler,
    CollectiveScheduler,
    SchedulerFactory,
    ThemisScheduler,
    baseline_dim_order,
)
from .splitter import DEFAULT_CHUNKS_PER_COLLECTIVE, Splitter

__all__ = [
    "ChunkPlan",
    "CollectivePlan",
    "build_chunk_plan",
    "validate_collective_plan",
    "Splitter",
    "DEFAULT_CHUNKS_PER_COLLECTIVE",
    "LatencyModel",
    "DimLoadTracker",
    "CollectiveScheduler",
    "BaselineScheduler",
    "ThemisScheduler",
    "SchedulerFactory",
    "baseline_dim_order",
    "DEFAULT_THRESHOLD_DIVISOR",
    "IntraDimPolicy",
    "FifoPolicy",
    "SmallestChunkFirstPolicy",
    "LargestChunkFirstPolicy",
    "get_policy",
    "policy_names",
    "register_policy",
    "ReadyQueue",
    "IndexedReadyQueue",
    "ListReadyQueue",
    "IdealEstimator",
    "LpIdealEstimator",
    "FluidSolution",
    "achievable_utilization",
    "presimulate_intra_dim_orders",
    "ExhaustiveScheduler",
    "SearchOutcome",
    "DEFAULT_SEARCH_CAP",
    "verify_intra_dim_consistency",
]
