"""Exhaustive reference scheduler (validation tool, beyond the paper).

Sec. 4.1 observes the schedule space is ``(D! x D!)^C`` for an All-Reduce
of ``C`` chunks on ``D`` dimensions — far too large to search in general,
which is why Themis is greedy.  For *small* instances, however, the space
can be enumerated exactly (restricted, like Themis, to mirrored AG orders:
``(D!)^C``), giving a ground-truth optimum to validate the greedy against.

:class:`ExhaustiveScheduler` enumerates every per-chunk dimension-order
assignment, evaluates each candidate with a full simulation, and keeps the
best.  The search is capped (default 4096 candidates) to make accidental
misuse on big instances impossible.  Tests use it to confirm that Themis's
Fig. 5 schedule (7 units) is exactly optimal for that instance.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..collectives.types import CollectiveRequest
from ..errors import ScheduleError
from ..topology import Topology
from .chunk import CollectivePlan, build_chunk_plan
from .latency_model import LatencyModel
from .scheduler import CollectiveScheduler
from .splitter import Splitter

#: Refuse to enumerate more than this many candidate schedules.
DEFAULT_SEARCH_CAP = 4096


@dataclass(frozen=True)
class SearchOutcome:
    """Best schedule found plus search statistics."""

    plan: CollectivePlan
    makespan: float
    candidates_evaluated: int


class ExhaustiveScheduler(CollectiveScheduler):
    """Brute-force optimal chunk scheduling for small instances.

    Candidates are evaluated by simulating the collective on a scratch
    network simulator with the given intra-dimension policy, so the
    returned schedule is optimal *for the executor's actual semantics*
    (queueing, pipelined fixed latency), not merely for the fluid load
    model.
    """

    name = "Exhaustive"

    def __init__(
        self,
        splitter: Splitter | None = None,
        policy: str = "SCF",
        search_cap: int = DEFAULT_SEARCH_CAP,
    ) -> None:
        super().__init__(splitter)
        if search_cap < 1:
            raise ScheduleError(f"search cap must be >= 1, got {search_cap}")
        self.policy = policy
        self.search_cap = search_cap
        self.last_outcome: SearchOutcome | None = None

    # -- evaluation -------------------------------------------------------
    def _simulate(
        self,
        request: CollectiveRequest,
        topology: Topology,
        orders: tuple[tuple[int, ...], ...],
        chunk_sizes: list[float],
    ) -> tuple[CollectivePlan, float]:
        # Imported lazily: core must stay importable without sim loaded.
        from ..sim.executor import FusionConfig
        from ..sim.network import NetworkSimulator
        from .scheduler import SchedulerFactory

        plan = CollectivePlan(
            request=request,
            topology=topology,
            chunks=tuple(
                build_chunk_plan(i, request.ctype, size, order, topology)
                for i, (size, order) in enumerate(zip(chunk_sizes, orders))
            ),
            scheduler_name=self.name,
        )

        class _Replay(SchedulerFactory):
            def __init__(self) -> None:
                super().__init__("baseline")

            def create(self):  # type: ignore[override]
                outer = plan

                class _Fixed:
                    name = "Exhaustive"

                    def plan(
                        self,
                        _request: CollectiveRequest,
                        _topo: Topology,
                        _model: "LatencyModel | None" = None,
                        issue_time: float = 0.0,
                    ) -> CollectivePlan:
                        return outer

                return _Fixed()

        sim = NetworkSimulator(
            topology,
            scheduler=_Replay(),
            policy=self.policy,
            fusion=FusionConfig(enabled=False),
        )
        sim.submit(request, at_time=0.0)
        result = sim.run()
        return plan, result.makespan

    # -- CollectiveScheduler interface ---------------------------------------
    def chunk_orders(
        self,
        request: CollectiveRequest,
        chunk_sizes: list[float],
        model: LatencyModel,
    ) -> list[tuple[int, ...]]:
        topology = model.topology
        perms = list(itertools.permutations(range(topology.ndims)))
        total = len(perms) ** len(chunk_sizes)
        if total > self.search_cap:
            raise ScheduleError(
                f"search space {total} exceeds cap {self.search_cap}; "
                f"use ThemisScheduler for instances this large"
            )
        best_orders: tuple[tuple[int, ...], ...] | None = None
        best_plan: CollectivePlan | None = None
        best_makespan = float("inf")
        evaluated = 0
        for orders in itertools.product(perms, repeat=len(chunk_sizes)):
            plan, makespan = self._simulate(request, topology, orders, chunk_sizes)
            evaluated += 1
            if makespan < best_makespan:
                best_makespan = makespan
                best_orders = orders
                best_plan = plan
        assert best_orders is not None and best_plan is not None
        self.last_outcome = SearchOutcome(
            plan=best_plan,
            makespan=best_makespan,
            candidates_evaluated=evaluated,
        )
        return list(best_orders)
