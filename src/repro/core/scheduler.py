"""Collective schedulers: baseline (static) and Themis (Algorithm 1).

The *baseline* is the SOTA multi-rail hierarchical schedule (Sec. 2.3): every
chunk runs RS on dim1..dimD then AG on dimD..dim1.  *Themis* gives each chunk
its own dimension order, greedily filling the least-loaded dimensions first
(Sec. 4.2), falling back to the baseline order while the load gap is below a
threshold (Algorithm 1 lines 19-21).
"""

from __future__ import annotations

import abc

from ..collectives.phases import Stage, stage_plan
from ..collectives.types import CollectiveRequest, CollectiveType, PhaseOp
from ..errors import ScheduleError
from ..topology import Topology
from .chunk import ChunkPlan, CollectivePlan, build_chunk_plan
from .latency_model import LatencyModel
from .load_tracker import DimLoadTracker
from .splitter import Splitter

#: Paper default (Sec. 5.3): threshold is the predicted runtime of an RS/AG
#: of size ``chunk_size / 16`` on the least-loaded dimension.
DEFAULT_THRESHOLD_DIVISOR = 16.0


def baseline_dim_order(ctype: CollectiveType, ndims: int) -> tuple[int, ...]:
    """The static baseline order (Sec. 2.3).

    RS phases ascend dim1..dimD; a standalone All-Gather runs only the
    second half of the All-Reduce pipeline, i.e. dimD..dim1.  All-to-All
    follows the ascending convention.
    """
    if ctype is CollectiveType.ALL_GATHER:
        return tuple(range(ndims - 1, -1, -1))
    return tuple(range(ndims))


class CollectiveScheduler(abc.ABC):
    """Turns a :class:`CollectiveRequest` into a :class:`CollectivePlan`."""

    #: Scheduler label used in result tables (Table 3 naming).
    name: str = "abstract"

    def __init__(self, splitter: Splitter | None = None) -> None:
        self.splitter = splitter or Splitter()

    @abc.abstractmethod
    def chunk_orders(
        self,
        request: CollectiveRequest,
        chunk_sizes: list[float],
        model: LatencyModel,
    ) -> list[tuple[int, ...]]:
        """Produce each chunk's dimension order (``Schedule[][]`` of Alg. 1)."""

    def plan(
        self,
        request: CollectiveRequest,
        topology: Topology,
        model: LatencyModel | None = None,
        issue_time: float = 0.0,
    ) -> CollectivePlan:
        """Split the collective and schedule every chunk."""
        model = model or LatencyModel(topology)
        if model.topology is not topology:
            raise ScheduleError("latency model bound to a different topology")
        chunk_sizes = self.splitter.split(request.size)
        orders = self.chunk_orders(request, chunk_sizes, model)
        if len(orders) != len(chunk_sizes):
            raise ScheduleError(
                f"scheduler produced {len(orders)} orders for "
                f"{len(chunk_sizes)} chunks"
            )
        chunks: list[ChunkPlan] = [
            build_chunk_plan(i, request.ctype, size, order, topology)
            for i, (size, order) in enumerate(zip(chunk_sizes, orders))
        ]
        return CollectivePlan(
            request=request,
            topology=topology,
            chunks=tuple(chunks),
            scheduler_name=self.name,
            issue_time=issue_time,
        )


class BaselineScheduler(CollectiveScheduler):
    """Static multi-rail hierarchical scheduling (paper Sec. 2.3, Table 3).

    Every chunk gets the identical baseline order; intra-dimension order is
    irrelevant for it ("no matter how each dimension selects chunks to
    process, the average BW utilization remains fixed", Sec. 4.3), so the
    executor pairs it with FIFO.
    """

    name = "Baseline"

    def chunk_orders(
        self,
        request: CollectiveRequest,
        chunk_sizes: list[float],
        model: LatencyModel,
    ) -> list[tuple[int, ...]]:
        order = baseline_dim_order(request.ctype, model.topology.ndims)
        return [order] * len(chunk_sizes)


class ThemisScheduler(CollectiveScheduler):
    """Dynamic bandwidth-aware chunk scheduling (paper Algorithm 1).

    For each chunk, in order:

    1. Read current dimension loads from the :class:`DimLoadTracker`.
    2. If ``max - min < threshold``, use the baseline order (robustness
       guard against oversubscribing low-BW dimensions).
    3. Otherwise sort dimensions by load — ascending for RS (least-loaded
       dimension sees the chunk at its largest), descending for AG
       (most-loaded dimension sees the chunk at its smallest).  For
       All-Reduce the AG order is the mirror of the RS order.
    4. Predict the chunk's per-dimension loads with the latency model and
       update the tracker.

    The threshold is the predicted transfer time of an RS of size
    ``chunk_size / threshold_divisor`` on the least-loaded dimension
    (Sec. 5.3; divisor 16 by default).  ``threshold_divisor=None`` disables
    the guard entirely (ablation).

    ``overshoot_guard`` is an extension beyond the paper: near just-enough
    provisioning, a greedy reroute charges a dimension a chunk that earlier
    stages have not shrunk, which can overshoot the very gap it is closing
    (see EXPERIMENTS.md).  With the guard on, a rerouted order is adopted
    only if its projected max dimension load does not exceed the baseline
    order's; otherwise the chunk falls back to the baseline order.
    """

    name = "Themis"

    def __init__(
        self,
        splitter: Splitter | None = None,
        threshold_divisor: float | None = DEFAULT_THRESHOLD_DIVISOR,
        overshoot_guard: bool = False,
    ) -> None:
        super().__init__(splitter)
        if threshold_divisor is not None and threshold_divisor <= 0:
            raise ScheduleError(
                f"threshold divisor must be positive, got {threshold_divisor}"
            )
        self.threshold_divisor = threshold_divisor
        self.overshoot_guard = overshoot_guard

    # --- Algorithm 1, SCHEDULER.SCHEDULE -----------------------------------
    def _threshold(
        self, chunk_size: float, tracker: DimLoadTracker, model: LatencyModel
    ) -> float:
        if self.threshold_divisor is None:
            return 0.0
        probe_size = chunk_size / self.threshold_divisor
        return model.chunk_load(PhaseOp.RS, probe_size, tracker.min_load_dim)

    def _schedule_chunk(
        self,
        ctype: CollectiveType,
        chunk_size: float,
        tracker: DimLoadTracker,
        model: LatencyModel,
    ) -> tuple[int, ...]:
        """One SCHEDULER.SCHEDULE call: pick this chunk's dimension order."""
        threshold = self._threshold(chunk_size, tracker, model)
        if tracker.load_gap < threshold:
            order = baseline_dim_order(ctype, tracker.ndims)
        elif ctype is CollectiveType.ALL_GATHER:
            order = tracker.descending_order()
        else:
            # RS order; also used as the RS half of All-Reduce and the
            # traversal order of All-to-All.
            order = tracker.ascending_order()
        return order

    def chunk_orders(
        self,
        request: CollectiveRequest,
        chunk_sizes: list[float],
        model: LatencyModel,
    ) -> list[tuple[int, ...]]:
        tracker = DimLoadTracker(model)
        tracker.reset(request.ctype)
        orders: list[tuple[int, ...]] = []
        for chunk_size in chunk_sizes:
            # For All-Reduce, Algorithm 1 schedules the RS half and mirrors
            # it for AG; the tracker update covers the full round trip.
            probe_ctype = (
                CollectiveType.REDUCE_SCATTER
                if request.ctype is CollectiveType.ALL_REDUCE
                else request.ctype
            )
            order = self._schedule_chunk(probe_ctype, chunk_size, tracker, model)
            stages = stage_plan(request.ctype, chunk_size, order, model.topology)
            loads = model.stage_loads(stages)
            if self.overshoot_guard:
                order, stages, loads = self._apply_overshoot_guard(
                    request.ctype, probe_ctype, chunk_size, tracker, model,
                    order, stages, loads,
                )
            tracker.update(loads)
            orders.append(order)
        return orders

    def _apply_overshoot_guard(
        self,
        ctype: CollectiveType,
        probe_ctype: CollectiveType,
        chunk_size: float,
        tracker: DimLoadTracker,
        model: LatencyModel,
        order: tuple[int, ...],
        stages: list[Stage],
        loads: list[float],
    ) -> tuple[tuple[int, ...], list[Stage], list[float]]:
        """Fall back to the baseline order if the reroute overshoots."""
        baseline = baseline_dim_order(probe_ctype, tracker.ndims)
        if order == baseline:
            return order, stages, loads
        current = tracker.get_loads()
        rerouted_max = max(c + l for c, l in zip(current, loads))
        base_stages = stage_plan(ctype, chunk_size, baseline, model.topology)
        base_loads = model.stage_loads(base_stages)
        baseline_max = max(c + l for c, l in zip(current, base_loads))
        if rerouted_max > baseline_max:
            return baseline, base_stages, base_loads
        return order, stages, loads


class SchedulerFactory:
    """Builds fresh scheduler instances per collective.

    Schedulers are cheap and the Themis tracker resets per collective, so a
    shared instance would work — but a factory keeps the network simulator
    free of hidden state and lets experiments vary splitter parameters.
    """

    def __init__(
        self,
        kind: str = "themis",
        splitter: Splitter | None = None,
        threshold_divisor: float | None = DEFAULT_THRESHOLD_DIVISOR,
        overshoot_guard: bool = False,
    ) -> None:
        kind_lower = kind.lower()
        if kind_lower not in ("themis", "baseline"):
            raise ScheduleError(f"unknown scheduler kind {kind!r}")
        self.kind = kind_lower
        self.splitter = splitter or Splitter()
        self.threshold_divisor = threshold_divisor
        self.overshoot_guard = overshoot_guard

    def create(self) -> CollectiveScheduler:
        if self.kind == "baseline":
            return BaselineScheduler(self.splitter)
        return ThemisScheduler(
            self.splitter, self.threshold_divisor, self.overshoot_guard
        )

    @property
    def signature(self) -> tuple:
        """Hashable configuration identity.

        Two factories with equal signatures produce schedulers that emit
        identical plans for identical requests (both built-in schedulers
        are pure per collective), which is what lets the network simulator
        cache plans by ``(signature, request signature)``.
        """
        return (self.kind, self.threshold_divisor, self.overshoot_guard, self.splitter)

    @property
    def name(self) -> str:
        return self.create().name
