"""Unit helpers: byte sizes, bandwidths, and durations.

The paper quotes bandwidths in Gb/s (gigabits per second, uni-directional),
collective sizes in MB/GB, and latencies in nanoseconds or microseconds.
Internally the library uses a single consistent unit system:

* data sizes in **bytes** (floats are allowed: chunk math divides sizes by
  the dimension size, which rarely stays integral),
* bandwidth in **bytes per second**,
* time in **seconds**.

This module provides constants and parsing/formatting helpers so the rest of
the codebase and its tests never hand-roll unit conversions.
"""

from __future__ import annotations

import re

from .errors import ConfigError

# --- Size constants (bytes) -------------------------------------------------
KB = 1024.0
MB = 1024.0 * KB
GB = 1024.0 * MB
TB = 1024.0 * GB

# --- Time constants (seconds) ----------------------------------------------
NS = 1e-9
US = 1e-6
MS = 1e-3

# --- Bandwidth constants (bytes / second) ----------------------------------
GBPS = 1e9 / 8.0  # 1 Gb/s expressed in bytes per second

_SIZE_SUFFIXES = {
    "b": 1.0,
    "kb": KB,
    "mb": MB,
    "gb": GB,
    "tb": TB,
}

_SIZE_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z]+)?\s*$")


def parse_size(text: str | int | float) -> float:
    """Parse a human-readable size (``"256MB"``, ``"1 GB"``, ``1024``) to bytes.

    Bare numbers are interpreted as bytes.  Raises :class:`ConfigError` on
    malformed input.
    """
    if isinstance(text, (int, float)):
        if text < 0:
            raise ConfigError(f"size must be non-negative, got {text!r}")
        return float(text)
    match = _SIZE_RE.match(text)
    if match is None:
        raise ConfigError(f"unparsable size: {text!r}")
    value = float(match.group(1))
    suffix = (match.group(2) or "b").lower()
    if suffix not in _SIZE_SUFFIXES:
        raise ConfigError(f"unknown size suffix {suffix!r} in {text!r}")
    return value * _SIZE_SUFFIXES[suffix]


def gbps(value: float) -> float:
    """Convert a bandwidth given in Gb/s (paper units) to bytes/second."""
    if value < 0:
        raise ConfigError(f"bandwidth must be non-negative, got {value!r}")
    return value * GBPS


def to_gbps(bytes_per_second: float) -> float:
    """Convert bytes/second back to Gb/s for reporting."""
    return bytes_per_second / GBPS


def fmt_size(num_bytes: float) -> str:
    """Format a byte count with a binary-prefix suffix, e.g. ``"64.0MB"``."""
    magnitude = abs(num_bytes)
    for suffix, factor in (("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)):
        if magnitude >= factor:
            return f"{num_bytes / factor:.6g}{suffix}"
    return f"{num_bytes:.6g}B"


def fmt_time(seconds: float) -> str:
    """Format a duration with an appropriate SI suffix, e.g. ``"3.2ms"``."""
    magnitude = abs(seconds)
    if magnitude >= 1.0:
        return f"{seconds:.6g}s"
    if magnitude >= MS:
        return f"{seconds / MS:.6g}ms"
    if magnitude >= US:
        return f"{seconds / US:.6g}us"
    return f"{seconds / NS:.6g}ns"
