"""Exception hierarchy for the Themis reproduction library.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch everything coming out of this package with a single ``except``
clause while still being able to discriminate finer failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied (sizes, BW, counts...)."""


class TopologyError(ConfigError):
    """A topology description is malformed or internally inconsistent."""


class CollectiveError(ReproError):
    """A collective request cannot be satisfied (bad type, size, or dims)."""


class ScheduleError(ReproError):
    """A chunk schedule is invalid (not a permutation, wrong ops, ...)."""


class SpecError(ConfigError):
    """A declarative scenario spec is malformed (unknown keys, bad schema)."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class EventBudgetError(SimulationError):
    """``run(max_events=N)`` fired its budget with live events still pending.

    Callers that want partial results instead of an error (the cluster
    simulator's truncated reports, spec sweeps) catch this specifically;
    everything else keeps treating it as the :class:`SimulationError` it is.
    """


class DeadlockError(SimulationError):
    """No runnable event remains while unfinished work is still pending."""


class WorkloadError(ConfigError):
    """A DNN workload description is malformed or unsupported."""
