"""Analysis utilities: utilization, provisioning insights, sweeps, tables."""

from .provisioning import (
    PairAssessment,
    ProvisioningReport,
    ProvisioningScenario,
    ProvisioningVerdict,
    assess,
    classify_pair,
    classify_topology,
    max_drivable_utilization,
)
from .sweep import (
    PAPER_SCHEDULERS,
    MicrobenchRecord,
    SchedulerConfig,
    geometric_mean,
    run_collective,
    sweep,
)
from .tables import format_table, ms, pct, ratio, us

__all__ = [
    "ProvisioningScenario",
    "ProvisioningVerdict",
    "PairAssessment",
    "ProvisioningReport",
    "assess",
    "classify_pair",
    "classify_topology",
    "max_drivable_utilization",
    "SchedulerConfig",
    "MicrobenchRecord",
    "PAPER_SCHEDULERS",
    "run_collective",
    "sweep",
    "geometric_mean",
    "format_table",
    "pct",
    "ratio",
    "ms",
    "us",
]
