"""BW-distribution analysis for system designers (paper Sec. 6.3).

For any two dimensions dimK, dimL with K < L, compare ``BW(dimK)`` against
``P_K x P_{K+1} x ... x P_{L-1} x BW(dimL)``:

* **Just enough** — equality: the baseline schedule already balances stage
  latencies; no dynamic scheduling needed.
* **Over-provisioned** — ``BW(dimK)`` smaller: the baseline strands dimL
  bandwidth; Themis redistributes chunk loads and recovers it.
* **Under-provisioned** — ``BW(dimK)`` larger: no schedule can fully drive
  both dimensions; such design points "should be prohibited".

:func:`classify_topology` evaluates every adjacent pair;
:func:`max_drivable_utilization` quantifies how much of the total BW budget
*any* scheduler could use (via the LP fluid bound), which is the actionable
number for a network architect.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..collectives.types import CollectiveType
from ..core.ideal import LpIdealEstimator, IdealEstimator
from ..topology import Topology


class ProvisioningVerdict(enum.Enum):
    """Sec. 6.3's three BW-distribution scenarios (the per-pair verdict)."""

    JUST_ENOUGH = "JustEnough"
    OVER_PROVISIONED = "OverProvisioned"
    UNDER_PROVISIONED = "UnderProvisioned"


#: Backwards-compatible alias — ``repro.api.ProvisioningScenario`` now names
#: the declarative provisioning *spec*; this enum is the per-pair verdict.
ProvisioningScenario = ProvisioningVerdict


@dataclass(frozen=True)
class PairAssessment:
    """Provisioning verdict for one (dimK, dimL) pair.

    ``ratio`` is ``BW(dimK) / (prod(P_K..P_{L-1}) x BW(dimL))`` — 1.0 means
    just-enough, below 1.0 over-provisioned (dimL has spare BW the baseline
    cannot use), above 1.0 under-provisioned (dimL can never keep up).
    """

    dim_k: int
    dim_l: int
    ratio: float
    scenario: ProvisioningVerdict

    def describe(self) -> str:
        return (
            f"dim{self.dim_k + 1} vs dim{self.dim_l + 1}: "
            f"ratio {self.ratio:.3g} -> {self.scenario.value}"
        )


def classify_pair(
    topology: Topology, dim_k: int, dim_l: int, tolerance: float = 0.01
) -> PairAssessment:
    """Classify one ordered dimension pair per the Sec. 6.3 inequalities."""
    if not 0 <= dim_k < dim_l < topology.ndims:
        raise ValueError(f"need 0 <= K < L < D, got K={dim_k}, L={dim_l}")
    shrink = math.prod(topology.dims[i].size for i in range(dim_k, dim_l))
    bw_k = topology.dims[dim_k].bandwidth
    bw_l = topology.dims[dim_l].bandwidth
    ratio = bw_k / (shrink * bw_l)
    if abs(ratio - 1.0) <= tolerance:
        scenario = ProvisioningVerdict.JUST_ENOUGH
    elif ratio < 1.0:
        scenario = ProvisioningVerdict.OVER_PROVISIONED
    else:
        scenario = ProvisioningVerdict.UNDER_PROVISIONED
    return PairAssessment(dim_k=dim_k, dim_l=dim_l, ratio=ratio, scenario=scenario)


def classify_topology(
    topology: Topology, tolerance: float = 0.01
) -> list[PairAssessment]:
    """Assess every ordered dimension pair (K < L) of a topology."""
    return [
        classify_pair(topology, k, l, tolerance)
        for k in range(topology.ndims)
        for l in range(k + 1, topology.ndims)
    ]


def max_drivable_utilization(
    topology: Topology, ctype: CollectiveType = CollectiveType.ALL_REDUCE
) -> float:
    """Best average BW utilization any chunk scheduler can reach.

    1.0 unless some dimension is under-provisioned; the shortfall is exactly
    the Ideal-vs-fluid gap (see ``core.ideal.achievable_utilization``).
    """
    ideal = IdealEstimator().collective_time(ctype, 1.0, topology)
    fluid = LpIdealEstimator().collective_time(ctype, 1.0, topology)
    if fluid <= 0:
        return 1.0
    return min(1.0, ideal / fluid)


@dataclass(frozen=True)
class ProvisioningReport:
    """Designer-facing summary: verdicts plus the drivable-BW bound."""

    topology_name: str
    assessments: tuple[PairAssessment, ...]
    max_utilization: float
    baseline_efficient: bool

    def describe(self) -> str:
        lines = [f"{self.topology_name}:"]
        for assessment in self.assessments:
            lines.append(f"  {assessment.describe()}")
        lines.append(
            f"  max drivable utilization (any scheduler): "
            f"{self.max_utilization:.1%}"
        )
        lines.append(
            "  baseline schedule sufficient"
            if self.baseline_efficient
            else "  dynamic scheduling (Themis) required for full utilization"
        )
        return "\n".join(lines)


def assess(
    topology: Topology,
    tolerance: float = 0.01,
    ctype: CollectiveType = CollectiveType.ALL_REDUCE,
) -> ProvisioningReport:
    """Full Sec. 6.3 assessment of one topology.

    ``ctype`` selects the collective whose fluid bound anchors the
    drivable-utilization number (All-Reduce, as in the paper, by default).
    """
    assessments = tuple(classify_topology(topology, tolerance))
    baseline_efficient = all(
        a.scenario is ProvisioningVerdict.JUST_ENOUGH
        for a in assessments
        if a.dim_l == a.dim_k + 1
    )
    return ProvisioningReport(
        topology_name=topology.name,
        assessments=assessments,
        max_utilization=max_drivable_utilization(topology, ctype),
        baseline_efficient=baseline_efficient,
    )
