"""Plain-text table rendering for bench and CLI output.

The experiment harnesses print the same rows/series the paper's figures
show; this module keeps their formatting consistent (fixed-width columns,
right-aligned numbers, optional per-column formatters).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    formats: Sequence[Callable[[object], str]] | None = None,
    indent: str = "",
) -> str:
    """Render rows as an aligned plain-text table.

    ``formats`` optionally supplies one formatter per column; default is
    ``str``.  The first column is left-aligned (labels), the rest right.
    """
    if formats is None:
        formats = [str] * len(headers)
    if len(formats) != len(headers):
        raise ValueError(
            f"{len(headers)} headers but {len(formats)} formatters"
        )
    rendered: list[list[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
        rendered.append([fmt(cell) for fmt, cell in zip(formats, row)])

    widths = [
        max(len(line[col]) for line in rendered) for col in range(len(headers))
    ]
    lines = []
    for line_index, line in enumerate(rendered):
        cells = []
        for col, cell in enumerate(line):
            if col == 0:
                cells.append(cell.ljust(widths[col]))
            else:
                cells.append(cell.rjust(widths[col]))
        lines.append(indent + "  ".join(cells).rstrip())
        if line_index == 0:
            lines.append(indent + "  ".join("-" * w for w in widths))
    return "\n".join(lines)


def pct(value: object) -> str:
    """Format a 0..1 fraction as a percentage with one decimal."""
    return f"{float(value) * 100:.1f}%"


def ratio(value: object) -> str:
    """Format a speedup ratio, e.g. ``1.72x``."""
    return f"{float(value):.2f}x"


def ms(value: object) -> str:
    """Format seconds as milliseconds with three significant digits."""
    return f"{float(value) * 1e3:.3g}ms"


def us(value: object) -> str:
    """Format seconds as microseconds."""
    return f"{float(value) * 1e6:.4g}us"
