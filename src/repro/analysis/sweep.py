"""Microbenchmark sweep harness shared by the Fig. 8-11 experiments.

Runs a single collective through the network simulator for each
(scheduler, policy, size, chunk-count, topology) combination and returns
comparable records: communication time and average BW utilization.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..collectives.types import CollectiveRequest, CollectiveType
from ..core.ideal import IdealEstimator
from ..core.scheduler import SchedulerFactory
from ..core.splitter import Splitter
from ..sim.executor import FusionConfig
from ..sim.network import ExecutionResult, NetworkSimulator
from ..sim.stats import bw_utilization
from ..topology import Topology


@dataclass(frozen=True)
class SchedulerConfig:
    """One Table 3 row: a scheduler kind plus its intra-dimension policy."""

    kind: str  # "baseline" | "themis"
    policy: str  # "FIFO" | "SCF" | ...

    @property
    def label(self) -> str:
        if self.kind == "baseline":
            return "Baseline"
        return f"Themis+{self.policy.upper()}"


#: The paper's three simulated configurations (Table 3; Ideal is analytic).
PAPER_SCHEDULERS: tuple[SchedulerConfig, ...] = (
    SchedulerConfig("baseline", "FIFO"),
    SchedulerConfig("themis", "FIFO"),
    SchedulerConfig("themis", "SCF"),
)


@dataclass(frozen=True)
class MicrobenchRecord:
    """One simulated collective's headline numbers."""

    topology_name: str
    scheduler: str
    ctype: CollectiveType
    size: float
    chunks: int
    comm_time: float
    utilization: float
    ideal_time: float

    @property
    def speedup_potential(self) -> float:
        """How far from the 100%-utilization Ideal this run landed."""
        return self.comm_time / self.ideal_time


def run_collective(
    topology: Topology,
    config: SchedulerConfig,
    size: float,
    ctype: CollectiveType = CollectiveType.ALL_REDUCE,
    chunks: int = 64,
    fusion: FusionConfig | None = None,
) -> tuple[MicrobenchRecord, ExecutionResult]:
    """Simulate one collective and package the comparable numbers."""
    sim = NetworkSimulator(
        topology,
        SchedulerFactory(config.kind, splitter=Splitter(chunks)),
        policy=config.policy,
        fusion=fusion or FusionConfig(),
    )
    sim.submit(CollectiveRequest(ctype, size))
    result = sim.run()
    record = MicrobenchRecord(
        topology_name=topology.name,
        scheduler=config.label,
        ctype=ctype,
        size=size,
        chunks=chunks,
        comm_time=result.makespan,
        utilization=bw_utilization(result).average,
        ideal_time=IdealEstimator().collective_time(ctype, size, topology),
    )
    return record, result


def sweep(
    topologies: list[Topology],
    sizes: list[float],
    configs: tuple[SchedulerConfig, ...] = PAPER_SCHEDULERS,
    ctype: CollectiveType = CollectiveType.ALL_REDUCE,
    chunks: int = 64,
    fusion: FusionConfig | None = None,
) -> list[MicrobenchRecord]:
    """Full cartesian sweep used by the Fig. 8 / Fig. 11 benches."""
    records = []
    for topology in topologies:
        for size in sizes:
            for config in configs:
                record, _ = run_collective(
                    topology, config, size, ctype=ctype, chunks=chunks, fusion=fusion
                )
                records.append(record)
    return records


def geometric_mean(values: list[float]) -> float:
    """Geomean used for "average speedup across topologies/sizes" claims."""
    if not values:
        raise ValueError("geometric mean of no values")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError(f"geometric mean needs positive values, got {value}")
        product *= value
    return product ** (1.0 / len(values))
