"""End-to-end training-iteration simulation (paper Sec. 5.2 / Fig. 12)."""

from .iteration import (
    ComputeStep,
    TrainingConfig,
    TrainingLoop,
    TrainingSimulator,
    WaitStep,
    simulate_training,
)
from .results import IterationBreakdown, TrainingReport

__all__ = [
    "ComputeStep",
    "WaitStep",
    "TrainingConfig",
    "TrainingLoop",
    "TrainingSimulator",
    "simulate_training",
    "IterationBreakdown",
    "TrainingReport",
]
