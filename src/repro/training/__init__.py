"""End-to-end training-iteration simulation (paper Sec. 5.2 / Fig. 12)."""

from .iteration import TrainingConfig, TrainingSimulator, simulate_training
from .results import IterationBreakdown, TrainingReport

__all__ = [
    "TrainingConfig",
    "TrainingSimulator",
    "simulate_training",
    "IterationBreakdown",
    "TrainingReport",
]
