"""Training-iteration result records (paper Fig. 12 decomposition).

The paper decomposes each training iteration into four bars: forward
compute, backward compute, exposed model-parallel communication, and
exposed data-parallel communication.  *Exposed* communication is "the
communication overhead of the training time where the training workload is
waiting for the communication to be finished" — overlap with compute is
free; only stalls count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..units import fmt_time


@dataclass
class IterationBreakdown:
    """One training iteration's time decomposition (seconds)."""

    fwd_compute: float = 0.0
    bwd_compute: float = 0.0
    exposed_mp: float = 0.0
    exposed_dp: float = 0.0

    @property
    def total(self) -> float:
        return self.fwd_compute + self.bwd_compute + self.exposed_mp + self.exposed_dp

    @property
    def exposed_comm(self) -> float:
        return self.exposed_mp + self.exposed_dp

    @property
    def compute(self) -> float:
        return self.fwd_compute + self.bwd_compute

    def add_compute(self, phase: str, duration: float) -> None:
        """Accumulate compute time under ``"fwd"`` or ``"bwd"``.

        Shared by the synchronous and event-driven loop drivers so both
        bucket :class:`ComputeStep` phases identically.
        """
        if phase == "fwd":
            self.fwd_compute += duration
        elif phase == "bwd":
            self.bwd_compute += duration
        else:
            raise ValueError(f"unknown compute phase {phase!r}")

    def add_stall(self, attribution: str, duration: float) -> None:
        """Accumulate an exposed-communication stall under ``"mp"``/``"dp"``."""
        if attribution == "mp":
            self.exposed_mp += duration
        elif attribution == "dp":
            self.exposed_dp += duration
        else:
            raise ValueError(f"unknown stall attribution {attribution!r}")

    def as_row(self) -> dict[str, float]:
        """Flat dict used by table renderers."""
        return {
            "fwd_compute": self.fwd_compute,
            "bwd_compute": self.bwd_compute,
            "exposed_mp": self.exposed_mp,
            "exposed_dp": self.exposed_dp,
            "total": self.total,
        }

    def __add__(self, other: "IterationBreakdown") -> "IterationBreakdown":
        return IterationBreakdown(
            fwd_compute=self.fwd_compute + other.fwd_compute,
            bwd_compute=self.bwd_compute + other.bwd_compute,
            exposed_mp=self.exposed_mp + other.exposed_mp,
            exposed_dp=self.exposed_dp + other.exposed_dp,
        )

    def describe(self) -> str:
        total = self.total
        if total <= 0:
            return "(empty iteration)"
        parts = [
            f"total {fmt_time(total)}",
            f"fwd {fmt_time(self.fwd_compute)} ({self.fwd_compute / total:.0%})",
            f"bwd {fmt_time(self.bwd_compute)} ({self.bwd_compute / total:.0%})",
            f"MP comm {fmt_time(self.exposed_mp)} ({self.exposed_mp / total:.0%})",
            f"DP comm {fmt_time(self.exposed_dp)} ({self.exposed_dp / total:.0%})",
        ]
        return ", ".join(parts)


@dataclass
class TrainingReport:
    """Results of a multi-iteration training simulation."""

    workload_name: str
    topology_name: str
    scheduler_name: str
    iterations: list[IterationBreakdown] = field(default_factory=list)
    avg_bw_utilization: float | None = None
    collective_count: int = 0

    @property
    def total(self) -> IterationBreakdown:
        """Sum over all simulated iterations."""
        combined = IterationBreakdown()
        for iteration in self.iterations:
            combined = combined + iteration
        return combined

    @property
    def total_time(self) -> float:
        return self.total.total

    def speedup_over(self, other: "TrainingReport") -> float:
        """``other.total_time / self.total_time`` (how much faster *self* is)."""
        return other.total_time / self.total_time

    def describe(self) -> str:
        lines = [
            f"{self.workload_name} on {self.topology_name} "
            f"[{self.scheduler_name}]: {len(self.iterations)} iteration(s)"
        ]
        lines.append(f"  {self.total.describe()}")
        if self.avg_bw_utilization is not None:
            lines.append(f"  avg BW utilization: {self.avg_bw_utilization:.1%}")
        return "\n".join(lines)
