"""End-to-end training-iteration simulator (paper Sec. 5.2 / Fig. 12).

Co-simulates one NPU's compute timeline with the network simulator on a
shared event engine:

* **forward**: layers run in order; blocking model-parallel collectives
  (Megatron-style activation All-Reduces) stall the pass; asynchronous
  attachments (DLRM's embedding All-to-All) are issued and awaited at the
  layer that declared the matching wait label;
* **backward**: layers run in reverse; on completing a layer's backward
  compute its weight gradients enter the current data-parallel bucket;
  full buckets issue their collective immediately (overlapping with the
  remaining backward compute);
* **iteration end**: all outstanding data-parallel collectives are awaited
  (ZeRO-2 additionally All-Gathers the updated parameter shards first).

Stall time at waits is attributed to exposed-MP or exposed-DP, reproducing
Fig. 12's decomposition.  The network can be the real simulator (baseline /
Themis schedulers) or the Ideal fluid network of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..collectives.types import CollectiveRequest, CollectiveType
from ..core.scheduler import SchedulerFactory
from ..errors import SimulationError, WorkloadError
from ..sim.engine import EventQueue
from ..sim.executor import FusionConfig
from ..sim.network import CollectiveResult, IdealNetwork, NetworkSimulator
from ..sim.stats import bw_utilization
from ..topology import Topology
from ..workloads.base import Workload
from ..workloads.compute import ComputeModel
from ..workloads.layers import CommAttachment, Layer
from ..workloads.parallelism import CommScope
from .results import IterationBreakdown, TrainingReport


@dataclass(frozen=True)
class TrainingConfig:
    """Knobs of the training-loop simulation.

    Attributes
    ----------
    iterations:
        Number of iterations to simulate (the paper's Fig. 12 shows 3).
    compute:
        Roofline compute model.
    dp_bucket_bytes:
        Gradient-bucket size for data-parallel collectives.  ``None`` issues
        one collective per layer (ASTRA-sim-style); larger buckets coalesce
        layers (DDP-style) which trades overlap for fewer, bigger
        collectives.
    chunks_per_collective:
        Splitter granularity for the real network simulator.
    policy / fusion:
        Intra-dimension policy and fusion config for the network simulator.
    overlap_dp:
        When True (DDP-style), gradient buckets issue their collective as
        soon as they fill during backprop, overlapping with the remaining
        backward compute.  When False, every data-parallel collective is
        issued at the end of back-propagation and is fully exposed — the
        paper's accounting ("exposed communication occurs at the end of
        back-propagation", Sec. 6.2).
    """

    iterations: int = 1
    compute: ComputeModel = ComputeModel()
    dp_bucket_bytes: float | None = None
    chunks_per_collective: int = 64
    policy: str = "SCF"
    fusion: FusionConfig | None = None
    overlap_dp: bool = True
    #: Priority for blocking model-parallel collectives over background
    #: data-parallel gradient traffic (NCCL-priority-stream style).
    mp_priority: int = 1

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise WorkloadError(f"need >= 1 iterations, got {self.iterations}")
        if self.dp_bucket_bytes is not None and self.dp_bucket_bytes <= 0:
            raise WorkloadError(
                f"bucket bytes must be positive, got {self.dp_bucket_bytes}"
            )


class TrainingSimulator:
    """Simulates training iterations of one workload on one platform."""

    def __init__(
        self,
        workload: Workload,
        topology: Topology,
        scheduler: SchedulerFactory | str = "themis",
        config: TrainingConfig | None = None,
        ideal_network: bool = False,
    ) -> None:
        self.workload = workload
        self.topology = topology
        self.config = config or TrainingConfig()
        self.engine = EventQueue()
        if ideal_network:
            self.network: NetworkSimulator | IdealNetwork = IdealNetwork(
                topology, engine=self.engine
            )
            self.scheduler_name = "Ideal"
        else:
            if isinstance(scheduler, str):
                from ..core.splitter import Splitter

                scheduler = SchedulerFactory(
                    scheduler,
                    splitter=Splitter(self.config.chunks_per_collective),
                )
            self.network = NetworkSimulator(
                topology,
                scheduler=scheduler,
                policy=self.config.policy,
                fusion=self.config.fusion,
                engine=self.engine,
            )
            policy_tag = self.config.policy.upper()
            base = scheduler.name
            self.scheduler_name = (
                f"{base}+{policy_tag}" if base == "Themis" else base
            )
        self.plan = workload.plan(topology)
        self._async_handles: dict[str, CollectiveResult] = {}
        self._dp_handles: list[CollectiveResult] = []
        self._dp_bucket = 0.0
        self._dp_bucket_sizes: list[float] = []
        self._deferred_dp: list[float] = []
        self._collectives_issued = 0

    # --- low-level helpers ---------------------------------------------------
    def _scope_fields(self, scope: CommScope | None) -> dict:
        if scope is None or scope.dim_indices is None:
            return {"dim_indices": None, "peer_counts": None}
        return {
            "dim_indices": tuple(scope.dim_indices),
            "peer_counts": scope.peer_counts,
        }

    def _submit(
        self, ctype: CollectiveType, size: float, scope: CommScope | None, tag: str
    ) -> CollectiveResult:
        priority = self.config.mp_priority if tag == "MP" else 0
        request = CollectiveRequest(
            ctype=ctype, size=size, tag=tag, priority=priority,
            **self._scope_fields(scope),
        )
        self._collectives_issued += 1
        return self.network.submit(request, at_time=self.engine.now)

    def _advance_compute(self, duration: float) -> None:
        """Advance the NPU's compute clock, letting network events fire."""
        if duration < 0:
            raise SimulationError(f"negative compute duration {duration}")
        self.engine.run_until(self.engine.now + duration)

    def _wait(self, handle: CollectiveResult) -> float:
        """Block until a collective completes; returns the stall time."""
        start = self.engine.now
        while not handle.done:
            if not self.engine.step():
                raise SimulationError(
                    f"deadlock waiting on collective {handle.request.tag!r}"
                )
        if handle.completion_time > self.engine.now:  # pragma: no cover
            raise SimulationError("collective completed in the future")
        # The engine may legitimately sit exactly at the completion instant.
        end = max(start, handle.completion_time)
        self.engine.run_until(end)
        return end - start

    # --- comm attachment handling -------------------------------------------
    def _mp_scope(self) -> CommScope | None:
        """Model-parallel collectives span the MP group (or all dims)."""
        return self.plan.mp

    def _handle_attachment(
        self, attachment: CommAttachment, breakdown: IterationBreakdown
    ) -> None:
        handle = self._submit(
            attachment.ctype, attachment.size, self._mp_scope(), tag="MP"
        )
        if attachment.blocking:
            breakdown.exposed_mp += self._wait(handle)
        else:
            self._async_handles[attachment.label] = handle

    def _handle_wait_label(self, label: str, breakdown: IterationBreakdown) -> None:
        handle = self._async_handles.pop(label, None)
        if handle is None:
            raise SimulationError(
                f"wait label {label!r} has no outstanding collective"
            )
        breakdown.exposed_mp += self._wait(handle)

    # --- data-parallel gradient buckets ---------------------------------------
    def _dp_degree(self) -> int:
        return self.plan.dp_degree(self.topology)

    def _submit_dp_bucket(self, size: float) -> None:
        self._dp_bucket_sizes.append(size)
        ctype = (
            CollectiveType.REDUCE_SCATTER
            if self.workload.dp_style == "zero2"
            else CollectiveType.ALL_REDUCE
        )
        self._dp_handles.append(self._submit(ctype, size, self.plan.dp, tag="DP"))

    def _flush_dp_bucket(self) -> None:
        if self._dp_bucket <= 0 or self.plan.dp is None:
            self._dp_bucket = 0.0
            return
        size = self._dp_bucket
        self._dp_bucket = 0.0
        if self.config.overlap_dp:
            self._submit_dp_bucket(size)
        else:
            self._deferred_dp.append(size)

    def _accumulate_dp(self, layer: Layer) -> None:
        if layer.param_bytes <= 0 or self.plan.dp is None:
            return
        self._dp_bucket += layer.param_bytes
        bucket_limit = self.config.dp_bucket_bytes
        if bucket_limit is None or self._dp_bucket >= bucket_limit:
            self._flush_dp_bucket()

    def _finish_dp(self, breakdown: IterationBreakdown) -> None:
        self._flush_dp_bucket()
        for size in self._deferred_dp:
            self._submit_dp_bucket(size)
        self._deferred_dp.clear()
        if self.workload.dp_style == "zero2" and self.plan.dp is not None:
            # ZeRO-2: gather the updated parameter shards before the next
            # iteration.  Each NPU holds bucket/dp_degree after the RS.
            degree = self._dp_degree()
            for size in self._dp_bucket_sizes:
                self._dp_handles.append(
                    self._submit(
                        CollectiveType.ALL_GATHER,
                        size / degree,
                        self.plan.dp,
                        tag="DP",
                    )
                )
        for handle in self._dp_handles:
            breakdown.exposed_dp += self._wait(handle)
        self._dp_handles.clear()
        self._dp_bucket_sizes.clear()

    # --- iteration driver ------------------------------------------------------
    def _run_iteration(self) -> IterationBreakdown:
        breakdown = IterationBreakdown()
        compute = self.config.compute

        # Forward pass.
        for layer in self.workload.layers:
            if layer.fwd_wait_label:
                self._handle_wait_label(layer.fwd_wait_label, breakdown)
            duration = compute.time_for(layer.fwd_flops, layer.fwd_mem_bytes)
            self._advance_compute(duration)
            breakdown.fwd_compute += duration
            if layer.fwd_comm is not None:
                self._handle_attachment(layer.fwd_comm, breakdown)

        # Backward pass (reverse layer order).
        for layer in reversed(self.workload.layers):
            if layer.bwd_wait_label:
                self._handle_wait_label(layer.bwd_wait_label, breakdown)
            duration = compute.time_for(layer.bwd_flops, layer.bwd_mem_bytes)
            self._advance_compute(duration)
            breakdown.bwd_compute += duration
            if layer.bwd_comm is not None:
                self._handle_attachment(layer.bwd_comm, breakdown)
            self._accumulate_dp(layer)

        # Gradient synchronization completes before the next iteration.
        self._finish_dp(breakdown)
        if self._async_handles:
            raise SimulationError(
                f"unawaited async collectives: {sorted(self._async_handles)}"
            )
        return breakdown

    def run(self) -> TrainingReport:
        """Simulate ``config.iterations`` iterations and report."""
        report = TrainingReport(
            workload_name=self.workload.name,
            topology_name=self.topology.name,
            scheduler_name=self.scheduler_name,
        )
        for _ in range(self.config.iterations):
            report.iterations.append(self._run_iteration())
        self.engine.run()  # drain any same-instant residue
        report.collective_count = self._collectives_issued
        if isinstance(self.network, NetworkSimulator) and self._collectives_issued:
            result = self.network.result()
            report.avg_bw_utilization = bw_utilization(result).average
        return report


def simulate_training(
    workload: Workload,
    topology: Topology,
    scheduler: str = "themis",
    config: TrainingConfig | None = None,
    ideal_network: bool = False,
) -> TrainingReport:
    """One-call convenience wrapper around :class:`TrainingSimulator`."""
    simulator = TrainingSimulator(
        workload, topology, scheduler=scheduler, config=config,
        ideal_network=ideal_network,
    )
    return simulator.run()
