"""End-to-end training-iteration simulator (paper Sec. 5.2 / Fig. 12).

Co-simulates one NPU's compute timeline with the network simulator on a
shared event engine:

* **forward**: layers run in order; blocking model-parallel collectives
  (Megatron-style activation All-Reduces) stall the pass; asynchronous
  attachments (DLRM's embedding All-to-All) are issued and awaited at the
  layer that declared the matching wait label;
* **backward**: layers run in reverse; on completing a layer's backward
  compute its weight gradients enter the current data-parallel bucket;
  full buckets issue their collective immediately (overlapping with the
  remaining backward compute);
* **iteration end**: all outstanding data-parallel collectives are awaited
  (ZeRO-2 additionally All-Gathers the updated parameter shards first).

Stall time at waits is attributed to exposed-MP or exposed-DP, reproducing
Fig. 12's decomposition.  The network can be the real simulator (baseline /
Themis schedulers) or the Ideal fluid network of Table 3.

The iteration logic itself lives in :class:`TrainingLoop`, which expresses
one iteration as a lazy sequence of :class:`ComputeStep` / :class:`WaitStep`
items and leaves the *clock* to its driver.  :class:`TrainingSimulator`
drives a single job synchronously (it owns the engine, so it can simply run
it forward); the multi-job cluster simulator (``repro.cluster``) drives many
loops event-by-event on one shared engine and network.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Iterator

from ..collectives.types import CollectiveRequest, CollectiveType
from ..core.scheduler import SchedulerFactory
from ..errors import ConfigError, SimulationError, WorkloadError
from ..sim.backends import get_backend, resolve_backend_key
from ..sim.backends.packet import PacketNetwork
from ..sim.engine import EventQueue
from ..sim.executor import FusionConfig
from ..sim.network import CollectiveResult, IdealNetwork, NetworkSimulator
from ..sim.stats import bw_utilization
from ..topology import Topology
from ..workloads.base import Workload
from ..workloads.compute import ComputeModel
from ..workloads.layers import CommAttachment, Layer
from ..workloads.parallelism import CommScope
from .results import IterationBreakdown, TrainingReport


@dataclass(frozen=True)
class TrainingConfig:
    """Knobs of the training-loop simulation.

    Attributes
    ----------
    iterations:
        Number of iterations to simulate (the paper's Fig. 12 shows 3).
    compute:
        Roofline compute model.
    dp_bucket_bytes:
        Gradient-bucket size for data-parallel collectives.  ``None`` issues
        one collective per layer (ASTRA-sim-style); larger buckets coalesce
        layers (DDP-style) which trades overlap for fewer, bigger
        collectives.
    chunks_per_collective:
        Splitter granularity for the real network simulator.
    policy / fusion:
        Intra-dimension policy and fusion config for the network simulator.
    overlap_dp:
        When True (DDP-style), gradient buckets issue their collective as
        soon as they fill during backprop, overlapping with the remaining
        backward compute.  When False, every data-parallel collective is
        issued at the end of back-propagation and is fully exposed — the
        paper's accounting ("exposed communication occurs at the end of
        back-propagation", Sec. 6.2).
    """

    iterations: int = 1
    compute: ComputeModel = ComputeModel()
    dp_bucket_bytes: float | None = None
    chunks_per_collective: int = 64
    policy: str = "SCF"
    fusion: FusionConfig | None = None
    overlap_dp: bool = True
    #: Priority for blocking model-parallel collectives over background
    #: data-parallel gradient traffic (NCCL-priority-stream style).
    mp_priority: int = 1

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise WorkloadError(f"need >= 1 iterations, got {self.iterations}")
        if self.dp_bucket_bytes is not None and self.dp_bucket_bytes <= 0:
            raise WorkloadError(
                f"bucket bytes must be positive, got {self.dp_bucket_bytes}"
            )


@dataclass(frozen=True)
class ComputeStep:
    """Advance the job's compute clock by ``duration`` seconds.

    ``phase`` is ``"fwd"`` or ``"bwd"`` so drivers can attribute the time
    to the right breakdown bar.
    """

    duration: float
    phase: str


@dataclass(frozen=True)
class WaitStep:
    """Block the job until ``handle`` completes.

    The stall (time from reaching this step to the handle's completion) is
    attributed to ``"mp"`` or ``"dp"`` exposed communication.
    """

    handle: CollectiveResult
    attribution: str


class TrainingLoop:
    """One training job's iteration program on a (possibly shared) network.

    Holds all per-job state — communicator plan, gradient buckets, async
    handles — and yields the job's timeline as :class:`ComputeStep` /
    :class:`WaitStep` items from :meth:`iteration_steps`.  The generator
    submits collectives as its driver reaches the matching points in
    simulated time, so it must only be advanced while the shared engine
    clock sits at the job's current position.

    Parameters
    ----------
    workload / platform / network / engine / config:
        As for :class:`TrainingSimulator`; ``network`` and ``engine`` may be
        shared with other loops (multi-job cluster simulation).
    scheduler_factory:
        Optional per-job :class:`SchedulerFactory` passed through on every
        submission, overriding the shared network's default scheduler.
    dim_indices:
        Restrict the job's communicators to this subset of the platform's
        dimensions (the job's slice of the cluster).  The workload's
        parallelism plan is computed on the sub-topology and its scopes are
        translated back to platform dimensions at submission time.
    priority_boost:
        Added to every request's priority (cluster job priorities).
    owner:
        Tenant identity stamped on every request for per-job comm-active
        accounting.
    on_collective_complete:
        Optional callback invoked with each finished
        :class:`CollectiveResult`; event-driven drivers use it to resume.
    """

    def __init__(
        self,
        workload: Workload,
        platform: Topology,
        network: NetworkSimulator | IdealNetwork | PacketNetwork,
        engine: EventQueue,
        config: TrainingConfig | None = None,
        *,
        scheduler_factory: SchedulerFactory | None = None,
        dim_indices: tuple[int, ...] | None = None,
        priority_boost: int = 0,
        owner: str = "",
        on_collective_complete: Callable[[CollectiveResult], None] | None = None,
    ) -> None:
        self.workload = workload
        self.platform = platform
        self.network = network
        self.engine = engine
        self.config = config or TrainingConfig()
        self.scheduler_factory = scheduler_factory
        self.dim_indices = tuple(dim_indices) if dim_indices is not None else None
        self.priority_boost = priority_boost
        self.owner = owner
        self.on_collective_complete = on_collective_complete
        if self.dim_indices is None:
            self.topology = platform
        else:
            self.topology = platform.subset(
                self.dim_indices, name=f"{platform.name}[{owner or 'job'}]"
            )
        self.plan = workload.plan(self.topology)
        self._async_handles: dict[str, CollectiveResult] = {}
        self._dp_handles: list[CollectiveResult] = []
        self._dp_bucket = 0.0
        self._dp_bucket_sizes: list[float] = []
        self._deferred_dp: list[float] = []
        self.collectives_issued = 0

    def reset_attempt(self) -> None:
        """Drop mid-iteration communication state after a job crash.

        The cluster fault layer aborts an attempt between steps: any
        in-flight collectives keep draining on the shared network (their
        bytes were already injected; the aborted driver ignores their
        completions), but the loop's per-iteration bookkeeping must not
        leak into the retry — a stale async handle would either be waited
        on spuriously or trip the unawaited-collectives check at the next
        iteration boundary.  ``collectives_issued`` stays cumulative
        across attempts (it counts submissions, not useful work).
        """
        self._async_handles.clear()
        self._dp_handles.clear()
        self._dp_bucket = 0.0
        self._dp_bucket_sizes.clear()
        self._deferred_dp.clear()

    # --- low-level helpers ---------------------------------------------------
    def _scope_fields(self, scope: CommScope | None) -> dict:
        """Translate a plan scope (job-local dims) to platform dims."""
        if scope is None or scope.dim_indices is None:
            if self.dim_indices is None:
                return {"dim_indices": None, "peer_counts": None}
            return {"dim_indices": self.dim_indices, "peer_counts": None}
        local = tuple(scope.dim_indices)
        if self.dim_indices is not None:
            parents = tuple(self.dim_indices[i] for i in local)
        else:
            parents = local
        return {"dim_indices": parents, "peer_counts": scope.peer_counts}

    def _submit(
        self, ctype: CollectiveType, size: float, scope: CommScope | None, tag: str
    ) -> CollectiveResult:
        priority = self.priority_boost + (
            self.config.mp_priority if tag == "MP" else 0
        )
        request = CollectiveRequest(
            ctype=ctype, size=size, tag=tag, priority=priority, owner=self.owner,
            **self._scope_fields(scope),
        )
        self.collectives_issued += 1
        kwargs: dict = {"at_time": self.engine.now}
        if self.on_collective_complete is not None:
            kwargs["on_complete"] = self.on_collective_complete
        if self.scheduler_factory is not None and getattr(
            self.network, "accepts_scheduler", False
        ):
            kwargs["scheduler"] = self.scheduler_factory
        return self.network.submit(request, **kwargs)

    # --- comm attachment handling -------------------------------------------
    def _mp_scope(self) -> CommScope | None:
        """Model-parallel collectives span the MP group (or all dims)."""
        return self.plan.mp

    def _attachment_steps(
        self, attachment: CommAttachment
    ) -> Iterator[WaitStep]:
        handle = self._submit(
            attachment.ctype, attachment.size, self._mp_scope(), tag="MP"
        )
        if attachment.blocking:
            yield WaitStep(handle, "mp")
        else:
            self._async_handles[attachment.label] = handle

    def _take_async(self, label: str) -> CollectiveResult:
        handle = self._async_handles.pop(label, None)
        if handle is None:
            raise SimulationError(
                f"wait label {label!r} has no outstanding collective"
            )
        return handle

    # --- data-parallel gradient buckets ---------------------------------------
    def _dp_degree(self) -> int:
        return self.plan.dp_degree(self.topology)

    def _submit_dp_bucket(self, size: float) -> None:
        self._dp_bucket_sizes.append(size)
        ctype = (
            CollectiveType.REDUCE_SCATTER
            if self.workload.dp_style == "zero2"
            else CollectiveType.ALL_REDUCE
        )
        self._dp_handles.append(self._submit(ctype, size, self.plan.dp, tag="DP"))

    def _flush_dp_bucket(self) -> None:
        if self._dp_bucket <= 0 or self.plan.dp is None:
            self._dp_bucket = 0.0
            return
        size = self._dp_bucket
        self._dp_bucket = 0.0
        if self.config.overlap_dp:
            self._submit_dp_bucket(size)
        else:
            self._deferred_dp.append(size)

    def _accumulate_dp(self, layer: Layer) -> None:
        if layer.param_bytes <= 0 or self.plan.dp is None:
            return
        self._dp_bucket += layer.param_bytes
        bucket_limit = self.config.dp_bucket_bytes
        if bucket_limit is None or self._dp_bucket >= bucket_limit:
            self._flush_dp_bucket()

    def _finish_dp_steps(self) -> Iterator[WaitStep]:
        self._flush_dp_bucket()
        for size in self._deferred_dp:
            self._submit_dp_bucket(size)
        self._deferred_dp.clear()
        if self.workload.dp_style == "zero2" and self.plan.dp is not None:
            # ZeRO-2: gather the updated parameter shards before the next
            # iteration.  Each NPU holds bucket/dp_degree after the RS.
            degree = self._dp_degree()
            for size in self._dp_bucket_sizes:
                self._dp_handles.append(
                    self._submit(
                        CollectiveType.ALL_GATHER,
                        size / degree,
                        self.plan.dp,
                        tag="DP",
                    )
                )
        for handle in self._dp_handles:
            yield WaitStep(handle, "dp")
        self._dp_handles.clear()
        self._dp_bucket_sizes.clear()

    # --- iteration program ------------------------------------------------------
    def iteration_steps(self) -> Iterator[ComputeStep | WaitStep]:
        """One training iteration as a lazy compute/wait step sequence."""
        compute = self.config.compute

        # Forward pass.
        for layer in self.workload.layers:
            if layer.fwd_wait_label:
                yield WaitStep(self._take_async(layer.fwd_wait_label), "mp")
            yield ComputeStep(
                compute.time_for(layer.fwd_flops, layer.fwd_mem_bytes), "fwd"
            )
            if layer.fwd_comm is not None:
                yield from self._attachment_steps(layer.fwd_comm)

        # Backward pass (reverse layer order).
        for layer in reversed(self.workload.layers):
            if layer.bwd_wait_label:
                yield WaitStep(self._take_async(layer.bwd_wait_label), "mp")
            yield ComputeStep(
                compute.time_for(layer.bwd_flops, layer.bwd_mem_bytes), "bwd"
            )
            if layer.bwd_comm is not None:
                yield from self._attachment_steps(layer.bwd_comm)
            self._accumulate_dp(layer)

        # Gradient synchronization completes before the next iteration.
        yield from self._finish_dp_steps()
        if self._async_handles:
            raise SimulationError(
                f"unawaited async collectives: {sorted(self._async_handles)}"
            )


class TrainingSimulator:
    """Simulates training iterations of one workload on one platform."""

    def __init__(
        self,
        workload: Workload,
        topology: Topology,
        scheduler: SchedulerFactory | str = "themis",
        config: TrainingConfig | None = None,
        ideal_network: bool = False,
        audit: bool | None = None,
        backend: str | None = None,
        backend_options: dict | None = None,
    ) -> None:
        self.workload = workload
        self.topology = topology
        self.config = config or TrainingConfig()
        self.engine = EventQueue()
        if ideal_network and backend not in (None, "ideal"):
            raise ConfigError(
                f"ideal_network=True conflicts with backend={backend!r}; "
                "ideal_network is an alias for backend='ideal'"
            )
        self.backend_name = resolve_backend_key(
            backend, ideal_network=ideal_network
        )
        impl = get_backend(self.backend_name)
        if isinstance(scheduler, str):
            from ..core.splitter import Splitter

            scheduler = SchedulerFactory(
                scheduler,
                splitter=Splitter(self.config.chunks_per_collective),
            )
        self.network: NetworkSimulator | IdealNetwork | PacketNetwork = (
            impl.build(
                topology,
                scheduler=scheduler,
                policy=self.config.policy,
                fusion=self.config.fusion,
                engine=self.engine,
                audit=audit,
                options=backend_options,
            )
        )
        if not impl.accepts_scheduler:
            self.scheduler_name = "Ideal"
        else:
            policy_tag = self.config.policy.upper()
            base = scheduler.name
            # The policy tag marks the analytical intra-dimension queue
            # discipline; other fidelities have their own (e.g. FIFO wire).
            self.scheduler_name = (
                f"{base}+{policy_tag}"
                if base == "Themis" and self.backend_name == "analytical"
                else base
            )
        self.loop = TrainingLoop(
            workload, topology, self.network, self.engine, self.config
        )
        self.plan = self.loop.plan

    # --- clock driving --------------------------------------------------------
    def _advance_compute(self, duration: float) -> None:
        """Advance the NPU's compute clock, letting network events fire."""
        if duration < 0:
            raise SimulationError(f"negative compute duration {duration}")
        self.engine.run_until(self.engine.now + duration)

    def _wait(self, handle: CollectiveResult) -> float:
        """Block until a collective completes; returns the stall time."""
        start = self.engine.now
        while not handle.done:
            if not self.engine.step():
                raise SimulationError(
                    f"deadlock waiting on collective {handle.request.tag!r}"
                )
        if handle.completion_time > self.engine.now:  # pragma: no cover
            raise SimulationError("collective completed in the future")
        # The engine may legitimately sit exactly at the completion instant.
        end = max(start, handle.completion_time)
        self.engine.run_until(end)
        return end - start

    # --- iteration driver ------------------------------------------------------
    def _run_iteration(self) -> IterationBreakdown:
        breakdown = IterationBreakdown()
        for step in self.loop.iteration_steps():
            if isinstance(step, ComputeStep):
                self._advance_compute(step.duration)
                breakdown.add_compute(step.phase, step.duration)
            else:
                breakdown.add_stall(step.attribution, self._wait(step.handle))
        return breakdown

    def run(self) -> TrainingReport:
        """Simulate ``config.iterations`` iterations and report."""
        report = TrainingReport(
            workload_name=self.workload.name,
            topology_name=self.topology.name,
            scheduler_name=self.scheduler_name,
        )
        for _ in range(self.config.iterations):
            report.iterations.append(self._run_iteration())
        self.engine.run()  # drain any same-instant residue
        report.collective_count = self.loop.collectives_issued
        if (
            getattr(self.network, "provides_result", False)
            and self.loop.collectives_issued
        ):
            result = self.network.result()
            report.avg_bw_utilization = bw_utilization(result).average
        return report


def simulate_training(
    workload: Workload,
    topology: Topology,
    scheduler: str = "themis",
    config: TrainingConfig | None = None,
    ideal_network: bool = False,
    backend: str | None = None,
    backend_options: dict | None = None,
) -> TrainingReport:
    """One-call convenience wrapper around :class:`TrainingSimulator`."""
    simulator = TrainingSimulator(
        workload, topology, scheduler=scheduler, config=config,
        ideal_network=ideal_network, backend=backend,
        backend_options=backend_options,
    )
    return simulator.run()
