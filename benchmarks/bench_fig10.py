"""Bench: Fig. 10 — BW utilization vs chunks-per-collective (4..512).

Paper: baseline is flat in chunk count; Themis+SCF climbs from ~48.6% at 4
chunks to ~91.2% at 512 (average over 3D-SW_SW_SW_hetero and
4D-Ring_FC_Ring_SW) and is stable from 8 chunks on.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_fig10


@pytest.mark.benchmark(group="fig10")
def test_fig10_chunk_granularity(benchmark, save_result):
    result = benchmark.pedantic(run_fig10, kwargs={"quick": False},
                                rounds=1, iterations=1)
    save_result("fig10_chunk_granularity", result.render())

    # Themis gains from finer chunking; the coarse 4-chunk point is weak.
    scf_4 = result.mean_utilization("Themis+SCF", 4)
    scf_64 = result.mean_utilization("Themis+SCF", 64)
    scf_512 = result.mean_utilization("Themis+SCF", 512)
    assert scf_64 > scf_4 + 0.15
    assert scf_512 > scf_4 + 0.2
    assert scf_512 > 0.85, f"paper reaches ~91% at 512 chunks, got {scf_512:.1%}"

    # Baseline is insensitive to chunk granularity (dim1 bottleneck first).
    base_4 = result.mean_utilization("Baseline", 4)
    base_512 = result.mean_utilization("Baseline", 512)
    assert abs(base_4 - base_512) < 0.1
