"""Ablation benches for Themis design choices called out in DESIGN.md.

* threshold guard (Algorithm 1 line 19) on/off and divisor sweep,
* intra-dimension policy: FIFO vs SCF vs LCF (adversarial),
* mirrored-AG assumption: LP fluid bound vs the paper's simple Ideal,
* DP bucket size in end-to-end training.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table, pct, ratio
from repro.collectives import CollectiveRequest, CollectiveType
from repro.core import SchedulerFactory, Splitter, ThemisScheduler
from repro.core.ideal import IdealEstimator, LpIdealEstimator
from repro.sim import NetworkSimulator, bw_utilization
from repro.topology import get_topology, paper_topologies
from repro.training import TrainingConfig, simulate_training
from repro.units import GB, MB
from repro.workloads import gnmt


def _run_ar(topology, scheduler_factory, policy="SCF", size=GB):
    sim = NetworkSimulator(topology, scheduler_factory, policy=policy)
    sim.submit(CollectiveRequest(CollectiveType.ALL_REDUCE, size))
    result = sim.run()
    return result.makespan, bw_utilization(result).average


@pytest.mark.benchmark(group="ablation-threshold")
def test_ablation_threshold_divisor(benchmark, save_result):
    """The threshold guard is robustness, not speed: disabling it should
    not collapse utilization on the paper topologies, and the default (16)
    should be at least as good as extreme settings."""
    topology = get_topology("3D-SW_SW_SW_hetero")

    def sweep():
        rows = []
        for divisor in (None, 2.0, 16.0, 256.0):
            factory = SchedulerFactory("themis", threshold_divisor=divisor)
            makespan, util = _run_ar(topology, factory)
            rows.append((divisor, makespan, util))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result(
        "ablation_threshold",
        "Threshold-divisor ablation (1GB AR, 3D-SW_SW_SW_hetero)\n"
        + format_table(
            ["divisor", "makespan", "util"],
            [(str(d), f"{m * 1e3:.3f}ms", u) for d, m, u in rows],
            [str, str, pct],
        ),
    )
    utils = {d: u for d, _m, u in rows}
    assert utils[16.0] > 0.9
    for divisor, util in utils.items():
        assert util > 0.75, f"divisor {divisor}: {util:.1%}"


@pytest.mark.benchmark(group="ablation-policy")
def test_ablation_intra_dim_policy(benchmark, save_result):
    """SCF (paper's choice) beats FIFO on average; LCF is the adversary."""

    def sweep():
        rows = []
        for policy in ("SCF", "FIFO", "LCF"):
            utils = []
            for topology in paper_topologies():
                factory = SchedulerFactory("themis")
                _, util = _run_ar(topology, factory, policy=policy, size=500 * MB)
                utils.append(util)
            rows.append((policy, sum(utils) / len(utils)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result(
        "ablation_policy",
        "Intra-dimension policy ablation (500MB AR, mean over Table 2)\n"
        + format_table(["policy", "mean util"], rows, [str, pct]),
    )
    utils = dict(rows)
    assert utils["SCF"] >= utils["FIFO"] - 1e-9
    assert utils["SCF"] >= utils["LCF"] - 1e-9


@pytest.mark.benchmark(group="ablation-ideal")
def test_ablation_ideal_vs_lp(benchmark, save_result):
    """On every Table 2 topology the LP fluid bound confirms the simple
    Ideal is achievable (no under-provisioned pair), within LP tolerance."""

    def sweep():
        rows = []
        for topology in paper_topologies():
            simple = IdealEstimator().collective_time(
                CollectiveType.ALL_REDUCE, GB, topology
            )
            fluid = LpIdealEstimator().collective_time(
                CollectiveType.ALL_REDUCE, GB, topology
            )
            rows.append((topology.name, simple, fluid, fluid / simple))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result(
        "ablation_ideal_vs_lp",
        "Ideal vs LP fluid bound (1GB AR)\n"
        + format_table(
            ["topology", "Ideal", "LP fluid", "gap"],
            [(n, f"{a * 1e3:.3f}ms", f"{b * 1e3:.3f}ms", g) for n, a, b, g in rows],
            [str, str, str, ratio],
        ),
    )
    for name, _simple, _fluid, gap in rows:
        assert gap < 1.05, f"{name}: fluid bound {gap:.3f}x above Ideal"


@pytest.mark.benchmark(group="ablation-bucket")
def test_ablation_dp_bucket_size(benchmark, save_result):
    """Bigger DP buckets -> bigger collectives -> higher utilization, at
    the cost of overlap (with overlap enabled).  In the paper's sync
    accounting, bucketing strictly helps GNMT."""
    topology = get_topology("3D-SW_SW_SW_homo")

    def sweep():
        rows = []
        for bucket in (None, 25 * MB, 100 * MB, 500 * MB):
            config = TrainingConfig(
                iterations=1, overlap_dp=False, dp_bucket_bytes=bucket
            )
            report = simulate_training(gnmt(), topology, "themis", config)
            label = "per-layer" if bucket is None else f"{bucket / MB:.0f}MB"
            rows.append((label, report.total_time, report.avg_bw_utilization))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result(
        "ablation_dp_bucket",
        "DP bucket-size ablation (GNMT, 3D-SW_SW_SW_homo, Themis+SCF)\n"
        + format_table(
            ["bucket", "iteration time", "util"],
            [(l, f"{t * 1e3:.2f}ms", u) for l, t, u in rows],
            [str, str, pct],
        ),
    )
    times = {label: t for label, t, _u in rows}
    assert times["100MB"] <= times["per-layer"] * 1.02


@pytest.mark.benchmark(group="ablation-scheduler")
def test_scheduler_planning_throughput(benchmark):
    """Pure scheduler-side cost: Algorithm 1 planning a 64-chunk AR on a
    4D topology.  This is the overhead a real collective library would pay
    per collective (amortized across iterations per Sec. 4.6)."""
    topology = get_topology("4D-Ring_FC_Ring_SW")
    scheduler = ThemisScheduler(Splitter(64))
    request = CollectiveRequest(CollectiveType.ALL_REDUCE, GB)

    plan = benchmark(lambda: scheduler.plan(request, topology))
    assert plan.nchunks == 64


@pytest.mark.benchmark(group="ablation-rsag")
def test_standalone_rs_ag_scheduling(benchmark, save_result):
    """Sec. 4.1: pure Reduce-Scatter / All-Gather have D! schedules per
    chunk (no mirrored second phase).  Themis must recover stranded BW for
    them exactly as it does for All-Reduce."""
    from repro.collectives import CollectiveType

    topology = get_topology("3D-SW_SW_SW_homo")

    def sweep():
        rows = []
        for ctype in (CollectiveType.REDUCE_SCATTER, CollectiveType.ALL_GATHER):
            times = {}
            for kind, policy in (("baseline", "FIFO"), ("themis", "SCF")):
                sim = NetworkSimulator(
                    topology, SchedulerFactory(kind), policy=policy
                )
                sim.submit(CollectiveRequest(ctype, GB))
                result = sim.run()
                times[kind] = (result.makespan, bw_utilization(result).average)
            rows.append(
                (
                    ctype.value,
                    times["baseline"][0],
                    times["themis"][0],
                    times["baseline"][0] / times["themis"][0],
                    times["themis"][1],
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result(
        "ablation_rs_ag",
        "Standalone RS/AG scheduling (1GB, 3D-SW_SW_SW_homo)\n"
        + format_table(
            ["collective", "baseline", "Themis+SCF", "speedup", "Themis util"],
            [
                (c, f"{b * 1e3:.2f}ms", f"{t * 1e3:.2f}ms", s, u)
                for c, b, t, s, u in rows
            ],
            [str, str, str, ratio, pct],
        ),
    )
    for ctype_name, _b, _t, speedup, util in rows:
        assert speedup > 1.5, f"{ctype_name}: {speedup:.2f}x"
        assert util > 0.85, f"{ctype_name}: {util:.1%}"
