"""Bench: Fig. 4 — normalized runtime vs average BW utilization.

For each workload/topology: the analytic runtime-vs-utilization curve, the
Inf (pure compute) floor, and the bold dot where baseline scheduling
actually lands.  Paper observations we assert:

* the current 2D platform achieves ~97.7% utilization with the baseline
  (its 12:1 BW gap hides dim2 underutilization);
* next-gen topologies land far lower (paper: 59.7% average, 35.1% min);
* at 100% utilization the next-gen platforms beat the current one.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_fig4
from repro.experiments.fig4 import FIG4_TOPOLOGIES


@pytest.mark.benchmark(group="fig4")
def test_fig4_runtime_vs_utilization(benchmark, save_result):
    result = benchmark.pedantic(run_fig4, kwargs={"quick": True},
                                rounds=1, iterations=1)
    save_result("fig4_runtime_vs_utilization", result.render())

    workloads = sorted({w for w, _ in result.curves})
    for workload in workloads:
        current = result.curve(workload, "current-2D")
        # Current platform: baseline is already near-optimal (paper 97.7%)
        # for the pure data-parallel workloads; Transformer-1T's split
        # MP/DP communicators land a little lower.
        floor = 0.9 if workload != "Transformer-1T" else 0.7
        assert current.baseline_utilization > floor

        nextgen = [
            result.curve(workload, topo)
            for topo in FIG4_TOPOLOGIES
            if topo != "current-2D"
        ]
        utils = [c.baseline_utilization for c in nextgen]
        assert min(utils) < 0.45, "paper min is 35.1%"
        assert sum(utils) / len(utils) < 0.75, "paper average is 59.7%"

        # Monotonicity: more utilization -> lower runtime; Inf is the floor.
        for curve in nextgen:
            assert curve.runtime_at(0.1) > curve.runtime_at(0.5) > curve.ideal_runtime
            assert curve.ideal_runtime > curve.inf_runtime

        # At the Ideal, next-gen platforms outperform the current one.
        best_nextgen = min(c.ideal_runtime for c in nextgen)
        assert best_nextgen < current.ideal_runtime
