"""Bench: Table 2 — topology presets and their provisioning character.

Regenerates the Table 2 rows from the preset builders and, per Sec. 6.3,
reports which topologies the baseline could drive efficiently and which
need Themis (all the over-provisioned ones).
"""

from __future__ import annotations

import pytest

from repro.analysis import assess, format_table, pct
from repro.topology import get_topology, paper_topologies


def build_table():
    rows = []
    for topology in paper_topologies():
        report = assess(topology)
        rows.append(
            (
                topology.name,
                "x".join(str(p) for p in topology.shape),
                ", ".join(f"{d.bandwidth_gbps:.0f}" for d in topology.dims),
                ", ".join(f"{d.step_latency * 1e9:.0f}" for d in topology.dims),
                report.max_utilization,
                "yes" if report.baseline_efficient else "no",
            )
        )
    return format_table(
        ["name", "size", "Aggr BW/NPU (Gb/s)", "latency (ns)",
         "drivable util", "baseline OK"],
        rows,
        [str, str, str, str, pct, str],
    )


@pytest.mark.benchmark(group="table2")
def test_table2_topologies(benchmark, save_result):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    save_result("table2_topologies", "Table 2: target topologies\n" + table)

    for topology in paper_topologies():
        assert topology.npus == 1024
        report = assess(topology)
        # None of the Table 2 systems is pathologically under-provisioned.
        assert report.max_utilization > 0.97
        # And none is fully drivable by the static baseline alone.
        assert not report.baseline_efficient

    # The current 2D platform is the contrast case: near-just-enough.
    current = assess(get_topology("current-2D"))
    assert current.max_utilization == pytest.approx(1.0, abs=1e-6)
