#!/usr/bin/env python3
"""Compare a fresh scaling-benchmark JSON against the committed baseline.

``BENCH_scaling.json`` at the repo root is the tracked perf trajectory;
the CI perf-smoke job regenerates it on a reduced matrix and this script
diffs the two, printing a per-case delta table (markdown, also appended to
``$GITHUB_STEP_SUMMARY`` when set) and exiting non-zero when a case
regresses beyond tolerance — the job stays ``continue-on-error``, so a
regression is a loud warning in the PR, not a red build on a noisy runner.

Two signals with very different noise profiles are reported:

* **events** — the number of simulation events a case processes is
  deterministic: any change is a real behavioral change in the hot path,
  so the tolerance is tight (default 2%) and drift **gates the exit
  code**;
* **wall seconds** — the committed baseline was measured on a different
  machine than the CI runner, so absolute ratios are not comparable
  run-to-run: cases slower than ``--wall-tolerance`` are flagged in the
  table (``slow (info)``) but never fail the check.

Cases present in only one document (the reduced CI matrix is a subset of
the tracked one) are skipped, not failed.

Usage::

    python benchmarks/check_regression.py \
        --baseline BENCH_scaling.json \
        --fresh perf-artifacts/BENCH_scaling.json \
        [--wall-tolerance 1.6] [--events-tolerance 0.02]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path


def load_cases(path: Path) -> "dict[tuple[int, str], dict]":
    """``(jobs, policy) -> optimized-path measurements`` from a bench JSON."""
    document = json.loads(path.read_text())
    cases = {}
    for entry in document.get("results", []):
        measurements = entry.get("optimized")
        if measurements is None:
            continue
        cases[(entry["jobs"], entry["policy"])] = measurements
    return cases


def delta_cell(fresh: float, base: float) -> str:
    if base <= 0:
        return "n/a"
    return f"{(fresh - base) / base:+.1%}".replace("%", " %")


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, type=Path,
                        help="committed BENCH_scaling.json")
    parser.add_argument("--fresh", required=True, type=Path,
                        help="freshly generated BENCH_scaling.json")
    parser.add_argument("--wall-tolerance", type=float, default=1.6,
                        help="fresh/baseline wall-time ratio above which a "
                             "case is flagged 'slow' in the table — "
                             "informational only, never fails the check "
                             "(default: 1.6)")
    parser.add_argument("--events-tolerance", type=float, default=0.02,
                        help="max allowed relative event-count drift "
                             "(default: 0.02)")
    args = parser.parse_args(argv)

    baseline = load_cases(args.baseline)
    fresh = load_cases(args.fresh)
    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        print("no comparable cases between baseline and fresh results")
        return 1

    lines = [
        "### Perf smoke: fresh vs committed `BENCH_scaling.json`",
        "",
        "| jobs | policy | wall (base) | wall (fresh) | wall delta "
        "| events (base) | events (fresh) | verdict |",
        "|---:|:---|---:|---:|---:|---:|---:|:---|",
    ]
    regressions = []
    for jobs, policy in shared:
        base = baseline[(jobs, policy)]
        new = fresh[(jobs, policy)]
        notes = []
        wall_base, wall_new = base["wall_seconds"], new["wall_seconds"]
        if wall_base > 0 and wall_new / wall_base > args.wall_tolerance:
            notes.append(f"slow (info): wall {wall_new / wall_base:.2f}x")
        events_base, events_new = base["events"], new["events"]
        gating = []
        if events_base > 0:
            drift = abs(events_new - events_base) / events_base
            if drift > args.events_tolerance:
                gating.append(
                    f"events drifted {drift:.1%} > "
                    f"{args.events_tolerance:.0%}"
                )
        if gating:
            verdict = "REGRESSION: " + "; ".join(gating + notes)
            regressions.append((jobs, policy, verdict))
        else:
            verdict = "; ".join(notes) if notes else "ok"
        lines.append(
            f"| {jobs} | {policy} | {wall_base * 1e3:.1f} ms "
            f"| {wall_new * 1e3:.1f} ms | {delta_cell(wall_new, wall_base)} "
            f"| {events_base} | {events_new} | {verdict} |"
        )
    skipped = len(set(baseline) ^ set(fresh))
    lines.append("")
    lines.append(
        f"{len(shared)} case(s) compared, {skipped} present in only one "
        f"document (skipped), {len(regressions)} regression(s)."
    )
    table = "\n".join(lines)
    print(table)

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as handle:
            handle.write(table + "\n")

    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
