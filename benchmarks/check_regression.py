#!/usr/bin/env python3
"""Compare a fresh scaling-benchmark JSON against the committed baseline.

``BENCH_scaling.json`` at the repo root is the tracked perf trajectory;
CI regenerates it on a reduced matrix and this script diffs the two,
printing a per-case delta table (markdown, also appended to
``$GITHUB_STEP_SUMMARY`` when set) and exiting non-zero on regression.

Two signals with very different noise profiles are reported:

* **deterministic engine counters** — events processed,
  peak-pending-event count, and cancelled events are machine-independent:
  identical inputs must reproduce them exactly, so any drift is a real
  behavioral change in the hot path and **gates the exit code** (default
  tolerance 2%, events-only; ``--counters-only`` gates all three at 0%);
* **wall seconds** — the committed baseline was measured on a different
  machine than the CI runner, so absolute ratios are not comparable
  run-to-run: cases slower than ``--wall-tolerance`` are flagged in the
  table (``slow (info)``) but never fail the check.

Cases are keyed ``(jobs, policy)`` from the fairness matrix plus
``(jobs, "fluid")`` / ``(jobs, "fluid-exact")`` rows from the fluid
fast-path regime.  The reduced CI matrix is a subset of the tracked one,
so baseline-only cases are normal and skipped; **fresh-only** cases mean
the baseline row went missing or was renamed without regenerating
``BENCH_scaling.json``:

* default (warn-only perf-smoke) mode: fresh-only cases are listed but
  don't affect the exit code;
* ``--counters-only`` (the gating perf-gate lane): fresh-only cases fail
  the check — a silently skipped comparison is how a perf gate rots.

Malformed or unreadable JSON on either side always exits non-zero.

Usage::

    python benchmarks/check_regression.py \
        --baseline BENCH_scaling.json \
        --fresh perf-artifacts/BENCH_scaling.json \
        [--counters-only] [--wall-tolerance 1.6] [--events-tolerance 0.02]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

#: The machine-independent engine counters ``--counters-only`` gates.
GATED_COUNTERS = ("events", "peak_pending_events", "cancelled_events")


def load_cases(path: Path) -> "dict[tuple[int, str], dict]":
    """``(jobs, policy) -> measurements`` from a bench JSON document.

    Covers the fairness matrix (optimized path) and the fluid fast-path
    regime rows.  Raises ``SystemExit`` with a readable message when the
    file is missing or not valid JSON — a perf gate must fail loudly, not
    crash with a traceback or silently compare nothing.
    """
    try:
        document = json.loads(path.read_text())
    except OSError as error:
        raise SystemExit(f"cannot read {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise SystemExit(f"malformed JSON in {path}: {error}") from error
    if not isinstance(document, dict):
        raise SystemExit(
            f"malformed document in {path}: expected an object, "
            f"got {type(document).__name__}"
        )
    cases = {}
    for entry in document.get("results", []):
        measurements = entry.get("optimized")
        if measurements is None:
            continue
        cases[(entry["jobs"], entry["policy"])] = measurements
    fluid = document.get("fluid_scaling")
    if fluid:
        for row in fluid.get("rows", []):
            cases[(row["jobs"], "fluid")] = row
        reference = fluid.get("exact_reference")
        if reference is not None:
            cases[(reference["jobs"], "fluid-exact")] = reference
    return cases


def delta_cell(fresh: float, base: float) -> str:
    if base <= 0:
        return "n/a"
    return f"{(fresh - base) / base:+.1%}".replace("%", " %")


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, type=Path,
                        help="committed BENCH_scaling.json")
    parser.add_argument("--fresh", required=True, type=Path,
                        help="freshly generated BENCH_scaling.json")
    parser.add_argument("--counters-only", action="store_true",
                        help="gating mode: compare only the deterministic "
                             "engine counters (events, peak_pending_events, "
                             "cancelled_events) at zero tolerance, and fail "
                             "when a fresh case has no baseline row instead "
                             "of skipping it")
    parser.add_argument("--wall-tolerance", type=float, default=1.6,
                        help="fresh/baseline wall-time ratio above which a "
                             "case is flagged 'slow' in the table — "
                             "informational only, never fails the check "
                             "(default: 1.6)")
    parser.add_argument("--events-tolerance", type=float, default=0.02,
                        help="max allowed relative event-count drift in the "
                             "default mode (default: 0.02; --counters-only "
                             "uses exact equality instead)")
    args = parser.parse_args(argv)

    baseline = load_cases(args.baseline)
    fresh = load_cases(args.fresh)
    shared = sorted(set(baseline) & set(fresh))
    fresh_only = sorted(set(fresh) - set(baseline))
    baseline_only = sorted(set(baseline) - set(fresh))
    if not shared:
        print("no comparable cases between baseline and fresh results")
        if fresh_only:
            rendered = ", ".join(
                f"({jobs}, {policy})" for jobs, policy in fresh_only
            )
            print(
                f"MISSING BASELINE: fresh case(s) {rendered} have no "
                "baseline row — removed or renamed without regenerating "
                "BENCH_scaling.json?"
            )
        return 1

    mode = "perf gate (counters only)" if args.counters_only else "perf smoke"
    lines = [
        f"### {mode}: fresh vs committed `BENCH_scaling.json`",
        "",
        "| jobs | policy | wall (base) | wall (fresh) | wall delta "
        "| events (base) | events (fresh) | verdict |",
        "|---:|:---|---:|---:|---:|---:|---:|:---|",
    ]
    regressions = []
    for jobs, policy in shared:
        base = baseline[(jobs, policy)]
        new = fresh[(jobs, policy)]
        notes = []
        wall_base, wall_new = base["wall_seconds"], new["wall_seconds"]
        if wall_base > 0 and wall_new / wall_base > args.wall_tolerance:
            notes.append(f"slow (info): wall {wall_new / wall_base:.2f}x")
        gating = []
        if args.counters_only:
            for counter in GATED_COUNTERS:
                if counter not in base:
                    gating.append(f"baseline row lacks '{counter}'")
                elif base[counter] != new.get(counter):
                    gating.append(
                        f"{counter} changed: {base[counter]} -> "
                        f"{new.get(counter)}"
                    )
        else:
            events_base, events_new = base["events"], new["events"]
            if events_base > 0:
                drift = abs(events_new - events_base) / events_base
                if drift > args.events_tolerance:
                    gating.append(
                        f"events drifted {drift:.1%} > "
                        f"{args.events_tolerance:.0%}"
                    )
        if gating:
            verdict = "REGRESSION: " + "; ".join(gating + notes)
            regressions.append((jobs, policy, verdict))
        else:
            verdict = "; ".join(notes) if notes else "ok"
        lines.append(
            f"| {jobs} | {policy} | {wall_base * 1e3:.1f} ms "
            f"| {wall_new * 1e3:.1f} ms | {delta_cell(wall_new, wall_base)} "
            f"| {base['events']} | {new['events']} | {verdict} |"
        )
    lines.append("")
    lines.append(
        f"{len(shared)} case(s) compared, {len(baseline_only)} baseline-only "
        f"(reduced matrix, skipped), {len(fresh_only)} fresh-only, "
        f"{len(regressions)} regression(s)."
    )
    missing_failures = []
    if fresh_only:
        rendered = ", ".join(f"({jobs}, {policy})" for jobs, policy in fresh_only)
        if args.counters_only:
            missing_failures.append(
                f"MISSING BASELINE: {len(fresh_only)} fresh case(s) have no "
                f"baseline row ({rendered}) — the baseline row was removed "
                "or renamed; regenerate BENCH_scaling.json"
            )
            lines.extend(["", *missing_failures])
        else:
            lines.append(
                f"fresh-only (no baseline row, not gating here): {rendered}"
            )
    table = "\n".join(lines)
    print(table)

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as handle:
            handle.write(table + "\n")

    return 1 if regressions or missing_failures else 0


if __name__ == "__main__":
    sys.exit(main())
