"""Bench: cluster fairness policies on the skewed elephant/mouse/urgent trace.

Runs the fairness-comparison experiment end-to-end on the paper's
3D-SW_SW_SW_homo platform: the same skewed three-job trace under FIFO
first-come sharing, static weighted shares, finish-time-fair re-weighting,
and priority preemption.

Expected headline (asserted): finish-time fairness achieves a strictly
lower max rho and a higher Jain fairness index than FIFO; preemption
rescues the prioritized job (rho ~1, preemptions > 0) without fixing the
starved tenant.
"""

from __future__ import annotations

import pytest

from repro.experiments import FAIRNESS_VARIANTS, run_fairness_comparison


@pytest.mark.benchmark(group="cluster")
def test_fairness_comparison(benchmark, save_result):
    result = benchmark.pedantic(
        run_fairness_comparison,
        kwargs={"quick": True},
        rounds=1, iterations=1,
    )
    save_result("fairness_comparison", result.render())

    for policy in FAIRNESS_VARIANTS:
        report = result.report(policy)
        assert len(report.jobs) == 3
        for job in report.jobs:
            assert job.jct > 0
            assert job.rho is not None and job.rho >= 0.98
        assert report.jains_fairness_index is not None
        assert 0 < report.jains_fairness_index <= 1.0

    fifo = result.report("fifo")
    ftf = result.report("ftf")
    # The acceptance headline: finish-time fairness strictly beats FIFO.
    assert ftf.max_rho < fifo.max_rho
    assert ftf.jains_fairness_index > fifo.jains_fairness_index
    # Static weighted shares also cap the flood tenant.
    assert result.report("weighted").max_rho < fifo.max_rho
    # Preemption serves the prioritized job at near-isolated speed.
    preempt = result.report("preempt")
    assert preempt.job("urgent").rho == pytest.approx(1.0, abs=0.02)
    assert preempt.preemption_count > 0
    # ... but does nothing for the starved unprioritized tenant.
    assert preempt.max_rho >= ftf.max_rho
