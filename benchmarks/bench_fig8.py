"""Bench: Fig. 8 — All-Reduce communication time across topologies/sizes.

Paper: Themis+FIFO 1.58x and Themis+SCF 1.72x mean speedup over baseline
(2.70x max).  We assert the reproduction lands in the right band: SCF mean
speedup above 1.5x, max above 2.3x, and SCF never slower than Themis+FIFO
on average.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_fig8


@pytest.mark.benchmark(group="fig8")
def test_fig8_allreduce_time(benchmark, save_result):
    result = benchmark.pedantic(run_fig8, kwargs={"quick": False},
                                rounds=1, iterations=1)
    save_result("fig8_allreduce_time", result.render())

    scf_mean = result.mean_speedup("Themis+SCF")
    fifo_mean = result.mean_speedup("Themis+FIFO")
    assert scf_mean > 1.5, f"SCF mean speedup {scf_mean:.2f} (paper 1.72)"
    assert result.max_speedup("Themis+SCF") > 2.3, "paper max is 2.70"
    assert scf_mean >= fifo_mean, "SCF must not lose to FIFO on average"
