"""Bench: the paper's abstract headlines, measured vs published.

"Themis can improve the network BW utilization of the single All-Reduce by
1.72x (2.70x max) [reaching] 95.14% BW utilization" plus the four
end-to-end workload speedups.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_headline


@pytest.mark.benchmark(group="headline")
def test_headline_numbers(benchmark, save_result):
    result = benchmark.pedantic(run_headline, kwargs={"quick": True},
                                rounds=1, iterations=1)
    save_result("headline_numbers", result.render())

    # Microbenchmark headlines track the paper closely on our substrate.
    assert result.ar_speedup_mean > 1.4
    assert result.ar_speedup_max > 2.3
    assert result.scf_utilization > 0.9
    assert result.baseline_utilization < 0.65

    # End-to-end: every workload gains; ordering is workload-dependent but
    # each stays within the physically possible band (1x .. its Ideal).
    for workload, (mean, peak) in result.e2e.items():
        assert peak >= mean > 1.0, f"{workload}: {mean:.2f}/{peak:.2f}"
