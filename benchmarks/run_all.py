"""Perf-trajectory emitter: run the tracked benchmarks, write baseline JSON.

``python benchmarks/run_all.py --json`` runs the scaling benchmark on its
tracked matrix and writes ``BENCH_scaling.json`` at the repo root — the
perf baseline later PRs (and the CI perf-smoke job) compare against.

Options::

    --json            write the JSON artifact(s) (otherwise just print)
    --out DIR         directory for the artifacts (default: repo root)
    --quick           reduced matrix (CI smoke: fast, still all policies)
    --compare-legacy  include the pre-indexing reference path + speedups

The tracked matrix deliberately stays modest (it must be cheap enough to
run on every PR); the full 64-job sweep is one command away::

    PYTHONPATH=src python benchmarks/bench_scaling.py \
        --jobs 64 --policies weighted,ftf --compare-legacy
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_HERE = Path(__file__).resolve().parent
if str(_HERE) not in sys.path:
    sys.path.insert(0, str(_HERE))

import bench_scaling  # noqa: E402  (path set up above)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", action="store_true", help="write artifacts")
    parser.add_argument(
        "--out", default=str(_HERE.parent), help="artifact directory"
    )
    parser.add_argument("--quick", action="store_true", help="reduced matrix")
    parser.add_argument("--compare-legacy", action="store_true")
    args = parser.parse_args(argv)

    job_counts = (8, 16) if args.quick else (8, 16, 32, 64)
    open_loop_arrivals = (
        2000 if args.quick else bench_scaling.DEFAULT_OPEN_LOOP_ARRIVALS
    )
    fluid_job_counts = (
        bench_scaling.DEFAULT_FLUID_JOB_COUNTS[:1]
        if args.quick
        else bench_scaling.DEFAULT_FLUID_JOB_COUNTS
    )
    document = bench_scaling.run_matrix(
        job_counts,
        bench_scaling.DEFAULT_POLICIES,
        compare_legacy=args.compare_legacy,
        open_loop_arrivals=open_loop_arrivals,
        degraded_jobs=8 if args.quick else 16,
        backend_fidelity_jobs=4 if args.quick else 8,
        fluid_job_counts=fluid_job_counts,
    )
    if args.json:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / "BENCH_scaling.json"
        path.write_text(json.dumps(document, indent=2) + "\n")
        print(f"[written to {path}]")


if __name__ == "__main__":
    main()
