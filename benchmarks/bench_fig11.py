"""Bench: Fig. 11 — average BW utilization vs collective size.

Paper means across all topologies and sizes: baseline 56.31%, Themis+FIFO
87.67%, Themis+SCF 95.14%.  We assert each reproduction lands within ~6
points of the paper's number and that utilization grows with size.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_fig11


@pytest.mark.benchmark(group="fig11")
def test_fig11_bw_utilization(benchmark, save_result):
    result = benchmark.pedantic(run_fig11, kwargs={"quick": False},
                                rounds=1, iterations=1)
    save_result("fig11_bw_utilization", result.render())

    baseline = result.mean_utilization("Baseline")
    fifo = result.mean_utilization("Themis+FIFO")
    scf = result.mean_utilization("Themis+SCF")
    assert abs(baseline - 0.5631) < 0.06, f"baseline {baseline:.1%} vs paper 56.31%"
    assert abs(fifo - 0.8767) < 0.06, f"Themis+FIFO {fifo:.1%} vs paper 87.67%"
    assert abs(scf - 0.9514) < 0.06, f"Themis+SCF {scf:.1%} vs paper 95.14%"
    assert baseline < fifo < scf

    # Larger collectives are more BW-bound -> higher utilization (Sec. 6.1).
    sizes = sorted({r.size for r in result.records})
    small = [r.utilization for r in result.records
             if r.size == sizes[0] and r.scheduler == "Themis+SCF"]
    large = [r.utilization for r in result.records
             if r.size == sizes[-1] and r.scheduler == "Themis+SCF"]
    assert sum(large) / len(large) >= sum(small) / len(small)
