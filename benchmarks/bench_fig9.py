"""Bench: Fig. 9 — per-dimension frontend activity rates.

Paper: on 3D-SW_SW_SW_homo with a 1GB All-Reduce, the baseline keeps dim1
~fully active while dim2/dim3 mostly idle; Themis balances all three, with
SCF smoothing FIFO's starvation dips.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_fig9


@pytest.mark.benchmark(group="fig9")
def test_fig9_activity_rates(benchmark, save_result):
    result = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    save_result("fig9_activity_rates", result.render())

    baseline = result.mean_rates["Baseline"]
    scf = result.mean_rates["Themis+SCF"]
    # Baseline: dim1 is the bottleneck stage; dim2/dim3 starve.
    assert baseline[0] > 0.95
    assert baseline[1] < 0.3 and baseline[2] < 0.3
    # Themis+SCF keeps every dimension busy nearly all the time.
    assert all(rate > 0.9 for rate in scf)
    # And finishes faster than both others.
    assert result.makespans["Themis+SCF"] <= result.makespans["Themis+FIFO"]
    assert result.makespans["Themis+FIFO"] < result.makespans["Baseline"]
