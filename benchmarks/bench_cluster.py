"""Bench: multi-job cluster contention — Poisson trace, Baseline vs Themis.

Runs the ≥4-job cluster-contention experiment end-to-end on the paper's
3D-SW_SW_SW_homo platform: one shared network, Poisson arrivals, per-job
scheduler choice, per-job JCT / slowdown-vs-isolated, cluster makespan,
and per-dimension BW utilization.

The single-job headline carries over to the multi-tenant setting: with the
same trace, all-Themis jobs see higher shared-network utilization and no
worse mean JCT and makespan than all-Baseline jobs.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_cluster_contention


@pytest.mark.benchmark(group="cluster")
def test_cluster_contention(benchmark, save_result):
    result = benchmark.pedantic(
        run_cluster_contention,
        kwargs={"quick": True, "n_jobs": 4},
        rounds=1, iterations=1,
    )
    save_result("cluster_contention", result.render())

    for variant in ("Baseline", "Themis"):
        report = result.report(variant)
        assert len(report.jobs) == 4
        for job in report.jobs:
            assert job.jct > 0
            assert job.isolated_time is not None and job.isolated_time > 0
            # Sharing the network can only delay a job (tiny numerical slack).
            assert job.slowdown >= 0.98, (
                f"{variant}/{job.name}: slowdown {job.slowdown:.3f}"
            )
        assert report.makespan >= report.max_jct
        assert report.utilization is not None
        for util in report.utilization.per_dim:
            assert 0.0 < util <= 1.0

    # Themis jobs drain the cluster at least as fast as Baseline jobs.
    assert result.mean_jct_speedup() >= 0.98
    assert result.makespan_speedup() >= 0.98
    # ... and drive the shared network's bandwidth harder.
    assert (
        result.report("Themis").utilization.average
        >= result.report("Baseline").utilization.average
    )
