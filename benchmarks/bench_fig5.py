"""Bench: regenerate the Fig. 5 / Fig. 7 worked example.

Asserts the paper's exact numbers: the baseline pipeline needs 8 units,
Themis 7, and the Themis chunk orders follow Fig. 7's walk-through.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_fig5


@pytest.mark.benchmark(group="fig5")
def test_fig5_worked_example(benchmark, save_result):
    result = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    save_result("fig5_worked_example", result.render())
    assert result.baseline_units == pytest.approx(8.0)
    assert result.themis_units == pytest.approx(7.0)
    assert result.themis_orders == [(0, 1), (1, 0), (0, 1), (0, 1)]
    # Fig. 7 final loads: dim1 = 6.5 units, dim2 = 7 units.
    assert result.load_evolution[-1][0] == pytest.approx(6.5)
    assert result.load_evolution[-1][1] == pytest.approx(7.0)
