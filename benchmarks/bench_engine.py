"""Performance microbenches of the simulation substrate itself.

These are classic pytest-benchmark measurements (multiple rounds) of the
engine and executor hot paths — useful when extending the simulator, and a
regression guard for the repo's own performance.
"""

from __future__ import annotations

import pytest

from repro.collectives import CollectiveRequest, CollectiveType
from repro.core import SchedulerFactory, Splitter
from repro.sim import EventQueue, NetworkSimulator
from repro.topology import get_topology
from repro.units import MB


@pytest.mark.benchmark(group="engine")
def test_event_queue_throughput(benchmark):
    """Schedule + drain 10k events."""

    def run():
        engine = EventQueue()
        count = 0

        def tick():
            nonlocal count
            count += 1

        for i in range(10_000):
            engine.schedule(float(i), tick)
        engine.run()
        return count

    assert benchmark(run) == 10_000


@pytest.mark.benchmark(group="engine")
def test_collective_simulation_throughput(benchmark):
    """Full Themis+SCF simulation of a 64-chunk AR on a 3D topology."""
    topology = get_topology("3D-SW_SW_SW_hetero")

    def run():
        sim = NetworkSimulator(
            topology, SchedulerFactory("themis", splitter=Splitter(64))
        )
        sim.submit(CollectiveRequest(CollectiveType.ALL_REDUCE, 100 * MB))
        return sim.run()

    result = benchmark(run)
    assert len(result.records) == 64 * 6
