"""Many-tenant cluster scaling benchmark (the perf-tracking harness).

Sweeps N concurrent training jobs x cluster fairness policies on one shared
network and measures, per cell:

* wall-clock time of the simulation,
* events fired and events/second (the engine's useful throughput),
* peak pending-event count and final physical heap size (bounded heap is
  the point of event cancellation + compaction),
* cancelled events and compaction sweeps,
* simulated makespan / mean JCT (sanity: the *simulated* outcome must not
  depend on how fast we computed it).

``--compare-legacy`` additionally re-runs every cell on the pre-indexing
reference path (flat-list ready queues, no plan/consistency caches, no
event cancellation — ``ClusterConfig(optimized=False)``), reports the
speedup, and asserts the per-job JCTs are bit-identical — the determinism
property the optimization preserves.

Usage::

    PYTHONPATH=src python benchmarks/bench_scaling.py                # full matrix
    PYTHONPATH=src python benchmarks/bench_scaling.py --quick        # CI smoke
    PYTHONPATH=src python benchmarks/bench_scaling.py \
        --jobs 64 --policies weighted,ftf --compare-legacy           # headline
    PYTHONPATH=src python benchmarks/bench_scaling.py --json out.json

The JSON this emits (via ``run_all.py --json``) is the repo's tracked perf
trajectory: ``BENCH_scaling.json`` at the repo root is the baseline every
later PR compares against.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if True:  # allow running without PYTHONPATH=src
    _SRC = Path(__file__).resolve().parents[1] / "src"
    if str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro import api
from repro.cluster import ClusterConfig, ClusterSimulator, JobSpec
from repro.sim import FaultSchedule, JobFaultPolicy, LinkFault
from repro.topology import Topology, dimension, topology_to_dict
from repro.training import TrainingConfig
from repro.units import MB
from repro.workloads import Layer, Workload

DEFAULT_JOB_COUNTS = (8, 16, 32, 64)
DEFAULT_POLICIES = ("fifo", "weighted", "ftf", "preempt")
#: Arrivals in the open-loop throughput row (the bounded-memory headline:
#: a single spec-driven run sustaining 10k arrivals with K live jobs).
DEFAULT_OPEN_LOOP_ARRIVALS = 10_000
#: Job counts of the fluid fast-path regime (open-loop arrivals per run).
#: This is the backend's target envelope: runs two orders of magnitude
#: larger than the fairness matrix above.  ``--quick`` keeps only the
#: first entry, so the CI row stays a subset of the committed baseline.
DEFAULT_FLUID_JOB_COUNTS = (512, 1024, 2048, 4096)
#: Chunk count of the fluid-regime rows: large enough that the hybrid
#: fluidizes the 2D bench plans ((ndims-1) <= tolerance x chunks).
FLUID_CHUNKS = 64


def bench_topology() -> Topology:
    """A small 2D platform: contention, not topology, is under test."""
    return Topology(
        [
            dimension("sw", 4, 400.0, latency_ns=100),
            dimension("sw", 4, 200.0, latency_ns=500),
        ],
        name="bench-4x4",
    )


def _workload(layers: int, param_mb: float, name: str) -> Workload:
    return Workload(
        name=name,
        layers=[
            Layer(
                name=f"l{i}",
                fwd_flops=1e8,
                bwd_flops=2e8,
                param_bytes=param_mb * MB,
            )
            for i in range(layers)
        ],
        batch_per_npu=1,
    )


#: A fixed pool of distinct communication profiles; jobs share these
#: instances so the isolated-JCT cache collapses N jobs to 4 solo runs.
_WORKLOAD_POOL = [
    _workload(12, 2, "elephant"),  # many small buckets
    _workload(2, 16, "mouse"),     # few large buckets
    _workload(6, 6, "medium"),
    _workload(3, 10, "bursty"),
]


def make_jobs(n_jobs: int, iterations: int) -> list[JobSpec]:
    """N jobs cycling through the workload pool with staggered arrivals."""
    jobs = []
    for i in range(n_jobs):
        jobs.append(
            JobSpec(
                name=f"job{i:03d}",
                workload=_WORKLOAD_POOL[i % len(_WORKLOAD_POOL)],
                iterations=iterations,
                arrival_time=i * 2e-5,
                weight=1.0 + (i % 3),
                priority=i % 4,
            )
        )
    return jobs


def run_cell(
    n_jobs: int,
    policy: str,
    *,
    optimized: bool,
    iterations: int,
    chunks: int,
    isolated_cache: dict,
) -> dict:
    """Run one (job count, fairness policy) cell and collect metrics."""
    config = ClusterConfig(
        training=TrainingConfig(chunks_per_collective=chunks),
        isolated_baselines=False,
        fairness=policy,
        optimized=optimized,
    )
    jobs = make_jobs(n_jobs, iterations)
    sim = ClusterSimulator(
        bench_topology(), jobs, config, isolated_cache=isolated_cache
    )
    # Pre-warm the isolated-JCT cache outside the timed region: the FTF
    # policy computes isolated baselines in prepare(), which would otherwise
    # pollute the wall-time of its first cell.
    for spec in jobs:
        sim.isolated_time(spec)
    start = time.perf_counter()
    report = sim.run()
    wall = time.perf_counter() - start
    engine = sim.engine
    jcts = [job.jct for job in report.jobs]
    return {
        "jobs": n_jobs,
        "policy": policy,
        "optimized": optimized,
        "wall_seconds": wall,
        "events": engine.events_processed,
        "events_per_second": engine.events_processed / wall if wall > 0 else 0.0,
        "peak_pending_events": engine.peak_pending,
        "final_heap_size": engine.heap_size,
        "cancelled_events": engine.cancelled_events,
        "compactions": engine.compactions,
        "makespan": report.makespan,
        "mean_jct": sum(jcts) / len(jcts),
        "jcts": jcts,
    }


def run_open_loop(arrivals: int = DEFAULT_OPEN_LOOP_ARRIVALS) -> dict:
    """One spec-driven open-loop run: N arrivals, bounded live-job memory.

    Exercises the trace generator, admission control (K concurrency
    slots), slot recycling, and the outcome cap in one go; the row tracks
    generator+simulator throughput (arrivals/second of wall time) and the
    memory bounds (peak live jobs, retained payload rows) rather than a
    fairness matrix cell.  Lives under its own document key, so
    ``check_regression.py`` (which walks ``results``) ignores it.
    """
    spec = api.ClusterScenario(
        topology=topology_to_dict(bench_topology()),
        open_loop=api.OpenLoopTrace(
            rate=20_000.0,
            duration=None,
            max_jobs=arrivals,
            seed=3,
            mix={
                "elephant_fraction": 0.05,
                "elephant_layers": 2,
                "elephant_param_mb": 1.0,
                "mouse_layers": 1,
                "mouse_param_mb": 0.25,
                "max_iterations": 2,
            },
        ),
        max_concurrent=8,
        outcome_cap=100,
        isolated_baselines=False,
        chunks=1,
    )
    start = time.perf_counter()
    report = api.run(spec)
    wall = time.perf_counter() - start
    payload = report.payload
    row = {
        "arrivals": arrivals,
        "wall_seconds": wall,
        "arrivals_per_second": arrivals / wall if wall > 0 else 0.0,
        "events": report.events,
        "events_per_second": report.events / wall if wall > 0 else 0.0,
        "peak_live_jobs": payload["peak_live_jobs"],
        "max_concurrent": 8,
        "payload_job_rows": len(payload["jobs"]),
        "job_rows_omitted": payload["job_rows_omitted"],
        "makespan": report.makespan,
    }
    assert payload["peak_live_jobs"] <= 8, "admission cap violated"
    assert payload["total_jobs"] == arrivals
    print(
        f"open-loop {arrivals:6d} arrivals  wall={wall * 1000:8.1f}ms "
        f"arrivals/s={row['arrivals_per_second'] / 1000:6.1f}k "
        f"peak_live={row['peak_live_jobs']:2d} "
        f"rows_kept={row['payload_job_rows']}",
        flush=True,
    )
    return row


def _fluid_open_loop_cell(arrivals: int, backend: str) -> dict:
    """One open-loop cluster run at ``arrivals`` jobs under ``backend``."""
    spec = api.ClusterScenario(
        topology=topology_to_dict(bench_topology()),
        open_loop=api.OpenLoopTrace(
            rate=20_000.0,
            duration=None,
            max_jobs=arrivals,
            seed=7,
            mix={
                "elephant_fraction": 0.0,
                "mouse_layers": 1,
                "mouse_param_mb": 1.0,
                "max_iterations": 2,
            },
        ),
        max_concurrent=8,
        outcome_cap=100,
        isolated_baselines=False,
        chunks=FLUID_CHUNKS,
        backend=backend,
    )
    start = time.perf_counter()
    report = api.run(spec)
    wall = time.perf_counter() - start
    payload = report.payload
    engine = payload["engine"]
    assert payload["total_jobs"] == arrivals
    return {
        "jobs": arrivals,
        "backend": backend,
        "wall_seconds": wall,
        "events": engine["events"],
        "events_per_second": engine["events"] / wall if wall > 0 else 0.0,
        "peak_pending_events": engine["peak_pending_events"],
        "cancelled_events": engine["cancelled_events"],
        "compactions": engine["compactions"],
        "arrivals_per_second": arrivals / wall if wall > 0 else 0.0,
        "makespan": report.makespan,
        "mean_jct": payload["mean_jct"],
    }


def run_fluid_scaling(job_counts: tuple[int, ...]) -> dict:
    """The fluid fast-path regime: 512-4096-job open-loop runs.

    Each row is one open-loop cluster run under ``backend: "fluid"``; the
    smallest size is additionally re-run under ``analytical`` on the same
    trace to record the event-count ratio (the fast path's headline:
    events eliminated while rates are stable).  Counter fields are
    deterministic, so ``check_regression.py --counters-only`` gates these
    rows alongside the fairness matrix.
    """
    rows = []
    for arrivals in job_counts:
        row = _fluid_open_loop_cell(arrivals, "fluid")
        rows.append(row)
        print(
            f"fluid    {arrivals:5d} jobs  wall={row['wall_seconds'] * 1e3:8.1f}ms "
            f"events={row['events']:8d} "
            f"arrivals/s={row['arrivals_per_second'] / 1000:6.1f}k "
            f"mean_jct={row['mean_jct']:.6f}",
            flush=True,
        )
    ratio_jobs = job_counts[0]
    exact = _fluid_open_loop_cell(ratio_jobs, "analytical")
    fluid_row = rows[0]
    event_ratio = (
        exact["events"] / fluid_row["events"]
        if fluid_row["events"] > 0
        else 0.0
    )
    jct_ratio = (
        fluid_row["mean_jct"] / exact["mean_jct"]
        if exact["mean_jct"]
        else None
    )
    print(
        f"fluid-vs-exact {ratio_jobs:5d} jobs  "
        f"exact events={exact['events']:8d} fluid events={fluid_row['events']:8d} "
        f"({event_ratio:.1f}x fewer)  mean-JCT ratio="
        f"{jct_ratio if jct_ratio is None else round(jct_ratio, 4)}",
        flush=True,
    )
    return {
        "job_counts": list(job_counts),
        "chunks_per_collective": FLUID_CHUNKS,
        "rows": rows,
        "exact_reference": exact,
        "event_ratio": event_ratio,
        "mean_jct_ratio": jct_ratio,
    }


def run_degraded(n_jobs: int = 16) -> dict:
    """One faulted cluster run: link degradation + job crash/retry live.

    Tracks the wall-time cost of the fault machinery (capacity rescaling,
    crash/retry bookkeeping) on a contended matrix cell, plus the
    graceful-degradation outcome metrics.  Lives under its own document
    key, so ``check_regression.py`` (which walks ``results``) ignores it
    while the row still lands in the committed baseline for eyeballing.
    """
    link_faults = FaultSchedule(
        (
            LinkFault(dim_index=1, start=0.0, factor=0.5),
            LinkFault(dim_index=0, start=2e-4, factor=0.0, duration=5e-4),
        )
    )
    job_faults = JobFaultPolicy(
        crash_rate=200.0,
        max_retries=3,
        backoff_base=1e-4,
        checkpoint_iterations=1,
        seed=5,
    )
    config = ClusterConfig(
        training=TrainingConfig(chunks_per_collective=4),
        isolated_baselines=False,
        link_faults=link_faults,
        job_faults=job_faults,
    )
    jobs = make_jobs(n_jobs, iterations=2)
    sim = ClusterSimulator(bench_topology(), jobs, config)
    start = time.perf_counter()
    report = sim.run()
    wall = time.perf_counter() - start
    engine = sim.engine
    row = {
        "jobs": n_jobs,
        "wall_seconds": wall,
        "events": engine.events_processed,
        "events_per_second": engine.events_processed / wall if wall > 0 else 0.0,
        "makespan": report.makespan,
        "mean_jct": report.mean_jct,
        "failed_jobs": len(report.failed_jobs),
        "total_retries": report.total_retries,
        "lost_work_seconds": report.lost_work_seconds,
        "completion_rate": report.completion_rate,
    }
    assert report.completion_rate is not None
    assert len(report.finished_jobs) + len(report.failed_jobs) == n_jobs
    print(
        f"degraded {n_jobs:3d} jobs  wall={wall * 1000:8.1f}ms "
        f"ev/s={row['events_per_second'] / 1000:7.1f}k "
        f"retries={row['total_retries']:3d} failed={row['failed_jobs']:2d} "
        f"completion={row['completion_rate'] * 100:5.1f}%",
        flush=True,
    )
    return row


def run_backend_fidelity(n_jobs: int = 8) -> dict:
    """One contended cell at analytical vs packet fidelity.

    Tracks the packet backend's wall-time cost relative to the default
    analytical model on the same trace, plus the simulated-outcome
    divergence (the fidelity tax the docs quote).  Informational only:
    lives under its own document key, so ``check_regression.py`` (which
    walks ``results``) ignores it.
    """
    rows = {}
    for backend in ("analytical", "packet"):
        config = ClusterConfig(
            training=TrainingConfig(chunks_per_collective=8),
            isolated_baselines=False,
            backend=backend,
        )
        jobs = make_jobs(n_jobs, iterations=2)
        sim = ClusterSimulator(bench_topology(), jobs, config)
        start = time.perf_counter()
        report = sim.run()
        wall = time.perf_counter() - start
        engine = sim.engine
        rows[backend] = {
            "jobs": n_jobs,
            "wall_seconds": wall,
            "events": engine.events_processed,
            "events_per_second": (
                engine.events_processed / wall if wall > 0 else 0.0
            ),
            "makespan": report.makespan,
            "mean_jct": report.mean_jct,
        }
    assert rows["analytical"]["mean_jct"] is not None
    assert rows["packet"]["mean_jct"] is not None
    slowdown = (
        rows["packet"]["wall_seconds"] / rows["analytical"]["wall_seconds"]
        if rows["analytical"]["wall_seconds"] > 0
        else 0.0
    )
    divergence = rows["packet"]["mean_jct"] / rows["analytical"]["mean_jct"]
    print(
        f"backend_fidelity {n_jobs:3d} jobs  "
        f"analytical wall={rows['analytical']['wall_seconds'] * 1000:8.1f}ms "
        f"packet wall={rows['packet']['wall_seconds'] * 1000:8.1f}ms "
        f"({slowdown:.2f}x)  mean-JCT ratio={divergence:.3f}",
        flush=True,
    )
    return {
        "analytical": rows["analytical"],
        "packet": rows["packet"],
        "wall_slowdown": slowdown,
        "mean_jct_ratio": divergence,
    }


def run_matrix(
    job_counts: tuple[int, ...],
    policies: tuple[str, ...],
    *,
    iterations: int = 2,
    chunks: int = 8,
    compare_legacy: bool = False,
    open_loop_arrivals: "int | None" = DEFAULT_OPEN_LOOP_ARRIVALS,
    degraded_jobs: "int | None" = 16,
    backend_fidelity_jobs: "int | None" = 8,
    fluid_job_counts: "tuple[int, ...] | None" = DEFAULT_FLUID_JOB_COUNTS,
) -> dict:
    """Run the sweep; returns the JSON-ready result document."""
    isolated_cache: dict = {}
    cells = []
    for n_jobs in job_counts:
        for policy in policies:
            cell = run_cell(
                n_jobs,
                policy,
                optimized=True,
                iterations=iterations,
                chunks=chunks,
                isolated_cache=isolated_cache,
            )
            entry = {
                "jobs": n_jobs,
                "policy": policy,
                "optimized": {k: v for k, v in cell.items() if k != "jcts"},
                "legacy": None,
                "speedup": None,
            }
            if compare_legacy:
                legacy = run_cell(
                    n_jobs,
                    policy,
                    optimized=False,
                    iterations=iterations,
                    chunks=chunks,
                    isolated_cache=isolated_cache,
                )
                if legacy["jcts"] != cell["jcts"]:
                    raise AssertionError(
                        f"determinism violated: optimized and legacy JCTs "
                        f"differ for {n_jobs} jobs / {policy}"
                    )
                entry["legacy"] = {
                    k: v for k, v in legacy.items() if k != "jcts"
                }
                entry["speedup"] = legacy["wall_seconds"] / cell["wall_seconds"]
            cells.append(entry)
            _print_cell(entry)
    return {
        "benchmark": "scaling",
        "config": {
            "job_counts": list(job_counts),
            "policies": list(policies),
            "iterations": iterations,
            "chunks_per_collective": chunks,
            "topology": bench_topology().name,
            "compare_legacy": compare_legacy,
            "open_loop_arrivals": open_loop_arrivals,
            "degraded_jobs": degraded_jobs,
            "backend_fidelity_jobs": backend_fidelity_jobs,
            "fluid_job_counts": (
                list(fluid_job_counts) if fluid_job_counts else None
            ),
        },
        "results": cells,
        "open_loop": (
            run_open_loop(open_loop_arrivals)
            if open_loop_arrivals is not None
            else None
        ),
        "degraded": (
            run_degraded(degraded_jobs) if degraded_jobs is not None else None
        ),
        "backend_fidelity": (
            run_backend_fidelity(backend_fidelity_jobs)
            if backend_fidelity_jobs is not None
            else None
        ),
        "fluid_scaling": (
            run_fluid_scaling(fluid_job_counts) if fluid_job_counts else None
        ),
    }


def _print_cell(entry: dict) -> None:
    opt = entry["optimized"]
    line = (
        f"{entry['jobs']:3d} jobs  {entry['policy']:9s} "
        f"wall={opt['wall_seconds'] * 1000:8.1f}ms "
        f"ev/s={opt['events_per_second'] / 1000:7.1f}k "
        f"peak_heap={opt['peak_pending_events']:6d} "
        f"compactions={opt['compactions']:3d}"
    )
    if entry["legacy"] is not None:
        line += (
            f"  | legacy wall={entry['legacy']['wall_seconds'] * 1000:8.1f}ms "
            f"peak_heap={entry['legacy']['peak_pending_events']:6d} "
            f"speedup={entry['speedup']:.2f}x"
        )
    print(line, flush=True)


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs",
        default=",".join(str(n) for n in DEFAULT_JOB_COUNTS),
        help="comma-separated job counts (default: %(default)s)",
    )
    parser.add_argument(
        "--policies",
        default=",".join(DEFAULT_POLICIES),
        help="comma-separated fairness policies (default: %(default)s)",
    )
    parser.add_argument("--iterations", type=int, default=2)
    parser.add_argument("--chunks", type=int, default=8)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced matrix for CI smoke runs (8/16 jobs, all policies)",
    )
    parser.add_argument(
        "--compare-legacy",
        action="store_true",
        help="also run the pre-indexing reference path and report speedups",
    )
    parser.add_argument("--json", metavar="PATH", help="write results as JSON")
    parser.add_argument(
        "--open-loop-arrivals",
        type=int,
        default=DEFAULT_OPEN_LOOP_ARRIVALS,
        help="arrivals in the open-loop throughput row; 0 skips it "
             "(default: %(default)s; --quick reduces it to 2000)",
    )
    parser.add_argument(
        "--degraded-jobs",
        type=int,
        default=16,
        help="job count of the faulted (link-degraded + crash/retry) row; "
             "0 skips it (default: %(default)s; --quick reduces it to 8)",
    )
    parser.add_argument(
        "--backend-fidelity-jobs",
        type=int,
        default=8,
        help="job count of the analytical-vs-packet fidelity row; 0 skips "
             "it (default: %(default)s)",
    )
    parser.add_argument(
        "--fluid-jobs",
        default=",".join(str(n) for n in DEFAULT_FLUID_JOB_COUNTS),
        help="comma-separated job counts of the fluid fast-path regime; "
             "empty string skips it (default: %(default)s; --quick keeps "
             "only the first entry so CI rows stay a baseline subset)",
    )
    args = parser.parse_args(argv)

    job_counts = tuple(int(n) for n in args.jobs.split(","))
    policies = tuple(p.strip() for p in args.policies.split(","))
    open_loop_arrivals = args.open_loop_arrivals or None
    degraded_jobs = args.degraded_jobs or None
    backend_fidelity_jobs = args.backend_fidelity_jobs or None
    fluid_job_counts = (
        tuple(int(n) for n in args.fluid_jobs.split(","))
        if args.fluid_jobs
        else None
    )
    if args.quick:
        job_counts = tuple(n for n in job_counts if n <= 16) or (8, 16)
        if open_loop_arrivals is not None:
            open_loop_arrivals = min(open_loop_arrivals, 2000)
        if degraded_jobs is not None:
            degraded_jobs = min(degraded_jobs, 8)
        if backend_fidelity_jobs is not None:
            backend_fidelity_jobs = min(backend_fidelity_jobs, 4)
        if fluid_job_counts:
            fluid_job_counts = fluid_job_counts[:1]
    document = run_matrix(
        job_counts,
        policies,
        iterations=args.iterations,
        chunks=args.chunks,
        compare_legacy=args.compare_legacy,
        open_loop_arrivals=open_loop_arrivals,
        degraded_jobs=degraded_jobs,
        backend_fidelity_jobs=backend_fidelity_jobs,
        fluid_job_counts=fluid_job_counts,
    )
    if args.json:
        Path(args.json).write_text(json.dumps(document, indent=2) + "\n")
        print(f"[written to {args.json}]")
    return document


if __name__ == "__main__":
    main()
