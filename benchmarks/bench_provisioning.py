"""Bench: Sec. 6.3 — BW-distribution scenarios for system designers.

Sweeps the dim2:dim1 bandwidth ratio of a 16x8 platform through the
under-provisioned / just-enough / over-provisioned regimes and verifies
each regime's defining property.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    ProvisioningVerdict,
    classify_pair,
    format_table,
    max_drivable_utilization,
    pct,
)
from repro.collectives import CollectiveRequest, CollectiveType
from repro.core import SchedulerFactory
from repro.sim import NetworkSimulator, bw_utilization
from repro.topology import Topology, dimension
from repro.units import GB

RATIOS = (0.02, 0.0625, 0.25, 1.0)


def build(ratio: float) -> Topology:
    return Topology(
        [
            dimension("sw", 16, 800.0, latency_ns=700),
            dimension("sw", 8, 800.0 * ratio, latency_ns=1700),
        ],
        name=f"16x8@{ratio:g}",
    )


def run_sweep():
    rows = []
    for ratio in RATIOS:
        topology = build(ratio)
        verdict = classify_pair(topology, 0, 1)
        drivable = max_drivable_utilization(topology)
        measured = {}
        for kind, policy in (("baseline", "FIFO"), ("themis", "SCF")):
            sim = NetworkSimulator(topology, SchedulerFactory(kind), policy=policy)
            sim.submit(CollectiveRequest(CollectiveType.ALL_REDUCE, GB))
            measured[kind] = bw_utilization(sim.run()).average
        rows.append((ratio, verdict.scenario, drivable,
                     measured["baseline"], measured["themis"]))
    return rows


@pytest.mark.benchmark(group="provisioning")
def test_provisioning_scenarios(benchmark, save_result):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = format_table(
        ["dim2/dim1 BW", "scenario", "LP bound", "baseline", "Themis+SCF"],
        [(f"{r[0]:g}", r[1].value, r[2], r[3], r[4]) for r in rows],
        [str, str, pct, pct, pct],
    )
    save_result("provisioning_scenarios", "Sec 6.3: BW distribution sweep\n" + table)

    by_ratio = {r[0]: r for r in rows}
    # Under-provisioned (dim2 starved): even the fluid bound is capped.
    assert by_ratio[0.02][1] is ProvisioningVerdict.UNDER_PROVISIONED
    assert by_ratio[0.02][2] < 0.9
    # Just enough: baseline alone is near-perfect (Themis's greedy reroute
    # granularity can cost a few points here; see EXPERIMENTS.md).
    assert by_ratio[0.0625][1] is ProvisioningVerdict.JUST_ENOUGH
    assert by_ratio[0.0625][3] > 0.9
    assert by_ratio[0.0625][4] > 0.8
    # Over-provisioned: baseline strands BW, Themis recovers most of it —
    # the more excess BW, the bigger the recovery.
    gains = {}
    for ratio in (0.25, 1.0):
        _, scenario, drivable, baseline, themis = by_ratio[ratio]
        assert scenario is ProvisioningVerdict.OVER_PROVISIONED
        assert drivable == pytest.approx(1.0, abs=1e-6)
        assert themis > baseline + 0.05
        assert themis > 0.9
        gains[ratio] = themis - baseline
    assert gains[1.0] > gains[0.25]
