"""Bench: extensions — in-network offload (Sec. 4.5) and the overshoot guard.

The paper argues (Sec. 4.5) that switch collective offload reduces traffic
and fixed delay but does not remove the load-imbalance problem, so Themis
keeps its benefit.  The overshoot guard is our beyond-paper fix for the
greedy's just-enough-provisioning corner (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table, pct, ratio
from repro.collectives import CollectiveRequest, CollectiveType, offload_overrides
from repro.core import SchedulerFactory
from repro.sim import NetworkSimulator, bw_utilization
from repro.topology import Topology, dimension, get_topology
from repro.units import GB


def _run(topology, kind, policy, overrides=None, guard=False):
    sim = NetworkSimulator(
        topology,
        SchedulerFactory(kind, overshoot_guard=guard),
        policy=policy,
        algorithm_overrides=overrides,
    )
    sim.submit(CollectiveRequest(CollectiveType.ALL_REDUCE, GB))
    result = sim.run()
    return result.makespan, bw_utilization(result).average


@pytest.mark.benchmark(group="ext-offload")
def test_offload_preserves_themis_benefit(benchmark, save_result):
    def sweep():
        rows = []
        for name in ("3D-SW_SW_SW_homo", "2D-SW_SW"):
            topology = get_topology(name)
            overrides = offload_overrides(topology)
            base_plain, _ = _run(topology, "baseline", "FIFO")
            base_off, base_off_util = _run(
                topology, "baseline", "FIFO", overrides
            )
            themis_off, themis_off_util = _run(
                topology, "themis", "SCF", overrides
            )
            rows.append(
                (
                    name,
                    base_plain,
                    base_off,
                    themis_off,
                    base_off / themis_off,
                    themis_off_util,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result(
        "ext_offload",
        "In-network offload (Sec 4.5): 1GB AR, SwitchOffload on SW dims\n"
        + format_table(
            ["topology", "base", "base+offload", "Themis+offload",
             "Themis speedup", "Themis util"],
            [
                (n, f"{a * 1e3:.2f}ms", f"{b * 1e3:.2f}ms", f"{c * 1e3:.2f}ms",
                 s, u)
                for n, a, b, c, s, u in rows
            ],
            [str, str, str, str, ratio, pct],
        ),
    )
    for name, base_plain, base_off, themis_off, speedup, util in rows:
        assert base_off < base_plain, f"{name}: offload must cut baseline time"
        assert speedup > 1.3, f"{name}: Themis benefit persists under offload"


@pytest.mark.benchmark(group="ext-guard")
def test_overshoot_guard_fixes_just_enough(benchmark, save_result):
    just_enough = Topology(
        [
            dimension("sw", 16, 800.0, latency_ns=700),
            dimension("sw", 8, 50.0, latency_ns=1700),
        ],
        name="16x8-just-enough",
    )

    def sweep():
        rows = []
        for label, kind, guard in (
            ("Baseline", "baseline", False),
            ("Themis", "themis", False),
            ("Themis+guard", "themis", True),
        ):
            _, util = _run(just_enough, kind, "SCF" if kind == "themis" else "FIFO",
                           guard=guard)
            rows.append((label, util))
        # Sanity on an over-provisioned system: the guard stays neutral.
        homo = get_topology("3D-SW_SW_SW_homo")
        for label, guard in (("Themis (homo)", False), ("Themis+guard (homo)", True)):
            _, util = _run(homo, "themis", "SCF", guard=guard)
            rows.append((label, util))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result(
        "ext_overshoot_guard",
        "Overshoot guard (beyond-paper): 1GB AR utilization\n"
        + format_table(["config", "util"], rows, [str, pct]),
    )
    utils = dict(rows)
    assert utils["Themis+guard"] > utils["Themis"] - 1e-9
    assert utils["Themis+guard"] > 0.93
    assert utils["Themis+guard (homo)"] > utils["Themis (homo)"] - 0.02


@pytest.mark.benchmark(group="ext-goodput")
def test_goodput_packet_model(benchmark, save_result):
    """Sec. 6.1's goodput argument, quantified: with an InfiniBand-like
    packet model (4 KiB MTU, 66 B headers), 64 chunks cost well under the
    paper's 0.5% wire overhead versus 1 chunk for a 100 MB All-Reduce,
    while extreme chunking of small collectives hits a goodput cliff."""
    from repro.collectives import RingAlgorithm, stage_plan
    from repro.core import Splitter
    from repro.units import KB, MB

    mtu, header = 4 * KB, 66.0
    topo = get_topology("2D-SW_SW").with_packet_model(mtu, header)

    def wire_overhead(chunks: int) -> float:
        algo = RingAlgorithm()
        payload_total, wire_total = 0.0, 0.0
        for size in Splitter(chunks).split(100 * MB):
            for stage in stage_plan(
                CollectiveType.ALL_REDUCE, size, (0, 1), topo
            ):
                dim = topo.dims[stage.dim_index]
                payload = algo.bytes_per_npu(stage.op, stage.stage_size, dim.size)
                payload_total += payload
                wire_total += dim.wire_bytes(payload, steps=dim.size - 1)
        return wire_total / payload_total - 1.0

    def sweep():
        return [(chunks, wire_overhead(chunks)) for chunks in (1, 64, 512, 4096)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result(
        "ext_goodput",
        "Packet/goodput model (100MB AR on 2D-SW_SW, 4KiB MTU, 66B headers)\n"
        + format_table(
            ["chunks", "wire overhead vs payload"],
            [(c, o) for c, o in rows],
            [str, pct],
        ),
    )
    overhead = dict(rows)
    assert overhead[64] - overhead[1] < 0.005, "paper: <0.5% at 64 chunks"
    assert overhead[4096] > overhead[64], "finer chunking raises overhead"
