"""Shared helpers for the benchmark suite.

Every bench regenerates one paper table/figure.  Rendered result tables are
written to ``benchmarks/results/`` so they can be inspected after a run
(pytest captures stdout), and also printed for ``pytest -s`` runs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Write a rendered experiment table under benchmarks/results/."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
