"""Bench: Fig. 12 — end-to-end training iteration breakdowns.

Four workloads x six topologies x {Baseline, Themis+SCF, Ideal}.  Paper
mean speedups: ResNet-152 1.49x, GNMT 1.30x, DLRM 1.30x, Transformer-1T
1.25x, with the Ideal only slightly higher (1.54/1.32/1.33/1.26).

Our substrate reproduces the *shape*: Themis beats the baseline on every
workload, sits close to its Ideal ceiling, and exposed communication —
not compute — is where the time goes.  Quick mode (8-layer Transformer
slice, 1 iteration) keeps the bench tractable; run_fig12(quick=False) for
the full-depth version.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_fig12


@pytest.mark.benchmark(group="fig12")
def test_fig12_training_breakdown(benchmark, save_result):
    result = benchmark.pedantic(run_fig12, kwargs={"quick": True},
                                rounds=1, iterations=1)
    save_result("fig12_training_breakdown", result.render())

    for workload in result.workload_names():
        themis = result.mean_speedup(workload, "Themis+SCF")
        ideal = result.mean_speedup(workload, "Ideal")
        assert themis > 1.05, f"{workload}: Themis {themis:.2f}x over baseline"
        assert ideal >= themis - 0.02, f"{workload}: Ideal must bound Themis"
        # Themis captures most of the Ideal's headroom (paper: ~96% of it).
        assert themis > 1.0 + 0.6 * (ideal - 1.0), (
            f"{workload}: Themis {themis:.2f}x vs Ideal {ideal:.2f}x"
        )

    # Exposed comm must dominate compute's savings story for at least the
    # communication-heavy workloads (DLRM, Transformer).
    for workload in ("DLRM", "Transformer-1T"):
        report = result.report(workload, "3D-SW_SW_SW_homo", "Baseline")
        assert report.total.exposed_comm > 0.2 * report.total_time
