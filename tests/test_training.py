"""Training-loop simulator: breakdowns, overlap semantics, DP styles."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.topology import Topology, dimension, get_topology
from repro.training import (
    IterationBreakdown,
    TrainingConfig,
    TrainingSimulator,
    simulate_training,
)
from repro.units import MB
from repro.workloads import ComputeModel, Layer, Workload, dlrm, transformer_1t


def tiny_topology() -> Topology:
    return Topology(
        [
            dimension("sw", 4, 400.0, latency_ns=100),
            dimension("sw", 4, 200.0, latency_ns=500),
        ],
        name="tiny-4x4",
    )


def tiny_workload(param_mb: float = 16.0, layers: int = 4) -> Workload:
    layer_list = [
        Layer(
            name=f"l{i}",
            fwd_flops=1e9,
            bwd_flops=2e9,
            param_bytes=param_mb * MB / layers,
        )
        for i in range(layers)
    ]
    return Workload(name="tiny", layers=layer_list, batch_per_npu=1)


class TestIterationBreakdown:
    def test_total_is_sum_of_parts(self):
        b = IterationBreakdown(1.0, 2.0, 0.5, 0.25)
        assert b.total == pytest.approx(3.75)
        assert b.exposed_comm == pytest.approx(0.75)
        assert b.compute == pytest.approx(3.0)

    def test_addition(self):
        a = IterationBreakdown(1.0, 1.0, 1.0, 1.0)
        b = IterationBreakdown(0.5, 0.5, 0.5, 0.5)
        combined = a + b
        assert combined.total == pytest.approx(6.0)

    def test_as_row_keys(self):
        row = IterationBreakdown().as_row()
        assert set(row) == {"fwd_compute", "bwd_compute", "exposed_mp",
                            "exposed_dp", "total"}


class TestTrainingConfig:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            TrainingConfig(iterations=0)
        with pytest.raises(WorkloadError):
            TrainingConfig(dp_bucket_bytes=-1.0)


class TestBasicInvariants:
    def test_total_equals_parts(self):
        report = simulate_training(tiny_workload(), tiny_topology(), "themis")
        breakdown = report.total
        # Walltime identity: only compute and waits advance the clock.
        assert breakdown.total == pytest.approx(
            breakdown.fwd_compute
            + breakdown.bwd_compute
            + breakdown.exposed_mp
            + breakdown.exposed_dp
        )

    def test_compute_matches_roofline(self):
        workload = tiny_workload()
        model = ComputeModel()
        expected_fwd = sum(
            model.time_for(l.fwd_flops, l.fwd_mem_bytes) for l in workload.layers
        )
        report = simulate_training(workload, tiny_topology(), "themis")
        assert report.total.fwd_compute == pytest.approx(expected_fwd)

    def test_multiple_iterations_accumulate(self):
        config = TrainingConfig(iterations=3)
        report = simulate_training(
            tiny_workload(), tiny_topology(), "themis", config
        )
        assert len(report.iterations) == 3
        assert report.total_time == pytest.approx(
            sum(i.total for i in report.iterations)
        )

    def test_iterations_are_identical(self):
        """Same workload, same network state at start => same breakdown."""
        config = TrainingConfig(iterations=2)
        report = simulate_training(
            tiny_workload(), tiny_topology(), "baseline", config
        )
        first, second = report.iterations
        assert first.total == pytest.approx(second.total)

    def test_collective_count(self):
        report = simulate_training(tiny_workload(param_mb=16, layers=4),
                                   tiny_topology(), "themis")
        # Per-layer issuance: one DP All-Reduce per layer.
        assert report.collective_count == 4

    def test_utilization_reported_for_real_network(self):
        report = simulate_training(tiny_workload(), tiny_topology(), "themis")
        assert report.avg_bw_utilization is not None
        assert 0 < report.avg_bw_utilization <= 1

    def test_ideal_has_no_utilization(self):
        report = simulate_training(
            tiny_workload(), tiny_topology(), ideal_network=True
        )
        assert report.avg_bw_utilization is None
        assert report.scheduler_name == "Ideal"


class TestOverlapSemantics:
    def test_overlap_reduces_exposed_dp(self):
        workload = tiny_workload(param_mb=256)
        sync = simulate_training(
            workload, tiny_topology(), "themis",
            TrainingConfig(overlap_dp=False),
        )
        overlapped = simulate_training(
            workload, tiny_topology(), "themis",
            TrainingConfig(overlap_dp=True),
        )
        assert overlapped.total.exposed_dp < sync.total.exposed_dp
        assert overlapped.total_time <= sync.total_time

    def test_sync_mode_exposes_full_comm(self):
        """With sync DP, compute and comm never overlap: total time is
        compute plus the full network makespan of the gradient ARs."""
        workload = tiny_workload(param_mb=64)
        report = simulate_training(
            workload, tiny_topology(), "baseline",
            TrainingConfig(overlap_dp=False),
        )
        assert report.total.exposed_dp > 0

    def test_bucketing_reduces_collective_count(self):
        workload = tiny_workload(param_mb=64, layers=8)
        per_layer = simulate_training(
            workload, tiny_topology(), "themis",
            TrainingConfig(dp_bucket_bytes=None),
        )
        bucketed = simulate_training(
            workload, tiny_topology(), "themis",
            TrainingConfig(dp_bucket_bytes=32 * MB),
        )
        assert bucketed.collective_count < per_layer.collective_count


class TestZero2:
    def test_zero2_issues_rs_and_ag(self):
        layer = Layer(name="l0", fwd_flops=1e9, bwd_flops=2e9,
                      param_bytes=32 * MB)
        workload = Workload(
            name="z2", layers=[layer], batch_per_npu=1, dp_style="zero2"
        )
        sim = TrainingSimulator(workload, tiny_topology(), scheduler="themis")
        report = sim.run()
        # One RS during bwd + one AG at the end.
        assert report.collective_count == 2
        assert report.total.exposed_dp > 0

    def test_zero2_ag_size_is_sharded(self):
        layer = Layer(name="l0", fwd_flops=1e9, bwd_flops=2e9,
                      param_bytes=32 * MB)
        workload = Workload(
            name="z2", layers=[layer], batch_per_npu=1, dp_style="zero2"
        )
        sim = TrainingSimulator(workload, tiny_topology(), scheduler="themis")
        sim.run()
        requests = [c.request for c in sim.network._results]
        ag = [r for r in requests if r.ctype.value == "AllGather"]
        assert len(ag) == 1
        # 16-way DP on 4x4 => AG resident size is bucket / 16.
        assert ag[0].size == pytest.approx(32 * MB / 16)


class TestModelParallelWorkloads:
    def test_transformer_mp_exposed(self):
        topology = get_topology("3D-SW_SW_SW_homo")
        workload = transformer_1t(num_layers=2)
        report = simulate_training(workload, topology, "themis")
        assert report.total.exposed_mp > 0
        # Blocking activation ARs: 2 sub-layers x 2 passes x 2 layers + head.
        assert report.total.exposed_mp > report.total.exposed_dp * 0.1

    def test_dlrm_a2a_overlap(self):
        """DLRM's embedding exchange overlaps the bottom MLP: exposed MP is
        strictly less than the raw A2A duration."""
        topology = get_topology("3D-SW_SW_SW_homo")
        report = simulate_training(dlrm(), topology, "themis")
        assert report.total.exposed_mp >= 0
        # Both A2A waits resolved; nothing leaks across iterations.
        assert report.collective_count > 2

    def test_themis_not_slower_than_baseline_e2e(self):
        topology = get_topology("3D-SW_SW_SW_homo")
        workload = transformer_1t(num_layers=2)
        baseline = simulate_training(workload, topology, "baseline")
        themis = simulate_training(workload, topology, "themis")
        assert themis.total_time <= baseline.total_time * 1.01

    def test_ideal_bounds_real_schedulers(self):
        topology = get_topology("3D-SW_SW_SW_hetero")
        workload = transformer_1t(num_layers=2)
        config = TrainingConfig(overlap_dp=False)
        ideal = simulate_training(
            workload, topology, config=config, ideal_network=True
        )
        themis = simulate_training(workload, topology, "themis", config)
        assert ideal.total_time <= themis.total_time * 1.001


class TestReportHelpers:
    def test_speedup_over(self):
        a = simulate_training(tiny_workload(), tiny_topology(), "baseline")
        b = simulate_training(tiny_workload(), tiny_topology(), "themis")
        assert b.speedup_over(a) == pytest.approx(a.total_time / b.total_time)

    def test_describe_mentions_names(self):
        report = simulate_training(tiny_workload(), tiny_topology(), "themis")
        text = report.describe()
        assert "tiny" in text and "Themis" in text
