"""Ideal estimators (Table 3 / LP fluid bound) and schedule consistency."""

from __future__ import annotations

import pytest

from repro.collectives import CollectiveRequest, CollectiveType
from repro.core import (
    IdealEstimator,
    LpIdealEstimator,
    SchedulerFactory,
    Splitter,
    ThemisScheduler,
    achievable_utilization,
    presimulate_intra_dim_orders,
    verify_intra_dim_consistency,
)
from repro.errors import ScheduleError
from repro.sim import FusionConfig, NetworkSimulator
from repro.topology import Topology, dimension, get_topology
from repro.units import MB, GB


class TestIdealEstimator:
    def test_fig5_ideal_is_20_over_3_units(self, fig5_topology):
        """Fluid balance of the Fig. 5 example: 6.67 units for 256 MB."""
        unit = 48 * MB / fig5_topology.dims[0].bandwidth
        ideal = IdealEstimator().collective_time(
            CollectiveType.ALL_REDUCE, 256 * MB, fig5_topology
        )
        assert ideal / unit == pytest.approx(20.0 / 3.0)

    def test_scales_linearly_with_size(self, homo_3d):
        est = IdealEstimator()
        t1 = est.collective_time(CollectiveType.ALL_REDUCE, 100 * MB, homo_3d)
        t2 = est.collective_time(CollectiveType.ALL_REDUCE, 200 * MB, homo_3d)
        assert t2 == pytest.approx(2 * t1)

    def test_rs_is_half_of_ar(self, homo_3d):
        est = IdealEstimator()
        rs = est.collective_time(CollectiveType.REDUCE_SCATTER, 100 * MB, homo_3d)
        ar = est.collective_time(CollectiveType.ALL_REDUCE, 100 * MB, homo_3d)
        assert ar == pytest.approx(2 * rs)


class TestLpIdeal:
    def test_matches_simple_ideal_when_balanced(self, fig5_topology):
        """Fig. 5's 2:1 BW split is over-provisioned: LP meets the Ideal."""
        ideal = IdealEstimator().collective_time(
            CollectiveType.ALL_REDUCE, 256 * MB, fig5_topology
        )
        fluid = LpIdealEstimator().collective_time(
            CollectiveType.ALL_REDUCE, 256 * MB, fig5_topology
        )
        assert fluid == pytest.approx(ideal, rel=1e-6)

    def test_underprovisioned_gap(self):
        """Sec. 6.3: BW(dim1) > P1 x BW(dim2) cannot be fully driven."""
        topo = Topology(
            [
                dimension("ring", 4, 1000.0, latency_ns=0),
                dimension("ring", 4, 10.0, latency_ns=0),  # 1000 > 4 x 10
            ],
            name="under",
        )
        ideal = IdealEstimator().collective_time(
            CollectiveType.ALL_REDUCE, GB, topo
        )
        fluid = LpIdealEstimator().collective_time(CollectiveType.ALL_REDUCE, GB, topo)
        assert fluid > ideal * 1.05

    def test_solution_weights_sum_to_size(self, homo_3d):
        solution = LpIdealEstimator().solve(
            CollectiveType.ALL_REDUCE, 100 * MB, homo_3d
        )
        assert sum(solution.order_weights.values()) == pytest.approx(100 * MB, rel=1e-6)

    def test_bottleneck_dims_nonempty(self, homo_3d):
        solution = LpIdealEstimator().solve(
            CollectiveType.ALL_REDUCE, 100 * MB, homo_3d
        )
        assert solution.bottleneck_dims

    def test_fluid_never_below_ideal(self):
        est_i, est_lp = IdealEstimator(), LpIdealEstimator()
        for name in ("2D-SW_SW", "3D-SW_SW_SW_hetero", "4D-Ring_FC_Ring_SW"):
            topo = get_topology(name)
            ideal = est_i.collective_time(CollectiveType.ALL_REDUCE, GB, topo)
            fluid = est_lp.collective_time(CollectiveType.ALL_REDUCE, GB, topo)
            assert fluid >= ideal * (1 - 1e-9), name

    def test_simulation_never_beats_fluid(self, homo_3d):
        fluid = LpIdealEstimator().collective_time(
            CollectiveType.ALL_REDUCE, GB, homo_3d
        )
        sim = NetworkSimulator(
            homo_3d, SchedulerFactory("themis"), policy="SCF"
        )
        sim.submit(CollectiveRequest(CollectiveType.ALL_REDUCE, GB))
        result = sim.run()
        assert result.makespan >= fluid * (1 - 1e-9)


class TestAchievableUtilization:
    def test_perfect_for_overprovisioned(self, fig5_topology):
        util = achievable_utilization(CollectiveType.ALL_REDUCE, fig5_topology)
        assert util == pytest.approx(1.0, abs=1e-6)

    def test_below_one_for_underprovisioned(self):
        topo = Topology(
            [
                dimension("ring", 4, 1000.0, latency_ns=0),
                dimension("ring", 4, 10.0, latency_ns=0),
            ],
        )
        util = achievable_utilization(CollectiveType.ALL_REDUCE, topo)
        assert util < 0.95

    def test_paper_topologies_nearly_fully_drivable(self):
        """All Table 2 systems are over- or just-enough provisioned."""
        for name in (
            "2D-SW_SW",
            "3D-SW_SW_SW_homo",
            "3D-SW_SW_SW_hetero",
            "4D-Ring_SW_SW_SW",
        ):
            topo = get_topology(name)
            util = achievable_utilization(CollectiveType.ALL_REDUCE, topo)
            assert util > 0.99, name


class TestScheduleConsistency:
    def _plan(self, topology, chunks=8):
        request = CollectiveRequest(CollectiveType.ALL_REDUCE, 64 * MB)
        return ThemisScheduler(Splitter(chunks)).plan(request, topology)

    def test_presimulation_is_deterministic(self, homo_3d):
        plan = self._plan(homo_3d)
        orders = [
            presimulate_intra_dim_orders(plan, homo_3d, policy="SCF")
            for _ in range(3)
        ]
        assert verify_intra_dim_consistency(orders)

    def test_verify_rejects_empty(self):
        with pytest.raises(ScheduleError):
            verify_intra_dim_consistency([])

    def test_verify_detects_divergence(self, homo_3d):
        plan = self._plan(homo_3d)
        orders = presimulate_intra_dim_orders(plan, homo_3d)
        corrupted = {k: list(reversed(v)) for k, v in orders.items()}
        assert not verify_intra_dim_consistency([orders, corrupted])

    def test_orders_cover_every_op(self, homo_3d):
        plan = self._plan(homo_3d, chunks=4)
        orders = presimulate_intra_dim_orders(plan, homo_3d)
        total = sum(len(keys) for keys in orders.values())
        assert total == plan.total_ops

    def test_enforced_execution_matches_free_execution(self, homo_3d):
        """Enforcing the pre-simulated order must not deadlock or slow down."""

        def run(enforce):
            sim = NetworkSimulator(
                homo_3d,
                SchedulerFactory("themis", splitter=Splitter(8)),
                policy="SCF",
                enforce_consistency=enforce,
            )
            sim.submit(CollectiveRequest(CollectiveType.ALL_REDUCE, 64 * MB))
            return sim.run()

        free = run(False)
        enforced = run(True)
        assert enforced.makespan == pytest.approx(free.makespan)

    def test_enforced_execution_fig5(self, fig5_topology):
        sim = NetworkSimulator(
            fig5_topology,
            SchedulerFactory("themis", splitter=Splitter(4)),
            policy="SCF",
            fusion=FusionConfig(enabled=False),
            enforce_consistency=True,
        )
        sim.submit(CollectiveRequest(CollectiveType.ALL_REDUCE, 256 * MB))
        result = sim.run()
        unit = 48 * MB / fig5_topology.dims[0].bandwidth
        assert result.makespan / unit == pytest.approx(7.0)
