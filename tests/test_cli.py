"""CLI smoke tests: every subcommand runs and prints sane output."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_collective_defaults(self):
        args = build_parser().parse_args(["collective"])
        assert args.topology == "3D-SW_SW_SW_homo"
        assert args.size == "1GB"
        assert args.chunks == 64


class TestCommands:
    def test_topologies(self, capsys):
        assert main(["topologies"]) == 0
        out = capsys.readouterr().out
        assert "2D-SW_SW" in out and "4D-Ring_FC_Ring_SW" in out

    def test_collective(self, capsys):
        code = main(
            ["collective", "--topology", "3D-SW_SW_SW_homo",
             "--size", "64MB", "--chunks", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Baseline" in out and "Themis+SCF" in out

    def test_collective_rs(self, capsys):
        assert main(
            ["collective", "--size", "32MB", "--type", "rs", "--chunks", "4"]
        ) == 0
        assert "ReduceScatter" in capsys.readouterr().out

    def test_collective_bad_topology(self, capsys):
        assert main(["collective", "--topology", "9D-magic"]) == 1
        assert "error" in capsys.readouterr().err

    def test_train(self, capsys):
        code = main(
            ["train", "--workload", "dlrm", "--topology", "2D-SW_SW",
             "--iterations", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "DLRM" in out and "Ideal" in out

    def test_cluster(self, capsys):
        code = main(
            ["cluster", "--jobs", "2", "--workloads", "dlrm",
             "--interarrival-ms", "1.0", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Baseline" in out and "Themis" in out
        assert "slowdown" in out and "makespan" in out

    def test_cluster_bad_workload(self, capsys):
        assert main(["cluster", "--workloads", "not-a-model"]) == 1
        assert "error" in capsys.readouterr().err

    def test_cluster_fairness(self, capsys):
        """--fairness switches to the skewed-trace policy comparison."""
        code = main(["cluster", "--fairness", "fifo", "--topology", "2D-SW_SW"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fairness comparison" in out
        assert "max rho" in out and "Jain idx" in out
        assert "elephant" in out and "mouse" in out and "urgent" in out

    def test_cluster_fairness_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "--fairness", "karma"])

    def test_cluster_zero_jobs_names_the_flag(self, capsys):
        assert main(["cluster", "--jobs", "0"]) == 1
        assert "--jobs" in capsys.readouterr().err

    def test_cluster_bad_interarrival_names_the_flag(self, capsys):
        assert main(["cluster", "--interarrival-ms", "-2"]) == 1
        assert "--interarrival-ms" in capsys.readouterr().err

    def test_cluster_zero_iterations_names_the_flag(self, capsys):
        assert main(["cluster", "--iterations", "0"]) == 1
        assert "--iterations" in capsys.readouterr().err

    def test_provisioning(self, capsys):
        assert main(["provisioning", "--topology", "3D-SW_SW_SW_hetero"]) == 0
        out = capsys.readouterr().out
        assert "max drivable utilization" in out

    def test_fig5(self, capsys):
        assert main(["fig", "5"]) == 0
        assert "paper: 8" in capsys.readouterr().out

    def test_fig_unknown(self, capsys):
        assert main(["fig", "99"]) == 2
        assert "unknown figure" in capsys.readouterr().err
