"""CLI smoke tests: every subcommand runs and prints sane output."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_collective_defaults(self):
        args = build_parser().parse_args(["collective"])
        assert args.topology == "3D-SW_SW_SW_homo"
        assert args.size == "1GB"
        assert args.chunks == 64


class TestCommands:
    def test_topologies(self, capsys):
        assert main(["topologies"]) == 0
        out = capsys.readouterr().out
        assert "2D-SW_SW" in out and "4D-Ring_FC_Ring_SW" in out

    def test_collective(self, capsys):
        code = main(
            ["collective", "--topology", "3D-SW_SW_SW_homo",
             "--size", "64MB", "--chunks", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Baseline" in out and "Themis+SCF" in out

    def test_collective_rs(self, capsys):
        assert main(
            ["collective", "--size", "32MB", "--type", "rs", "--chunks", "4"]
        ) == 0
        assert "ReduceScatter" in capsys.readouterr().out

    def test_collective_bad_topology(self, capsys):
        assert main(["collective", "--topology", "9D-magic"]) == 1
        assert "error" in capsys.readouterr().err

    def test_train(self, capsys):
        code = main(
            ["train", "--workload", "dlrm", "--topology", "2D-SW_SW",
             "--iterations", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "DLRM" in out and "Ideal" in out

    def test_cluster(self, capsys):
        code = main(
            ["cluster", "--jobs", "2", "--workloads", "dlrm",
             "--interarrival-ms", "1.0", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Baseline" in out and "Themis" in out
        assert "slowdown" in out and "makespan" in out

    def test_cluster_bad_workload(self, capsys):
        assert main(["cluster", "--workloads", "not-a-model"]) == 1
        assert "error" in capsys.readouterr().err

    def test_cluster_fairness(self, capsys):
        """--fairness switches to the skewed-trace policy comparison."""
        code = main(["cluster", "--fairness", "fifo", "--topology", "2D-SW_SW"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fairness comparison" in out
        assert "max rho" in out and "Jain idx" in out
        assert "elephant" in out and "mouse" in out and "urgent" in out

    def test_cluster_fairness_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "--fairness", "karma"])

    def test_cluster_placement(self, capsys):
        """--placement switches to the skewed-trace placement comparison."""
        code = main(["cluster", "--placement", "manual"])
        assert code == 0
        out = capsys.readouterr().out
        assert "placement comparison" in out
        assert "load imb" in out
        assert "talker0" in out and "thinker0" in out

    def test_cluster_placement_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "--placement", "roundrobin"])

    def test_cluster_placement_and_fairness_conflict(self, capsys):
        code = main(
            ["cluster", "--placement", "manual", "--fairness", "fifo"]
        )
        assert code == 1
        assert "pick one" in capsys.readouterr().err

    def test_cluster_zero_jobs_names_the_flag(self, capsys):
        assert main(["cluster", "--jobs", "0"]) == 1
        assert "--jobs" in capsys.readouterr().err

    def test_cluster_bad_interarrival_names_the_flag(self, capsys):
        assert main(["cluster", "--interarrival-ms", "-2"]) == 1
        assert "--interarrival-ms" in capsys.readouterr().err

    def test_cluster_zero_iterations_names_the_flag(self, capsys):
        assert main(["cluster", "--iterations", "0"]) == 1
        assert "--iterations" in capsys.readouterr().err

    def test_cluster_open_loop_defaults(self):
        args = build_parser().parse_args(["cluster"])
        assert args.arrivals is None and args.rate is None
        assert args.target_rho is None and args.measure is None
        assert args.process == "poisson"
        assert args.outcome_cap == 1000

    def test_cluster_open_loop_rate(self, capsys):
        code = main(
            ["cluster", "--topology", "2D-SW_SW", "--rate", "800",
             "--arrivals", "25", "--max-concurrent", "2",
             "--warmup", "0.005", "--measure", "0.05"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "steady state: window" in out
        assert "live jobs: peak" in out

    def test_cluster_open_loop_target_rho(self, capsys):
        code = main(
            ["cluster", "--topology", "2D-SW_SW", "--target-rho", "0.4",
             "--arrivals", "15", "--max-concurrent", "2",
             "--measure", "0.05"]
        )
        assert code == 0
        assert "steady state: window" in capsys.readouterr().out

    def test_cluster_open_loop_needs_one_intensity(self, capsys):
        assert main(
            ["cluster", "--rate", "100", "--target-rho", "0.5",
             "--max-concurrent", "2"]
        ) == 1
        assert "exactly one of --rate or --target-rho" in capsys.readouterr().err
        assert main(["cluster", "--measure", "0.05"]) == 1
        assert "exactly one of" in capsys.readouterr().err

    def test_cluster_target_rho_needs_slots(self, capsys):
        assert main(["cluster", "--target-rho", "0.5"]) == 1
        assert "--max-concurrent" in capsys.readouterr().err

    def test_cluster_open_loop_show_spec(self, capsys):
        code = main(
            ["cluster", "--topology", "2D-SW_SW", "--rate", "500",
             "--arrivals", "5", "--show-spec"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert '"open_loop"' in out and '"rate": 500.0' in out

    def test_provisioning(self, capsys):
        assert main(["provisioning", "--topology", "3D-SW_SW_SW_hetero"]) == 0
        out = capsys.readouterr().out
        assert "max drivable utilization" in out

    def test_fig5(self, capsys):
        assert main(["fig", "5"]) == 0
        assert "paper: 8" in capsys.readouterr().out

    def test_fig_unknown(self, capsys):
        assert main(["fig", "99"]) == 2
        assert "unknown figure" in capsys.readouterr().err


class TestSpecCommands:
    """The declarative ``run`` / ``sweep`` subcommands."""

    @pytest.fixture
    def spec_path(self, tmp_path):
        from repro import api
        from repro.units import MB

        path = tmp_path / "spec.json"
        api.CollectiveScenario(size=16 * MB, chunks=4).save(path)
        return str(path)

    def test_run_spec(self, spec_path, capsys):
        assert main(["run", "--spec", spec_path]) == 0
        out = capsys.readouterr().out
        assert "[collective]" in out and "makespan" in out

    def test_run_spec_audited(self, spec_path, capsys):
        assert main(["run", "--spec", spec_path, "--audit"]) == 0
        out = capsys.readouterr().out
        assert "[collective]" in out and "makespan" in out

    def test_audit_flag_absent_defers_to_env(self, spec_path, monkeypatch):
        # Without --audit the CLI passes audit=None so THEMIS_AUDIT decides.
        monkeypatch.setenv("THEMIS_AUDIT", "1")
        assert main(["run", "--spec", spec_path]) == 0

    def test_run_spec_json_output(self, spec_path, capsys):
        import json

        assert main(["run", "--spec", spec_path, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["mode"] == "collective"
        assert report["makespan"] > 0 and not report["truncated"]

    def test_run_check_only(self, spec_path, capsys):
        assert main(["run", "--spec", spec_path, "--check"]) == 0
        assert "spec OK: CollectiveScenario" in capsys.readouterr().out

    def test_run_with_set_overrides(self, spec_path, capsys):
        code = main(
            ["run", "--spec", spec_path, "--set", "scheduler=baseline",
             "--show-spec", "--check"]
        )
        assert code == 0
        assert '"scheduler": "baseline"' in capsys.readouterr().out

    def test_run_bad_set_value(self, spec_path, capsys):
        assert main(["run", "--spec", spec_path, "--set", "scheduler=nope"]) == 1
        assert "unknown scheduler" in capsys.readouterr().err

    def test_run_missing_file(self, capsys):
        assert main(["run", "--spec", "/does/not/exist.json"]) == 1
        assert "error" in capsys.readouterr().err

    def test_sweep_with_axes(self, spec_path, capsys):
        code = main(
            ["sweep", "--spec", spec_path,
             "--axis", "scheduler+policy=baseline:FIFO,themis:SCF"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep over scheduler, policy" in out
        assert "2 run(s)" in out

    def test_sweep_json(self, spec_path, capsys):
        import json

        code = main(
            ["sweep", "--spec", spec_path, "--axis", "chunks=2,4", "--json"]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert [p["overrides"]["chunks"] for p in data["points"]] == [2, 4]

    def test_sweep_needs_axis(self, spec_path, capsys):
        assert main(["sweep", "--spec", spec_path]) == 1
        assert "--axis" in capsys.readouterr().err

    def test_run_check_unknown_registry_key_is_clean_error(
        self, tmp_path, capsys
    ):
        """A misspelled registry key fails with did-you-mean, no traceback."""
        path = tmp_path / "bad.json"
        path.write_text(
            '{"schema": 1, "mode": "cluster", '
            '"trace": {"workloads": ["dlrm"]}, "placement": "interleavd"}'
        )
        assert main(["run", "--spec", str(path), "--check"]) == 1
        err = capsys.readouterr().err
        assert "did you mean 'interleaved'" in err
        assert "Traceback" not in err

    def test_run_check_non_string_registry_key_is_clean_error(
        self, tmp_path, capsys
    ):
        path = tmp_path / "bad.json"
        path.write_text(
            '{"schema": 1, "mode": "cluster", '
            '"trace": {"workloads": ["dlrm"]}, "placement": 5}'
        )
        assert main(["run", "--spec", str(path), "--check"]) == 1
        err = capsys.readouterr().err
        assert "placement key must be a string" in err
        assert "Traceback" not in err

    def test_every_shipped_spec_checks(self, capsys):
        import glob
        from pathlib import Path

        specs_dir = Path(__file__).resolve().parent.parent / "examples" / "specs"
        for path in sorted(glob.glob(str(specs_dir / "*.json"))):
            assert main(["run", "--spec", path, "--check"]) == 0, path
        assert "spec OK" in capsys.readouterr().out

    def test_legacy_commands_show_spec(self, capsys):
        """Legacy subcommands are thin builders over the same specs."""
        assert main(
            ["collective", "--size", "16MB", "--chunks", "4", "--show-spec"]
        ) == 0
        out = capsys.readouterr().out
        assert '"mode": "collective"' in out
        assert main(["provisioning", "--show-spec"]) == 0
        assert '"mode": "provisioning"' in capsys.readouterr().out
