"""Multi-job cluster simulator: specs, traces, drivers, metrics."""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterReport,
    ClusterSimulator,
    JobOutcome,
    JobSpec,
    isolated_jct,
    poisson_trace,
    run_cluster,
)
from repro.errors import ConfigError
from repro.topology import Topology, dimension
from repro.training import TrainingConfig, simulate_training
from repro.units import MB
from repro.workloads import Layer, Workload


def tiny_topology() -> Topology:
    return Topology(
        [
            dimension("sw", 4, 400.0, latency_ns=100),
            dimension("sw", 4, 200.0, latency_ns=500),
        ],
        name="tiny-4x4",
    )


def tiny_workload(
    param_mb: float = 16.0, layers: int = 4, name: str = "tiny"
) -> Workload:
    layer_list = [
        Layer(
            name=f"l{i}",
            fwd_flops=1e9,
            bwd_flops=2e9,
            param_bytes=param_mb * MB / layers,
        )
        for i in range(layers)
    ]
    return Workload(name=name, layers=layer_list, batch_per_npu=1)


class TestJobSpec:
    def test_validation(self):
        with pytest.raises(ConfigError):
            JobSpec(name="", workload="dlrm")
        with pytest.raises(ConfigError):
            JobSpec(name="j", workload="dlrm", arrival_time=-1.0)
        with pytest.raises(ConfigError):
            JobSpec(name="j", workload="dlrm", iterations=0)
        with pytest.raises(ConfigError):
            JobSpec(name="j", workload="dlrm", scheduler="magic")

    def test_resolve_workload_by_name(self):
        spec = JobSpec(name="j", workload="dlrm")
        assert spec.resolve_workload().name == "DLRM"
        assert spec.workload_name == "dlrm"

    def test_resolve_workload_instance_passthrough(self):
        workload = tiny_workload()
        spec = JobSpec(name="j", workload=workload)
        assert spec.resolve_workload() is workload
        assert spec.workload_name == "tiny"

    def test_at_arrival_copies(self):
        spec = JobSpec(name="j", workload="dlrm", arrival_time=3.0)
        moved = spec.at_arrival(0.0)
        assert moved.arrival_time == 0.0
        assert moved.name == spec.name
        assert spec.arrival_time == 3.0

    def test_scheduler_label(self):
        assert JobSpec(name="a", workload="dlrm").scheduler_label == "Themis"
        assert (
            JobSpec(name="b", workload="dlrm", scheduler="baseline").scheduler_label
            == "Baseline"
        )


class TestPoissonTrace:
    def test_deterministic_for_seed(self):
        first = poisson_trace(["dlrm", "gnmt", "dlrm"], 1e-3, seed=42)
        second = poisson_trace(["dlrm", "gnmt", "dlrm"], 1e-3, seed=42)
        assert [s.arrival_time for s in first] == [
            s.arrival_time for s in second
        ]

    def test_arrivals_monotonic_and_first_at_start(self):
        trace = poisson_trace(["dlrm"] * 5, 1e-3, seed=7, start_time=2.0)
        arrivals = [s.arrival_time for s in trace]
        assert arrivals[0] == 2.0
        assert arrivals == sorted(arrivals)

    def test_scheduler_cycling(self):
        trace = poisson_trace(
            ["dlrm"] * 4, 1e-3, schedulers=("baseline", "themis")
        )
        assert [s.scheduler for s in trace] == [
            "baseline", "themis", "baseline", "themis",
        ]

    def test_validation(self):
        with pytest.raises(ConfigError):
            poisson_trace(["dlrm"], 0.0)
        with pytest.raises(ConfigError):
            poisson_trace([], 1e-3)
        with pytest.raises(ConfigError):
            poisson_trace(["dlrm"], 1e-3, schedulers=())


class TestClusterSimulator:
    def test_single_job_matches_training_simulator(self):
        """The event-driven cluster driver and the synchronous single-job
        driver execute the same factored loop — one job alone must take
        exactly as long either way."""
        workload = tiny_workload()
        topology = tiny_topology()
        # Non-default policy: the shared cluster network must honor the
        # full TrainingConfig, not just the loop-side knobs.
        config = TrainingConfig(iterations=2, policy="FIFO")
        solo = simulate_training(workload, topology, "themis", config)
        report = run_cluster(
            topology,
            [JobSpec(name="only", workload=workload, iterations=2)],
            ClusterConfig(training=config, isolated_baselines=False),
        )
        assert report.jobs[0].jct == pytest.approx(solo.total_time)
        assert report.jobs[0].breakdown.total == pytest.approx(solo.total_time)

    def test_contention_never_speeds_jobs_up(self):
        topology = tiny_topology()
        jobs = [
            JobSpec(name=f"j{i}", workload=tiny_workload(32), arrival_time=i * 1e-4)
            for i in range(3)
        ]
        report = run_cluster(topology, jobs)
        for outcome in report.jobs:
            assert outcome.slowdown is not None
            assert outcome.slowdown >= 1.0 - 1e-9
        assert report.makespan >= report.max_jct

    def test_mixed_schedulers_reported(self):
        topology = tiny_topology()
        jobs = [
            JobSpec(name="base", workload=tiny_workload(), scheduler="baseline"),
            JobSpec(name="themis", workload=tiny_workload(), scheduler="themis"),
        ]
        report = run_cluster(
            topology, jobs, ClusterConfig(isolated_baselines=False)
        )
        assert report.job("base").scheduler_name == "Baseline"
        assert report.job("themis").scheduler_name == "Themis"

    def test_disjoint_dim_subsets_do_not_contend(self):
        """Jobs pinned to disjoint dimensions share no wires: each keeps its
        isolated completion time."""
        topology = tiny_topology()
        jobs = [
            JobSpec(name="d0", workload=tiny_workload(), dim_indices=(0,)),
            JobSpec(name="d1", workload=tiny_workload(), dim_indices=(1,)),
        ]
        report = run_cluster(topology, jobs)
        for outcome in report.jobs:
            assert outcome.slowdown == pytest.approx(1.0)

    def test_dim_subset_traffic_stays_on_subset(self):
        topology = tiny_topology()
        sim = ClusterSimulator(
            topology,
            [JobSpec(name="d1only", workload=tiny_workload(), dim_indices=(1,))],
            ClusterConfig(isolated_baselines=False),
        )
        sim.run()
        result = sim.network.result()
        assert result.dim_bytes[0] == 0.0
        assert result.dim_bytes[1] > 0.0

    def test_priority_propagates_to_requests(self):
        topology = tiny_topology()
        sim = ClusterSimulator(
            topology,
            [JobSpec(name="vip", workload=tiny_workload(), priority=5)],
            ClusterConfig(isolated_baselines=False),
        )
        sim.run()
        requests = [c.request for c in sim.network._results]
        assert requests and all(r.priority == 5 for r in requests)
        assert all(r.owner == "vip" for r in requests)

    def test_per_job_comm_active_accounting(self):
        topology = tiny_topology()
        jobs = [
            JobSpec(name="a", workload=tiny_workload()),
            JobSpec(name="b", workload=tiny_workload(), arrival_time=1e-4),
        ]
        report = run_cluster(
            topology, jobs, ClusterConfig(isolated_baselines=False)
        )
        for outcome in report.jobs:
            assert 0 < outcome.comm_active_seconds <= report.comm_active_seconds

    def test_event_budget_returns_truncated_report(self):
        """A run cut short by ``max_events`` must not look complete: the
        report is flagged truncated, the cut job has no finish time, and
        the per-job metrics are None rather than misleading numbers."""
        topology = tiny_topology()
        sim = ClusterSimulator(
            topology,
            [JobSpec(name="j", workload=tiny_workload())],
            ClusterConfig(isolated_baselines=False),
        )
        report = sim.run(max_events=3)
        assert report.truncated
        assert report.truncated_at is not None
        assert [job.name for job in report.unfinished_jobs] == ["j"]
        outcome = report.jobs[0]
        assert not outcome.finished
        assert outcome.finish_time is None
        assert outcome.jct is None and outcome.slowdown is None
        assert report.mean_jct is None and report.max_jct is None
        assert report.makespan >= 0
        assert "TRUNCATED" in report.describe()

    def test_untruncated_report_not_flagged(self):
        topology = tiny_topology()
        report = ClusterSimulator(
            topology,
            [JobSpec(name="j", workload=tiny_workload())],
            ClusterConfig(isolated_baselines=False),
        ).run()
        assert not report.truncated
        assert report.truncated_at is None
        assert report.unfinished_jobs == []
        assert "TRUNCATED" not in report.describe()

    def test_validation(self):
        topology = tiny_topology()
        with pytest.raises(ConfigError, match="at least one job"):
            ClusterSimulator(topology, [])
        with pytest.raises(ConfigError, match="duplicate"):
            ClusterSimulator(
                topology,
                [
                    JobSpec(name="same", workload=tiny_workload()),
                    JobSpec(name="same", workload=tiny_workload()),
                ],
            )

    def test_isolated_jct_matches_solo_run(self):
        topology = tiny_topology()
        spec = JobSpec(name="j", workload=tiny_workload(), arrival_time=5e-3)
        solo = run_cluster(
            topology,
            [spec.at_arrival(0.0)],
            ClusterConfig(isolated_baselines=False),
        )
        assert isolated_jct(topology, spec) == pytest.approx(solo.jobs[0].jct)


class TestClusterReport:
    def _outcome(self, name, arrival, finish, isolated=None):
        return JobOutcome(
            name=name,
            workload_name="tiny",
            scheduler_name="Themis",
            arrival_time=arrival,
            finish_time=finish,
            isolated_time=isolated,
        )

    def test_aggregates(self):
        report = ClusterReport(
            topology_name="t",
            jobs=[
                self._outcome("a", 0.0, 2.0, isolated=1.0),
                self._outcome("b", 1.0, 2.5, isolated=1.5),
            ],
        )
        assert report.makespan == pytest.approx(2.5)
        assert report.mean_jct == pytest.approx((2.0 + 1.5) / 2)
        assert report.max_jct == pytest.approx(2.0)
        assert report.mean_slowdown == pytest.approx((2.0 + 1.0) / 2)
        assert report.max_slowdown == pytest.approx(2.0)

    def test_slowdown_none_without_isolated(self):
        report = ClusterReport(
            topology_name="t", jobs=[self._outcome("a", 0.0, 1.0)]
        )
        assert report.mean_slowdown is None
        assert report.jobs[0].slowdown is None

    def test_job_lookup(self):
        report = ClusterReport(
            topology_name="t", jobs=[self._outcome("a", 0.0, 1.0)]
        )
        assert report.job("a").name == "a"
        with pytest.raises(KeyError):
            report.job("missing")

    def test_describe_mentions_jobs(self):
        topology = tiny_topology()
        jobs = [
            JobSpec(name="alpha", workload=tiny_workload()),
            JobSpec(name="beta", workload=tiny_workload(), scheduler="baseline"),
        ]
        text = run_cluster(topology, jobs).describe()
        assert "alpha" in text and "beta" in text
        assert "slowdown" in text and "makespan" in text
