"""Packet/goodput model: header-to-packet ratio effects (paper Sec. 6.1)."""

from __future__ import annotations

import pytest

from repro.collectives import CollectiveRequest, CollectiveType, PhaseOp, RingAlgorithm
from repro.core import SchedulerFactory, Splitter
from repro.errors import TopologyError
from repro.sim import NetworkSimulator, bw_utilization
from repro.topology import (
    DimensionSpec,
    DimensionKind,
    Topology,
    dimension,
    topology_from_dict,
    topology_to_dict,
)
from repro.units import KB, MB

#: InfiniBand-ish parameters: 4 KiB MTU, ~66 B of headers per packet.
MTU = 4 * KB
HEADER = 66.0


class TestWireBytes:
    def dim(self, **kwargs):
        return dimension("ring", 4, 100.0).with_packet_model(
            kwargs.get("mtu", MTU), kwargs.get("header", HEADER)
        )

    def test_disabled_is_identity(self):
        plain = dimension("ring", 4, 100.0)
        assert plain.wire_bytes(123456.0) == 123456.0

    def test_zero_payload(self):
        assert self.dim().wire_bytes(0.0) == 0.0

    def test_single_packet(self):
        dim = self.dim()
        assert dim.wire_bytes(100.0) == pytest.approx(100.0 + HEADER)

    def test_large_payload_small_relative_overhead(self):
        dim = self.dim()
        payload = 64 * MB
        wire = dim.wire_bytes(payload)
        overhead = (wire - payload) / payload
        assert overhead == pytest.approx(HEADER / MTU, rel=0.01)
        assert overhead < 0.02

    def test_steps_multiply_header_cost(self):
        dim = self.dim()
        one_step = dim.wire_bytes(100.0, steps=1)
        three_steps = dim.wire_bytes(100.0, steps=3)
        # 100 bytes over 3 steps -> 3 packets instead of 1.
        assert three_steps == pytest.approx(100.0 + 3 * HEADER)
        assert three_steps > one_step

    def test_negative_payload_rejected(self):
        with pytest.raises(TopologyError):
            self.dim().wire_bytes(-1.0)

    def test_validation(self):
        with pytest.raises(TopologyError):
            DimensionSpec(
                DimensionKind.RING, 4, 1.0, packet_header_bytes=10.0
            )
        with pytest.raises(TopologyError):
            DimensionSpec(DimensionKind.RING, 4, 1.0, max_packet_bytes=-1.0)


class TestTransferTimeWithPackets:
    def test_transfer_time_inflated(self):
        algo = RingAlgorithm()
        plain = dimension("ring", 4, 100.0)
        packeted = plain.with_packet_model(MTU, HEADER)
        t_plain = algo.transfer_time(PhaseOp.RS, 1 * MB, plain)
        t_packet = algo.transfer_time(PhaseOp.RS, 1 * MB, packeted)
        assert t_packet > t_plain
        assert t_packet < t_plain * 1.1

    def test_tiny_messages_dominated_by_headers(self):
        algo = RingAlgorithm()
        packeted = dimension("ring", 4, 100.0).with_packet_model(MTU, HEADER)
        # 400-byte stage over 3 ring steps: 3 packets of header for 300
        # payload bytes -> large relative overhead.
        plain_time = algo.transfer_time(
            PhaseOp.RS, 400.0, dimension("ring", 4, 100.0)
        )
        packet_time = algo.transfer_time(PhaseOp.RS, 400.0, packeted)
        assert packet_time > plain_time * 1.5


class TestTopologyPacketModel:
    def test_scalar_application(self, asymmetric_3d):
        topo = asymmetric_3d.with_packet_model(MTU, HEADER)
        assert all(d.max_packet_bytes == MTU for d in topo.dims)

    def test_per_dim_application(self, asymmetric_3d):
        topo = asymmetric_3d.with_packet_model(
            [MTU, 2 * MTU, MTU], [32.0, 48.0, 66.0]
        )
        assert topo.dims[1].max_packet_bytes == 2 * MTU
        assert topo.dims[2].packet_header_bytes == 66.0

    def test_length_mismatch(self, asymmetric_3d):
        with pytest.raises(TopologyError):
            asymmetric_3d.with_packet_model([MTU], HEADER)

    def test_serialization_round_trip(self, asymmetric_3d):
        topo = asymmetric_3d.with_packet_model(MTU, HEADER)
        rebuilt = topology_from_dict(topology_to_dict(topo))
        assert rebuilt == topo


class TestGoodputEffect:
    """The paper's observation: finer chunking eventually hurts goodput."""

    def _utilization(self, topology, chunks):
        sim = NetworkSimulator(
            topology,
            SchedulerFactory("themis", splitter=Splitter(chunks)),
            policy="SCF",
        )
        sim.submit(CollectiveRequest(CollectiveType.ALL_REDUCE, 100 * MB))
        return bw_utilization(sim.run()).average

    def test_paper_headline_64_chunks_under_half_percent(self):
        """'Increasing the total header-to-packet ratio by less than 0.5%
        in the worst case (100 MB AR) compared to 1 chunk' (Sec. 6.1)."""
        from repro.collectives import stage_plan

        topo = Topology(
            [
                dimension("sw", 16, 200.0, links_per_npu=6, latency_ns=700),
                dimension("sw", 64, 100.0, latency_ns=1700),
            ],
        ).with_packet_model(MTU, HEADER)

        def wire_overhead(chunks: int) -> float:
            total_payload = 0.0
            total_wire = 0.0
            algo = RingAlgorithm()
            for size in [100 * MB / chunks] * chunks:
                stages = stage_plan(
                    CollectiveType.ALL_REDUCE, size, (0, 1), topo
                )
                for stage in stages:
                    dim = topo.dims[stage.dim_index]
                    payload = algo.bytes_per_npu(stage.op, stage.stage_size, dim.size)
                    total_payload += payload
                    total_wire += dim.wire_bytes(payload, steps=dim.size - 1)
            return total_wire / total_payload - 1.0

        delta = wire_overhead(64) - wire_overhead(1)
        assert delta < 0.005

    def test_extreme_chunking_hurts_with_packets(self):
        """Once per-step messages drop below one MTU, headers dominate and
        the collective gets *slower* despite finer load balancing — the
        goodput cliff of Sec. 6.1."""
        topo = Topology(
            [
                dimension("sw", 16, 800.0, latency_ns=0),
                dimension("sw", 8, 400.0, latency_ns=0),
            ],
        ).with_packet_model(4 * KB, 256.0)

        def makespan(chunks: int) -> float:
            sim = NetworkSimulator(
                topo,
                SchedulerFactory("themis", splitter=Splitter(chunks)),
                policy="SCF",
            )
            sim.submit(CollectiveRequest(CollectiveType.ALL_REDUCE, 10 * MB))
            return sim.run().makespan

        coarse = makespan(256)
        fine = makespan(2048)  # dim2 stages far below one packet per step
        assert fine > coarse * 1.2
